//! Device non-ideality study: how much programming variation, read noise
//! and stuck-at cell faults the in-memory compute path tolerates.
//!
//! ReRAM's analog nature is the cost of the paper's "computation and
//! storage simultaneously"; this study sweeps the device models of
//! `reram-crossbar` and reports (a) raw MVM error and (b) end-to-end
//! classification accuracy of a crossbar-backed CNN trained *on* the noisy
//! hardware — training partially compensates device error, which is why
//! the accuracy column degrades much more slowly than the MVM column.
//!
//! ```text
//! cargo run --example noise_study --release
//! ```

use reram_crossbar::{CrossbarConfig, TiledMatrix};
use reram_datasets::Dataset;
use reram_nn::backend::LinearEngine;
use reram_nn::layers::{ActivationLayer, Conv2d, Flatten, Linear, Pool2d};
use reram_nn::losses::accuracy;
use reram_nn::Network;
use reram_tensor::{init, Matrix, Shape2, Shape4};

/// Mean relative MVM error for a crossbar configuration.
fn mvm_error(cfg: &CrossbarConfig) -> f64 {
    let w = Matrix::from_fn(Shape2::new(96, 96), |r, c| {
        (((r * 7 + c * 5) % 31) as f32 - 15.0) / 15.0
    });
    let x: Vec<f32> = (0..96).map(|i| ((i % 17) as f32 - 8.0) / 8.0).collect();
    let exact = w.matvec(&x);
    let mut t = TiledMatrix::program(&w, cfg);
    let got = t.matvec(&x);
    let err: f64 = got
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs() as f64)
        .sum::<f64>()
        / exact.len() as f64;
    let scale: f64 = exact.iter().map(|v| v.abs() as f64).sum::<f64>() / exact.len() as f64;
    err / scale
}

/// Trains a crossbar-backed classifier on the configuration and returns
/// held-out accuracy over 4 classes.
fn train_accuracy(cfg: &CrossbarConfig) -> f32 {
    let ds = Dataset::mnist_like().with_resolution(12);
    let mut rng = init::seeded_rng(5);
    let mut net = {
        let mut r = init::seeded_rng(3);
        Network::new("study", Shape4::new(1, 1, 12, 12))
            .push(
                Conv2d::new(1, 6, 3, 1, 1, &mut r).with_engine(LinearEngine::crossbar(cfg.clone())),
            )
            .push(ActivationLayer::relu())
            .push(Pool2d::max(2))
            .push(Flatten::new())
            .push(
                Linear::new(6 * 6 * 6, 4, &mut r).with_engine(LinearEngine::crossbar(cfg.clone())),
            )
    };
    for step in 0..40 {
        let labels: Vec<usize> = (0..8).map(|i| (step * 8 + i) % 4).collect();
        let x = ds.batch_for_labels(&labels, &mut rng);
        let _ = net.train_batch(&x, &labels, 0.05);
    }
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let x = ds.batch_for_labels(&labels, &mut rng);
    accuracy(&net.forward(&x, false), &labels)
}

fn main() {
    println!(
        "{:<28} {:>14} {:>12}",
        "configuration", "MVM rel err", "accuracy"
    );
    println!("{}", "-".repeat(58));

    let ideal = CrossbarConfig::default();
    println!(
        "{:<28} {:>13.3}% {:>12.2}",
        "ideal",
        100.0 * mvm_error(&ideal),
        train_accuracy(&ideal)
    );
    for sigma in [0.01, 0.02, 0.05, 0.1] {
        let cfg = CrossbarConfig::default().with_noise(sigma, sigma, 99);
        println!(
            "{:<28} {:>13.3}% {:>12.2}",
            format!("variation+read sigma {sigma}"),
            100.0 * mvm_error(&cfg),
            train_accuracy(&cfg)
        );
    }
    for rate in [0.005, 0.01, 0.05] {
        let cfg = CrossbarConfig::default().with_faults(rate, rate, 101);
        println!(
            "{:<28} {:>13.3}% {:>12.2}",
            format!("stuck cells {:.1}%+{:.1}%", rate * 100.0, rate * 100.0),
            100.0 * mvm_error(&cfg),
            train_accuracy(&cfg)
        );
    }
    println!("\n(chance accuracy = 0.25; training on the faulty hardware partially compensates device error)");
}
