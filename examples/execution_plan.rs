//! Execution plan: one lowering, every backend.
//!
//! `ExecutionPlan::lower` turns a backend-neutral `NetworkSpec` into
//! per-layer crossbar mappings, MVM counts and cycle/energy closed forms.
//! The same plan object then answers for every consumer: the PipeLayer
//! pipeline (uniform macro-cycles *and* per-layer stage latencies), the
//! per-layer hardware report, and the GPU roofline baseline.
//!
//! ```text
//! cargo run --example execution_plan --release
//! ```

use reram_core::{AcceleratorConfig, ExecutionPlan, PipeLayerAccelerator};
use reram_gpu::GpuModel;
use reram_nn::models;

fn main() {
    let net = models::alexnet_spec();
    let config = AcceleratorConfig::default();
    let plan = ExecutionPlan::lower(&net, &config).expect("AlexNet lowers onto the accelerator");

    // --- Per-layer lowering records. -------------------------------------
    println!(
        "{} lowered: {} weighted layers, {} arrays, {:.1} mm^2",
        plan.name,
        plan.weighted_layer_count(),
        plan.total_arrays,
        plan.area_mm2
    );
    println!(
        "{:<8} {:>7} {:>9} {:>12} {:>13} {:>12}",
        "layer", "arrays", "fwd MVMs", "stage (ns)", "fwd E (pJ)", "ADC convs"
    );
    for l in &plan.layers {
        println!(
            "{:<8} {:>7} {:>9} {:>12.0} {:>13.3e} {:>12}",
            l.name,
            l.mapping.arrays,
            l.forward_mvms,
            l.forward_latency_ns,
            l.forward_energy_pj,
            l.adc_conversions
        );
    }

    // --- Pipeline accounting: uniform padding vs per-layer stages. -------
    let n = 1024;
    let batch = 32;
    let accel = PipeLayerAccelerator::new(config);
    let uniform_s = accel.train_cost(&net, batch, n).time_s;
    let per_layer_s = plan.pipelined_training_time_s(n, batch);
    println!(
        "\ntraining {n} inputs at B={batch}: uniform macro-cycles {:.3} ms, \
         per-layer plan {:.3} ms ({:.2}x overstated)",
        uniform_s * 1e3,
        per_layer_s * 1e3,
        uniform_s / per_layer_s
    );

    // --- The identical plan object prices the GPU baseline. --------------
    let gpu = GpuModel::gtx1080();
    let gpu_train = plan.gpu_training_cost(&gpu, batch);
    println!(
        "{}: one batch of {batch} costs {:.3} ms / {:.3} J on the same plan",
        gpu.name,
        gpu_train.time_s * 1e3,
        gpu_train.energy_j
    );
}
