//! ReGAN end-to-end demonstration: train a DCGAN on the synthetic MNIST
//! stand-in using the exact three-phase schedule of the paper's Fig. 8
//! (D on real, D on generated, G through fixed D), then evaluate the cycle
//! cost of that schedule at every ReGAN optimization level and compare
//! against the GPU baseline.
//!
//! ```text
//! cargo run --example gan_training_regan --release
//! ```

use reram_core::{AcceleratorConfig, ReGanAccelerator, ReganOpt, ReganPipeline};
use reram_datasets::Dataset;
use reram_gpu::GpuModel;
use reram_nn::models;
use reram_tensor::init;

fn main() {
    let mut rng = init::seeded_rng(11);
    let ds = Dataset::mnist_like().with_resolution(16);

    // Functional GAN, sized for seconds-scale training.
    let mut gan = models::dcgan(16, 8, 1, 16, &mut rng);
    println!(
        "DCGAN: G {} params / {} weighted layers, D {} params / {} weighted layers",
        gan.generator().param_count(),
        gan.generator().weighted_layer_count(),
        gan.discriminator().param_count(),
        gan.discriminator().weighted_layer_count()
    );

    let batch = 16usize;
    let iterations = 30usize;
    for it in 0..iterations {
        let real = ds.unlabeled_batch(batch, &mut rng);
        let stats = gan.train_step(&real, 0.02, &mut rng);
        if it % 6 == 0 || it == iterations - 1 {
            println!(
                "  iter {it:>3}: D(real) {:.2}, D(fake) {:.2}, losses D {:.3}/{:.3} G {:.3}",
                stats.d_score_real,
                stats.d_score_fake,
                stats.d_loss_real,
                stats.d_loss_fake,
                stats.g_loss
            );
        }
    }

    // The schedule this training used, in ReGAN pipeline cycles.
    let l_d = gan.discriminator().weighted_layer_count();
    let l_g = gan.generator().weighted_layer_count();
    let pipe = ReganPipeline::new(l_d, l_g, batch);
    println!("\nReGAN schedule for L_D={l_d}, L_G={l_g}, B={batch}:");
    for opt in ReganOpt::ALL {
        println!(
            "  {:<16} {:>6} cycles/iteration ({} D copies, {}x buffers)",
            opt.name(),
            pipe.iteration_cycles(opt),
            pipe.discriminator_copies(opt),
            pipe.buffer_multiplier(opt)
        );
    }

    // Paper-scale comparison: DCGAN at celebA resolution vs the GTX 1080.
    let g = models::dcgan_generator_spec(100, 3, 64);
    let d = models::dcgan_discriminator_spec(3, 64);
    let accel = ReGanAccelerator::new(AcceleratorConfig::default(), ReganOpt::PipelineSpCs);
    let report = accel.train_cost(&g, &d, 64, 100);
    let gpu = GpuModel::gtx1080()
        .gan_training_cost(&g, &d, 64)
        .times(100.0);
    println!(
        "\nDCGAN/celebA (100 iterations, batch 64): ReGAN {:.2} ms vs GPU {:.2} s -> {:.0}x speedup, {:.1}x energy saving",
        report.time_s * 1e3,
        gpu.time_s,
        report.speedup_vs(&gpu),
        report.energy_saving_vs(&gpu)
    );
}
