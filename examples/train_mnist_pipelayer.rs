//! PipeLayer end-to-end demonstration: train a CNN classifier on the
//! synthetic MNIST stand-in *through the ReRAM crossbar model* — forward
//! products quantized, bit-sliced and spike-coded, weights reprogrammed at
//! every batched update — then report what the training run costs on the
//! PipeLayer architecture versus the GPU baseline.
//!
//! ```text
//! cargo run --example train_mnist_pipelayer --release
//! ```

use reram_core::{AcceleratorConfig, PipeLayerAccelerator};
use reram_crossbar::CrossbarConfig;
use reram_datasets::Dataset;
use reram_gpu::GpuModel;
use reram_nn::backend::LinearEngine;
use reram_nn::layers::{ActivationLayer, Conv2d, Flatten, Linear, Pool2d};
use reram_nn::Network;
use reram_tensor::{init, Shape4};

fn main() {
    let mut rng = init::seeded_rng(7);
    let ds = Dataset::mnist_like().with_resolution(12);
    let classes = 4usize;

    // A compact CNN with crossbar-backed weighted layers.
    let crossbar = CrossbarConfig::default();
    let mut net = Network::new("mnist-crossbar-cnn", Shape4::new(1, 1, 12, 12))
        .push(
            Conv2d::new(1, 6, 3, 1, 1, &mut rng)
                .with_engine(LinearEngine::crossbar(crossbar.clone())),
        )
        .push(ActivationLayer::relu())
        .push(Pool2d::max(2))
        .push(Flatten::new())
        .push(
            Linear::new(6 * 6 * 6, classes, &mut rng).with_engine(LinearEngine::crossbar(crossbar)),
        );

    println!(
        "training {} ({} params) on synthetic MNIST through the crossbar model",
        net.name(),
        net.param_count()
    );

    let batch = 8usize;
    let steps = 40usize;
    let mut final_acc = 0.0;
    for step in 0..steps {
        let labels: Vec<usize> = (0..batch).map(|i| (step * batch + i) % classes).collect();
        let images = ds.batch_for_labels(&labels, &mut rng);
        let (loss, acc) = net.train_batch(&images, &labels, 0.05);
        final_acc = acc;
        if step % 8 == 0 || step == steps - 1 {
            println!("  step {step:>3}: loss {loss:.4}, batch accuracy {acc:.2}");
        }
    }
    println!(
        "final training-batch accuracy: {final_acc:.2} (chance = {:.2})",
        1.0 / classes as f32
    );

    // Architectural cost of this exact training run.
    let spec = net.spec();
    let n = (batch * steps) as u64;
    let accel = PipeLayerAccelerator::new(AcceleratorConfig::default());
    let report = accel.train_cost(&spec, batch, n);
    let gpu = GpuModel::gtx1080()
        .training_cost(&spec, batch)
        .times(steps as f64);
    println!(
        "this run on PipeLayer: {} cycles, {:.3} ms, {:.3} mJ ({} arrays, {:.2} mm2)",
        report.cycles,
        report.time_s * 1e3,
        report.energy_j * 1e3,
        report.arrays,
        report.area_mm2
    );
    println!(
        "same run on GTX 1080 model: {:.3} ms, {:.3} mJ -> {:.1}x speedup, {:.1}x energy saving",
        gpu.time_s * 1e3,
        gpu.energy_j * 1e3,
        report.speedup_vs(&gpu),
        report.energy_saving_vs(&gpu)
    );
}
