//! Serving: a four-chip cluster under bursty traffic, three schedulers.
//!
//! `reram-serve` replays one seeded workload — a Markov-modulated Poisson
//! process over a heterogeneous model catalog (LeNet + AlexNet) — against
//! the same cluster under each scheduling policy, so the only thing that
//! differs between runs is dispatch. Requests batch dynamically (size or
//! linger trigger, whichever fires first) and every chip prices its work
//! with the lowered `ExecutionPlan`, which is what lets the cost-aware
//! policy predict completion times instead of counting queued requests.
//!
//! ```text
//! cargo run --example serve_cluster --release
//! ```

use reram_core::AcceleratorConfig;
use reram_nn::models;
use reram_serve::{simulate, Policy, ServeConfig, TrafficModel};

fn main() {
    let catalog = [models::lenet_spec(), models::alexnet_spec()];
    let accel = AcceleratorConfig::default();
    let base = ServeConfig {
        chips: 4,
        // 0.5 Mrps baseline with 3 Mrps bursts: the bursts overrun the
        // cluster, so scheduling quality shows up in the tail.
        traffic: TrafficModel::Bursty {
            base_rps: 500_000.0,
            burst_rps: 3_000_000.0,
            mean_base_ns: 2_000_000.0,
            mean_burst_ns: 500_000.0,
        },
        mix: vec![0.7, 0.3],
        horizon_ns: 20_000_000,
        seed: 7,
        ..ServeConfig::default()
    };

    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12} {:>6}",
        "policy", "batches", "p50 (us)", "p99 (us)", "thru (Mrps)", "util"
    );
    for policy in Policy::ALL {
        let report = simulate(
            &ServeConfig {
                policy,
                ..base.clone()
            },
            &catalog,
            &accel,
        )
        .expect("zoo networks plan under the default config");
        println!(
            "{:<16} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>5.0}%",
            report.policy,
            report.batches,
            report.p50_latency_ns.unwrap_or(0) as f64 / 1e3,
            report.p99_latency_ns.unwrap_or(0) as f64 / 1e3,
            report.throughput_rps / 1e6,
            report.mean_utilization() * 100.0
        );
    }

    // Per-chip view of the winning policy: cost-aware dispatch keeps the
    // chips' busy time balanced even though batch costs differ 10x.
    let report = simulate(&base, &catalog, &accel).expect("plannable");
    println!("\n{} per-chip breakdown:", report.policy);
    for chip in &report.chips {
        println!(
            "  chip {}: {} requests in {} batches, {:.0}% busy, {:.1} uJ",
            chip.chip,
            chip.completed_requests,
            chip.batches_served,
            chip.utilization * 100.0,
            chip.energy_uj
        );
    }
}
