//! Quickstart: the three layers of the stack in one page.
//!
//! 1. Program a matrix onto ReRAM crossbars and run an in-memory
//!    matrix-vector multiplication (paper Fig. 3).
//! 2. Map a convolution layer onto arrays with the balanced scheme and a
//!    replication factor (paper Fig. 4).
//! 3. Evaluate training a network on the PipeLayer pipeline against the
//!    GPU baseline (paper Fig. 5 / Table I).
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use reram_core::{AcceleratorConfig, LayerMapping, MappingScheme, PipeLayerAccelerator};
use reram_crossbar::{CrossbarConfig, TiledMatrix};
use reram_gpu::GpuModel;
use reram_nn::{models, LayerSpec};
use reram_tensor::{Matrix, Shape2};

fn main() {
    // --- 1. A crossbar computes y = W x in memory. -----------------------
    let w = Matrix::from_fn(Shape2::new(200, 300), |r, c| {
        (((r * 31 + c * 17) % 21) as f32 - 10.0) / 10.0
    });
    let x: Vec<f32> = (0..300).map(|i| ((i % 13) as f32 - 6.0) / 6.0).collect();
    let mut crossbar = TiledMatrix::program(&w, &CrossbarConfig::default());
    let y = crossbar.matvec(&x);
    let exact = w.matvec(&x);
    let err: f32 = y
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>()
        / y.len() as f32;
    println!(
        "crossbar MVM: 200x300 matrix on a {:?} grid of {} arrays, mean |err| = {err:.5}",
        crossbar.grid(),
        crossbar.array_count()
    );

    // --- 2. Map the paper's Fig. 4 example layer. -------------------------
    let layer = LayerSpec::Conv {
        in_c: 128,
        out_c: 256,
        k: 3,
        stride: 1,
        pad: 0,
        in_h: 114,
        in_w: 114,
    };
    let config = AcceleratorConfig::default();
    for x in [1usize, 256, 12544] {
        let m = LayerMapping::map(&layer, &config, MappingScheme::Balanced { replication: x });
        println!(
            "mapping X={x:>5}: {:>4} x {} grid, {:>7} arrays, {:>5} steps/input",
            m.row_tiles, m.col_tiles, m.arrays, m.steps_per_input
        );
    }

    // --- 3. Train AlexNet-scale work on PipeLayer vs the GTX 1080. --------
    let net = models::alexnet_spec();
    let accel = PipeLayerAccelerator::new(config);
    let report = accel.train_cost(&net, 32, 512);
    let gpu = GpuModel::gtx1080().training_cost(&net, 32).times(16.0);
    println!(
        "training {} (512 inputs, batch 32): PipeLayer {:.3} ms vs GPU {:.1} ms -> {:.1}x speedup, {:.1}x energy saving",
        net.name,
        report.time_s * 1e3,
        gpu.time_s * 1e3,
        report.speedup_vs(&gpu),
        report.energy_saving_vs(&gpu)
    );
}
