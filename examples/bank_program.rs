//! Driving a PIM memory bank directly through its instruction set.
//!
//! The bank control unit of Fig. 6 "decodes the incoming instructions and
//! determines the operation mode of morphable subarrays". This example
//! writes the control program for one inference layer by hand: program the
//! weights, morph the subarray into compute mode, stream input vectors from
//! a memory subarray through it with the ReLU peripheral enabled, buffer
//! the results, and finally morph the subarray back into memory mode and
//! use it as plain storage.
//!
//! ```text
//! cargo run --example bank_program --release
//! ```

use reram_core::compiler::{CompiledMlp, FcStage, TrainableMlp};
use reram_core::isa::{Instruction, SubarrayMode};
use reram_core::subarray::Bank;
use reram_crossbar::CrossbarConfig;
use reram_nn::activations::Activation;
use reram_tensor::{Matrix, Shape2};

fn main() {
    let mut bank = Bank::new(2, 4, &CrossbarConfig::default());

    // A small FC layer: 6 outputs from 8 inputs.
    let w = Matrix::from_fn(Shape2::new(6, 8), |r, c| {
        (((r * 5 + c * 3) % 11) as f32 - 5.0) / 5.0
    });
    let inputs: Vec<Vec<f32>> = (0..3)
        .map(|k| (0..8).map(|i| ((i + k) % 5) as f32 / 5.0 - 0.4).collect())
        .collect();

    // Control program: one setup phase, then one Compute per input vector.
    let mut program = vec![
        Instruction::Program {
            subarray: 0,
            weights: w.clone(),
        },
        Instruction::SetMode {
            subarray: 0,
            mode: SubarrayMode::Compute,
        },
    ];
    for (i, x) in inputs.iter().enumerate() {
        program.push(Instruction::LoadMem {
            mem: 0,
            data: x.clone(),
        });
        program.push(Instruction::Compute {
            subarray: 0,
            src_mem: 0,
            dst_mem: 1,
            activation: Some(Activation::Relu),
        });
        program.push(Instruction::StoreBuffer { src_mem: 1 });
        program.push(Instruction::ReadMem { mem: 1 });
        let _ = i;
    }
    // Morph back to memory mode and use the same subarray as storage.
    program.push(Instruction::SetMode {
        subarray: 0,
        mode: SubarrayMode::Memory,
    });
    program.push(Instruction::MemWrite {
        subarray: 0,
        data: vec![1.0, 2.0, 3.0],
    });
    program.push(Instruction::MemRead { subarray: 0 });

    let outputs = bank.run(program);
    for (i, x) in inputs.iter().enumerate() {
        let want: Vec<f32> = w.matvec(x).iter().map(|v| v.max(0.0)).collect();
        println!("input {i}: crossbar {:?}", round3(&outputs[i]));
        println!("         exact    {:?}", round3(&want));
    }
    println!(
        "memory-mode readback: {:?}",
        outputs.last().expect("readback")
    );

    let stats = bank.stats();
    println!(
        "\nbank stats: {} instructions, {} MVMs, {} programs, {} mem elems, {} buffer elems, {} mode switches",
        stats.instructions,
        stats.mvms,
        stats.programs,
        stats.mem_traffic,
        stats.buffer_traffic,
        bank.morphable(0).mode_switches()
    );

    // Same thing, compiled: the control unit's orchestration generated
    // automatically from a layer stack.
    println!("\n-- compiled three-layer MLP --");
    let mut mlp = CompiledMlp::compile(
        vec![
            FcStage::new(
                Matrix::from_fn(Shape2::new(10, 8), |r, c| {
                    (((r * 7 + c * 5) % 13) as f32 - 6.0) / 8.0
                }),
                Some(Activation::Relu),
            ),
            FcStage::new(
                Matrix::from_fn(Shape2::new(6, 10), |r, c| {
                    (((r * 5 + c * 3 + 1) % 13) as f32 - 6.0) / 8.0
                }),
                Some(Activation::Relu),
            ),
            FcStage::new(
                Matrix::from_fn(Shape2::new(3, 6), |r, c| {
                    (((r * 3 + c * 7 + 2) % 13) as f32 - 6.0) / 8.0
                }),
                None,
            ),
        ],
        &CrossbarConfig::default(),
    )
    .expect("layer stack compiles");
    let input: Vec<f32> = (0..8).map(|i| (i % 5) as f32 / 5.0 - 0.4).collect();
    let got = mlp.infer(&input);
    let want = mlp.infer_exact(&input);
    println!("crossbar: {:?}", round3(&got));
    println!("exact:    {:?}", round3(&want));
    let s = mlp.stats();
    println!(
        "compiled-run stats: {} instructions, {} MVMs, {} programs",
        s.instructions, s.mvms, s.programs
    );

    // Training on the bank: forward MVMs and error back-propagation both
    // run as instructions (the transposed grid serves the backward pass),
    // with ProgramTraining write-backs as the weight-update cycles.
    println!("\n-- bank-level training (MSE regression) --");
    let mut trainee = TrainableMlp::compile(
        vec![
            (
                Matrix::from_fn(Shape2::new(6, 4), |r, c| {
                    (((r * 7 + c * 5) % 11) as f32 - 5.0) / 10.0
                }),
                true,
            ),
            (
                Matrix::from_fn(Shape2::new(2, 6), |r, c| {
                    (((r * 3 + c * 7 + 1) % 11) as f32 - 5.0) / 10.0
                }),
                false,
            ),
        ],
        &CrossbarConfig::default(),
    )
    .expect("layer stack compiles");
    let x = [0.4f32, -0.2, 0.1, 0.3];
    let target = [0.5f32, -0.25];
    for step in 0..20 {
        let loss = trainee.train_step(&x, &target, 0.2);
        if step % 5 == 0 || step == 19 {
            println!("  step {step:>2}: loss {loss:.5}");
        }
    }
    let ts = trainee.stats();
    println!(
        "training stats: {} instructions, {} MVMs, {} grid programs",
        ts.instructions, ts.mvms, ts.programs
    );
}

fn round3(v: &[f32]) -> Vec<f32> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
