//! Integration tests for the extension features: WGAN training, the
//! trainer loop with momentum and dropout, LUT activations in a live
//! network, and the compiled bank program against the functional model.

use reram_suite::core::compiler::{CompiledMlp, FcStage};
use reram_suite::crossbar::CrossbarConfig;
use reram_suite::datasets::Dataset;
use reram_suite::nn::activations::Activation;
use reram_suite::nn::layers::{ActivationLayer, Dropout, Flatten, Linear};
use reram_suite::nn::{models, Network, TrainConfig, Trainer};
use reram_suite::tensor::{init, Matrix, Shape4};

#[test]
fn wgan_critic_separates_synthetic_faces() {
    let ds = Dataset::celeba_like().with_resolution(16);
    let mut rng = init::seeded_rng(13);
    let mut gan = models::dcgan(16, 4, 3, 16, &mut rng);
    let mut critic_loss = 0.0f32;
    for _ in 0..25 {
        let real = ds.unlabeled_batch(8, &mut rng);
        critic_loss = gan.train_critic_wgan(&real, 0.05, 0.1, &mut rng);
        let _ = gan.train_generator_wgan(8, 0.02, &mut rng);
    }
    assert!(critic_loss.is_finite());
    // Critic prefers real over fake by the end (loss = fake - real < 0).
    assert!(critic_loss < 0.1, "WGAN critic loss {critic_loss}");
}

#[test]
fn trainer_with_momentum_dropout_and_lr_decay() {
    let ds = Dataset::cifar10_like().with_resolution(8);
    let mut rng = init::seeded_rng(17);
    let mut data_rng = init::seeded_rng(18);
    let mut net = Network::new("reg-mlp", Shape4::new(1, 3, 8, 8))
        .push(Flatten::new())
        .push(Linear::new(3 * 8 * 8, 32, &mut rng))
        .push(ActivationLayer::relu())
        .push(Dropout::new(0.8, 7))
        .push(Linear::new(32, 4, &mut rng));
    net.set_momentum(0.9);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 0.02,
        lr_decay: 0.5,
        decay_every: 30,
    });
    trainer.run(&mut net, 60, |_| {
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let images = ds.batch_for_labels(&labels, &mut data_rng);
        (images, labels)
    });
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let eval = ds.batch_for_labels(&labels, &mut data_rng);
    let acc = trainer.evaluate(&mut net, &eval, &labels);
    assert!(
        acc >= 0.75,
        "regularized training accuracy {acc} (chance 0.25)"
    );
    // Loss trended downward.
    let h = trainer.history();
    assert!(h.final_loss() < h.losses[0]);
}

#[test]
fn lut_activation_network_still_learns() {
    // ReGAN's LUT peripheral: a classifier whose activations all run
    // through 64-entry tables still trains to high accuracy.
    let ds = Dataset::mnist_like().with_resolution(8);
    let mut rng = init::seeded_rng(19);
    let mut data_rng = init::seeded_rng(20);
    let mut net = Network::new("lut-mlp", Shape4::new(1, 1, 8, 8))
        .push(Flatten::new())
        .push(Linear::new(64, 24, &mut rng))
        .push(ActivationLayer::new(Activation::Sigmoid).with_lut(-8.0, 8.0, 64))
        .push(Linear::new(24, 4, &mut rng));
    let mut trainer = Trainer::new(TrainConfig::default());
    trainer.run(&mut net, 60, |_| {
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        (ds.batch_for_labels(&labels, &mut data_rng), labels)
    });
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let eval = ds.batch_for_labels(&labels, &mut data_rng);
    assert!(trainer.evaluate(&mut net, &eval, &labels) >= 0.75);
}

#[test]
fn compiled_bank_program_matches_functional_network() {
    // The same MLP evaluated (a) by reram-nn in floating point and (b) by
    // the compiled instruction stream on a PIM bank agree to within
    // quantization error.
    let mut rng = init::seeded_rng(21);
    let l1 = Linear::new(6, 10, &mut rng);
    let l2 = Linear::new(10, 3, &mut rng);
    let w1: Matrix = l1.weight().clone();
    let w2: Matrix = l2.weight().clone();
    let mut net = Network::new("mlp", Shape4::new(1, 6, 1, 1))
        .push(l1)
        .push(ActivationLayer::relu())
        .push(l2);

    let mut compiled = CompiledMlp::compile(
        vec![
            FcStage::new(w1, Some(Activation::Relu)),
            FcStage::new(w2, None),
        ],
        &CrossbarConfig::default(),
    )
    .expect("layer stack compiles");

    let x: Vec<f32> = (0..6).map(|i| (i as f32) / 6.0 - 0.4).collect();
    let bank_out = compiled.infer(&x);
    let net_out = net.forward(
        &reram_suite::tensor::Tensor::from_vec(Shape4::new(1, 6, 1, 1), x.clone()),
        false,
    );
    assert_eq!(bank_out.len(), 3);
    for (a, b) in bank_out.iter().zip(net_out.data()) {
        assert!((a - b).abs() < 0.05, "bank {a} vs network {b}");
    }
}
