//! Cross-crate consistency of the architectural models: the accelerator
//! reports must decompose into the pipeline cycle counts, the mapping
//! array totals, and the GPU baseline must interlock sensibly.

use reram_suite::core::accelerator::{PipeLayerAccelerator, ReGanAccelerator};
use reram_suite::core::mapping::{map_network, ReplicationPolicy};
use reram_suite::core::timing::NetworkTiming;
use reram_suite::core::{AcceleratorConfig, PipelineModel, ReganOpt, ReganPipeline};
use reram_suite::gpu::GpuModel;
use reram_suite::nn::models;

#[test]
fn accelerator_cycles_equal_pipeline_formula() {
    let net = models::alexnet_spec();
    let accel = PipeLayerAccelerator::new(AcceleratorConfig::default());
    let report = accel.train_cost(&net, 16, 256);
    let pipe = PipelineModel::new(net.weighted_layer_count(), 16);
    assert_eq!(report.cycles, pipe.training_cycles(256));
}

#[test]
fn accelerator_arrays_equal_mapping_totals() {
    let net = models::vgg_a_spec();
    let cfg = AcceleratorConfig::default();
    let report = PipeLayerAccelerator::new(cfg.clone()).train_cost(&net, 32, 64);
    let total: usize = map_network(&net, &cfg)
        .expect("maps")
        .iter()
        .map(|m| m.arrays)
        .sum();
    assert_eq!(report.arrays, total);
}

#[test]
fn live_network_and_static_spec_cost_the_same() {
    // A functional LeNet's extracted spec must produce the same accelerator
    // cost as the hand-written static spec.
    let mut rng = reram_suite::tensor::init::seeded_rng(1);
    let live = models::lenet(&mut rng).spec();
    let static_spec = models::lenet_spec();
    let accel = PipeLayerAccelerator::new(AcceleratorConfig::default());
    let a = accel.train_cost(&live, 32, 64);
    let b = accel.train_cost(&static_spec, 32, 64);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.arrays, b.arrays);
    assert!((a.time_s - b.time_s).abs() < 1e-12);
}

#[test]
fn regan_cycles_equal_schedule_model() {
    let g = models::dcgan_generator_spec(100, 3, 32);
    let d = models::dcgan_discriminator_spec(3, 32);
    for opt in ReganOpt::ALL {
        let accel = ReGanAccelerator::new(AcceleratorConfig::default(), opt);
        let report = accel.train_cost(&g, &d, 64, 7);
        let pipe = ReganPipeline::new(d.weighted_layer_count(), g.weighted_layer_count(), 64);
        assert_eq!(report.cycles, pipe.total_cycles(7, opt), "{}", opt.name());
    }
}

#[test]
fn timing_arrays_respect_budget_policy() {
    for budget in [32_768usize, 131_072] {
        let cfg =
            AcceleratorConfig::default().with_replication(ReplicationPolicy::ArrayBudget(budget));
        let t = NetworkTiming::analyze(&models::alexnet_spec(), &cfg);
        // AlexNet's unreplicated floor is well under 32K arrays.
        assert!(
            t.total_arrays <= budget,
            "budget {budget} exceeded: {}",
            t.total_arrays
        );
    }
}

#[test]
fn speedup_consistent_with_reported_times() {
    let net = models::mnist_deep_spec();
    let accel = PipeLayerAccelerator::new(AcceleratorConfig::default());
    let report = accel.train_cost(&net, 32, 256);
    let gpu = GpuModel::gtx1080().training_cost(&net, 32).times(8.0);
    let speedup = report.speedup_vs(&gpu);
    assert!((speedup - gpu.time_s / report.time_s).abs() < 1e-9);
    let saving = report.energy_saving_vs(&gpu);
    assert!((saving - gpu.energy_j / report.energy_j).abs() < 1e-9);
}

#[test]
fn inference_pipeline_throughput_approaches_one_per_cycle() {
    let net = models::vgg_a_spec();
    let accel = PipeLayerAccelerator::new(AcceleratorConfig::default());
    let r1 = accel.inference_cost(&net, 1);
    let r1000 = accel.inference_cost(&net, 1000);
    // 1000 inputs cost far less than 1000x one input: the pipeline works.
    assert!(r1000.time_s < 150.0 * r1.time_s);
}

#[test]
fn gan_workload_heavier_than_discriminator_alone() {
    let g = models::dcgan_generator_spec(100, 3, 64);
    let d = models::dcgan_discriminator_spec(3, 64);
    let gpu = GpuModel::gtx1080();
    let gan = gpu.gan_training_cost(&g, &d, 64);
    let d_only = gpu.training_cost(&d, 64);
    let g_only = gpu.training_cost(&g, 64);
    assert!(gan.time_s > d_only.time_s);
    assert!(gan.time_s > g_only.time_s);
}

#[test]
fn larger_networks_never_cheaper_on_either_platform() {
    let small = models::lenet_spec();
    let big = models::vgg_a_spec();
    let accel = PipeLayerAccelerator::new(AcceleratorConfig::default());
    let gpu = GpuModel::gtx1080();
    assert!(accel.train_cost(&big, 32, 64).time_s > accel.train_cost(&small, 32, 64).time_s);
    assert!(gpu.training_cost(&big, 32).time_s > gpu.training_cost(&small, 32).time_s);
    assert!(accel.train_cost(&big, 32, 64).energy_j > accel.train_cost(&small, 32, 64).energy_j);
}
