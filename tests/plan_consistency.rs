//! Consistency of the `ExecutionPlan` lowering pass against its two ground
//! truths: the analytic MAC counts of `NetworkSpec`, and the functional
//! `reram-nn` forward pass for the generalized bank compiler.

use proptest::prelude::*;
use reram_suite::core::{AcceleratorConfig, CompiledNetwork, ExecutionPlan, NetStage};
use reram_suite::crossbar::CrossbarConfig;
use reram_suite::nn::activations::Activation;
use reram_suite::nn::layers::{ActivationLayer, Conv2d, Flatten, Linear, Pool2d};
use reram_suite::nn::{models, LayerSpec, Network, NetworkSpec};
use reram_suite::tensor::{init, Matrix, Shape2, Shape4, Tensor};

fn assert_plan_macs_match(net: &NetworkSpec) {
    let cfg = AcceleratorConfig::default();
    let plan = ExecutionPlan::lower(net, &cfg).expect("plan lowers");
    // Whole-network totals reproduce the spec's analytic counts.
    assert_eq!(plan.forward_macs(), net.forward_macs(), "{}", net.name);
    assert_eq!(plan.training_macs(), net.training_macs(), "{}", net.name);
    // Per weighted layer, the MAC volume factors exactly into the mapped
    // crossbar geometry: MACs = MVMs x rows x cols.
    for l in &plan.layers {
        assert_eq!(
            l.work.forward_macs,
            l.forward_mvms * l.work.crossbar_rows * l.work.crossbar_cols,
            "{} layer {}",
            net.name,
            l.name
        );
    }
    // The weighted layers' MACs account for all crossbar work; the
    // remainder is unweighted routing (pool / activation / batch-norm).
    let weighted: u64 = plan.layers.iter().map(|l| l.work.forward_macs).sum();
    let unweighted: u64 = net
        .layers
        .iter()
        .filter(|l| !l.is_weighted())
        .map(LayerSpec::forward_macs)
        .sum();
    assert_eq!(weighted + unweighted, net.forward_macs(), "{}", net.name);
}

#[test]
fn plan_macs_match_specs_for_all_models() {
    for net in [
        models::lenet_spec(),
        models::mnist_deep_spec(),
        models::alexnet_spec(),
        models::vgg_a_spec(),
        models::googlenet_spec(),
        models::dcgan_generator_spec(100, 3, 64),
        models::dcgan_discriminator_spec(3, 64),
    ] {
        assert_plan_macs_match(&net);
    }
}

proptest! {
    /// The lowering pass conserves MAC totals for every DCGAN geometry.
    #[test]
    fn plan_macs_match_random_dcgan_geometries(
        latent in 8usize..256,
        channels in 1usize..5,
        hw_exp in 4u32..8,
    ) {
        let hw = 1usize << hw_exp;
        assert_plan_macs_match(&models::dcgan_generator_spec(latent, channels, hw));
        assert_plan_macs_match(&models::dcgan_discriminator_spec(channels, hw));
    }
}

#[test]
fn compiled_network_matches_functional_forward_on_small_cnn() {
    // The same CONV + POOL + FC stack evaluated (a) functionally by
    // reram-nn in floating point and (b) as a lowered instruction stream
    // on a PIM bank agree within crossbar quantization error.
    let mut rng = init::seeded_rng(33);
    let conv = Conv2d::new(2, 3, 3, 1, 0, &mut rng);
    let fc = Linear::new(3 * 2 * 2, 4, &mut rng);
    let conv_w: Tensor = conv.weight().clone();
    let fc_w: Matrix = fc.weight().clone();
    let mut net = Network::new("tiny-cnn", Shape4::new(1, 2, 6, 6))
        .push(conv)
        .push(ActivationLayer::relu())
        .push(Pool2d::max(2))
        .push(Flatten::new())
        .push(fc);

    // Kernel tensor (out_c, in_c, k, k) flattened row-major is exactly the
    // (out_c x in_c*k*k) matrix the compiler maps onto a crossbar.
    let conv_mat = Matrix::from_vec(Shape2::new(3, 2 * 3 * 3), conv_w.data().to_vec());
    let mut compiled = CompiledNetwork::compile(
        (2, 6, 6),
        vec![
            NetStage::Conv {
                weights: conv_mat,
                k: 3,
                stride: 1,
                pad: 0,
                activation: Some(Activation::Relu),
            },
            NetStage::MaxPool { k: 2, stride: 2 },
            NetStage::Fc {
                weights: fc_w,
                activation: None,
            },
        ],
        &CrossbarConfig::default(),
    )
    .expect("stack compiles");
    assert_eq!(compiled.output_len(), 4);

    for seed in 0..3 {
        let x: Vec<f32> = (0..72)
            .map(|i| (((i + seed * 11) % 9) as f32 - 4.0) / 9.0)
            .collect();
        let bank_out = compiled.forward(&x);
        let net_out = net.forward(&Tensor::from_vec(Shape4::new(1, 2, 6, 6), x.clone()), false);
        assert_eq!(bank_out.len(), net_out.data().len());
        for (a, b) in bank_out.iter().zip(net_out.data()) {
            assert!((a - b).abs() < 0.1, "bank {a} vs network {b}");
        }
    }
}
