//! Property-based tests (proptest) on the core invariants of the stack.

use proptest::prelude::*;
use reram_suite::core::{PipelineModel, ReganOpt, ReganPipeline};
use reram_suite::crossbar::quant::{differential_split, slice_magnitude, unslice, Quantizer};
use reram_suite::crossbar::{CrossbarConfig, TiledMatrix};
use reram_suite::tensor::{ops, Matrix, Shape2, Shape4, Tensor};

proptest! {
    /// Quantize → dequantize error is bounded by half an LSB for in-range
    /// values.
    #[test]
    fn quantizer_round_trip_bounded(x in -10.0f32..10.0, bits in 4u32..17) {
        let q = Quantizer::fit(bits, 10.0);
        let err = (q.dequantize(q.quantize(x)) - x).abs();
        prop_assert!(err <= q.max_error() * 1.01, "err {err} > {}", q.max_error());
    }

    /// Bit slicing is a bijection on in-range magnitudes.
    #[test]
    fn slice_unslice_identity(mag in 0u64..65536, cell_bits in 1u32..9) {
        let slices = mag.div_ceil(1).max(1); // placeholder to satisfy range math
        let _ = slices;
        let n = (16u32.div_ceil(cell_bits)) as usize + 1;
        let s = slice_magnitude(mag, cell_bits, n);
        prop_assert_eq!(unslice(&s, cell_bits), mag);
        for v in &s {
            prop_assert!(*v < (1 << cell_bits));
        }
    }

    /// The differential split reconstructs the signed code.
    #[test]
    fn differential_split_reconstructs(q in -100_000i64..100_000) {
        let (p, n) = differential_split(q);
        prop_assert_eq!(p as i64 - n as i64, q);
        prop_assert!(p == 0 || n == 0);
    }

    /// The tiled crossbar MVM tracks the exact product within quantization
    /// error on random matrices and vectors.
    #[test]
    fn tiled_mvm_tracks_exact(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in 0u64..1000,
    ) {
        let w = Matrix::from_fn(Shape2::new(rows, cols), |r, c| {
            let k = (seed as usize).wrapping_add(r * 31 + c * 17) % 41;
            (k as f32 - 20.0) / 20.0
        });
        let x: Vec<f32> = (0..cols)
            .map(|i| (((seed as usize + i * 13) % 23) as f32 - 11.0) / 11.0)
            .collect();
        let cfg = CrossbarConfig { rows: 16, cols: 32, ..CrossbarConfig::default() };
        let mut t = TiledMatrix::program(&w, &cfg);
        let got = t.matvec(&x);
        let want = w.matvec(&x);
        for (g, e) in got.iter().zip(&want) {
            // Error budget: weight LSB + input LSB accumulated over cols.
            let tol = 0.002 * cols as f32 + 0.01;
            prop_assert!((g - e).abs() <= tol, "{g} vs {e} (tol {tol})");
        }
    }

    /// crop ∘ zero_pad is the identity for any tensor.
    #[test]
    fn pad_crop_identity(
        n in 1usize..3, c in 1usize..4, h in 1usize..6, w in 1usize..6, pad in 0usize..4,
    ) {
        let t = Tensor::from_fn(Shape4::new(n, c, h, w), |a, b, cc, d| {
            (a * 7 + b * 5 + cc * 3 + d) as f32
        });
        prop_assert_eq!(ops::crop(&ops::zero_pad(&t, pad), pad), t);
    }

    /// Dilation preserves the element sum and scales the extent correctly.
    #[test]
    fn dilate_preserves_mass(
        h in 1usize..6, w in 1usize..6, stride in 1usize..4,
    ) {
        let t = Tensor::from_fn(Shape4::new(1, 2, h, w), |_, c, y, x| {
            (c + y * w + x) as f32
        });
        let d = ops::dilate(&t, stride);
        prop_assert!((d.sum() - t.sum()).abs() < 1e-3);
        prop_assert_eq!(d.shape().h, (h - 1) * stride + 1);
    }

    /// Convolution linearity: conv(a·x) = a·conv(x).
    #[test]
    fn conv_is_linear(scale in -2.0f32..2.0, seed in 0u64..100) {
        let x = Tensor::from_fn(Shape4::new(1, 2, 5, 5), |_, c, h, w| {
            ((seed as usize + c * 11 + h * 3 + w) % 7) as f32 / 7.0
        });
        let k = Tensor::from_fn(Shape4::new(3, 2, 3, 3), |o, c, h, w| {
            ((o * 13 + c * 5 + h + w) % 5) as f32 / 5.0 - 0.4
        });
        let y1 = ops::conv2d(&x.map(|v| v * scale), &k, None, 1, 1);
        let y2 = ops::conv2d(&x, &k, None, 1, 1).map(|v| v * scale);
        prop_assert!(y1.squared_distance(&y2) < 1e-3);
    }

    /// The pipeline simulator always equals the paper's closed form.
    #[test]
    fn pipeline_sim_equals_formula(l in 1usize..20, b in 1usize..65, batches in 1u64..6) {
        let p = PipelineModel::new(l, b);
        let n = batches * b as u64;
        prop_assert_eq!(p.simulate_training(n).total_cycles, p.training_cycles(n));
    }

    /// Pipelined training never exceeds sequential training in cycles.
    #[test]
    fn pipeline_never_slower(l in 1usize..20, b in 1usize..65) {
        let p = PipelineModel::new(l, b);
        let n = 4 * b as u64;
        prop_assert!(p.training_cycles(n) <= p.sequential_training_cycles(n));
    }

    /// ReGAN schedule simulation equals the closed forms at every level,
    /// and each optimization level is at least as fast as the previous.
    ///
    /// The no-pipeline → pipeline step is only claimed for `B >= 2`: with a
    /// batch of one there is nothing to overlap, and the paper's pipelined
    /// formulas still pay their explicit weight-update cycles while the
    /// no-pipeline formulas fold updates into the per-input counts.
    #[test]
    fn regan_sim_and_monotonicity(l_d in 1usize..12, l_g in 1usize..12, b in 2usize..130) {
        let p = ReganPipeline::new(l_d, l_g, b);
        let mut prev = u64::MAX;
        for opt in ReganOpt::ALL {
            prop_assert_eq!(p.simulate_iteration(opt), p.iteration_cycles(opt));
            let c = p.iteration_cycles(opt);
            prop_assert!(c <= prev, "{} regressed: {c} > {prev}", opt.name());
            prev = c;
        }
    }

    /// SP and CS help at every batch size, including B = 1 (they exploit
    /// hardware duplication and path sharing, not batch overlap).
    #[test]
    fn regan_sp_cs_help_even_at_batch_one(l_d in 1usize..12, l_g in 1usize..12, b in 1usize..130) {
        let p = ReganPipeline::new(l_d, l_g, b);
        prop_assert!(
            p.iteration_cycles(ReganOpt::PipelineSp) < p.iteration_cycles(ReganOpt::Pipeline)
        );
        prop_assert!(
            p.iteration_cycles(ReganOpt::PipelineSpCs) < p.iteration_cycles(ReganOpt::PipelineSp)
        );
    }

    /// Max pooling backward routes exactly the upstream gradient mass.
    #[test]
    fn max_pool_gradient_mass(h in 2usize..8, seed in 0u64..50) {
        let t = Tensor::from_fn(Shape4::new(1, 1, 2 * h, 2 * h), |_, _, y, x| {
            ((seed as usize + y * 31 + x * 17) % 97) as f32
        });
        let (y, idx) = ops::max_pool2d(&t, 2, 2);
        let g = Tensor::from_fn(y.shape(), |_, _, a, b| (a + b) as f32 + 1.0);
        let gin = ops::max_pool2d_backward(&g, &idx);
        prop_assert!((gin.sum() - g.sum()).abs() < 1e-3);
    }

    /// FC forward/backward gradient consistency on random sizes.
    #[test]
    fn linear_backward_shapes(batch in 1usize..5, fin in 1usize..10, fout in 1usize..10) {
        let x = Matrix::from_fn(Shape2::new(batch, fin), |r, c| (r + c) as f32 * 0.1);
        let w = Matrix::from_fn(Shape2::new(fout, fin), |r, c| (r as f32 - c as f32) * 0.1);
        let y = ops::linear(&x, &w, None);
        prop_assert_eq!(y.shape(), Shape2::new(batch, fout));
        let g = Matrix::from_fn(y.shape(), |_, _| 1.0);
        prop_assert_eq!(ops::linear_backward_input(&g, &w).shape(), x.shape());
        prop_assert_eq!(ops::linear_backward_weight(&g, &x).shape(), w.shape());
    }
}
