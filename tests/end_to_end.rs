//! Workspace-spanning functional tests: datasets → networks → training,
//! with and without the crossbar execution backend.

use reram_suite::crossbar::CrossbarConfig;
use reram_suite::datasets::Dataset;
use reram_suite::nn::backend::LinearEngine;
use reram_suite::nn::layers::{ActivationLayer, Conv2d, Flatten, Linear, Pool2d};
use reram_suite::nn::losses::accuracy;
use reram_suite::nn::{models, Network};
use reram_suite::tensor::{init, Shape4};

/// Builds a small CNN, optionally with crossbar-backed weighted layers.
fn build_cnn(crossbar: bool, seed: u64) -> Network {
    let mut rng = init::seeded_rng(seed);
    let engine = || {
        if crossbar {
            LinearEngine::crossbar(CrossbarConfig::default())
        } else {
            LinearEngine::float()
        }
    };
    Network::new("cnn", Shape4::new(1, 1, 12, 12))
        .push(Conv2d::new(1, 6, 3, 1, 1, &mut rng).with_engine(engine()))
        .push(ActivationLayer::relu())
        .push(Pool2d::max(2))
        .push(Flatten::new())
        .push(Linear::new(6 * 6 * 6, 4, &mut rng).with_engine(engine()))
}

fn train_and_eval(crossbar: bool) -> f32 {
    let ds = Dataset::mnist_like().with_resolution(12);
    let mut net = build_cnn(crossbar, 3);
    let mut rng = init::seeded_rng(4);
    for step in 0..40 {
        let labels: Vec<usize> = (0..8).map(|i| (step * 8 + i) % 4).collect();
        let x = ds.batch_for_labels(&labels, &mut rng);
        let _ = net.train_batch(&x, &labels, 0.05);
    }
    // Held-out evaluation batch.
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let x = ds.batch_for_labels(&labels, &mut rng);
    let logits = net.forward(&x, false);
    accuracy(&logits, &labels)
}

#[test]
fn float_training_learns_synthetic_mnist() {
    let acc = train_and_eval(false);
    assert!(acc >= 0.75, "float accuracy {acc} below 0.75 (chance 0.25)");
}

#[test]
fn crossbar_backed_training_learns_synthetic_mnist() {
    // The paper's whole point: the same training loop works with every
    // forward product computed by quantized, spike-coded ReRAM crossbars.
    let acc = train_and_eval(true);
    assert!(
        acc >= 0.75,
        "crossbar accuracy {acc} below 0.75 (chance 0.25)"
    );
}

#[test]
fn full_crossbar_training_with_backward_on_crossbars() {
    // PipeLayer's complete training datapath for the FC layer: forward AND
    // error back-propagation both through crossbar grids (the backward one
    // holding the transposed weights).
    let ds = Dataset::mnist_like().with_resolution(12);
    let mut rng = init::seeded_rng(31);
    let mut net = {
        let mut r = init::seeded_rng(3);
        Network::new("full-crossbar", Shape4::new(1, 1, 12, 12))
            .push(
                Conv2d::new(1, 6, 3, 1, 1, &mut r)
                    .with_engine(LinearEngine::crossbar(CrossbarConfig::default())),
            )
            .push(ActivationLayer::relu())
            .push(Pool2d::max(2))
            .push(Flatten::new())
            .push(
                Linear::new(6 * 6 * 6, 4, &mut r)
                    .with_engine(LinearEngine::crossbar_full(CrossbarConfig::default())),
            )
    };
    for step in 0..40 {
        let labels: Vec<usize> = (0..8).map(|i| (step * 8 + i) % 4).collect();
        let x = ds.batch_for_labels(&labels, &mut rng);
        let _ = net.train_batch(&x, &labels, 0.05);
    }
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let x = ds.batch_for_labels(&labels, &mut rng);
    let acc = accuracy(&net.forward(&x, false), &labels);
    assert!(acc >= 0.75, "full-crossbar accuracy {acc} (chance 0.25)");
}

#[test]
fn crossbar_and_float_agree_before_training() {
    let ds = Dataset::mnist_like().with_resolution(12);
    let mut rng = init::seeded_rng(9);
    let (x, _) = ds.batch(4, &mut rng);
    let mut float = build_cnn(false, 42);
    let mut xbar = build_cnn(true, 42);
    let yf = float.forward(&x, false);
    let yc = xbar.forward(&x, false);
    let rms = (yf.squared_distance(&yc) / yf.len() as f32).sqrt();
    assert!(rms < 0.02, "crossbar deviates from float: rms {rms}");
}

#[test]
fn lenet_trains_on_full_mnist_shape() {
    let ds = Dataset::mnist_like();
    let mut rng = init::seeded_rng(5);
    let mut net = models::lenet(&mut rng);
    let labels: Vec<usize> = (0..4).map(|i| i % 2).collect();
    let x = ds.batch_for_labels(&labels, &mut rng);
    // lr 0.05 sits on LeNet's stability boundary for this tiny batch: whether
    // the loss decreases depends on the exact initialization draw. 0.02
    // converges with wide margin across seeds.
    let (first, _) = net.train_batch(&x, &labels, 0.02);
    let mut last = first;
    for _ in 0..10 {
        let (l, _) = net.train_batch(&x, &labels, 0.02);
        last = l;
    }
    assert!(
        last < first,
        "LeNet loss did not decrease: {first} -> {last}"
    );
}

#[test]
fn gan_trains_on_synthetic_images() {
    let ds = Dataset::mnist_like().with_resolution(16);
    let mut rng = init::seeded_rng(6);
    let mut gan = models::dcgan(16, 4, 1, 16, &mut rng);
    let mut last = None;
    for _ in 0..10 {
        let real = ds.unlabeled_batch(8, &mut rng);
        last = Some(gan.train_step(&real, 0.02, &mut rng));
    }
    let stats = last.expect("trained");
    assert!(stats.d_loss_real.is_finite());
    assert!(stats.g_loss.is_finite());
    // Generated images stay in tanh range.
    let z = gan.sample_latent(4, &mut rng);
    let fake = gan.generate(&z);
    assert!(fake.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    assert_eq!(fake.shape(), Shape4::new(4, 1, 16, 16));
}

#[test]
fn noisy_crossbar_still_classifies() {
    // Device variation + read noise at realistic levels must not destroy
    // the classifier (graceful degradation, not collapse).
    let ds = Dataset::mnist_like().with_resolution(12);
    let mut rng = init::seeded_rng(8);
    let noisy = CrossbarConfig::default().with_noise(0.02, 0.02, 77);
    let mut net = {
        let mut r = init::seeded_rng(3);
        Network::new("noisy", Shape4::new(1, 1, 12, 12))
            .push(
                Conv2d::new(1, 6, 3, 1, 1, &mut r)
                    .with_engine(LinearEngine::crossbar(noisy.clone())),
            )
            .push(ActivationLayer::relu())
            .push(Pool2d::max(2))
            .push(Flatten::new())
            .push(Linear::new(6 * 6 * 6, 4, &mut r).with_engine(LinearEngine::crossbar(noisy)))
    };
    for step in 0..40 {
        let labels: Vec<usize> = (0..8).map(|i| (step * 8 + i) % 4).collect();
        let x = ds.batch_for_labels(&labels, &mut rng);
        let _ = net.train_batch(&x, &labels, 0.05);
    }
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let x = ds.batch_for_labels(&labels, &mut rng);
    let acc = accuracy(&net.forward(&x, false), &labels);
    assert!(acc >= 0.5, "noisy crossbar accuracy {acc} (chance 0.25)");
}
