#!/usr/bin/env bash
# Static checks for the first-party crates: formatting and lints.
#
# Offline-tolerant: runs with --offline against the in-repo vendor/ crates,
# and each tool is skipped with a notice when its rustup component is not
# installed (e.g. a minimal CI image), rather than failing the script.
#
# Vendored dependency stand-ins under vendor/ are workspace members but are
# intentionally NOT checked here: they mirror upstream-crate idioms, not this
# repository's style.
set -u

cd "$(dirname "$0")/.."

FIRST_PARTY=(
    reram-suite
    reram-tensor
    reram-telemetry
    reram-crossbar
    reram-nn
    reram-datasets
    reram-gpu
    reram-core
    reram-serve
    reram-bench
    reram-lint
)

status=0

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    for pkg in "${FIRST_PARTY[@]}"; do
        cargo fmt -p "$pkg" --check || status=1
    done
else
    echo "== rustfmt not installed; skipping format check =="
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy -D warnings =="
    pkg_flags=()
    for pkg in "${FIRST_PARTY[@]}"; do
        pkg_flags+=(-p "$pkg")
    done
    cargo clippy --offline --all-targets "${pkg_flags[@]}" -- -D warnings || status=1
else
    echo "== clippy not installed; skipping lint check =="
fi

echo "== reram-lint (architectural invariants) =="
cargo run --offline -q -p reram-lint || status=1

echo "== reram-lint --plans (lowered-plan invariants) =="
cargo run --offline -q -p reram-lint -- --plans || status=1

echo "== cargo build --examples =="
cargo build --offline -q --examples || status=1

if rustdoc --version >/dev/null 2>&1; then
    echo "== cargo doc -D warnings =="
    pkg_flags=()
    for pkg in "${FIRST_PARTY[@]}"; do
        pkg_flags+=(-p "$pkg")
    done
    RUSTDOCFLAGS="-D warnings" cargo doc --offline -q --no-deps "${pkg_flags[@]}" || status=1
else
    echo "== rustdoc not installed; skipping doc check =="
fi

if [ "$status" -ne 0 ]; then
    echo "checks FAILED"
else
    echo "checks passed"
fi
exit $status
