//! Synthetic stand-ins for the paper's benchmark datasets.
//!
//! PipeLayer evaluates on MNIST and ImageNet; ReGAN on MNIST, cifar-10,
//! celebA and LSUN (§III-C). We cannot ship those datasets, and the
//! accelerator's cycle/energy behaviour depends only on tensor *shapes* and
//! layer topology — never on pixel values — so each dataset is replaced by a
//! deterministic generator producing images of the matching shape with a
//! separable class structure (fixed per-class prototype patterns plus
//! noise). Functional experiments still train end-to-end: classifiers reach
//! high accuracy and GANs converge on these sets, exercising the identical
//! code paths. The substitution is recorded in DESIGN.md.
//!
//! # Example
//!
//! ```
//! use reram_datasets::Dataset;
//! use reram_tensor::init::seeded_rng;
//!
//! let ds = Dataset::mnist_like();
//! let mut rng = seeded_rng(0);
//! let (images, labels) = ds.batch(4, &mut rng);
//! assert_eq!(images.shape().n, 4);
//! assert_eq!(labels.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
use reram_tensor::{init, Shape4, Tensor};

/// Which of the paper's datasets a generator mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// MNIST \[21\]: 1×28×28 grayscale digits, 10 classes.
    Mnist,
    /// cifar-10 \[23\]: 3×32×32 colour images, 10 classes.
    Cifar10,
    /// celebA \[24\]: 3×64×64 face crops (2 attribute classes here).
    CelebA,
    /// LSUN \[25\]: 3×64×64 scene images (10 scene classes).
    Lsun,
    /// ImageNet \[22\]: 3×224×224, 1000 classes.
    ImageNet,
}

/// A deterministic synthetic dataset with class-conditional structure.
///
/// Class `c`'s samples are a fixed low-frequency prototype pattern (derived
/// from the dataset seed and `c`) plus i.i.d. noise, clamped to `[-1, 1]`.
/// Prototypes are mutually distinct, so the classes are separable and
/// training demonstrably converges.
#[derive(Debug, Clone)]
pub struct Dataset {
    kind: DatasetKind,
    shape: Shape4,
    classes: usize,
    seed: u64,
    noise: f32,
}

impl Dataset {
    /// Creates a generator for the given dataset kind with default seed.
    pub fn new(kind: DatasetKind) -> Self {
        let (shape, classes) = match kind {
            DatasetKind::Mnist => (Shape4::new(1, 1, 28, 28), 10),
            DatasetKind::Cifar10 => (Shape4::new(1, 3, 32, 32), 10),
            DatasetKind::CelebA => (Shape4::new(1, 3, 64, 64), 2),
            DatasetKind::Lsun => (Shape4::new(1, 3, 64, 64), 10),
            DatasetKind::ImageNet => (Shape4::new(1, 3, 224, 224), 1000),
        };
        Self {
            kind,
            shape,
            classes,
            seed: 0x5eed,
            noise: 0.25,
        }
    }

    /// MNIST-shaped generator.
    pub fn mnist_like() -> Self {
        Self::new(DatasetKind::Mnist)
    }

    /// cifar-10-shaped generator.
    pub fn cifar10_like() -> Self {
        Self::new(DatasetKind::Cifar10)
    }

    /// celebA-shaped generator.
    pub fn celeba_like() -> Self {
        Self::new(DatasetKind::CelebA)
    }

    /// LSUN-shaped generator.
    pub fn lsun_like() -> Self {
        Self::new(DatasetKind::Lsun)
    }

    /// ImageNet-shaped generator.
    pub fn imagenet_like() -> Self {
        Self::new(DatasetKind::ImageNet)
    }

    /// Same dataset downscaled to `hw × hw` images (for fast functional
    /// runs; cost experiments use the native shape).
    ///
    /// # Panics
    ///
    /// Panics if `hw == 0`.
    pub fn with_resolution(mut self, hw: usize) -> Self {
        assert!(hw > 0, "zero resolution");
        self.shape = Shape4::new(1, self.shape.c, hw, hw);
        self
    }

    /// Same dataset with a different generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same dataset with a different per-sample noise amplitude.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative.
    pub fn with_noise(mut self, noise: f32) -> Self {
        assert!(noise >= 0.0, "negative noise amplitude");
        self.noise = noise;
        self
    }

    /// The mimicked dataset.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Per-entry image shape.
    pub fn image_shape(&self) -> Shape4 {
        self.shape
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The fixed prototype image of class `c`.
    ///
    /// A smooth pseudo-random pattern: two spatial sinusoids whose
    /// frequencies and phases are derived from `(seed, c, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.classes()`.
    pub fn prototype(&self, c: usize) -> Tensor {
        assert!(c < self.classes, "class {c} out of range {}", self.classes);
        let s = self.shape;
        Tensor::from_fn(s, |_, ch, h, w| {
            let key = self
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(((c as u64) << 32) | ch as u64);
            let fx = 1.0 + (key % 5) as f32;
            let fy = 1.0 + ((key >> 8) % 5) as f32;
            let phase = ((key >> 16) % 628) as f32 / 100.0;
            let u = h as f32 / s.h as f32;
            let v = w as f32 / s.w as f32;
            0.7 * ((fx * u * std::f32::consts::TAU + phase).sin()
                * (fy * v * std::f32::consts::TAU + 0.5 * phase).cos())
        })
    }

    /// Draws a labelled batch: `(images, labels)` with labels uniform over
    /// the classes.
    pub fn batch(&self, batch: usize, rng: &mut impl Rng) -> (Tensor, Vec<usize>) {
        let labels: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..self.classes)).collect();
        let images = self.batch_for_labels(&labels, rng);
        (images, labels)
    }

    /// Draws samples of specific classes.
    ///
    /// # Panics
    ///
    /// Panics if any label is out of range.
    pub fn batch_for_labels(&self, labels: &[usize], rng: &mut impl Rng) -> Tensor {
        let parts: Vec<Tensor> = labels
            .iter()
            .map(|&c| {
                let mut img = self.prototype(c);
                if self.noise > 0.0 {
                    let noise = init::normal(self.shape, self.noise, rng);
                    img += &noise;
                }
                img.map_inplace(|v| v.clamp(-1.0, 1.0));
                img
            })
            .collect();
        Tensor::stack_batches(&parts)
    }

    /// Draws an unlabelled batch (GAN training data).
    pub fn unlabeled_batch(&self, batch: usize, rng: &mut impl Rng) -> Tensor {
        self.batch(batch, rng).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_tensor::init::seeded_rng;

    #[test]
    fn shapes_match_paper_datasets() {
        assert_eq!(
            Dataset::mnist_like().image_shape(),
            Shape4::new(1, 1, 28, 28)
        );
        assert_eq!(
            Dataset::cifar10_like().image_shape(),
            Shape4::new(1, 3, 32, 32)
        );
        assert_eq!(
            Dataset::celeba_like().image_shape(),
            Shape4::new(1, 3, 64, 64)
        );
        assert_eq!(
            Dataset::lsun_like().image_shape(),
            Shape4::new(1, 3, 64, 64)
        );
        assert_eq!(
            Dataset::imagenet_like().image_shape(),
            Shape4::new(1, 3, 224, 224)
        );
        assert_eq!(Dataset::imagenet_like().classes(), 1000);
    }

    #[test]
    fn batch_shape_and_labels_in_range() {
        let ds = Dataset::mnist_like();
        let mut rng = seeded_rng(1);
        let (x, y) = ds.batch(8, &mut rng);
        assert_eq!(x.shape(), Shape4::new(8, 1, 28, 28));
        assert_eq!(y.len(), 8);
        assert!(y.iter().all(|&c| c < 10));
    }

    #[test]
    fn values_clamped_to_unit_range() {
        let ds = Dataset::cifar10_like().with_noise(2.0);
        let mut rng = seeded_rng(2);
        let (x, _) = ds.batch(4, &mut rng);
        assert!(x.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn prototypes_are_distinct() {
        let ds = Dataset::mnist_like();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let d = ds.prototype(a).squared_distance(&ds.prototype(b));
                assert!(d > 1.0, "classes {a} and {b} overlap (d={d})");
            }
        }
    }

    #[test]
    fn same_class_samples_cluster_near_prototype() {
        let ds = Dataset::mnist_like();
        let mut rng = seeded_rng(3);
        let x = ds.batch_for_labels(&[3, 3], &mut rng);
        let proto = ds.prototype(3);
        let per_pixel_a = x.batch_entry(0).squared_distance(&proto) / proto.len() as f32;
        // Noise sigma 0.25 -> expected per-pixel squared distance ~0.0625.
        assert!(
            per_pixel_a < 0.2,
            "sample too far from prototype: {per_pixel_a}"
        );
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let ds = Dataset::lsun_like();
        let (a, la) = ds.batch(3, &mut seeded_rng(7));
        let (b, lb) = ds.batch(3, &mut seeded_rng(7));
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::mnist_like().with_seed(1).prototype(0);
        let b = Dataset::mnist_like().with_seed(2).prototype(0);
        assert!(a.squared_distance(&b) > 0.1);
    }

    #[test]
    fn resolution_override() {
        let ds = Dataset::celeba_like().with_resolution(16);
        assert_eq!(ds.image_shape(), Shape4::new(1, 3, 16, 16));
        let mut rng = seeded_rng(4);
        assert_eq!(
            ds.unlabeled_batch(2, &mut rng).shape(),
            Shape4::new(2, 3, 16, 16)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prototype_rejects_bad_class() {
        let _ = Dataset::mnist_like().prototype(10);
    }

    #[test]
    fn a_classifier_can_learn_this_data() {
        // End-to-end separability proof: logistic regression on two MNIST
        // classes reaches perfect training accuracy within a few steps.
        fn sigmoid(z: f32) -> f32 {
            1.0 / (1.0 + (-z).exp())
        }
        let ds = Dataset::mnist_like().with_resolution(8);
        let mut rng = seeded_rng(5);
        let mut weights = vec![0.0f32; 64];
        let mut bias = 0.0f32;
        let mut acc = 0.0;
        for _ in 0..60 {
            let x = ds.batch_for_labels(&[0, 1], &mut rng);
            let mut correct = 0;
            for (i, target) in [0.0f32, 1.0].iter().enumerate() {
                let img = x.batch_entry(i);
                let z: f32 = img
                    .data()
                    .iter()
                    .zip(&weights)
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
                    + bias;
                let p = sigmoid(z);
                if (p > 0.5) == (*target > 0.5) {
                    correct += 1;
                }
                let g = p - target;
                for (w, &xv) in weights.iter_mut().zip(img.data()) {
                    *w -= 0.5 * g * xv;
                }
                bias -= 0.5 * g;
            }
            acc = correct as f32 / 2.0;
        }
        assert_eq!(acc, 1.0, "synthetic classes must be separable");
    }
}
