//! Classification metrics beyond plain accuracy.

use reram_tensor::Tensor;

/// A confusion matrix over `classes` classes: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(actual, predicted)` pair.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(
            actual < self.classes && predicted < self.classes,
            "labels ({actual}, {predicted}) out of range {}",
            self.classes
        );
        self.counts[actual * self.classes + predicted] += 1;
    }

    /// Records a whole batch from logits and labels.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn record_batch(&mut self, logits: &Tensor, labels: &[usize]) {
        let s = logits.shape();
        assert_eq!(labels.len(), s.n, "one label per batch entry");
        assert_eq!(s.c, self.classes, "logit classes vs matrix classes");
        for (n, &actual) in labels.iter().enumerate() {
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for c in 0..s.c {
                let v = logits.at(n, c, 0, 0);
                if v > best_v {
                    best_v = v;
                    best = c;
                }
            }
            self.record(actual, best);
        }
    }

    /// Count at `(actual, predicted)`.
    pub fn at(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.classes + predicted]
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.at(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Precision of class `c` (`TP / (TP + FP)`; 0 when never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: u64 = (0..self.classes).map(|a| self.at(a, c)).sum();
        if predicted == 0 {
            0.0
        } else {
            self.at(c, c) as f64 / predicted as f64
        }
    }

    /// Recall of class `c` (`TP / (TP + FN)`; 0 when never present).
    pub fn recall(&self, c: usize) -> f64 {
        let actual: u64 = (0..self.classes).map(|p| self.at(c, p)).sum();
        if actual == 0 {
            0.0
        } else {
            self.at(c, c) as f64 / actual as f64
        }
    }
}

/// Fraction of entries whose label ranks in the top `k` logits.
///
/// # Panics
///
/// Panics if `k == 0`, shapes disagree, or a label is out of range.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert!(k > 0, "k must be positive");
    let s = logits.shape();
    assert_eq!(labels.len(), s.n, "one label per batch entry");
    let mut hits = 0usize;
    for (n, &label) in labels.iter().enumerate() {
        assert!(label < s.c, "label {label} out of range {}", s.c);
        let target = logits.at(n, label, 0, 0);
        let better = (0..s.c).filter(|&c| logits.at(n, c, 0, 0) > target).count();
        hits += (better < k) as usize;
    }
    hits as f32 / s.n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_tensor::Shape4;

    #[test]
    fn confusion_counts_and_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 2);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.at(0, 1), 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn precision_and_recall() {
        let mut cm = ConfusionMatrix::new(2);
        // actual 0: predicted 0 twice, predicted 1 once.
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        // actual 1: predicted 1 once.
        cm.record(1, 1);
        assert!((cm.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(1) - 0.5).abs() < 1e-12);
        assert!((cm.precision(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_metrics_are_zero() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(0), 0.0);
        assert_eq!(cm.recall(3), 0.0);
    }

    #[test]
    fn record_batch_uses_argmax() {
        let logits = Tensor::from_vec(Shape4::new(2, 3, 1, 1), vec![0.1, 0.9, 0.0, 0.8, 0.1, 0.1]);
        let mut cm = ConfusionMatrix::new(3);
        cm.record_batch(&logits, &[1, 2]);
        assert_eq!(cm.at(1, 1), 1); // correct
        assert_eq!(cm.at(2, 0), 1); // actual 2 predicted 0
    }

    #[test]
    fn top_k() {
        let logits = Tensor::from_vec(Shape4::new(1, 4, 1, 1), vec![0.4, 0.3, 0.2, 0.1]);
        assert_eq!(top_k_accuracy(&logits, &[0], 1), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[1], 1), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[1], 2), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[3], 4), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_rejects_bad_label() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
