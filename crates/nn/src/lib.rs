//! Neural-network substrate with full training support.
//!
//! Implements every layer type the paper's workloads use (§II-A): CONV,
//! POOL (max and average), inner-product/FC, ReLU and friends, batch
//! normalization (including the *virtual* batch normalization ReGAN builds
//! into its wordline drivers, Fig. 10 Ⓐ), and the fractional-strided
//! convolution of GAN generators (Fig. 7) — each with both a forward and a
//! backward pass, because the paper's contribution is accelerating
//! *training*, not just inference.
//!
//! On top of the layers sit:
//!
//! * [`Network`] — a sequential model with forward, backward and
//!   batch-accumulated weight updates (the paper's semantics: "the weight
//!   updates due to each input are stored and only applied at the end of a
//!   batch", §III-A.2),
//! * [`Gan`] — the two-network Generator/Discriminator system of §II-A.3
//!   with the exact D-on-real / D-on-fake / G training phases of Fig. 8,
//! * [`models`] — the model zoo (LeNet-like, MLP, VGG-like, DCGAN),
//! * [`spec`] — geometry descriptions of networks consumed by the
//!   accelerator and GPU cost models,
//! * [`backend`] — optional ReRAM-crossbar-backed execution of the
//!   matrix-multiply layers, closing the loop between the functional model
//!   and the hardware substrate.
//!
//! # Example
//!
//! ```
//! use reram_nn::{models, losses::softmax_cross_entropy};
//! use reram_tensor::{Shape4, Tensor, init};
//!
//! let mut rng = init::seeded_rng(1);
//! let mut net = models::mlp(4, &[8], 3, &mut rng);
//! let x = Tensor::ones(Shape4::new(2, 4, 1, 1));
//! let y = net.forward(&x, true);
//! assert_eq!(y.shape(), Shape4::new(2, 3, 1, 1));
//! let (loss, grad) = softmax_cross_entropy(&y, &[0, 2]);
//! assert!(loss > 0.0);
//! net.backward(&grad);
//! net.apply_update(0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Dense matrix/tensor kernels index multiple arrays by the same
// coordinate; explicit index loops read closer to the paper's
// equations than iterator chains would.
#![allow(clippy::needless_range_loop)]

pub mod activations;
pub mod backend;
pub mod gan;
pub mod layers;
pub mod losses;
pub mod metrics;
pub mod models;
pub mod network;
pub mod spec;
pub mod trainer;

pub use gan::{Gan, GanStepStats};
pub use network::Network;
pub use spec::{LayerKind, LayerSpec, LayerWork, NetworkSpec};
pub use trainer::{TrainConfig, TrainHistory, Trainer};

use reram_tensor::{Shape4, Tensor};

/// Classification of a layer for architectural cost mapping.
///
/// The accelerator schedules work per *weighted* layer (the rectangles of
/// the paper's Fig. 5); auxiliary layers (activation, pooling, norm) fuse
/// into the preceding weighted layer's pipeline stage, mirroring how
/// PipeLayer's morphable subarrays contain the activation/pooling
/// peripherals (§III-A.3 (c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerClass {
    /// Holds weights on crossbars (CONV, FC, fractional-strided CONV).
    Weighted,
    /// Fused peripheral computation (activation, pooling, flatten, norm).
    Auxiliary,
}

/// A differentiable network layer.
///
/// `forward` caches whatever the matching `backward` needs; `backward`
/// consumes the most recent forward state and *accumulates* parameter
/// gradients (batched update semantics). `apply_update` performs the SGD
/// step and clears the accumulators — the "one cycle to update all weights
/// within the batch" of §III-A.2.
pub trait Layer: std::fmt::Debug {
    /// Human-readable layer kind, e.g. `"conv"`.
    fn name(&self) -> &'static str;

    /// Whether the layer holds crossbar-mapped weights.
    fn class(&self) -> LayerClass;

    /// Runs the layer forward. `train` enables training-only behaviour
    /// (batch statistics collection, activation caching).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out`, returning the gradient w.r.t. the input
    /// and accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward` in training
    /// mode or with a gradient of the wrong shape.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Applies accumulated gradients with learning rate `lr` (scaled by the
    /// caller for batch averaging) and clears them.
    fn apply_update(&mut self, _lr: f32) {}

    /// Discards accumulated gradients without applying them.
    fn zero_grad(&mut self) {}

    /// Clamps every trainable parameter to `[-limit, limit]`.
    ///
    /// Used by WGAN critic training (weight clipping enforces the Lipschitz
    /// constraint — paper reference \[11\]); a no-op for parameterless layers.
    fn clip_weights(&mut self, _limit: f32) {}

    /// Sets the momentum coefficient used by subsequent `apply_update`
    /// calls (`0.0` = plain SGD). A no-op for parameterless layers.
    fn set_momentum(&mut self, _mu: f32) {}

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Output shape for a given input shape.
    fn output_shape(&self, input: Shape4) -> Shape4;

    /// Geometry description used by the architectural cost models, if the
    /// layer is architecturally visible.
    fn spec(&self, input: Shape4) -> Option<LayerSpec>;
}
