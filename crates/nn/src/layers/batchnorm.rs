//! Batch normalization, including ReGAN's virtual batch normalization.
//!
//! GAN training "usually operates the batch normalization before the
//! activation layer to improve its stability" (§II-A.3). ReGAN implements
//! *virtual* batch normalization in its wordline drivers (Fig. 10 Ⓐ):
//! "each example is normalized based on the statistics collected on a
//! reference batch … chosen once and fixed at the start of training", and
//! the hardware performs the subtraction and division with a *sub and
//! shift* unit whose "divisor is 2^n" — modelled here by the
//! [`BatchNorm::with_shift_divisor`] option that rounds the normalizer to a
//! power of two.

use crate::{Layer, LayerClass, LayerSpec};
use reram_tensor::{Shape4, Tensor};

/// Statistic source for normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormMode {
    /// Standard batch normalization: statistics of the current mini-batch.
    Batch,
    /// Virtual batch normalization: statistics of a reference batch frozen
    /// at the start of training (ReGAN Fig. 10 Ⓐ).
    Virtual,
}

/// Per-channel batch normalization with learnable scale and shift.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    mode: NormMode,
    channels: usize,
    eps: f32,
    momentum: f32,
    shift_divisor: bool,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    grad_gamma: Vec<f32>,
    grad_beta: Vec<f32>,
    /// Frozen reference statistics `(mean, inv_std)` for [`NormMode::Virtual`].
    reference: Option<(Vec<f32>, Vec<f32>)>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    /// Whether backward must differentiate through the statistics.
    through_stats: bool,
    /// Elements per channel in the normalized batch.
    m: usize,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `channels` feature channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize, mode: NormMode) -> Self {
        assert!(channels > 0, "zero channels");
        Self {
            mode,
            channels,
            eps: 1e-5,
            momentum: 0.1,
            shift_divisor: false,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            reference: None,
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// Rounds the normalization divisor to the nearest power of two
    /// (ReGAN's sub-and-shift hardware).
    pub fn with_shift_divisor(mut self) -> Self {
        self.shift_divisor = true;
        self
    }

    /// The normalization mode.
    pub fn mode(&self) -> NormMode {
        self.mode
    }

    /// Whether the reference batch has been captured (virtual mode only).
    pub fn has_reference(&self) -> bool {
        self.reference.is_some()
    }

    fn channel_stats(&self, input: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let s = input.shape();
        let m = (s.n * s.h * s.w) as f32;
        let mut mean = vec![0.0f32; self.channels];
        let mut var = vec![0.0f32; self.channels];
        for n in 0..s.n {
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        mean[c] += input.at(n, c, h, w);
                    }
                }
            }
        }
        for mc in &mut mean {
            *mc /= m;
        }
        for n in 0..s.n {
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        let d = input.at(n, c, h, w) - mean[c];
                        var[c] += d * d;
                    }
                }
            }
        }
        for vc in &mut var {
            *vc /= m;
        }
        (mean, var)
    }

    fn inv_std_from_var(&self, var: &[f32]) -> Vec<f32> {
        var.iter()
            .map(|&v| {
                let istd = 1.0 / (v + self.eps).sqrt();
                if self.shift_divisor {
                    // Round the divisor (std) to 2^n: istd becomes 2^-n.
                    let n = (1.0 / istd).log2().round();
                    2.0f32.powf(-n)
                } else {
                    istd
                }
            })
            .collect()
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> &'static str {
        match self.mode {
            NormMode::Batch => "batch_norm",
            NormMode::Virtual => "virtual_batch_norm",
        }
    }

    fn class(&self) -> LayerClass {
        LayerClass::Auxiliary
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(
            s.c, self.channels,
            "batch_norm: {} channels, expected {}",
            s.c, self.channels
        );
        let (mean, inv_std, through_stats) = match (self.mode, train) {
            (NormMode::Batch, true) => {
                let (mean, var) = self.channel_stats(input);
                for c in 0..self.channels {
                    self.running_mean[c] =
                        (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                    self.running_var[c] =
                        (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
                }
                let istd = self.inv_std_from_var(&var);
                // Differentiating through statistics needs the exact istd;
                // with a shifted divisor the hardware treats stats as
                // constants, so backward does too.
                (mean, istd, !self.shift_divisor)
            }
            (NormMode::Batch, false) => {
                let istd = self.inv_std_from_var(&self.running_var.clone());
                (self.running_mean.clone(), istd, false)
            }
            (NormMode::Virtual, _) => {
                if self.reference.is_none() {
                    // First batch seen becomes the frozen reference batch.
                    let (mean, var) = self.channel_stats(input);
                    let istd = self.inv_std_from_var(&var);
                    self.reference = Some((mean, istd));
                }
                // lint:allow(panic) the branch above just populated the reference stats
                let (mean, istd) = self.reference.clone().expect("reference just set");
                (mean, istd, false)
            }
        };

        let xhat = Tensor::from_fn(s, |n, c, h, w| {
            (input.at(n, c, h, w) - mean[c]) * inv_std[c]
        });
        let out = Tensor::from_fn(s, |n, c, h, w| {
            self.gamma[c] * xhat.at(n, c, h, w) + self.beta[c]
        });
        if train {
            self.cache = Some(BnCache {
                xhat,
                inv_std,
                through_stats,
                m: s.n * s.h * s.w,
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            // lint:allow(panic) Layer trait contract — backward follows a training forward
            .expect("batch_norm backward before forward(train=true)");
        let s = grad_out.shape();
        assert_eq!(s, cache.xhat.shape(), "batch_norm backward shape mismatch");
        let m = cache.m as f32;

        // Parameter gradients.
        let mut sum_g = vec![0.0f32; self.channels];
        let mut sum_gx = vec![0.0f32; self.channels];
        for n in 0..s.n {
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        let g = grad_out.at(n, c, h, w);
                        sum_g[c] += g;
                        sum_gx[c] += g * cache.xhat.at(n, c, h, w);
                    }
                }
            }
        }
        for c in 0..self.channels {
            self.grad_beta[c] += sum_g[c];
            self.grad_gamma[c] += sum_gx[c];
        }

        if cache.through_stats {
            // Full batch-norm backward.
            Tensor::from_fn(s, |n, c, h, w| {
                let g = grad_out.at(n, c, h, w);
                let xh = cache.xhat.at(n, c, h, w);
                self.gamma[c] * cache.inv_std[c] / m * (m * g - sum_g[c] - xh * sum_gx[c])
            })
        } else {
            // Statistics are constants (virtual BN / shifted divisor).
            Tensor::from_fn(s, |n, c, h, w| {
                grad_out.at(n, c, h, w) * self.gamma[c] * cache.inv_std[c]
            })
        }
    }

    fn apply_update(&mut self, lr: f32) {
        for c in 0..self.channels {
            self.gamma[c] -= lr * self.grad_gamma[c];
            self.beta[c] -= lr * self.grad_beta[c];
        }
        self.zero_grad();
    }

    fn zero_grad(&mut self) {
        self.grad_gamma = vec![0.0; self.channels];
        self.grad_beta = vec![0.0; self.channels];
    }

    fn clip_weights(&mut self, limit: f32) {
        for g in &mut self.gamma {
            *g = g.clamp(-limit, limit);
        }
        for b in &mut self.beta {
            *b = b.clamp(-limit, limit);
        }
    }

    fn param_count(&self) -> usize {
        2 * self.channels
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        input
    }

    fn spec(&self, input: Shape4) -> Option<LayerSpec> {
        Some(LayerSpec::BatchNorm {
            elems: input.batch_stride(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_tensor::init::{seeded_rng, standard_normal};

    fn random_input(shape: Shape4, seed: u64) -> Tensor {
        let mut rng = seeded_rng(seed);
        Tensor::from_fn(shape, |_, _, _, _| 2.0 * standard_normal(&mut rng) + 1.0)
    }

    #[test]
    fn normalizes_to_zero_mean_unit_var() {
        let mut bn = BatchNorm::new(3, NormMode::Batch);
        let x = random_input(Shape4::new(8, 3, 4, 4), 1);
        let y = bn.forward(&x, true);
        let s = y.shape();
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..s.n {
                for h in 0..s.h {
                    for w in 0..s.w {
                        vals.push(y.at(n, c, h, w));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn batch_backward_gradient_check() {
        let mut bn = BatchNorm::new(2, NormMode::Batch);
        let x = random_input(Shape4::new(3, 2, 2, 2), 2);
        // Weighted loss so gradient does not vanish through normalization.
        let wts = random_input(x.shape(), 3);
        let y = bn.forward(&x, true);
        let _ = y;
        let gin = bn.backward(&wts);
        let eps = 1e-2;
        let loss =
            |bn: &mut BatchNorm, x: &Tensor| bn.forward(x, true).zip_map(&wts, |a, b| a * b).sum();
        for &(n, c, h, w) in &[(0usize, 0usize, 0usize, 0usize), (2, 1, 1, 1), (1, 0, 1, 0)] {
            let mut bn2 = BatchNorm::new(2, NormMode::Batch);
            let mut xp = x.clone();
            xp.add_at(n, c, h, w, eps);
            let mut xm = x.clone();
            xm.add_at(n, c, h, w, -eps);
            let num = (loss(&mut bn2, &xp) - loss(&mut bn2, &xm)) / (2.0 * eps);
            assert!(
                (num - gin.at(n, c, h, w)).abs() < 0.05,
                "numeric {num} vs analytic {}",
                gin.at(n, c, h, w)
            );
        }
    }

    #[test]
    fn virtual_mode_freezes_reference() {
        let mut bn = BatchNorm::new(2, NormMode::Virtual);
        assert!(!bn.has_reference());
        let reference = random_input(Shape4::new(4, 2, 3, 3), 4);
        let _ = bn.forward(&reference, true);
        assert!(bn.has_reference());
        // A wildly different second batch normalizes with the OLD stats:
        // outputs are not re-centred.
        let shifted = reference.map(|v| v + 100.0);
        let y = bn.forward(&shifted, true);
        assert!(
            y.mean() > 10.0,
            "virtual BN must not re-centre: {}",
            y.mean()
        );
    }

    #[test]
    fn virtual_backward_is_linear_scaling() {
        let mut bn = BatchNorm::new(1, NormMode::Virtual);
        let x = random_input(Shape4::new(4, 1, 2, 2), 5);
        let _ = bn.forward(&x, true);
        let g = Tensor::filled(x.shape(), 2.0);
        let gin = bn.backward(&g);
        // gin = g * gamma * inv_std, identical for all elements.
        let first = gin.data()[0];
        assert!(gin.data().iter().all(|&v| (v - first).abs() < 1e-6));
    }

    #[test]
    fn shift_divisor_rounds_to_power_of_two() {
        let mut bn = BatchNorm::new(1, NormMode::Batch).with_shift_divisor();
        let x = random_input(Shape4::new(8, 1, 4, 4), 6);
        let y = bn.forward(&x, true);
        // Output variance is within 4x of unit (divisor off by at most
        // sqrt(2) in each direction).
        let mean = y.mean();
        let var = y
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / y.len() as f32;
        assert!((0.25..4.0).contains(&var), "var {var}");
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1, NormMode::Batch);
        // Train on many batches to settle running stats.
        for seed in 0..20 {
            let x = random_input(Shape4::new(8, 1, 4, 4), seed);
            let _ = bn.forward(&x, true);
        }
        let x = random_input(Shape4::new(8, 1, 4, 4), 100);
        let y = bn.forward(&x, false);
        // Input has mean~1, std~2; running stats should roughly normalize.
        assert!(y.mean().abs() < 0.5, "eval mean {}", y.mean());
    }

    #[test]
    fn gamma_beta_update() {
        let mut bn = BatchNorm::new(1, NormMode::Batch);
        let x = random_input(Shape4::new(4, 1, 2, 2), 7);
        let _ = bn.forward(&x, true);
        let _ = bn.backward(&Tensor::ones(x.shape()));
        bn.apply_update(0.1);
        // beta moved against the gradient (sum of ones = 16).
        assert!((bn.beta[0] - (-1.6)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm::new(3, NormMode::Batch);
        let _ = bn.forward(&Tensor::ones(Shape4::new(1, 2, 2, 2)), false);
    }
}
