//! Fully connected (inner product) layer — paper Eq. 2.

use crate::backend::LinearEngine;
use crate::{Layer, LayerClass, LayerSpec};
use rand::Rng;
use reram_tensor::{init, ops, Matrix, Shape2, Shape4, Tensor};

/// Inner product layer `y = W x + b` with optional crossbar-backed forward.
///
/// Activations flow as tensors shaped `(n, features, 1, 1)`; the layer
/// flattens whatever spatial extent its input carries, matching the paper's
/// "the values in data tube of `l` are considered as a vector".
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Matrix, // (out, in)
    bias: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    momentum: f32,
    vel_w: Matrix,
    vel_b: Vec<f32>,
    engine: LinearEngine,
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates an `in_features → out_features` layer, Xavier-initialized.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        assert!(in_features > 0 && out_features > 0, "zero feature count");
        let shape = Shape2::new(out_features, in_features);
        Self {
            weight: init::xavier_uniform_matrix(shape, rng),
            bias: vec![0.0; out_features],
            grad_w: Matrix::zeros(shape),
            grad_b: vec![0.0; out_features],
            momentum: 0.0,
            vel_w: Matrix::zeros(shape),
            vel_b: vec![0.0; out_features],
            engine: LinearEngine::float(),
            cached_input: None,
        }
    }

    /// Routes forward products through the given engine (crossbar mode).
    pub fn with_engine(mut self, engine: LinearEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The weight matrix `(out × in)`.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Replaces the weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shape differs.
    pub fn set_weight(&mut self, w: Matrix) {
        assert_eq!(w.shape(), self.weight.shape(), "weight shape mismatch");
        self.weight = w;
        self.engine.invalidate();
    }

    /// The execution engine (to inspect crossbar statistics).
    pub fn engine(&self) -> &LinearEngine {
        &self.engine
    }

    fn in_features(&self) -> usize {
        self.weight.cols()
    }

    fn out_features(&self) -> usize {
        self.weight.rows()
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "fc"
    }

    fn class(&self) -> LayerClass {
        LayerClass::Weighted
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let x = input.to_matrix();
        assert_eq!(
            x.cols(),
            self.in_features(),
            "fc: input features {} vs expected {}",
            x.cols(),
            self.in_features()
        );
        if train {
            self.cached_input = Some(x.clone());
        }
        let y = self.engine.matmul(&x, &self.weight, Some(&self.bias));
        Tensor::from_vec(
            Shape4::new(input.shape().n, self.out_features(), 1, 1),
            y.data().to_vec(),
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            // lint:allow(panic) Layer trait contract — backward follows a training forward
            .expect("fc backward before forward(train=true)");
        let g = grad_out.to_matrix();
        assert_eq!(g.cols(), self.out_features(), "fc backward: gradient width");
        let gw = ops::linear_backward_weight(&g, x);
        for (a, b) in self.grad_w.data_mut().iter_mut().zip(gw.data()) {
            *a += b;
        }
        for (gb, gv) in self.grad_b.iter_mut().zip(ops::linear_backward_bias(&g)) {
            *gb += gv;
        }
        let gin = self.engine.matmul_backward(&g, &self.weight);
        Tensor::from_vec(
            Shape4::new(grad_out.shape().n, self.in_features(), 1, 1),
            gin.data().to_vec(),
        )
    }

    fn apply_update(&mut self, lr: f32) {
        let mu = self.momentum;
        for ((w, v), g) in self
            .weight
            .data_mut()
            .iter_mut()
            .zip(self.vel_w.data_mut())
            .zip(self.grad_w.data())
        {
            *v = mu * *v - lr * g;
            *w += *v;
        }
        for ((b, v), g) in self.bias.iter_mut().zip(&mut self.vel_b).zip(&self.grad_b) {
            *v = mu * *v - lr * g;
            *b += *v;
        }
        self.zero_grad();
        self.engine.invalidate();
    }

    fn set_momentum(&mut self, mu: f32) {
        self.momentum = mu;
    }

    fn zero_grad(&mut self) {
        self.grad_w = Matrix::zeros(self.weight.shape());
        self.grad_b = vec![0.0; self.bias.len()];
    }

    fn clip_weights(&mut self, limit: f32) {
        for w in self.weight.data_mut() {
            *w = w.clamp(-limit, limit);
        }
        for b in &mut self.bias {
            *b = b.clamp(-limit, limit);
        }
        self.engine.invalidate();
    }

    fn param_count(&self) -> usize {
        self.weight.shape().len() + self.bias.len()
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        Shape4::new(input.n, self.out_features(), 1, 1)
    }

    fn spec(&self, _input: Shape4) -> Option<LayerSpec> {
        Some(LayerSpec::Fc {
            in_features: self.in_features(),
            out_features: self.out_features(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_crossbar::CrossbarConfig;
    use reram_tensor::init::seeded_rng;

    fn input() -> Tensor {
        Tensor::from_fn(Shape4::new(3, 5, 1, 1), |n, c, _, _| {
            ((n * 5 + c) % 7) as f32 / 7.0 - 0.3
        })
    }

    #[test]
    fn forward_shape_and_values() {
        let mut rng = seeded_rng(1);
        let mut fc = Linear::new(5, 4, &mut rng);
        let x = input();
        let y = fc.forward(&x, false);
        assert_eq!(y.shape(), Shape4::new(3, 4, 1, 1));
        let want = ops::linear(&x.to_matrix(), fc.weight(), Some(&[0.0; 4]));
        assert_eq!(y.data(), want.data());
    }

    #[test]
    fn flattens_spatial_input() {
        let mut rng = seeded_rng(2);
        let mut fc = Linear::new(2 * 3 * 3, 4, &mut rng);
        let x = Tensor::ones(Shape4::new(1, 2, 3, 3));
        let y = fc.forward(&x, false);
        assert_eq!(y.shape(), Shape4::new(1, 4, 1, 1));
    }

    #[test]
    fn gradient_check() {
        let mut rng = seeded_rng(3);
        let mut fc = Linear::new(4, 3, &mut rng);
        let x = Tensor::from_fn(Shape4::new(2, 4, 1, 1), |n, c, _, _| {
            (n as f32 - c as f32) * 0.3
        });
        let y = fc.forward(&x, true);
        let g = Tensor::ones(y.shape());
        let gin = fc.backward(&g);
        let eps = 1e-2;
        for &(n, c) in &[(0usize, 0usize), (1, 3)] {
            let mut xp = x.clone();
            xp.add_at(n, c, 0, 0, eps);
            let mut xm = x.clone();
            xm.add_at(n, c, 0, 0, -eps);
            let num = (fc.forward(&xp, false).sum() - fc.forward(&xm, false).sum()) / (2.0 * eps);
            assert!((num - gin.at(n, c, 0, 0)).abs() < 1e-2);
        }
    }

    #[test]
    fn crossbar_engine_close_to_float() {
        let mut rng = seeded_rng(4);
        let fc = Linear::new(20, 6, &mut rng);
        let mut cb = fc
            .clone()
            .with_engine(LinearEngine::crossbar(CrossbarConfig::default()));
        let mut fl = fc;
        let x = Tensor::from_fn(Shape4::new(2, 20, 1, 1), |n, c, _, _| {
            ((n + c) % 11) as f32 / 11.0 - 0.4
        });
        let yf = fl.forward(&x, false);
        let yc = cb.forward(&x, false);
        let rms = (yf.squared_distance(&yc) / yf.len() as f32).sqrt();
        assert!(rms < 0.01, "rms {rms}");
    }

    #[test]
    fn update_descends_loss() {
        let mut rng = seeded_rng(5);
        let mut fc = Linear::new(5, 2, &mut rng);
        let x = input();
        let target = Tensor::zeros(Shape4::new(3, 2, 1, 1));
        let y0 = fc.forward(&x, true);
        let l0 = y0.squared_distance(&target);
        let g = (&y0 - &target).map(|v| 2.0 * v);
        let _ = fc.backward(&g);
        fc.apply_update(0.05);
        let y1 = fc.forward(&x, false);
        assert!(y1.squared_distance(&target) < l0);
    }

    #[test]
    fn spec_reports_features() {
        let mut rng = seeded_rng(6);
        let fc = Linear::new(100, 10, &mut rng);
        assert_eq!(
            fc.spec(Shape4::new(1, 100, 1, 1)),
            Some(LayerSpec::Fc {
                in_features: 100,
                out_features: 10
            })
        );
        assert_eq!(fc.param_count(), 1010);
    }
}
