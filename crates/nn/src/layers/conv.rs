//! Convolution layer (paper Eq. 1).

use crate::backend::LinearEngine;
use crate::{Layer, LayerClass, LayerSpec};
use rand::Rng;
use reram_tensor::{init, ops, Matrix, Shape2, Shape4, Tensor};

/// 2-D convolution with bias, square kernels, and optional crossbar-backed
/// forward execution.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor,
    bias: Vec<f32>,
    grad_w: Tensor,
    grad_b: Vec<f32>,
    momentum: f32,
    vel_w: Tensor,
    vel_b: Vec<f32>,
    stride: usize,
    pad: usize,
    engine: LinearEngine,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution of `in_c → out_c` channels with `k × k`
    /// kernels, Xavier-initialized.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            in_c > 0 && out_c > 0 && k > 0 && stride > 0,
            "zero conv extent"
        );
        let shape = Shape4::new(out_c, in_c, k, k);
        Self {
            weight: init::xavier_uniform(shape, rng),
            bias: vec![0.0; out_c],
            grad_w: Tensor::zeros(shape),
            grad_b: vec![0.0; out_c],
            momentum: 0.0,
            vel_w: Tensor::zeros(shape),
            vel_b: vec![0.0; out_c],
            stride,
            pad,
            engine: LinearEngine::float(),
            cached_input: None,
        }
    }

    /// Routes forward products through the given engine (crossbar mode).
    pub fn with_engine(mut self, engine: LinearEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Kernel tensor `(out_c, in_c, k, k)`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Replaces the kernel tensor (e.g. to load trained weights).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs.
    pub fn set_weight(&mut self, w: Tensor) {
        assert_eq!(w.shape(), self.weight.shape(), "weight shape mismatch");
        self.weight = w;
        self.engine.invalidate();
    }

    /// The execution engine (to inspect crossbar statistics).
    pub fn engine(&self) -> &LinearEngine {
        &self.engine
    }

    /// Weight matrix as mapped to crossbars: `(out_c, in_c*k*k)`.
    fn weight_matrix(&self) -> Matrix {
        let s = self.weight.shape();
        Matrix::from_vec(
            Shape2::new(s.n, s.c * s.h * s.w),
            self.weight.data().to_vec(),
        )
    }

    fn forward_via_engine(&mut self, input: &Tensor) -> Tensor {
        let is = input.shape();
        let ws = self.weight.shape();
        let (oh, ow) = ops::conv_output_hw(is.h, is.w, ws.h, ws.w, self.stride, self.pad);
        let wmat = self.weight_matrix();
        let mut out = Tensor::zeros(Shape4::new(is.n, ws.n, oh, ow));
        for n in 0..is.n {
            let cols = ops::im2col(input, n, ws.h, ws.w, self.stride, self.pad);
            let y = self.engine.matmul(&cols, &wmat, Some(&self.bias));
            for co in 0..ws.n {
                for oy in 0..oh {
                    for ox in 0..ow {
                        out.set(n, co, oy, ox, y.at(oy * ow + ox, co));
                    }
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv"
    }

    fn class(&self) -> LayerClass {
        LayerClass::Weighted
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        if self.engine.is_crossbar() {
            self.forward_via_engine(input)
        } else {
            ops::conv2d(input, &self.weight, Some(&self.bias), self.stride, self.pad)
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // lint:allow(panic) Layer trait contract — backward follows a training forward
            .expect("conv backward before forward(train=true)");
        let gw = ops::conv2d_backward_weight(
            grad_out,
            input,
            self.weight.shape(),
            self.stride,
            self.pad,
        );
        self.grad_w.axpy(1.0, &gw);
        for (gb, g) in self
            .grad_b
            .iter_mut()
            .zip(ops::conv2d_backward_bias(grad_out))
        {
            *gb += g;
        }
        ops::conv2d_backward_input(grad_out, &self.weight, self.stride, self.pad, input.shape())
    }

    fn apply_update(&mut self, lr: f32) {
        let mu = self.momentum;
        for ((w, v), g) in self
            .weight
            .data_mut()
            .iter_mut()
            .zip(self.vel_w.data_mut())
            .zip(self.grad_w.data())
        {
            *v = mu * *v - lr * g;
            *w += *v;
        }
        for ((b, v), g) in self.bias.iter_mut().zip(&mut self.vel_b).zip(&self.grad_b) {
            *v = mu * *v - lr * g;
            *b += *v;
        }
        self.zero_grad();
        self.engine.invalidate();
    }

    fn set_momentum(&mut self, mu: f32) {
        self.momentum = mu;
    }

    fn zero_grad(&mut self) {
        self.grad_w = Tensor::zeros(self.weight.shape());
        self.grad_b = vec![0.0; self.bias.len()];
    }

    fn clip_weights(&mut self, limit: f32) {
        self.weight.map_inplace(|w| w.clamp(-limit, limit));
        for b in &mut self.bias {
            *b = b.clamp(-limit, limit);
        }
        self.engine.invalidate();
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        let ws = self.weight.shape();
        let (oh, ow) = ops::conv_output_hw(input.h, input.w, ws.h, ws.w, self.stride, self.pad);
        Shape4::new(input.n, ws.n, oh, ow)
    }

    fn spec(&self, input: Shape4) -> Option<LayerSpec> {
        let ws = self.weight.shape();
        Some(LayerSpec::Conv {
            in_c: ws.c,
            out_c: ws.n,
            k: ws.h,
            stride: self.stride,
            pad: self.pad,
            in_h: input.h,
            in_w: input.w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_crossbar::CrossbarConfig;
    use reram_tensor::init::seeded_rng;

    fn input() -> Tensor {
        Tensor::from_fn(Shape4::new(2, 3, 6, 6), |n, c, h, w| {
            ((n + c * 2 + h * 3 + w) % 7) as f32 / 7.0 - 0.4
        })
    }

    #[test]
    fn forward_matches_raw_op() {
        let mut rng = seeded_rng(1);
        let mut layer = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        let x = input();
        let y = layer.forward(&x, false);
        let want = ops::conv2d(&x, layer.weight(), Some(&[0.0; 4]), 1, 1);
        assert_eq!(y, want);
        assert_eq!(y.shape(), layer.output_shape(x.shape()));
    }

    #[test]
    fn crossbar_forward_close_to_float() {
        let mut rng = seeded_rng(2);
        let fl = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        let mut cb = fl
            .clone()
            .with_engine(LinearEngine::crossbar(CrossbarConfig::default()));
        let mut fl = fl;
        let x = input();
        let yf = fl.forward(&x, false);
        let yc = cb.forward(&x, false);
        let rms = (yf.squared_distance(&yc) / yf.len() as f32).sqrt();
        assert!(rms < 0.01, "rms {rms}");
    }

    #[test]
    fn backward_accumulates_until_update() {
        let mut rng = seeded_rng(3);
        let mut layer = Conv2d::new(3, 2, 3, 1, 0, &mut rng);
        let x = input();
        let y = layer.forward(&x, true);
        let g = Tensor::ones(y.shape());
        let _ = layer.backward(&g);
        let w_before = layer.weight().clone();
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&g);
        layer.apply_update(0.1);
        // Two accumulated backward passes applied at once.
        let delta = (&w_before - layer.weight()).abs_max();
        assert!(delta > 0.0);
        // Gradients cleared after update.
        layer.apply_update(0.1);
        assert_eq!(layer.weight(), {
            // second update with zero grads is a no-op
            layer.weight()
        });
    }

    #[test]
    fn update_descends_loss() {
        let mut rng = seeded_rng(4);
        let mut layer = Conv2d::new(3, 2, 3, 1, 0, &mut rng);
        let x = input();
        let target = Tensor::zeros(layer.output_shape(x.shape()));
        let loss = |y: &Tensor, t: &Tensor| y.squared_distance(t) / y.len() as f32;
        let y0 = layer.forward(&x, true);
        let l0 = loss(&y0, &target);
        // d(mse)/dy = 2 (y - t) / len
        let g = (&y0 - &target).map(|v| 2.0 * v / y0.len() as f32);
        let _ = layer.backward(&g);
        layer.apply_update(0.5);
        let y1 = layer.forward(&x, false);
        assert!(loss(&y1, &target) < l0);
    }

    #[test]
    fn param_count_and_spec() {
        let mut rng = seeded_rng(5);
        let layer = Conv2d::new(3, 8, 5, 1, 2, &mut rng);
        assert_eq!(layer.param_count(), 3 * 8 * 25 + 8);
        let spec = layer.spec(Shape4::new(1, 3, 28, 28)).expect("weighted");
        assert!(spec.is_weighted());
        assert_eq!(spec.crossbar_matrix(), Some((75, 8)));
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = seeded_rng(6);
        let mut layer = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        let _ = layer.backward(&Tensor::zeros(Shape4::new(1, 1, 1, 1)));
    }
}
