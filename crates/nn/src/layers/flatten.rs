//! Flatten adapter between spatial and vector layers.

use crate::{Layer, LayerClass, LayerSpec};
use reram_tensor::{Shape4, Tensor};

/// Reshapes `(n, c, h, w)` to `(n, c*h*w, 1, 1)`.
///
/// The paper notes the discriminator's last layer "is the flattened version
/// of previous CNN layer and does not require extra computation"
/// (§III-B.4) — accordingly this layer is free in the cost models.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Shape4>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn class(&self) -> LayerClass {
        LayerClass::Auxiliary
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_shape = Some(input.shape());
        }
        input.reshape(self.output_shape(input.shape()))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            // lint:allow(panic) Layer trait contract — backward follows a training forward
            .expect("flatten backward before forward(train=true)");
        grad_out.reshape(shape)
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        Shape4::new(input.n, input.batch_stride(), 1, 1)
    }

    fn spec(&self, _input: Shape4) -> Option<LayerSpec> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut l = Flatten::new();
        let x = Tensor::from_fn(Shape4::new(2, 3, 4, 5), |n, c, h, w| (n + c + h + w) as f32);
        let y = l.forward(&x, true);
        assert_eq!(y.shape(), Shape4::new(2, 60, 1, 1));
        let back = l.backward(&y);
        assert_eq!(back, x);
    }

    #[test]
    fn is_cost_free() {
        let l = Flatten::new();
        assert_eq!(l.spec(Shape4::new(1, 2, 3, 4)), None);
        assert_eq!(l.param_count(), 0);
    }
}
