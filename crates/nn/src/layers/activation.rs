//! Elementwise activation layer.

use crate::activations::{Activation, LutActivation};
use crate::{Layer, LayerClass, LayerSpec};
use reram_tensor::{Shape4, Tensor};

/// Applies an [`Activation`] elementwise; the "element-wise non-linearity
/// activation function" that "always follows" a convolutional layer
/// (§II-A.1). Architecturally this is peripheral circuitry fused into the
/// preceding crossbar stage.
///
/// With [`ActivationLayer::with_lut`] the *forward* pass evaluates the
/// function through a finite look-up table, modelling ReGAN's configurable
/// LUT peripheral (Fig. 10 Ⓑ); the backward pass keeps the analytic
/// derivative — training happens off-LUT while the deployed hardware
/// evaluates through the table, so LUT resolution studies measure exactly
/// the hardware-visible error.
#[derive(Debug, Clone)]
pub struct ActivationLayer {
    activation: Activation,
    lut: Option<LutActivation>,
    cached_input: Option<Tensor>,
}

impl ActivationLayer {
    /// Creates an activation layer.
    pub fn new(activation: Activation) -> Self {
        Self {
            activation,
            lut: None,
            cached_input: None,
        }
    }

    /// Convenience constructor for ReLU.
    pub fn relu() -> Self {
        Self::new(Activation::Relu)
    }

    /// Evaluates forward passes through a LUT of `entries` samples over
    /// `[lo, hi]` (ReGAN's hardware activation path).
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `lo >= hi`.
    pub fn with_lut(mut self, lo: f32, hi: f32, entries: usize) -> Self {
        self.lut = Some(LutActivation::of(self.activation, lo, hi, entries));
        self
    }

    /// The wrapped activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Whether forward evaluation goes through a LUT.
    pub fn uses_lut(&self) -> bool {
        self.lut.is_some()
    }
}

impl Layer for ActivationLayer {
    fn name(&self) -> &'static str {
        self.activation.name()
    }

    fn class(&self) -> LayerClass {
        LayerClass::Auxiliary
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        match &self.lut {
            Some(lut) => input.map(|x| lut.apply(x)),
            None => input.map(|x| self.activation.apply(x)),
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // lint:allow(panic) Layer trait contract — backward follows a training forward
            .expect("activation backward before forward(train=true)");
        input.zip_map(grad_out, |x, g| self.activation.derivative(x) * g)
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        input
    }

    fn spec(&self, input: Shape4) -> Option<LayerSpec> {
        Some(LayerSpec::Activation {
            elems: input.batch_stride(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut l = ActivationLayer::relu();
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![-2.0, -0.5, 0.5, 2.0]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut l = ActivationLayer::relu();
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![-2.0, -0.5, 0.5, 2.0]);
        let _ = l.forward(&x, true);
        let g = Tensor::filled(x.shape(), 3.0);
        let gin = l.backward(&g);
        assert_eq!(gin.data(), &[0.0, 0.0, 3.0, 3.0]);
    }

    #[test]
    fn tanh_round_trip_gradient() {
        let mut l = ActivationLayer::new(Activation::Tanh);
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.3, -0.7]);
        let _ = l.forward(&x, true);
        let gin = l.backward(&Tensor::ones(x.shape()));
        let eps = 1e-3;
        for i in 0..2 {
            let num = ((x.data()[i] + eps).tanh() - (x.data()[i] - eps).tanh()) / (2.0 * eps);
            assert!((num - gin.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn lut_forward_approximates_analytic() {
        let mut exact = ActivationLayer::new(Activation::Sigmoid);
        let mut lut = ActivationLayer::new(Activation::Sigmoid).with_lut(-8.0, 8.0, 512);
        assert!(lut.uses_lut());
        let x = Tensor::from_fn(Shape4::new(1, 1, 8, 8), |_, _, h, w| {
            (h as f32 - 4.0) + (w as f32) * 0.1
        });
        let ye = exact.forward(&x, false);
        let yl = lut.forward(&x, false);
        let rms = (ye.squared_distance(&yl) / ye.len() as f32).sqrt();
        assert!(rms < 0.01, "LUT rms {rms}");
    }

    #[test]
    fn coarse_lut_is_visibly_worse() {
        let x = Tensor::from_fn(Shape4::new(1, 1, 4, 8), |_, _, h, w| {
            (h as f32 - 2.0) * 0.9 + (w as f32) * 0.13
        });
        let mut exact = ActivationLayer::new(Activation::Tanh);
        let mut coarse = ActivationLayer::new(Activation::Tanh).with_lut(-4.0, 4.0, 8);
        let mut fine = ActivationLayer::new(Activation::Tanh).with_lut(-4.0, 4.0, 1024);
        let ye = exact.forward(&x, false);
        let ec = ye.squared_distance(&coarse.forward(&x, false));
        let ef = ye.squared_distance(&fine.forward(&x, false));
        assert!(ec > 10.0 * ef, "coarse {ec} vs fine {ef}");
    }

    #[test]
    fn lut_backward_uses_analytic_derivative() {
        let mut l = ActivationLayer::relu().with_lut(-4.0, 4.0, 64);
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![-1.0, 1.0]);
        let _ = l.forward(&x, true);
        let gin = l.backward(&Tensor::ones(x.shape()));
        assert_eq!(gin.data(), &[0.0, 1.0]);
    }

    #[test]
    fn shape_preserved_and_auxiliary() {
        let l = ActivationLayer::relu();
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(l.output_shape(s), s);
        assert_eq!(l.class(), LayerClass::Auxiliary);
        assert_eq!(l.spec(s), Some(LayerSpec::Activation { elems: 60 }));
        assert_eq!(l.param_count(), 0);
    }
}
