//! Inverted dropout regularizer (used by the AlexNet-class workloads).

use crate::{Layer, LayerClass, LayerSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reram_tensor::{Shape4, Tensor};

/// Inverted dropout: during training each element survives with probability
/// `keep` and is scaled by `1/keep`; inference is the identity.
#[derive(Debug, Clone)]
pub struct Dropout {
    keep: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer keeping each element with probability `keep`.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is not in `(0, 1]`.
    pub fn new(keep: f32, seed: u64) -> Self {
        assert!(
            keep > 0.0 && keep <= 1.0,
            "keep probability {keep} outside (0, 1]"
        );
        Self {
            keep,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The keep probability.
    pub fn keep(&self) -> f32 {
        self.keep
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn class(&self) -> LayerClass {
        LayerClass::Auxiliary
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.keep >= 1.0 {
            self.mask = None;
            return input.clone();
        }
        let scale = 1.0 / self.keep;
        let mask = Tensor::from_fn(input.shape(), |_, _, _, _| {
            if self.rng.gen::<f32>() < self.keep {
                scale
            } else {
                0.0
            }
        });
        let out = input.zip_map(&mask, |x, m| x * m);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad_out.zip_map(mask, |g, m| g * m),
            // keep == 1.0 or eval-mode forward: identity.
            None => grad_out.clone(),
        }
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        input
    }

    fn spec(&self, _input: Shape4) -> Option<LayerSpec> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(Shape4::new(2, 3, 4, 4));
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn keep_one_is_identity_in_training() {
        let mut d = Dropout::new(1.0, 1);
        let x = Tensor::ones(Shape4::new(1, 1, 4, 4));
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    fn training_zeroes_roughly_the_right_fraction() {
        let mut d = Dropout::new(0.7, 2);
        let x = Tensor::ones(Shape4::new(1, 1, 100, 100));
        let y = d.forward(&x, true);
        let kept = y.data().iter().filter(|&&v| v != 0.0).count() as f32 / 10_000.0;
        assert!((kept - 0.7).abs() < 0.05, "kept fraction {kept}");
        // Inverted scaling keeps the expectation.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(Shape4::new(1, 1, 8, 8));
        let y = d.forward(&x, true);
        let gin = d.backward(&Tensor::ones(x.shape()));
        // Gradient flows exactly where the forward survived.
        for (a, b) in y.data().iter().zip(gin.data()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_zero_keep() {
        let _ = Dropout::new(0.0, 1);
    }
}
