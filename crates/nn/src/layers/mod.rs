//! Layer implementations.
//!
//! Each layer type of the paper's §II-A has its own module; all implement
//! [`crate::Layer`] with forward *and* backward passes and batch-accumulated
//! gradients.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod fc;
mod flatten;
mod frac_conv;
mod pool;

pub use activation::ActivationLayer;
pub use batchnorm::{BatchNorm, NormMode};
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use fc::Linear;
pub use flatten::Flatten;
pub use frac_conv::FracConv2d;
pub use pool::{Pool2d, PoolKind};
