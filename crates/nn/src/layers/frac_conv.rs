//! Fractional-strided convolution layer — the FCNN of §II-A.3 and Fig. 7.

use crate::{Layer, LayerClass, LayerSpec};
use rand::Rng;
use reram_tensor::{init, ops, Shape4, Tensor};

/// Up-sampling (transposed) convolution used by GAN generators.
///
/// Weight layout is `(in_c, out_c, k, k)`. The forward pass runs the
/// zero-insertion construction of Fig. 7(a); the backward input pass is the
/// strided convolution of Fig. 7(b).
#[derive(Debug, Clone)]
pub struct FracConv2d {
    weight: Tensor,
    bias: Vec<f32>,
    grad_w: Tensor,
    grad_b: Vec<f32>,
    momentum: f32,
    vel_w: Tensor,
    vel_b: Vec<f32>,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor>,
}

impl FracConv2d {
    /// Creates a fractional-strided convolution of `in_c → out_c` channels
    /// with `k × k` kernels, DCGAN-style N(0, 0.02) initialization.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero or `pad >= k`.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(in_c > 0 && out_c > 0 && k > 0 && stride > 0, "zero extent");
        assert!(pad < k, "pad {pad} must be < kernel {k}");
        let shape = Shape4::new(in_c, out_c, k, k);
        Self {
            weight: init::normal(shape, 0.02, rng),
            bias: vec![0.0; out_c],
            grad_w: Tensor::zeros(shape),
            grad_b: vec![0.0; out_c],
            momentum: 0.0,
            vel_w: Tensor::zeros(shape),
            vel_b: vec![0.0; out_c],
            stride,
            pad,
            cached_input: None,
        }
    }

    /// Kernel tensor `(in_c, out_c, k, k)`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Layer for FracConv2d {
    fn name(&self) -> &'static str {
        "frac_conv"
    }

    fn class(&self) -> LayerClass {
        LayerClass::Weighted
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        ops::conv_transpose2d(input, &self.weight, Some(&self.bias), self.stride, self.pad)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // lint:allow(panic) Layer trait contract — backward follows a training forward
            .expect("frac_conv backward before forward(train=true)");
        let gw = ops::conv_transpose2d_backward_weight(
            grad_out,
            input,
            self.weight.shape(),
            self.stride,
            self.pad,
        );
        self.grad_w.axpy(1.0, &gw);
        // Bias gradient: per-output-channel sum of the upstream gradient.
        let gs = grad_out.shape();
        for n in 0..gs.n {
            for c in 0..gs.c {
                for h in 0..gs.h {
                    for w in 0..gs.w {
                        self.grad_b[c] += grad_out.at(n, c, h, w);
                    }
                }
            }
        }
        ops::conv_transpose2d_backward_input(grad_out, &self.weight, self.stride, self.pad)
    }

    fn apply_update(&mut self, lr: f32) {
        let mu = self.momentum;
        for ((w, v), g) in self
            .weight
            .data_mut()
            .iter_mut()
            .zip(self.vel_w.data_mut())
            .zip(self.grad_w.data())
        {
            *v = mu * *v - lr * g;
            *w += *v;
        }
        for ((b, v), g) in self.bias.iter_mut().zip(&mut self.vel_b).zip(&self.grad_b) {
            *v = mu * *v - lr * g;
            *b += *v;
        }
        self.zero_grad();
    }

    fn set_momentum(&mut self, mu: f32) {
        self.momentum = mu;
    }

    fn zero_grad(&mut self) {
        self.grad_w = Tensor::zeros(self.weight.shape());
        self.grad_b = vec![0.0; self.bias.len()];
    }

    fn clip_weights(&mut self, limit: f32) {
        self.weight.map_inplace(|w| w.clamp(-limit, limit));
        for b in &mut self.bias {
            *b = b.clamp(-limit, limit);
        }
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        let ws = self.weight.shape();
        let (oh, ow) =
            ops::conv_transpose_output_hw(input.h, input.w, ws.h, ws.w, self.stride, self.pad);
        Shape4::new(input.n, ws.c, oh, ow)
    }

    fn spec(&self, input: Shape4) -> Option<LayerSpec> {
        let ws = self.weight.shape();
        Some(LayerSpec::FracConv {
            in_c: ws.n,
            out_c: ws.c,
            k: ws.h,
            stride: self.stride,
            pad: self.pad,
            in_h: input.h,
            in_w: input.w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_tensor::init::seeded_rng;

    fn input() -> Tensor {
        Tensor::from_fn(Shape4::new(2, 4, 4, 4), |n, c, h, w| {
            ((n + c + h * 2 + w) % 5) as f32 / 5.0 - 0.3
        })
    }

    #[test]
    fn doubles_spatial_extent() {
        let mut rng = seeded_rng(1);
        let mut l = FracConv2d::new(4, 2, 4, 2, 1, &mut rng);
        let x = input();
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), Shape4::new(2, 2, 8, 8));
        assert_eq!(l.output_shape(x.shape()), y.shape());
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = seeded_rng(2);
        let mut l = FracConv2d::new(2, 2, 4, 2, 1, &mut rng);
        let x = Tensor::from_fn(Shape4::new(1, 2, 3, 3), |_, c, h, w| {
            (c as f32 - h as f32 + w as f32) * 0.2
        });
        let y = l.forward(&x, true);
        let gin = l.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for &(c, h, w) in &[(0usize, 0usize, 0usize), (1, 2, 1)] {
            let mut xp = x.clone();
            xp.add_at(0, c, h, w, eps);
            let mut xm = x.clone();
            xm.add_at(0, c, h, w, -eps);
            let num = (l.forward(&xp, false).sum() - l.forward(&xm, false).sum()) / (2.0 * eps);
            assert!(
                (num - gin.at(0, c, h, w)).abs() < 1e-2,
                "numeric {num} vs {}",
                gin.at(0, c, h, w)
            );
        }
    }

    #[test]
    fn update_descends_loss() {
        let mut rng = seeded_rng(3);
        let mut l = FracConv2d::new(4, 2, 4, 2, 1, &mut rng);
        let x = input();
        let target = Tensor::zeros(l.output_shape(x.shape()));
        let y0 = l.forward(&x, true);
        let l0 = y0.squared_distance(&target);
        let g = (&y0 - &target).map(|v| 2.0 * v / y0.len() as f32);
        let _ = l.backward(&g);
        l.apply_update(1.0);
        let y1 = l.forward(&x, false);
        assert!(y1.squared_distance(&target) < l0);
    }

    #[test]
    fn spec_is_weighted_frac_conv() {
        let mut rng = seeded_rng(4);
        let l = FracConv2d::new(8, 4, 4, 2, 1, &mut rng);
        let spec = l.spec(Shape4::new(1, 8, 7, 7)).expect("weighted");
        assert!(matches!(spec, LayerSpec::FracConv { stride: 2, .. }));
        assert!(spec.is_weighted());
    }

    #[test]
    #[should_panic(expected = "must be < kernel")]
    fn rejects_oversized_pad() {
        let mut rng = seeded_rng(5);
        let _ = FracConv2d::new(1, 1, 3, 2, 3, &mut rng);
    }
}
