//! Pooling layer (max and average) — paper §II-A.1.

use crate::{Layer, LayerClass, LayerSpec};
use reram_tensor::{ops, Shape4, Tensor};

/// Down-sampling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Pass the maximum element of each window (PipeLayer realizes this
    /// with a running-maximum register, §III-A.3 (c)).
    Max,
    /// Take the mean of each window.
    Avg,
}

/// Pooling over `k × k` windows with a fixed stride.
#[derive(Debug, Clone)]
pub struct Pool2d {
    kind: PoolKind,
    k: usize,
    stride: usize,
    cached: Option<PoolCache>,
}

#[derive(Debug, Clone)]
enum PoolCache {
    Max(ops::MaxPoolIndices),
    Avg(Shape4),
}

impl Pool2d {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn new(kind: PoolKind, k: usize, stride: usize) -> Self {
        assert!(k > 0 && stride > 0, "zero pooling extent");
        Self {
            kind,
            k,
            stride,
            cached: None,
        }
    }

    /// Standard non-overlapping max pool of window `k`.
    pub fn max(k: usize) -> Self {
        Self::new(PoolKind::Max, k, k)
    }

    /// Standard non-overlapping average pool of window `k`.
    pub fn avg(k: usize) -> Self {
        Self::new(PoolKind::Avg, k, k)
    }
}

impl Layer for Pool2d {
    fn name(&self) -> &'static str {
        match self.kind {
            PoolKind::Max => "max_pool",
            PoolKind::Avg => "avg_pool",
        }
    }

    fn class(&self) -> LayerClass {
        LayerClass::Auxiliary
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        match self.kind {
            PoolKind::Max => {
                let (y, idx) = ops::max_pool2d(input, self.k, self.stride);
                if train {
                    self.cached = Some(PoolCache::Max(idx));
                }
                y
            }
            PoolKind::Avg => {
                if train {
                    self.cached = Some(PoolCache::Avg(input.shape()));
                }
                ops::avg_pool2d(input, self.k, self.stride)
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self
            .cached
            .as_ref()
            // lint:allow(panic) Layer trait contract — backward follows a training forward
            .expect("pool backward before forward(train=true)")
        {
            PoolCache::Max(idx) => ops::max_pool2d_backward(grad_out, idx),
            PoolCache::Avg(shape) => {
                ops::avg_pool2d_backward(grad_out, *shape, self.k, self.stride)
            }
        }
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        let (oh, ow) = ops::pool_output_hw(input.h, input.w, self.k, self.stride);
        Shape4::new(input.n, input.c, oh, ow)
    }

    fn spec(&self, input: Shape4) -> Option<LayerSpec> {
        Some(LayerSpec::Pool {
            c: input.c,
            k: self.k,
            stride: self.stride,
            in_h: input.h,
            in_w: input.w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Tensor {
        Tensor::from_fn(Shape4::new(1, 2, 4, 4), |_, c, h, w| {
            (c * 16 + h * 4 + w) as f32
        })
    }

    #[test]
    fn max_pool_layer_forward() {
        let mut l = Pool2d::max(2);
        let y = l.forward(&input(), false);
        assert_eq!(y.shape(), Shape4::new(1, 2, 2, 2));
        assert_eq!(y.at(0, 0, 0, 0), 5.0);
        assert_eq!(y.at(0, 1, 1, 1), 31.0);
    }

    #[test]
    fn avg_pool_layer_forward() {
        let mut l = Pool2d::avg(2);
        let y = l.forward(&input(), false);
        assert_eq!(y.at(0, 0, 0, 0), 2.5);
    }

    #[test]
    fn max_backward_gradient_mass() {
        let mut l = Pool2d::max(2);
        let x = input();
        let y = l.forward(&x, true);
        let gin = l.backward(&Tensor::ones(y.shape()));
        assert_eq!(gin.shape(), x.shape());
        assert_eq!(gin.sum(), y.len() as f32);
    }

    #[test]
    fn avg_backward_gradient_mass() {
        let mut l = Pool2d::avg(2);
        let x = input();
        let y = l.forward(&x, true);
        let gin = l.backward(&Tensor::ones(y.shape()));
        assert!((gin.sum() - y.len() as f32).abs() < 1e-5);
    }

    #[test]
    fn output_shape_and_spec() {
        let l = Pool2d::max(2);
        let s = Shape4::new(4, 8, 28, 28);
        assert_eq!(l.output_shape(s), Shape4::new(4, 8, 14, 14));
        assert!(matches!(l.spec(s), Some(LayerSpec::Pool { k: 2, .. })));
        assert_eq!(l.class(), LayerClass::Auxiliary);
    }
}
