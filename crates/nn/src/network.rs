//! Sequential network container with batched training semantics.

use crate::losses::{accuracy, softmax_cross_entropy};
use crate::{Layer, LayerClass, NetworkSpec};
use reram_tensor::{Shape4, Tensor};

/// A sequential stack of layers with the paper's batched-update training
/// semantics: gradients accumulate across the examples of a batch and are
/// applied once per batch ("the weight updates due to each input are stored
/// and only applied at the end of a batch", §III-A.2).
#[derive(Debug)]
pub struct Network {
    name: String,
    /// Per-entry input shape (batch extent is taken from the data).
    input_shape: Shape4,
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates an empty network expecting inputs shaped like `input_shape`
    /// per batch entry (its `n` extent is ignored).
    pub fn new(name: impl Into<String>, input_shape: Shape4) -> Self {
        Self {
            name: name.into(),
            input_shape: input_shape.with_batch(1),
            layers: Vec::new(),
        }
    }

    /// Appends a layer; builder-style.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Network display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers (all kinds).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of weighted layers — the paper's `L`.
    pub fn weighted_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.class() == LayerClass::Weighted)
            .count()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Per-entry input shape.
    pub fn input_shape(&self) -> Shape4 {
        self.input_shape
    }

    /// Output shape for a batch of `n` entries.
    pub fn output_shape(&self, n: usize) -> Shape4 {
        let mut s = self.input_shape.with_batch(n);
        for l in &self.layers {
            s = l.output_shape(s);
        }
        s
    }

    /// Runs the network forward.
    ///
    /// # Panics
    ///
    /// Panics if the input's per-entry shape disagrees with the network's.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            input.shape().with_batch(1),
            self.input_shape,
            "input shape {} does not match network input {}",
            input.shape(),
            self.input_shape
        );
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x, train);
        }
        x
    }

    /// Back-propagates a loss gradient through every layer, accumulating
    /// parameter gradients. Returns the gradient w.r.t. the network input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// Applies all accumulated gradients (one "weight update cycle").
    pub fn apply_update(&mut self, lr: f32) {
        for l in &mut self.layers {
            l.apply_update(lr);
        }
    }

    /// Discards accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Clamps every trainable parameter to `[-limit, limit]` (WGAN critic
    /// weight clipping).
    pub fn clip_weights(&mut self, limit: f32) {
        for l in &mut self.layers {
            l.clip_weights(limit);
        }
    }

    /// Sets the SGD momentum coefficient on every layer (`0.0` = plain SGD).
    ///
    /// # Panics
    ///
    /// Panics if `mu` is outside `[0, 1)`.
    pub fn set_momentum(&mut self, mu: f32) {
        assert!((0.0..1.0).contains(&mu), "momentum {mu} outside [0, 1)");
        for l in &mut self.layers {
            l.set_momentum(mu);
        }
    }

    /// One supervised training step on a classification batch: forward,
    /// softmax cross-entropy, backward, update. Returns `(loss, accuracy)`.
    pub fn train_batch(&mut self, input: &Tensor, labels: &[usize], lr: f32) -> (f32, f32) {
        let logits = self.forward(input, true);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        let acc = accuracy(&logits, labels);
        self.backward(&grad);
        self.apply_update(lr);
        (loss, acc)
    }

    /// Classifies a batch, returning the argmax class per entry.
    pub fn predict(&mut self, input: &Tensor) -> Vec<usize> {
        let logits = self.forward(input, false);
        let s = logits.shape();
        (0..s.n)
            .map(|n| {
                (0..s.c)
                    .max_by(|&a, &b| {
                        logits
                            .at(n, a, 0, 0)
                            .partial_cmp(&logits.at(n, b, 0, 0))
                            // lint:allow(panic) loss/logits are NaN-free by construction
                            .expect("finite logits")
                    })
                    // lint:allow(panic) networks always have a positive class count
                    .expect("non-empty logits")
            })
            .collect()
    }

    /// Extracts the geometry description for the cost models.
    pub fn spec(&self) -> NetworkSpec {
        let mut shape = self.input_shape;
        let mut specs = Vec::new();
        for l in &self.layers {
            if let Some(s) = l.spec(shape) {
                specs.push(s);
            }
            shape = l.output_shape(shape);
        }
        NetworkSpec::new(self.name.clone(), self.input_shape, specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{ActivationLayer, Conv2d, Flatten, Linear, Pool2d};
    use reram_tensor::init::seeded_rng;

    fn tiny_cnn() -> Network {
        let mut rng = seeded_rng(1);
        Network::new("tiny", Shape4::new(1, 1, 8, 8))
            .push(Conv2d::new(1, 4, 3, 1, 1, &mut rng))
            .push(ActivationLayer::relu())
            .push(Pool2d::max(2))
            .push(Flatten::new())
            .push(Linear::new(4 * 4 * 4, 3, &mut rng))
    }

    #[test]
    fn forward_shape() {
        let mut net = tiny_cnn();
        let x = Tensor::ones(Shape4::new(5, 1, 8, 8));
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), Shape4::new(5, 3, 1, 1));
        assert_eq!(net.output_shape(5), y.shape());
    }

    #[test]
    fn counts() {
        let net = tiny_cnn();
        assert_eq!(net.len(), 5);
        assert_eq!(net.weighted_layer_count(), 2);
        assert_eq!(net.param_count(), (4 * 9 + 4) + (64 * 3 + 3));
        assert!(!net.is_empty());
    }

    #[test]
    fn spec_tracks_shapes() {
        let net = tiny_cnn();
        let spec = net.spec();
        assert_eq!(spec.weighted_layer_count(), 2);
        // Flatten contributes no spec; conv, relu, pool, fc do.
        assert_eq!(spec.layers.len(), 4);
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let mut net = tiny_cnn();
        let mut rng = seeded_rng(2);
        let x = reram_tensor::init::uniform(Shape4::new(6, 1, 8, 8), -1.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0, 1, 2];
        let (first_loss, _) = net.train_batch(&x, &labels, 0.05);
        let mut last = first_loss;
        for _ in 0..30 {
            let (loss, _) = net.train_batch(&x, &labels, 0.05);
            last = loss;
        }
        assert!(
            last < first_loss * 0.5,
            "loss did not halve: {first_loss} -> {last}"
        );
    }

    #[test]
    fn predict_matches_argmax() {
        let mut net = tiny_cnn();
        let x = Tensor::ones(Shape4::new(2, 1, 8, 8));
        let preds = net.predict(&x);
        let logits = net.forward(&x, false);
        for (n, &p) in preds.iter().enumerate() {
            for c in 0..3 {
                assert!(logits.at(n, p, 0, 0) >= logits.at(n, c, 0, 0));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match network input")]
    fn forward_rejects_wrong_shape() {
        let mut net = tiny_cnn();
        let _ = net.forward(&Tensor::ones(Shape4::new(1, 1, 9, 9)), false);
    }

    #[test]
    fn network_is_send() {
        // Networks are dispatched to worker threads in sweep harnesses
        // (C-SEND-SYNC); Layer being a plain data trait keeps this true.
        fn assert_send<T: Send>() {}
        // Compile-time check only: a Box<dyn Layer> must be Send for the
        // container to be.
        assert_send::<crate::layers::Linear>();
        assert_send::<crate::layers::Conv2d>();
    }

    #[test]
    fn momentum_accelerates_descent_on_quadratic() {
        // Same network, same fixed batch: momentum SGD reaches a lower loss
        // than plain SGD in the same number of steps on this convex-ish
        // problem.
        let run = |mu: f32| {
            let mut net = tiny_cnn();
            if mu > 0.0 {
                net.set_momentum(mu);
            }
            let mut rng = seeded_rng(7);
            let x = reram_tensor::init::uniform(Shape4::new(6, 1, 8, 8), -1.0, 1.0, &mut rng);
            let labels = [0usize, 1, 2, 0, 1, 2];
            let mut last = f32::INFINITY;
            for _ in 0..15 {
                let (loss, _) = net.train_batch(&x, &labels, 0.01);
                last = loss;
            }
            last
        };
        let plain = run(0.0);
        let momentum = run(0.9);
        assert!(
            momentum < plain,
            "momentum {momentum} should beat plain {plain}"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn rejects_bad_momentum() {
        tiny_cnn().set_momentum(1.5);
    }

    #[test]
    fn zero_grad_discards_pending_updates() {
        let mut net = tiny_cnn();
        let x = Tensor::ones(Shape4::new(2, 1, 8, 8));
        let y0 = net.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&y0, &[0, 1]);
        net.backward(&grad);
        net.zero_grad();
        net.apply_update(1.0);
        let y1 = net.forward(&x, false);
        assert_eq!(y0, y1, "update after zero_grad must be a no-op");
    }
}
