//! Loss functions: the "error between the network output and its
//! corresponding expected output" (§II-A.2), with analytic gradients that
//! seed the back-propagation pipeline.

#[cfg(test)]
use reram_tensor::Shape4;
use reram_tensor::Tensor;

/// Mean softmax cross-entropy over a batch of logits.
///
/// `logits` is `(n, classes, 1, 1)`; `labels[i]` is entry `i`'s class.
/// Returns the mean loss and the gradient w.r.t. the logits (already
/// divided by the batch size).
///
/// # Panics
///
/// Panics if `labels.len() != n` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let s = logits.shape();
    assert_eq!(s.h * s.w, 1, "logits must be vectors, got {s}");
    assert_eq!(labels.len(), s.n, "one label per batch entry");
    let classes = s.c;
    let mut grad = Tensor::zeros(s);
    let mut loss = 0.0f32;
    for (n, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range {classes}");
        // Numerically stable softmax.
        let mut max = f32::NEG_INFINITY;
        for c in 0..classes {
            max = max.max(logits.at(n, c, 0, 0));
        }
        let mut denom = 0.0f32;
        for c in 0..classes {
            denom += (logits.at(n, c, 0, 0) - max).exp();
        }
        let log_denom = denom.ln();
        loss += -(logits.at(n, label, 0, 0) - max - log_denom);
        for c in 0..classes {
            let p = (logits.at(n, c, 0, 0) - max).exp() / denom;
            let target = if c == label { 1.0 } else { 0.0 };
            grad.set(n, c, 0, 0, (p - target) / s.n as f32);
        }
    }
    (loss / s.n as f32, grad)
}

/// Mean binary cross-entropy on logits (the GAN loss of §III-B.2).
///
/// `logits` is `(n, 1, 1, 1)`; `targets[i] ∈ {0, 1}` is the label — `1` for
/// real/“fool the discriminator”, `0` for generated. Returns the mean loss
/// and the gradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn bce_with_logits(logits: &Tensor, targets: &[f32]) -> (f32, Tensor) {
    let s = logits.shape();
    assert_eq!(s.c * s.h * s.w, 1, "bce expects scalar logits, got {s}");
    assert_eq!(targets.len(), s.n, "one target per batch entry");
    let mut grad = Tensor::zeros(s);
    let mut loss = 0.0f32;
    for (n, &t) in targets.iter().enumerate() {
        let x = logits.at(n, 0, 0, 0);
        // Stable: log(1 + e^-|x|) + max(x, 0) - x t
        loss += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        let sigma = 1.0 / (1.0 + (-x).exp());
        grad.set(n, 0, 0, 0, (sigma - t) / s.n as f32);
    }
    (loss / s.n as f32, grad)
}

/// Mean squared error and its gradient.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let loss = pred.squared_distance(target) / n;
    let grad = pred.zip_map(target, |p, t| 2.0 * (p - t) / n);
    (loss, grad)
}

/// Wasserstein critic loss (WGAN, paper reference \[11\]):
/// `-(mean(real_scores) - mean(fake_scores))`, to be *minimized* by the
/// critic. Returns the loss and the gradients w.r.t. the real and fake
/// score tensors (each `(n, 1, 1, 1)`).
///
/// # Panics
///
/// Panics if either tensor is not a batch of scalar scores.
pub fn wasserstein_critic(real_scores: &Tensor, fake_scores: &Tensor) -> (f32, Tensor, Tensor) {
    for s in [real_scores.shape(), fake_scores.shape()] {
        assert_eq!(
            s.batch_stride(),
            1,
            "wasserstein expects scalar scores, got {s}"
        );
    }
    let loss = fake_scores.mean() - real_scores.mean();
    let nr = real_scores.shape().n as f32;
    let nf = fake_scores.shape().n as f32;
    let grad_real = Tensor::filled(real_scores.shape(), -1.0 / nr);
    let grad_fake = Tensor::filled(fake_scores.shape(), 1.0 / nf);
    (loss, grad_real, grad_fake)
}

/// Wasserstein generator loss: `-mean(fake_scores)`, minimized by the
/// generator. Returns the loss and the gradient w.r.t. the fake scores.
///
/// # Panics
///
/// Panics if the tensor is not a batch of scalar scores.
pub fn wasserstein_generator(fake_scores: &Tensor) -> (f32, Tensor) {
    let s = fake_scores.shape();
    assert_eq!(
        s.batch_stride(),
        1,
        "wasserstein expects scalar scores, got {s}"
    );
    let grad = Tensor::filled(s, -1.0 / s.n as f32);
    (-fake_scores.mean(), grad)
}

/// Fraction of batch entries whose argmax logit equals the label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let s = logits.shape();
    assert_eq!(labels.len(), s.n, "one label per batch entry");
    let mut correct = 0usize;
    for (n, &label) in labels.iter().enumerate() {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for c in 0..s.c {
            let v = logits.at(n, c, 0, 0);
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        correct += (best == label) as usize;
    }
    correct as f32 / s.n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_ce_uniform_logits() {
        let logits = Tensor::zeros(Shape4::new(2, 4, 1, 1));
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
        // Gradient sums to zero per entry.
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    fn softmax_ce_confident_correct_is_small() {
        let mut logits = Tensor::zeros(Shape4::new(1, 3, 1, 1));
        logits.set(0, 1, 0, 0, 10.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn softmax_ce_gradient_numeric() {
        let logits = Tensor::from_vec(
            Shape4::new(2, 3, 1, 1),
            vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0],
        );
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-2;
        for &(n, c) in &[(0usize, 0usize), (1, 2), (0, 2)] {
            let mut lp = logits.clone();
            lp.add_at(n, c, 0, 0, eps);
            let mut lm = logits.clone();
            lm.add_at(n, c, 0, 0, -eps);
            let num = (softmax_cross_entropy(&lp, &labels).0
                - softmax_cross_entropy(&lm, &labels).0)
                / (2.0 * eps);
            assert!((num - grad.at(n, c, 0, 0)).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_ce_stable_for_large_logits() {
        let logits = Tensor::from_vec(Shape4::new(1, 2, 1, 1), vec![1000.0, -1000.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite() && loss < 1e-3);
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn bce_matches_manual() {
        let logits = Tensor::from_vec(Shape4::new(2, 1, 1, 1), vec![0.0, 0.0]);
        let (loss, grad) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!((loss - 2.0f32.ln()).abs() < 1e-5);
        assert!((grad.at(0, 0, 0, 0) + 0.25).abs() < 1e-5);
        assert!((grad.at(1, 0, 0, 0) - 0.25).abs() < 1e-5);
    }

    #[test]
    fn bce_gradient_numeric() {
        let logits = Tensor::from_vec(Shape4::new(3, 1, 1, 1), vec![0.7, -1.2, 2.0]);
        let targets = [1.0f32, 0.0, 0.0];
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-2;
        for n in 0..3 {
            let mut lp = logits.clone();
            lp.add_at(n, 0, 0, 0, eps);
            let mut lm = logits.clone();
            lm.add_at(n, 0, 0, 0, -eps);
            let num =
                (bce_with_logits(&lp, &targets).0 - bce_with_logits(&lm, &targets).0) / (2.0 * eps);
            assert!((num - grad.at(n, 0, 0, 0)).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let logits = Tensor::from_vec(Shape4::new(2, 1, 1, 1), vec![500.0, -500.0]);
        let (loss, _) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss.is_finite() && loss < 1e-3);
    }

    #[test]
    fn mse_and_gradient() {
        let a = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![1.0, 3.0]);
        let b = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.0, 0.0]);
        let (loss, grad) = mse(&a, &b);
        assert!((loss - 5.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 3.0]);
    }

    #[test]
    fn wasserstein_critic_loss_and_grads() {
        let real = Tensor::from_vec(Shape4::new(2, 1, 1, 1), vec![2.0, 4.0]);
        let fake = Tensor::from_vec(Shape4::new(2, 1, 1, 1), vec![1.0, 1.0]);
        let (loss, gr, gf) = wasserstein_critic(&real, &fake);
        assert!((loss - (1.0 - 3.0)).abs() < 1e-6);
        assert!(gr.data().iter().all(|&g| (g + 0.5).abs() < 1e-6));
        assert!(gf.data().iter().all(|&g| (g - 0.5).abs() < 1e-6));
    }

    #[test]
    fn wasserstein_generator_loss_and_grad() {
        let fake = Tensor::from_vec(Shape4::new(4, 1, 1, 1), vec![1.0, 2.0, 3.0, 4.0]);
        let (loss, g) = wasserstein_generator(&fake);
        assert!((loss + 2.5).abs() < 1e-6);
        assert!(g.data().iter().all(|&v| (v + 0.25).abs() < 1e-6));
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Tensor::from_vec(Shape4::new(2, 3, 1, 1), vec![0.1, 0.9, 0.0, 0.8, 0.1, 0.1]);
        assert_eq!(accuracy(&logits, &[1, 0]), 1.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }
}
