//! Execution backends for matrix-multiply layers.
//!
//! The functional network can run its forward matrix products either in
//! plain floating point or *through the ReRAM crossbar model* — quantized,
//! bit-sliced, spike-coded, optionally noisy. The latter closes the loop
//! between the algorithmic substrate and the hardware substrate: training a
//! network with [`LinearEngine::crossbar`] demonstrates the in-situ compute
//! path PipeLayer relies on, including the reprogramming performed at every
//! weight update (§III-A.3 (a): "in weight update, [the spike driver]
//! serves as write driver to tune weights stored in the ReRAM array").
//!
//! By default backward passes stay in floating point: the forward
//! quantization is what determines functional fidelity (quantization-aware
//! training), while the *cost* of backward crossbar passes is accounted by
//! the architectural model in `reram-core`. [`LinearEngine::crossbar_full`]
//! additionally runs the *error back-propagation* product through a second,
//! transposed crossbar copy — exactly how PipeLayer supports training: the
//! backward pass "can be simply realized through matrix multiplication"
//! with the transposed weights kept in their own arrays (§II-A.2). The
//! weight-gradient outer product stays in floating point (it is an
//! accumulation, not an MVM, and uses different hardware). These
//! substitutions are recorded in DESIGN.md.

use reram_crossbar::{CrossbarConfig, TiledMatrix};
use reram_tensor::{ops, Matrix};

/// Strategy for computing `y = x W^T + b` inside weighted layers.
///
/// The `Crossbar` variant is much larger than `Float`, but exactly one
/// engine lives per weighted layer, so the footprint is irrelevant and a
/// box would only add indirection.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum LinearEngine {
    /// Exact floating-point products.
    Float,
    /// Products through the tiled ReRAM crossbar model.
    Crossbar {
        /// Array geometry/precision configuration.
        config: CrossbarConfig,
        /// Programmed weight grid; `None` until the first forward.
        tiled: Option<TiledMatrix>,
        /// Transposed weight grid for error back-propagation; `None` unless
        /// the engine was built with [`LinearEngine::crossbar_full`] and a
        /// backward product ran.
        tiled_t: Option<TiledMatrix>,
        /// Whether backward products also go through crossbars.
        backward_on_crossbar: bool,
        /// Set when the layer's weights changed since the forward grid was
        /// last programmed.
        dirty: bool,
        /// Same, for the transposed grid (the two grids are touched by
        /// different passes, so each tracks staleness independently).
        dirty_t: bool,
        /// Reprogram operations performed by *previous* lives of this
        /// engine: a clone drops its live grids (they reprogram lazily) but
        /// carries the count forward so endurance accounting survives the
        /// clone-heavy training loops.
        reprograms_prior: u64,
    },
}

impl LinearEngine {
    /// Floating-point engine.
    pub fn float() -> Self {
        LinearEngine::Float
    }

    /// Crossbar engine: forward products on crossbars, backward in float.
    pub fn crossbar(config: CrossbarConfig) -> Self {
        LinearEngine::Crossbar {
            config,
            tiled: None,
            tiled_t: None,
            backward_on_crossbar: false,
            dirty: true,
            dirty_t: true,
            reprograms_prior: 0,
        }
    }

    /// Crossbar engine that also routes the error back-propagation product
    /// through a transposed weight copy (PipeLayer's training datapath).
    pub fn crossbar_full(config: CrossbarConfig) -> Self {
        LinearEngine::Crossbar {
            config,
            tiled: None,
            tiled_t: None,
            backward_on_crossbar: true,
            dirty: true,
            dirty_t: true,
            reprograms_prior: 0,
        }
    }

    /// Whether this engine routes products through the crossbar model.
    pub fn is_crossbar(&self) -> bool {
        matches!(self, LinearEngine::Crossbar { .. })
    }

    /// Marks the weights as changed; the crossbar grids reprogram on their
    /// next product (a PipeLayer weight-update cycle).
    pub fn invalidate(&mut self) {
        if let LinearEngine::Crossbar { dirty, dirty_t, .. } = self {
            *dirty = true;
            *dirty_t = true;
        }
    }

    /// Physical arrays currently programmed (0 for the float engine or
    /// before the first product).
    pub fn array_count(&self) -> usize {
        match self {
            LinearEngine::Crossbar { tiled, tiled_t, .. } => {
                tiled.as_ref().map_or(0, TiledMatrix::array_count)
                    + tiled_t.as_ref().map_or(0, TiledMatrix::array_count)
            }
            LinearEngine::Float => 0,
        }
    }

    /// Grid reprogramming operations performed by the *live* forward grid
    /// (resets when the engine is cloned — see [`LinearEngine::reprograms_total`]).
    pub fn reprogram_count(&self) -> u64 {
        match self {
            LinearEngine::Crossbar { tiled: Some(t), .. } => t.reprogram_count(),
            _ => 0,
        }
    }

    /// Cumulative forward-grid reprogram operations across the engine's
    /// whole lineage, *including* lives discarded by [`Clone`]. This is the
    /// counter endurance accounting should read: cloning a layer (e.g. to
    /// compare float vs crossbar execution, or to snapshot a model) must not
    /// silently erase wear already inflicted on the cells.
    pub fn reprograms_total(&self) -> u64 {
        match self {
            LinearEngine::Crossbar {
                reprograms_prior, ..
            } => reprograms_prior + self.reprogram_count(),
            LinearEngine::Float => 0,
        }
    }

    /// Computes `y = x W^T + b` where `x` is `(batch × in)` and `w` is
    /// `(out × in)`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are inconsistent.
    pub fn matmul(&mut self, x: &Matrix, w: &Matrix, bias: Option<&[f32]>) -> Matrix {
        match self {
            LinearEngine::Float => ops::linear(x, w, bias),
            LinearEngine::Crossbar {
                config,
                tiled,
                dirty,
                ..
            } => {
                match tiled {
                    Some(t) if *dirty => {
                        // Weight update: tune only the changed cells, as the
                        // write driver does in hardware.
                        t.reprogram_delta(w);
                        *dirty = false;
                    }
                    Some(_) => {}
                    None => {
                        *tiled = Some(TiledMatrix::program(w, config));
                        *dirty = false;
                    }
                }
                // lint:allow(panic) the branch above just populated the grid
                let t = tiled.as_mut().expect("grid just programmed");
                let mut y = t.matmul_rows(x);
                if let Some(b) = bias {
                    assert_eq!(b.len(), w.rows(), "bias length vs out features");
                    for r in 0..y.rows() {
                        for (c, bv) in b.iter().enumerate() {
                            y.set(r, c, y.at(r, c) + bv);
                        }
                    }
                }
                y
            }
        }
    }

    /// Computes the error back-propagation product `G W` where `g` is
    /// `(batch × out)` and `w` is `(out × in)`.
    ///
    /// On a [`LinearEngine::crossbar_full`] engine this runs through a
    /// transposed weight copy programmed into its own arrays; otherwise it
    /// is the exact float product. The transposed grid reprograms together
    /// with the forward grid on weight updates.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are inconsistent.
    pub fn matmul_backward(&mut self, g: &Matrix, w: &Matrix) -> Matrix {
        match self {
            LinearEngine::Crossbar {
                config,
                tiled_t,
                backward_on_crossbar: true,
                dirty_t,
                ..
            } => {
                match tiled_t {
                    Some(t) if *dirty_t => {
                        t.reprogram_delta(&w.transposed());
                        *dirty_t = false;
                    }
                    Some(_) => {}
                    None => {
                        *tiled_t = Some(TiledMatrix::program(&w.transposed(), config));
                        *dirty_t = false;
                    }
                }
                tiled_t
                    .as_mut()
                    // lint:allow(panic) the branch above just populated the grid
                    .expect("transposed grid just programmed")
                    .matmul_rows(g)
            }
            _ => ops::linear_backward_input(g, w),
        }
    }
}

impl Clone for LinearEngine {
    /// Cloning resets *live* crossbar state (the clone reprograms lazily);
    /// the configuration and backward mode are preserved, and the
    /// cumulative reprogram count carries over so
    /// [`LinearEngine::reprograms_total`] is monotone across clones.
    fn clone(&self) -> Self {
        match self {
            LinearEngine::Float => LinearEngine::Float,
            LinearEngine::Crossbar {
                config,
                backward_on_crossbar,
                ..
            } => {
                let mut clone = if *backward_on_crossbar {
                    LinearEngine::crossbar_full(config.clone())
                } else {
                    LinearEngine::crossbar(config.clone())
                };
                if let LinearEngine::Crossbar {
                    reprograms_prior, ..
                } = &mut clone
                {
                    *reprograms_prior = self.reprograms_total();
                }
                clone
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_tensor::Shape2;

    fn w() -> Matrix {
        Matrix::from_fn(Shape2::new(6, 10), |r, c| {
            ((r * 13 + c * 7) % 17) as f32 / 17.0 - 0.5
        })
    }

    fn x() -> Matrix {
        Matrix::from_fn(Shape2::new(3, 10), |r, c| ((r + c) % 9) as f32 / 9.0 - 0.4)
    }

    #[test]
    fn float_engine_is_exact_linear() {
        let mut e = LinearEngine::float();
        let y = e.matmul(&x(), &w(), None);
        assert_eq!(y, ops::linear(&x(), &w(), None));
        assert!(!e.is_crossbar());
        assert_eq!(e.array_count(), 0);
    }

    #[test]
    fn crossbar_engine_close_to_float() {
        let mut e = LinearEngine::crossbar(CrossbarConfig::default());
        let bias = [0.1, -0.2, 0.3, 0.0, 0.05, -0.05];
        let yc = e.matmul(&x(), &w(), Some(&bias));
        let yf = ops::linear(&x(), &w(), Some(&bias));
        assert!(e.is_crossbar());
        assert!(e.array_count() > 0);
        for i in 0..yc.rows() {
            for j in 0..yc.cols() {
                assert!(
                    (yc.at(i, j) - yf.at(i, j)).abs() < 0.02,
                    "({i},{j}): {} vs {}",
                    yc.at(i, j),
                    yf.at(i, j)
                );
            }
        }
    }

    #[test]
    fn invalidate_triggers_reprogram() {
        let mut e = LinearEngine::crossbar(CrossbarConfig::default());
        let _ = e.matmul(&x(), &w(), None);
        assert_eq!(e.reprogram_count(), 0);
        e.invalidate();
        let mut w2 = w();
        w2.set(0, 0, 5.0);
        let y2 = e.matmul(&x(), &w2, None);
        assert_eq!(e.reprogram_count(), 1);
        let yf = ops::linear(&x(), &w2, None);
        assert!((y2.at(0, 0) - yf.at(0, 0)).abs() < 0.1);
    }

    #[test]
    fn unchanged_weights_do_not_reprogram() {
        let mut e = LinearEngine::crossbar(CrossbarConfig::default());
        let _ = e.matmul(&x(), &w(), None);
        let _ = e.matmul(&x(), &w(), None);
        assert_eq!(e.reprogram_count(), 0);
    }

    #[test]
    fn clone_preserves_kind() {
        let e = LinearEngine::crossbar(CrossbarConfig::default());
        assert!(e.clone().is_crossbar());
        assert!(!LinearEngine::float().clone().is_crossbar());
    }

    #[test]
    fn clone_carries_cumulative_reprogram_count() {
        let mut e = LinearEngine::crossbar(CrossbarConfig::default());
        let _ = e.matmul(&x(), &w(), None);
        e.invalidate();
        let mut w2 = w();
        w2.set(0, 0, 3.0);
        let _ = e.matmul(&x(), &w2, None);
        assert_eq!(e.reprogram_count(), 1);
        assert_eq!(e.reprograms_total(), 1);

        let mut c = e.clone();
        // Live count resets (the clone has no programmed grid yet) but the
        // cumulative total survives.
        assert_eq!(c.reprogram_count(), 0);
        assert_eq!(c.reprograms_total(), 1);

        // Wear inflicted by the clone accumulates on top.
        let _ = c.matmul(&x(), &w2, None);
        c.invalidate();
        let mut w3 = w2.clone();
        w3.set(1, 1, -2.0);
        let _ = c.matmul(&x(), &w3, None);
        assert_eq!(c.reprogram_count(), 1);
        assert_eq!(c.reprograms_total(), 2);

        // A second-generation clone still sees the whole lineage.
        assert_eq!(c.clone().reprograms_total(), 2);
        assert_eq!(LinearEngine::float().reprograms_total(), 0);
    }

    #[test]
    fn backward_on_crossbar_close_to_float() {
        let mut full = LinearEngine::crossbar_full(CrossbarConfig::default());
        let g = Matrix::from_fn(Shape2::new(3, 6), |r, c| {
            ((r * 3 + c) % 7) as f32 / 7.0 - 0.4
        });
        let got = full.matmul_backward(&g, &w());
        let want = ops::linear_backward_input(&g, &w());
        assert_eq!(got.shape(), want.shape());
        for i in 0..got.rows() {
            for j in 0..got.cols() {
                assert!(
                    (got.at(i, j) - want.at(i, j)).abs() < 0.02,
                    "({i},{j}): {} vs {}",
                    got.at(i, j),
                    want.at(i, j)
                );
            }
        }
        // Two grids are provisioned: forward (lazily, none yet) + transposed.
        assert!(full.array_count() > 0);
    }

    #[test]
    fn plain_crossbar_backward_is_exact_float() {
        let mut e = LinearEngine::crossbar(CrossbarConfig::default());
        let g = Matrix::from_fn(Shape2::new(2, 6), |r, c| (r + c) as f32 * 0.1);
        let got = e.matmul_backward(&g, &w());
        assert_eq!(got, ops::linear_backward_input(&g, &w()));
    }

    #[test]
    fn transposed_grid_tracks_weight_updates() {
        let mut e = LinearEngine::crossbar_full(CrossbarConfig::default());
        let g = Matrix::from_fn(Shape2::new(1, 6), |_, c| if c == 0 { 1.0 } else { 0.0 });
        let w1 = w();
        let b1 = e.matmul_backward(&g, &w1);
        // Update the weights, invalidate, and check backward follows.
        let mut w2 = w1.clone();
        for v in w2.data_mut() {
            *v *= 2.0;
        }
        e.invalidate();
        let b2 = e.matmul_backward(&g, &w2);
        for (a, b) in b1.data().iter().zip(b2.data()) {
            assert!((2.0 * a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn clone_preserves_backward_mode() {
        let e = LinearEngine::crossbar_full(CrossbarConfig::default());
        let mut c = e.clone();
        // The clone still routes backward through crossbars: programming a
        // grid on first use gives a non-zero array count afterwards.
        let g = Matrix::from_fn(Shape2::new(1, 6), |_, _| 0.5);
        let _ = c.matmul_backward(&g, &w());
        assert!(c.array_count() > 0);
    }
}
