//! Elementwise activation functions and their derivatives.
//!
//! PipeLayer implements the "activation function defined in CNN algorithms"
//! in peripheral circuitry (§III-A.3 (c)); ReGAN realizes activations with a
//! *configurable look-up table* after the differential subtractor
//! (Fig. 10 Ⓑ). [`LutActivation`] models that LUT: any scalar function
//! sampled over a range, evaluated by nearest-entry lookup, so experiments
//! can quantify the LUT-resolution/accuracy trade-off.

/// A scalar activation function with a known derivative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit: `max(0, x)` — "the common used function".
    Relu,
    /// Leaky ReLU with slope 0.01 for negative inputs (DCGAN discriminator).
    LeakyRelu,
    /// Logistic sigmoid (GAN output probabilities).
    Sigmoid,
    /// Hyperbolic tangent (DCGAN generator output).
    Tanh,
}

impl Activation {
    /// Evaluates the function.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Evaluates the derivative *as a function of the input* `x`.
    pub fn derivative(&self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
    }
}

/// Look-up-table realization of an activation function (ReGAN Fig. 10 Ⓑ).
///
/// The function is sampled at `entries` points uniformly covering
/// `[lo, hi]`; evaluation returns the nearest sample. Inputs outside the
/// range clamp to the endpoints, mirroring the saturating analog front end.
#[derive(Debug, Clone, PartialEq)]
pub struct LutActivation {
    lo: f32,
    hi: f32,
    table: Vec<f32>,
}

impl LutActivation {
    /// Samples `f` over `[lo, hi]` with `entries` table entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `lo >= hi`.
    pub fn sample(f: impl Fn(f32) -> f32, lo: f32, hi: f32, entries: usize) -> Self {
        assert!(entries >= 2, "LUT needs at least 2 entries");
        assert!(lo < hi, "LUT range [{lo}, {hi}] is empty");
        let table = (0..entries)
            .map(|i| f(lo + (hi - lo) * i as f32 / (entries - 1) as f32))
            .collect();
        Self { lo, hi, table }
    }

    /// Builds a LUT for a named activation over `[lo, hi]`.
    pub fn of(activation: Activation, lo: f32, hi: f32, entries: usize) -> Self {
        Self::sample(|x| activation.apply(x), lo, hi, entries)
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Evaluates the LUT at `x` (nearest entry, clamped range).
    pub fn apply(&self, x: f32) -> f32 {
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = (t * (self.table.len() - 1) as f32).round() as usize;
        self.table[idx]
    }

    /// Worst-case absolute error vs. `f` over a dense sweep of the range.
    pub fn max_error(&self, f: impl Fn(f32) -> f32) -> f32 {
        let mut worst = 0.0f32;
        let steps = self.table.len() * 8;
        for i in 0..=steps {
            let x = self.lo + (self.hi - self.lo) * i as f32 / steps as f32;
            worst = worst.max((self.apply(x) - f(x)).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_values_and_derivative() {
        let a = Activation::Relu;
        assert_eq!(a.apply(3.0), 3.0);
        assert_eq!(a.apply(-3.0), 0.0);
        assert_eq!(a.derivative(3.0), 1.0);
        assert_eq!(a.derivative(-3.0), 0.0);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let a = Activation::LeakyRelu;
        assert_eq!(a.apply(-2.0), -0.02);
        assert_eq!(a.derivative(-2.0), 0.01);
        assert_eq!(a.apply(2.0), 2.0);
    }

    #[test]
    fn sigmoid_symmetry_and_derivative() {
        let a = Activation::Sigmoid;
        assert!((a.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((a.apply(2.0) + a.apply(-2.0) - 1.0).abs() < 1e-6);
        assert!((a.derivative(0.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_bounds() {
        let a = Activation::Tanh;
        assert!(a.apply(10.0) <= 1.0);
        assert!(a.apply(-10.0) >= -1.0);
        assert!((a.derivative(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn derivatives_match_numeric() {
        let eps = 1e-3;
        for a in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            for &x in &[-1.5f32, -0.2, 0.3, 1.7] {
                let num = (a.apply(x + eps) - a.apply(x - eps)) / (2.0 * eps);
                assert!(
                    (num - a.derivative(x)).abs() < 1e-2,
                    "{}: numeric {num} vs {}",
                    a.name(),
                    a.derivative(x)
                );
            }
        }
    }

    #[test]
    fn lut_approximates_sigmoid() {
        let lut = LutActivation::of(Activation::Sigmoid, -8.0, 8.0, 256);
        assert!(lut.max_error(|x| Activation::Sigmoid.apply(x)) < 0.02);
    }

    #[test]
    fn lut_error_shrinks_with_entries() {
        let coarse = LutActivation::of(Activation::Tanh, -4.0, 4.0, 16);
        let fine = LutActivation::of(Activation::Tanh, -4.0, 4.0, 512);
        let f = |x: f32| Activation::Tanh.apply(x);
        assert!(fine.max_error(f) < coarse.max_error(f) / 4.0);
    }

    #[test]
    fn lut_clamps_out_of_range() {
        let lut = LutActivation::of(Activation::Sigmoid, -4.0, 4.0, 64);
        assert_eq!(lut.apply(100.0), lut.apply(4.0));
        assert_eq!(lut.apply(-100.0), lut.apply(-4.0));
    }

    #[test]
    #[should_panic(expected = "at least 2 entries")]
    fn lut_rejects_tiny_table() {
        let _ = LutActivation::of(Activation::Relu, -1.0, 1.0, 1);
    }
}
