//! Model zoo: the workloads of the paper's evaluations.
//!
//! Two flavours live here:
//!
//! * **Functional models** (`mlp`, `lenet`, `small_cnn`, `dcgan`) — live
//!   [`Network`]s/[`Gan`]s that actually train; sized so the demonstrations
//!   run in seconds on a laptop.
//! * **Geometry specs** (`*_spec`) — [`NetworkSpec`]s of the paper-scale
//!   networks (MNIST CNNs, AlexNet/VGG-class ImageNet models, DCGAN at the
//!   four ReGAN dataset resolutions) used by the timing/energy experiments,
//!   which never materialize activations (see DESIGN.md, substitutions).

use crate::activations::Activation;
use crate::layers::{
    ActivationLayer, BatchNorm, Conv2d, Flatten, FracConv2d, Linear, NormMode, Pool2d,
};
use crate::{Gan, LayerSpec, Network, NetworkSpec};
use rand::Rng;
use reram_tensor::Shape4;

/// A multilayer perceptron with ReLU hidden layers.
pub fn mlp(inputs: usize, hidden: &[usize], outputs: usize, rng: &mut impl Rng) -> Network {
    let mut net = Network::new("mlp", Shape4::new(1, inputs, 1, 1));
    let mut prev = inputs;
    for &h in hidden {
        net.push_boxed(Box::new(Linear::new(prev, h, rng)));
        net.push_boxed(Box::new(ActivationLayer::relu()));
        prev = h;
    }
    net.push_boxed(Box::new(Linear::new(prev, outputs, rng)));
    net
}

/// LeNet-style CNN for 28×28 single-channel images, 10 classes — the
/// classic MNIST topology of PipeLayer's benchmark suite.
pub fn lenet(rng: &mut impl Rng) -> Network {
    Network::new("lenet", Shape4::new(1, 1, 28, 28))
        .push(Conv2d::new(1, 6, 5, 1, 2, rng))
        .push(ActivationLayer::relu())
        .push(Pool2d::max(2))
        .push(Conv2d::new(6, 16, 5, 1, 0, rng))
        .push(ActivationLayer::relu())
        .push(Pool2d::max(2))
        .push(Flatten::new())
        .push(Linear::new(16 * 5 * 5, 120, rng))
        .push(ActivationLayer::relu())
        .push(Linear::new(120, 84, rng))
        .push(ActivationLayer::relu())
        .push(Linear::new(84, 10, rng))
}

/// A compact CNN for `hw × hw` images with `in_c` channels.
///
/// # Panics
///
/// Panics if `hw` is not divisible by 4.
pub fn small_cnn(in_c: usize, hw: usize, classes: usize, rng: &mut impl Rng) -> Network {
    assert_eq!(hw % 4, 0, "small_cnn needs hw divisible by 4");
    Network::new("small_cnn", Shape4::new(1, in_c, hw, hw))
        .push(Conv2d::new(in_c, 8, 3, 1, 1, rng))
        .push(ActivationLayer::relu())
        .push(Pool2d::max(2))
        .push(Conv2d::new(8, 16, 3, 1, 1, rng))
        .push(ActivationLayer::relu())
        .push(Pool2d::max(2))
        .push(Flatten::new())
        .push(Linear::new(16 * (hw / 4) * (hw / 4), classes, rng))
}

/// DCGAN-style generator: latent vector → `out_c × hw × hw` image in
/// `[-1, 1]`, via an FC projection (mapped to ReRAM arrays per §III-B.4)
/// and a chain of fractional-strided convolutions (Fig. 7).
///
/// # Panics
///
/// Panics if `hw` is not a multiple of 4 at least 8.
pub fn dcgan_generator(
    latent: usize,
    base_c: usize,
    out_c: usize,
    hw: usize,
    rng: &mut impl Rng,
) -> Network {
    assert!(
        hw >= 8 && hw.is_multiple_of(4),
        "generator output {hw} must be 4k >= 8"
    );
    // Upsample twice: hw/4 -> hw/2 -> hw.
    let s0 = hw / 4;
    Network::new("dcgan_g", Shape4::new(1, latent, 1, 1))
        .push(Linear::new(latent, 2 * base_c * s0 * s0, rng))
        .push(Reshape::new(Shape4::new(1, 2 * base_c, s0, s0)))
        .push(BatchNorm::new(2 * base_c, NormMode::Virtual))
        .push(ActivationLayer::relu())
        .push(FracConv2d::new(2 * base_c, base_c, 4, 2, 1, rng))
        .push(BatchNorm::new(base_c, NormMode::Virtual))
        .push(ActivationLayer::relu())
        .push(FracConv2d::new(base_c, out_c, 4, 2, 1, rng))
        .push(ActivationLayer::new(Activation::Tanh))
}

/// DCGAN-style discriminator: `in_c × hw × hw` image → one logit, via
/// strided convolutions ("D acts as the general CNN which down-samples the
/// input to produce classification", §II-A.3).
///
/// # Panics
///
/// Panics if `hw` is not a multiple of 4 at least 8.
pub fn dcgan_discriminator(in_c: usize, base_c: usize, hw: usize, rng: &mut impl Rng) -> Network {
    assert!(
        hw >= 8 && hw.is_multiple_of(4),
        "discriminator input {hw} must be 4k >= 8"
    );
    let s = hw / 4;
    Network::new("dcgan_d", Shape4::new(1, in_c, hw, hw))
        .push(Conv2d::new(in_c, base_c, 4, 2, 1, rng))
        .push(ActivationLayer::new(Activation::LeakyRelu))
        .push(Conv2d::new(base_c, 2 * base_c, 4, 2, 1, rng))
        .push(BatchNorm::new(2 * base_c, NormMode::Batch))
        .push(ActivationLayer::new(Activation::LeakyRelu))
        .push(Flatten::new())
        .push(Linear::new(2 * base_c * s * s, 1, rng))
}

/// A complete functional DCGAN sized for fast experiments.
pub fn dcgan(latent: usize, base_c: usize, channels: usize, hw: usize, rng: &mut impl Rng) -> Gan {
    let g = dcgan_generator(latent, base_c, channels, hw, rng);
    let d = dcgan_discriminator(channels, base_c, hw, rng);
    Gan::new(g, d, latent)
}

/// Fixed reshape layer used inside the generator (projection → feature map).
#[derive(Debug, Clone)]
struct Reshape {
    /// Per-entry target shape.
    target: Shape4,
    cached: Option<Shape4>,
}

impl Reshape {
    fn new(target: Shape4) -> Self {
        Self {
            target: target.with_batch(1),
            cached: None,
        }
    }
}

impl crate::Layer for Reshape {
    fn name(&self) -> &'static str {
        "reshape"
    }

    fn class(&self) -> crate::LayerClass {
        crate::LayerClass::Auxiliary
    }

    fn forward(&mut self, input: &reram_tensor::Tensor, train: bool) -> reram_tensor::Tensor {
        if train {
            self.cached = Some(input.shape());
        }
        input.reshape(self.target.with_batch(input.shape().n))
    }

    fn backward(&mut self, grad_out: &reram_tensor::Tensor) -> reram_tensor::Tensor {
        // lint:allow(panic) Layer trait contract — backward follows a training forward
        let shape = self.cached.expect("reshape backward before forward");
        grad_out.reshape(shape)
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        self.target.with_batch(input.n)
    }

    fn spec(&self, _input: Shape4) -> Option<LayerSpec> {
        None
    }
}

// ---------------------------------------------------------------------------
// Paper-scale geometry specs (timing/energy experiments only).
// ---------------------------------------------------------------------------

fn conv(in_c: usize, out_c: usize, k: usize, stride: usize, pad: usize, in_h: usize) -> LayerSpec {
    LayerSpec::Conv {
        in_c,
        out_c,
        k,
        stride,
        pad,
        in_h,
        in_w: in_h,
    }
}

fn pool(c: usize, k: usize, in_h: usize) -> LayerSpec {
    LayerSpec::Pool {
        c,
        k,
        stride: k,
        in_h,
        in_w: in_h,
    }
}

/// LeNet-5 geometry on MNIST (PipeLayer benchmark class "MNIST-A").
pub fn lenet_spec() -> NetworkSpec {
    NetworkSpec::new(
        "lenet-mnist",
        Shape4::new(1, 1, 28, 28),
        vec![
            conv(1, 6, 5, 1, 2, 28),
            pool(6, 2, 28),
            conv(6, 16, 5, 1, 0, 14),
            pool(16, 2, 10),
            LayerSpec::Fc {
                in_features: 400,
                out_features: 120,
            },
            LayerSpec::Fc {
                in_features: 120,
                out_features: 84,
            },
            LayerSpec::Fc {
                in_features: 84,
                out_features: 10,
            },
        ],
    )
}

/// A deeper MNIST CNN (PipeLayer benchmark class "MNIST-B").
pub fn mnist_deep_spec() -> NetworkSpec {
    NetworkSpec::new(
        "mnist-deep",
        Shape4::new(1, 1, 28, 28),
        vec![
            conv(1, 32, 3, 1, 1, 28),
            conv(32, 32, 3, 1, 1, 28),
            pool(32, 2, 28),
            conv(32, 64, 3, 1, 1, 14),
            conv(64, 64, 3, 1, 1, 14),
            pool(64, 2, 14),
            LayerSpec::Fc {
                in_features: 64 * 7 * 7,
                out_features: 256,
            },
            LayerSpec::Fc {
                in_features: 256,
                out_features: 10,
            },
        ],
    )
}

/// AlexNet geometry on 227×227 ImageNet inputs.
pub fn alexnet_spec() -> NetworkSpec {
    NetworkSpec::new(
        "alexnet-imagenet",
        Shape4::new(1, 3, 227, 227),
        vec![
            conv(3, 96, 11, 4, 0, 227),
            pool(96, 2, 55),
            conv(96, 256, 5, 1, 2, 27),
            pool(256, 2, 27),
            conv(256, 384, 3, 1, 1, 13),
            conv(384, 384, 3, 1, 1, 13),
            conv(384, 256, 3, 1, 1, 13),
            pool(256, 2, 12),
            LayerSpec::Fc {
                in_features: 256 * 6 * 6,
                out_features: 4096,
            },
            LayerSpec::Fc {
                in_features: 4096,
                out_features: 4096,
            },
            LayerSpec::Fc {
                in_features: 4096,
                out_features: 1000,
            },
        ],
    )
}

/// VGG-A (11-layer) geometry on 224×224 ImageNet inputs — the deepest
/// PipeLayer benchmark class.
pub fn vgg_a_spec() -> NetworkSpec {
    NetworkSpec::new(
        "vgg-a-imagenet",
        Shape4::new(1, 3, 224, 224),
        vec![
            conv(3, 64, 3, 1, 1, 224),
            pool(64, 2, 224),
            conv(64, 128, 3, 1, 1, 112),
            pool(128, 2, 112),
            conv(128, 256, 3, 1, 1, 56),
            conv(256, 256, 3, 1, 1, 56),
            pool(256, 2, 56),
            conv(256, 512, 3, 1, 1, 28),
            conv(512, 512, 3, 1, 1, 28),
            pool(512, 2, 28),
            conv(512, 512, 3, 1, 1, 14),
            conv(512, 512, 3, 1, 1, 14),
            pool(512, 2, 14),
            LayerSpec::Fc {
                in_features: 512 * 7 * 7,
                out_features: 4096,
            },
            LayerSpec::Fc {
                in_features: 4096,
                out_features: 4096,
            },
            LayerSpec::Fc {
                in_features: 4096,
                out_features: 1000,
            },
        ],
    )
}

/// GoogLeNet (Inception-v1) geometry on 224×224 ImageNet inputs — the
/// network the paper's introduction cites for its "3.9 billion operations"
/// per image.
///
/// Each inception module's four branches are emitted as a flat layer list:
/// the cost models sum per-layer work, so the flattening is exact for
/// FLOPs, weights and crossbar arrays. For the pipeline model it serializes
/// the parallel branches, which over-counts `L` slightly — a conservative
/// approximation recorded here.
pub fn googlenet_spec() -> NetworkSpec {
    /// One inception module's branch widths:
    /// `(in_c, #1x1, #3x3reduce, #3x3, #5x5reduce, #5x5, pool_proj, hw)`.
    type Inception = (usize, usize, usize, usize, usize, usize, usize, usize);
    const INCEPTION: [Inception; 9] = [
        (192, 64, 96, 128, 16, 32, 32, 28),     // 3a
        (256, 128, 128, 192, 32, 96, 64, 28),   // 3b
        (480, 192, 96, 208, 16, 48, 64, 14),    // 4a
        (512, 160, 112, 224, 24, 64, 64, 14),   // 4b
        (512, 128, 128, 256, 24, 64, 64, 14),   // 4c
        (512, 112, 144, 288, 32, 64, 64, 14),   // 4d
        (528, 256, 160, 320, 32, 128, 128, 14), // 4e
        (832, 256, 160, 320, 32, 128, 128, 7),  // 5a
        (832, 384, 192, 384, 48, 128, 128, 7),  // 5b
    ];
    let mut layers = vec![
        conv(3, 64, 7, 2, 3, 224),
        pool(64, 2, 112),
        conv(64, 64, 1, 1, 0, 56),
        conv(64, 192, 3, 1, 1, 56),
        pool(192, 2, 56),
    ];
    for &(in_c, c1, r3, c3, r5, c5, pp, hw) in &INCEPTION {
        layers.push(conv(in_c, c1, 1, 1, 0, hw)); // 1x1 branch
        layers.push(conv(in_c, r3, 1, 1, 0, hw)); // 3x3 reduce
        layers.push(conv(r3, c3, 3, 1, 1, hw)); // 3x3
        layers.push(conv(in_c, r5, 1, 1, 0, hw)); // 5x5 reduce
        layers.push(conv(r5, c5, 5, 1, 2, hw)); // 5x5
        layers.push(conv(in_c, pp, 1, 1, 0, hw)); // pool projection
    }
    layers.push(pool(1024, 7, 7)); // global average pool
    layers.push(LayerSpec::Fc {
        in_features: 1024,
        out_features: 1000,
    });
    NetworkSpec::new("googlenet-imagenet", Shape4::new(1, 3, 224, 224), layers)
}

/// DCGAN generator geometry for `hw × hw` images with `channels` output
/// channels (ReGAN workload at a dataset's native resolution).
///
/// # Panics
///
/// Panics if `hw < 16` or `hw` is not a power of two.
pub fn dcgan_generator_spec(latent: usize, channels: usize, hw: usize) -> NetworkSpec {
    assert!(
        hw >= 16 && hw.is_power_of_two(),
        "hw {hw} must be a power of two >= 16"
    );
    let mut layers = vec![LayerSpec::Fc {
        in_features: latent,
        out_features: 1024 * 4 * 4,
    }];
    let mut c = 1024;
    let mut size = 4;
    while size < hw {
        let next_c = if size * 2 == hw { channels } else { c / 2 };
        layers.push(LayerSpec::BatchNorm {
            elems: c * size * size,
        });
        layers.push(LayerSpec::FracConv {
            in_c: c,
            out_c: next_c,
            k: 4,
            stride: 2,
            pad: 1,
            in_h: size,
            in_w: size,
        });
        c = next_c;
        size *= 2;
    }
    layers.push(LayerSpec::Activation {
        elems: channels * hw * hw,
    });
    NetworkSpec::new(
        format!("dcgan-g-{hw}"),
        Shape4::new(1, latent, 1, 1),
        layers,
    )
}

/// DCGAN discriminator geometry matching [`dcgan_generator_spec`].
///
/// # Panics
///
/// Panics if `hw < 16` or `hw` is not a power of two.
pub fn dcgan_discriminator_spec(channels: usize, hw: usize) -> NetworkSpec {
    assert!(
        hw >= 16 && hw.is_power_of_two(),
        "hw {hw} must be a power of two >= 16"
    );
    let mut layers = Vec::new();
    let mut c = channels;
    let mut size = hw;
    let mut out_c = 128;
    while size > 4 {
        layers.push(conv(c, out_c, 4, 2, 1, size));
        layers.push(LayerSpec::Activation {
            elems: out_c * (size / 2) * (size / 2),
        });
        c = out_c;
        out_c = (out_c * 2).min(1024);
        size /= 2;
    }
    layers.push(LayerSpec::Fc {
        in_features: c * 4 * 4,
        out_features: 1,
    });
    NetworkSpec::new(
        format!("dcgan-d-{hw}"),
        Shape4::new(1, channels, hw, hw),
        layers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_tensor::init::seeded_rng;
    use reram_tensor::Tensor;

    #[test]
    fn mlp_shapes() {
        let mut rng = seeded_rng(1);
        let mut net = mlp(10, &[16, 8], 4, &mut rng);
        let y = net.forward(&Tensor::ones(Shape4::new(2, 10, 1, 1)), false);
        assert_eq!(y.shape(), Shape4::new(2, 4, 1, 1));
        assert_eq!(net.weighted_layer_count(), 3);
    }

    #[test]
    fn lenet_forward_shape() {
        let mut rng = seeded_rng(2);
        let mut net = lenet(&mut rng);
        let y = net.forward(&Tensor::ones(Shape4::new(1, 1, 28, 28)), false);
        assert_eq!(y.shape(), Shape4::new(1, 10, 1, 1));
        assert_eq!(net.weighted_layer_count(), 5);
    }

    #[test]
    fn small_cnn_forward_shape() {
        let mut rng = seeded_rng(3);
        let mut net = small_cnn(3, 16, 10, &mut rng);
        let y = net.forward(&Tensor::ones(Shape4::new(2, 3, 16, 16)), false);
        assert_eq!(y.shape(), Shape4::new(2, 10, 1, 1));
    }

    #[test]
    fn dcgan_generator_emits_images() {
        let mut rng = seeded_rng(4);
        let mut g = dcgan_generator(8, 4, 1, 16, &mut rng);
        let z = Tensor::ones(Shape4::new(2, 8, 1, 1));
        let img = g.forward(&z, false);
        assert_eq!(img.shape(), Shape4::new(2, 1, 16, 16));
        assert!(img.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn dcgan_discriminator_emits_logit() {
        let mut rng = seeded_rng(5);
        let mut d = dcgan_discriminator(1, 4, 16, &mut rng);
        let y = d.forward(&Tensor::ones(Shape4::new(3, 1, 16, 16)), false);
        assert_eq!(y.shape(), Shape4::new(3, 1, 1, 1));
    }

    #[test]
    fn dcgan_pair_is_consistent() {
        let mut rng = seeded_rng(6);
        let mut gan = dcgan(8, 4, 1, 16, &mut rng);
        let mut rng2 = seeded_rng(7);
        let z = gan.sample_latent(2, &mut rng2);
        let fake = gan.generate(&z);
        assert_eq!(fake.shape(), Shape4::new(2, 1, 16, 16));
    }

    #[test]
    fn lenet_spec_matches_functional_lenet() {
        let mut rng = seeded_rng(8);
        let net = lenet(&mut rng);
        let live = net.spec();
        let spec = lenet_spec();
        assert_eq!(
            live.weighted_layer_count(),
            spec.weighted_layer_count(),
            "live and static L differ"
        );
        // Same crossbar matrices for the weighted layers.
        let a: Vec<_> = live
            .weighted_layers()
            .map(super::super::spec::LayerSpec::crossbar_matrix)
            .collect();
        let b: Vec<_> = spec
            .weighted_layers()
            .map(super::super::spec::LayerSpec::crossbar_matrix)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn alexnet_scale_sanity() {
        let spec = alexnet_spec();
        // ~0.7 GMAC forward, ~60M params: the well-known AlexNet scale.
        let gmac = spec.forward_macs() as f64 / 1e9;
        assert!((0.5..1.5).contains(&gmac), "AlexNet GMAC {gmac}");
        let params = spec.total_weights() as f64 / 1e6;
        assert!((40.0..80.0).contains(&params), "AlexNet Mparams {params}");
    }

    #[test]
    fn vgg_scale_sanity() {
        let spec = vgg_a_spec();
        let gmac = spec.forward_macs() as f64 / 1e9;
        assert!((5.0..10.0).contains(&gmac), "VGG-A GMAC {gmac}");
        assert_eq!(spec.weighted_layer_count(), 11);
    }

    #[test]
    fn googlenet_matches_intro_citation() {
        // "GoogleNet in 2014 required 3.9 billion [operations]" (§I).
        // Counting one MAC as two operations, forward ≈ 1.5-2 GMAC.
        let spec = googlenet_spec();
        let ops = 2.0 * spec.forward_macs() as f64 / 1e9;
        assert!(
            (2.0..4.5).contains(&ops),
            "GoogLeNet ops {ops}e9 vs cited 3.9e9"
        );
        // ~7M parameters (the famous 12x reduction vs AlexNet).
        let mparams = spec.total_weights() as f64 / 1e6;
        assert!((4.0..10.0).contains(&mparams), "params {mparams}M");
        // 2 stem convs + 1x1 conv + 9 modules x 6 convs + 1 FC = 58 weighted.
        assert_eq!(spec.weighted_layer_count(), 58);
    }

    #[test]
    fn dcgan_specs_mirror_each_other() {
        for hw in [16usize, 32, 64] {
            let g = dcgan_generator_spec(100, 3, hw);
            let d = dcgan_discriminator_spec(3, hw);
            assert!(g.weighted_layer_count() >= 2);
            assert!(d.weighted_layer_count() >= 2);
            // Generator's final FCNN emits the image the discriminator consumes.
            let last = g
                .weighted_layers()
                .last()
                .expect("generator has weighted layers");
            if let LayerSpec::FracConv { out_c, .. } = last {
                assert_eq!(*out_c, 3);
            } else {
                panic!("generator must end in a fractional-strided conv");
            }
        }
    }
}
