//! Supervised training loop with the paper's batched-update semantics.
//!
//! A thin orchestration layer over [`Network::train_batch`]: epochs, a
//! step-decay learning-rate schedule, and per-step metric history — the
//! loop every PipeLayer workload runs, packaged so examples and tests don't
//! re-implement it.

use crate::losses::accuracy;
use crate::Network;
use rand::Rng;
use reram_telemetry::{self as telemetry, Event, Span};
use reram_tensor::Tensor;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Initial learning rate.
    pub lr: f32,
    /// Multiplicative LR decay applied every `decay_every` steps.
    pub lr_decay: f32,
    /// Steps between LR decays (0 disables decay).
    pub decay_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            lr_decay: 0.5,
            decay_every: 0,
        }
    }
}

impl TrainConfig {
    /// Learning rate in effect at `step`.
    pub fn lr_at(&self, step: usize) -> f32 {
        match step.checked_div(self.decay_every) {
            Some(decays) => self.lr * self.lr_decay.powi(decays as i32),
            None => self.lr, // decay disabled
        }
    }
}

/// Per-step metrics of a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainHistory {
    /// Loss after each step.
    pub losses: Vec<f32>,
    /// Batch accuracy after each step.
    pub accuracies: Vec<f32>,
}

impl TrainHistory {
    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.losses.len()
    }

    /// Whether no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.losses.is_empty()
    }

    /// Loss of the final step.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty.
    pub fn final_loss(&self) -> f32 {
        // lint:allow(panic) documented accessor contract — history must be non-empty
        *self.losses.last().expect("non-empty history")
    }

    /// Mean accuracy of the last `n` steps (clamped to history length).
    pub fn recent_accuracy(&self, n: usize) -> f32 {
        let k = n.min(self.accuracies.len()).max(1);
        let tail = &self.accuracies[self.accuracies.len() - k..];
        tail.iter().sum::<f32>() / k as f32
    }
}

/// Drives supervised training of a [`Network`] from a batch source.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    step: usize,
    history: TrainHistory,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            step: 0,
            history: TrainHistory::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Recorded metrics.
    pub fn history(&self) -> &TrainHistory {
        &self.history
    }

    /// One training step on an explicit batch.
    pub fn step(&mut self, net: &mut Network, images: &Tensor, labels: &[usize]) -> (f32, f32) {
        let _span = Span::enter("train/step");
        let lr = self.config.lr_at(self.step);
        let (loss, acc) = net.train_batch(images, labels, lr);
        self.history.losses.push(loss);
        self.history.accuracies.push(acc);
        self.step += 1;
        telemetry::with_recorder(|t| {
            t.record(Event::TrainStep, 1);
            t.metric("train/loss", f64::from(loss));
            t.metric("train/accuracy", f64::from(acc));
        });
        (loss, acc)
    }

    /// Runs `steps` training steps drawing batches from `next_batch`.
    pub fn run(
        &mut self,
        net: &mut Network,
        steps: usize,
        mut next_batch: impl FnMut(&mut Self) -> (Tensor, Vec<usize>),
    ) {
        for _ in 0..steps {
            let (images, labels) = next_batch(self);
            self.step(net, &images, &labels);
        }
    }

    /// Held-out accuracy on an evaluation batch.
    pub fn evaluate(&self, net: &mut Network, images: &Tensor, labels: &[usize]) -> f32 {
        accuracy(&net.forward(images, false), labels)
    }
}

/// Convenience: train `net` on batches from a dataset-like closure and
/// return the history.
pub fn train_supervised(
    net: &mut Network,
    config: TrainConfig,
    steps: usize,
    batch: usize,
    classes: usize,
    mut sample: impl FnMut(&[usize], &mut rand::rngs::StdRng) -> Tensor,
    rng: &mut rand::rngs::StdRng,
) -> TrainHistory {
    let mut trainer = Trainer::new(config);
    for step in 0..steps {
        let labels: Vec<usize> = (0..batch)
            .map(|i| {
                // Balanced labels with a dash of randomness.
                if rng.gen::<f32>() < 0.5 {
                    (step * batch + i) % classes
                } else {
                    rng.gen_range(0..classes)
                }
            })
            .collect();
        let images = sample(&labels, rng);
        trainer.step(net, &images, &labels);
    }
    trainer.history.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use reram_tensor::{init, Shape4};

    #[test]
    fn lr_schedule() {
        let c = TrainConfig {
            lr: 1.0,
            lr_decay: 0.1,
            decay_every: 10,
        };
        assert_eq!(c.lr_at(0), 1.0);
        assert_eq!(c.lr_at(9), 1.0);
        assert!((c.lr_at(10) - 0.1).abs() < 1e-7);
        assert!((c.lr_at(25) - 0.01).abs() < 1e-8);
        let no_decay = TrainConfig::default();
        assert_eq!(no_decay.lr_at(1000), no_decay.lr);
    }

    #[test]
    fn trainer_records_history() {
        let mut rng = init::seeded_rng(1);
        let mut net = models::mlp(8, &[16], 3, &mut rng);
        let mut trainer = Trainer::new(TrainConfig::default());
        let x = init::uniform(Shape4::new(6, 8, 1, 1), -1.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0, 1, 2];
        for _ in 0..5 {
            trainer.step(&mut net, &x, &labels);
        }
        assert_eq!(trainer.steps(), 5);
        assert_eq!(trainer.history().len(), 5);
        assert!(trainer.history().final_loss().is_finite());
    }

    #[test]
    fn training_descends_on_fixed_batch() {
        let mut rng = init::seeded_rng(2);
        let mut net = models::mlp(8, &[16], 3, &mut rng);
        let x = init::uniform(Shape4::new(6, 8, 1, 1), -1.0, 1.0, &mut rng);
        let labels = vec![0usize, 1, 2, 0, 1, 2];
        let mut trainer = Trainer::new(TrainConfig::default());
        trainer.run(&mut net, 80, |_| (x.clone(), labels.clone()));
        let h = trainer.history();
        assert!(
            h.final_loss() < h.losses[0] * 0.5,
            "loss {} -> {}",
            h.losses[0],
            h.final_loss()
        );
        assert!(h.recent_accuracy(5) > 0.8);
    }

    #[test]
    fn evaluate_uses_inference_mode() {
        let mut rng = init::seeded_rng(3);
        let mut net = models::mlp(4, &[8], 2, &mut rng);
        let trainer = Trainer::new(TrainConfig::default());
        let x = init::uniform(Shape4::new(4, 4, 1, 1), -1.0, 1.0, &mut rng);
        let acc = trainer.evaluate(&mut net, &x, &[0, 1, 0, 1]);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn steps_emit_telemetry() {
        let counters = std::sync::Arc::new(reram_telemetry::CounterRecorder::new());
        let _guard = telemetry::scoped_recorder(counters.clone());
        let mut rng = init::seeded_rng(4);
        let mut net = models::mlp(4, &[8], 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig::default());
        let x = init::uniform(Shape4::new(4, 4, 1, 1), -1.0, 1.0, &mut rng);
        for _ in 0..3 {
            trainer.step(&mut net, &x, &[0, 1, 0, 1]);
        }
        assert_eq!(counters.count(Event::TrainStep), 3);
        let metrics = counters.metrics();
        assert_eq!(metrics.iter().filter(|(n, _)| n == "train/loss").count(), 3);
        assert_eq!(
            metrics
                .iter()
                .filter(|(n, _)| n == "train/accuracy")
                .count(),
            3
        );
        let spans = counters.span_reports();
        assert!(spans.iter().any(|s| s.name == "train/step" && s.calls == 3));
    }

    #[test]
    fn recent_accuracy_clamps() {
        let h = TrainHistory {
            losses: vec![1.0, 0.5],
            accuracies: vec![0.0, 1.0],
        };
        assert_eq!(h.recent_accuracy(1), 1.0);
        assert_eq!(h.recent_accuracy(10), 0.5);
    }
}
