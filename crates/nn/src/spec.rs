//! Geometry descriptions of networks for architectural cost modelling.
//!
//! The accelerator (reram-core) and GPU baseline (reram-gpu) both cost a
//! workload from its *shape* — layer topology, kernel sizes, feature-map
//! extents — not from activation values. [`NetworkSpec`] captures exactly
//! that, either extracted from a live [`crate::Network`] or constructed
//! directly for timing-only runs of ImageNet-scale models whose activations
//! we never materialize (see DESIGN.md, substitutions table).

use reram_tensor::Shape4;
use serde::{Deserialize, Serialize};

/// Geometry of one architecturally visible layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerSpec {
    /// Convolution: `in_c` channels of `in_h × in_w` → `out_c` channels.
    Conv {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel height/width (square kernels).
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Input feature-map height.
        in_h: usize,
        /// Input feature-map width.
        in_w: usize,
    },
    /// Fractional-strided convolution (GAN generator up-sampling, Fig. 7).
    FracConv {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel height/width (square kernels).
        k: usize,
        /// Up-sampling stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Input feature-map height.
        in_h: usize,
        /// Input feature-map width.
        in_w: usize,
    },
    /// Fully connected / inner product layer (Eq. 2).
    Fc {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Pooling over `k × k` windows.
    Pool {
        /// Channels.
        c: usize,
        /// Window size and stride.
        k: usize,
        /// Stride.
        stride: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
    },
    /// Elementwise activation over `elems` values per batch entry.
    Activation {
        /// Elements per batch entry.
        elems: usize,
    },
    /// Batch normalization over `elems` values per batch entry.
    BatchNorm {
        /// Elements per batch entry.
        elems: usize,
    },
}

impl LayerSpec {
    /// Whether the layer holds crossbar-mapped weights (a pipeline stage in
    /// the paper's Fig. 5 sense).
    pub fn is_weighted(&self) -> bool {
        matches!(
            self,
            LayerSpec::Conv { .. } | LayerSpec::FracConv { .. } | LayerSpec::Fc { .. }
        )
    }

    /// Output spatial size of convolution-like layers, `None` otherwise.
    pub fn conv_output_hw(&self) -> Option<(usize, usize)> {
        match *self {
            LayerSpec::Conv {
                k,
                stride,
                pad,
                in_h,
                in_w,
                ..
            } => Some((
                (in_h + 2 * pad - k) / stride + 1,
                (in_w + 2 * pad - k) / stride + 1,
            )),
            LayerSpec::FracConv {
                k,
                stride,
                pad,
                in_h,
                in_w,
                ..
            } => Some((
                (in_h - 1) * stride + k - 2 * pad,
                (in_w - 1) * stride + k - 2 * pad,
            )),
            LayerSpec::Pool {
                k,
                stride,
                in_h,
                in_w,
                ..
            } => Some(((in_h - k) / stride + 1, (in_w - k) / stride + 1)),
            _ => None,
        }
    }

    /// Weight-matrix dimensions `(rows, cols)` as mapped to crossbars:
    /// rows = unrolled input vector length (wordlines), cols = output
    /// channels / features (bitlines) — the paper's Fig. 4(a) mapping.
    pub fn crossbar_matrix(&self) -> Option<(usize, usize)> {
        match *self {
            LayerSpec::Conv { in_c, out_c, k, .. } => Some((in_c * k * k, out_c)),
            // FCNN forward is a conv over the dilated map with the same
            // kernel volume (Fig. 7(a)).
            LayerSpec::FracConv { in_c, out_c, k, .. } => Some((in_c * k * k, out_c)),
            LayerSpec::Fc {
                in_features,
                out_features,
            } => Some((in_features, out_features)),
            _ => None,
        }
    }

    /// Number of input vectors (crossbar MVMs) needed for one example's
    /// forward pass through this layer — one per output spatial position
    /// for convolutions (the paper's "12544 cycles" of Fig. 4(a)), one for
    /// FC.
    pub fn mvm_count(&self) -> Option<usize> {
        match self {
            LayerSpec::Conv { .. } | LayerSpec::FracConv { .. } => {
                self.conv_output_hw().map(|(h, w)| h * w)
            }
            LayerSpec::Fc { .. } => Some(1),
            _ => None,
        }
    }

    /// Trainable parameter count (weights only; biases are negligible and
    /// the paper neglects them "for express clarity", Fig. 4).
    pub fn weight_count(&self) -> usize {
        match *self {
            LayerSpec::Conv { in_c, out_c, k, .. } | LayerSpec::FracConv { in_c, out_c, k, .. } => {
                in_c * out_c * k * k
            }
            LayerSpec::Fc {
                in_features,
                out_features,
            } => in_features * out_features,
            LayerSpec::BatchNorm { elems } => 2 * elems,
            _ => 0,
        }
    }

    /// Multiply-accumulate operations of one example's forward pass.
    pub fn forward_macs(&self) -> u64 {
        match *self {
            LayerSpec::Conv { in_c, out_c, k, .. } => {
                // lint:allow(panic) spatial variants always have output dimensions
                let (oh, ow) = self.conv_output_hw().expect("conv has output hw");
                (in_c * k * k * out_c * oh * ow) as u64
            }
            LayerSpec::FracConv { in_c, out_c, k, .. } => {
                // lint:allow(panic) spatial variants always have output dimensions
                let (oh, ow) = self.conv_output_hw().expect("frac conv has output hw");
                (in_c * k * k * out_c * oh * ow) as u64
            }
            LayerSpec::Fc {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
            LayerSpec::Pool { c, k, .. } => {
                // lint:allow(panic) spatial variants always have output dimensions
                let (oh, ow) = self.conv_output_hw().expect("pool has output hw");
                (c * k * k * oh * ow) as u64
            }
            LayerSpec::Activation { elems } | LayerSpec::BatchNorm { elems } => elems as u64,
        }
    }

    /// Output elements per batch entry.
    pub fn output_elems(&self) -> usize {
        match *self {
            LayerSpec::Conv { out_c, .. } | LayerSpec::FracConv { out_c, .. } => {
                // lint:allow(panic) spatial variants always have output dimensions
                let (oh, ow) = self.conv_output_hw().expect("output hw");
                out_c * oh * ow
            }
            LayerSpec::Fc { out_features, .. } => out_features,
            LayerSpec::Pool { c, .. } => {
                // lint:allow(panic) spatial variants always have output dimensions
                let (oh, ow) = self.conv_output_hw().expect("output hw");
                c * oh * ow
            }
            LayerSpec::Activation { elems } | LayerSpec::BatchNorm { elems } => elems,
        }
    }
}

/// Coarse layer category carried by [`LayerWork`] so backends can apply
/// kind-specific cost rules without re-inspecting [`LayerSpec`] fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolution.
    Conv,
    /// Fractional-strided convolution.
    FracConv,
    /// Fully connected.
    Fc,
    /// Pooling.
    Pool,
    /// Elementwise activation.
    Activation,
    /// Batch normalization.
    BatchNorm,
}

/// Backend-neutral per-layer work quantities — the single lowering of a
/// [`LayerSpec`] that every cost model (ReRAM plan, GPU baseline) prices.
///
/// Backward-pass volumes follow PipeLayer §II-A.2: a weighted layer's
/// backward pass is two MVM groups of the forward volume each (error
/// back-propagation through `Wᵀ` plus weight-gradient accumulation), an
/// unweighted layer only routes the error (same volume as forward, no
/// gradient term) — consistent with the standard 3×/2× training-FLOPs rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerWork {
    /// Layer category.
    pub kind: LayerKind,
    /// Whether the layer holds crossbar-mapped weights.
    pub weighted: bool,
    /// Multiply-accumulates of one example's forward pass.
    pub forward_macs: u64,
    /// MACs of error back-propagation through the layer (`Wᵀ δ` for
    /// weighted layers, error routing for unweighted ones).
    pub error_macs: u64,
    /// MACs of weight-gradient accumulation (zero for unweighted layers).
    pub gradient_macs: u64,
    /// Trainable weight elements.
    pub weight_elems: u64,
    /// Output elements per batch entry.
    pub output_elems: u64,
    /// Forward crossbar MVMs per example (zero for unweighted layers).
    pub mvms: u64,
    /// Crossbar weight-matrix rows (unrolled input length; zero if
    /// unweighted).
    pub crossbar_rows: u64,
    /// Crossbar weight-matrix columns (output features; zero if unweighted).
    pub crossbar_cols: u64,
}

impl LayerWork {
    /// Total backward-pass MACs (error + weight gradient).
    pub fn backward_macs(&self) -> u64 {
        self.error_macs + self.gradient_macs
    }

    /// Total training MACs for one example (forward + backward).
    pub fn training_macs(&self) -> u64 {
        self.forward_macs + self.backward_macs()
    }
}

impl LayerSpec {
    /// The layer's category.
    pub fn kind(&self) -> LayerKind {
        match self {
            LayerSpec::Conv { .. } => LayerKind::Conv,
            LayerSpec::FracConv { .. } => LayerKind::FracConv,
            LayerSpec::Fc { .. } => LayerKind::Fc,
            LayerSpec::Pool { .. } => LayerKind::Pool,
            LayerSpec::Activation { .. } => LayerKind::Activation,
            LayerSpec::BatchNorm { .. } => LayerKind::BatchNorm,
        }
    }

    /// Lowers the layer geometry to its backend-neutral work quantities.
    pub fn work(&self) -> LayerWork {
        let weighted = self.is_weighted();
        let forward = self.forward_macs();
        let (rows, cols) = self.crossbar_matrix().unwrap_or((0, 0));
        LayerWork {
            kind: self.kind(),
            weighted,
            forward_macs: forward,
            error_macs: forward,
            gradient_macs: if weighted { forward } else { 0 },
            weight_elems: self.weight_count() as u64,
            output_elems: self.output_elems() as u64,
            mvms: if weighted {
                self.mvm_count().unwrap_or(0) as u64
            } else {
                0
            },
            crossbar_rows: rows as u64,
            crossbar_cols: cols as u64,
        }
    }
}

/// A whole network's geometry: ordered layer specs plus the input shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Network display name.
    pub name: String,
    /// Shape of one input batch entry (batch extent ignored).
    pub input: Shape4,
    /// Ordered layer geometries.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Creates a named spec.
    pub fn new(name: impl Into<String>, input: Shape4, layers: Vec<LayerSpec>) -> Self {
        Self {
            name: name.into(),
            input,
            layers,
        }
    }

    /// Number of weighted layers — the `L` of the paper's pipeline cycle
    /// formulas (§III-A.2).
    pub fn weighted_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_weighted()).count()
    }

    /// Iterator over the weighted layers only.
    pub fn weighted_layers(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(|l| l.is_weighted())
    }

    /// Total trainable parameters.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_count() as u64).sum()
    }

    /// Lowers every layer to its backend-neutral [`LayerWork`] — the one
    /// spec walk all cost models share (see `reram_core::plan`).
    pub fn work(&self) -> Vec<LayerWork> {
        self.layers.iter().map(LayerSpec::work).collect()
    }

    /// Total forward multiply-accumulates for one example.
    pub fn forward_macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::forward_macs).sum()
    }

    /// Total training multiply-accumulates for one example.
    ///
    /// Backward ≈ 2× forward for weighted layers (input gradient + weight
    /// gradient, each the same volume as the forward pass) — the standard
    /// 3× rule for training FLOPs.
    pub fn training_macs(&self) -> u64 {
        self.work().iter().map(LayerWork::training_macs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_conv() -> LayerSpec {
        // Fig. 4 example: 114x114x128 -> 112x112x256, 3x3 kernels.
        LayerSpec::Conv {
            in_c: 128,
            out_c: 256,
            k: 3,
            stride: 1,
            pad: 0,
            in_h: 114,
            in_w: 114,
        }
    }

    #[test]
    fn paper_fig4_numbers() {
        let l = paper_conv();
        assert_eq!(l.conv_output_hw(), Some((112, 112)));
        assert_eq!(l.crossbar_matrix(), Some((1152, 256)));
        assert_eq!(l.mvm_count(), Some(12544));
        assert_eq!(l.weight_count(), 3 * 3 * 128 * 256);
    }

    #[test]
    fn frac_conv_upsamples() {
        let l = LayerSpec::FracConv {
            in_c: 64,
            out_c: 32,
            k: 4,
            stride: 2,
            pad: 1,
            in_h: 8,
            in_w: 8,
        };
        assert_eq!(l.conv_output_hw(), Some((16, 16)));
        assert!(l.is_weighted());
        assert_eq!(l.crossbar_matrix(), Some((64 * 16, 32)));
    }

    #[test]
    fn fc_is_single_mvm() {
        let l = LayerSpec::Fc {
            in_features: 1024,
            out_features: 10,
        };
        assert_eq!(l.mvm_count(), Some(1));
        assert_eq!(l.crossbar_matrix(), Some((1024, 10)));
        assert_eq!(l.forward_macs(), 10240);
    }

    #[test]
    fn pool_and_activation_unweighted() {
        let p = LayerSpec::Pool {
            c: 16,
            k: 2,
            stride: 2,
            in_h: 8,
            in_w: 8,
        };
        let a = LayerSpec::Activation { elems: 100 };
        assert!(!p.is_weighted());
        assert!(!a.is_weighted());
        assert_eq!(p.conv_output_hw(), Some((4, 4)));
        assert_eq!(p.output_elems(), 16 * 16);
        assert_eq!(a.forward_macs(), 100);
    }

    #[test]
    fn network_spec_counts_weighted_layers() {
        let spec = NetworkSpec::new(
            "toy",
            Shape4::new(1, 1, 8, 8),
            vec![
                LayerSpec::Conv {
                    in_c: 1,
                    out_c: 4,
                    k: 3,
                    stride: 1,
                    pad: 1,
                    in_h: 8,
                    in_w: 8,
                },
                LayerSpec::Activation { elems: 256 },
                LayerSpec::Pool {
                    c: 4,
                    k: 2,
                    stride: 2,
                    in_h: 8,
                    in_w: 8,
                },
                LayerSpec::Fc {
                    in_features: 64,
                    out_features: 10,
                },
            ],
        );
        assert_eq!(spec.weighted_layer_count(), 2);
        assert_eq!(spec.total_weights(), (4 * 9 + 64 * 10) as u64);
        assert!(spec.training_macs() > 2 * spec.forward_macs());
    }

    #[test]
    fn layer_work_lowering_is_consistent() {
        let conv = paper_conv().work();
        assert_eq!(conv.kind, LayerKind::Conv);
        assert!(conv.weighted);
        assert_eq!(conv.forward_macs, paper_conv().forward_macs());
        assert_eq!(conv.error_macs, conv.forward_macs);
        assert_eq!(conv.gradient_macs, conv.forward_macs);
        assert_eq!(conv.mvms, 12544);
        assert_eq!((conv.crossbar_rows, conv.crossbar_cols), (1152, 256));

        let pool = LayerSpec::Pool {
            c: 16,
            k: 2,
            stride: 2,
            in_h: 8,
            in_w: 8,
        }
        .work();
        assert!(!pool.weighted);
        assert_eq!(pool.gradient_macs, 0);
        assert_eq!(pool.mvms, 0);
        assert_eq!(pool.backward_macs(), pool.forward_macs);
    }

    #[test]
    fn network_work_matches_mac_walks() {
        let spec = NetworkSpec::new(
            "toy",
            Shape4::new(1, 1, 8, 8),
            vec![
                LayerSpec::Conv {
                    in_c: 1,
                    out_c: 4,
                    k: 3,
                    stride: 1,
                    pad: 1,
                    in_h: 8,
                    in_w: 8,
                },
                LayerSpec::Activation { elems: 256 },
                LayerSpec::Fc {
                    in_features: 256,
                    out_features: 10,
                },
            ],
        );
        let work = spec.work();
        assert_eq!(work.len(), spec.layers.len());
        let fwd: u64 = work.iter().map(|w| w.forward_macs).sum();
        assert_eq!(fwd, spec.forward_macs());
        let train: u64 = work.iter().map(LayerWork::training_macs).sum();
        assert_eq!(train, spec.training_macs());
    }

    #[test]
    fn conv_macs_match_paper_example_scale() {
        // AlexNet-era sanity: the Fig. 4 layer alone is ~3.7 GMAC.
        let macs = paper_conv().forward_macs();
        assert_eq!(macs, 1152 * 256 * 12544);
    }
}
