//! Property-based tests of network-level invariants.

use proptest::prelude::*;
use reram_nn::layers::{ActivationLayer, Conv2d, Flatten, Linear, Pool2d};
use reram_nn::losses::softmax_cross_entropy;
use reram_nn::{models, Network};
use reram_tensor::{init, Shape4, Tensor};

fn random_net(seed: u64, in_hw: usize, classes: usize) -> Network {
    let mut rng = init::seeded_rng(seed);
    Network::new("prop", Shape4::new(1, 1, in_hw, in_hw))
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(ActivationLayer::relu())
        .push(Pool2d::max(2))
        .push(Flatten::new())
        .push(Linear::new(
            3 * (in_hw / 2) * (in_hw / 2),
            classes,
            &mut rng,
        ))
}

fn random_input(seed: u64, n: usize, hw: usize) -> Tensor {
    let mut rng = init::seeded_rng(seed.wrapping_add(1000));
    init::uniform(Shape4::new(n, 1, hw, hw), -1.0, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inference is deterministic: same input, same output, every time.
    #[test]
    fn inference_is_deterministic(seed in 0u64..100) {
        let mut net = random_net(seed, 8, 3);
        let x = random_input(seed, 2, 8);
        let a = net.forward(&x, false);
        let b = net.forward(&x, false);
        prop_assert_eq!(a, b);
    }

    /// A training forward equals an inference forward for nets without
    /// stochastic or statistics-dependent layers.
    #[test]
    fn train_forward_equals_eval_forward(seed in 0u64..100) {
        let mut net = random_net(seed, 8, 3);
        let x = random_input(seed, 2, 8);
        let train = net.forward(&x, true);
        let eval = net.forward(&x, false);
        prop_assert_eq!(train, eval);
    }

    /// apply_update with zero learning rate changes nothing.
    #[test]
    fn zero_lr_update_is_identity(seed in 0u64..100) {
        let mut net = random_net(seed, 8, 3);
        let x = random_input(seed, 2, 8);
        let before = net.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&before, &[0, 1]);
        net.backward(&grad);
        net.apply_update(0.0);
        let after = net.forward(&x, false);
        prop_assert_eq!(before, after);
    }

    /// One SGD step on a batch reduces that batch's loss for a small
    /// enough learning rate.
    #[test]
    fn small_step_descends(seed in 0u64..60) {
        let mut net = random_net(seed, 8, 3);
        let x = random_input(seed, 3, 8);
        let labels = [0usize, 1, 2];
        let y = net.forward(&x, true);
        let (before, grad) = softmax_cross_entropy(&y, &labels);
        net.backward(&grad);
        net.apply_update(1e-2);
        let (after, _) = softmax_cross_entropy(&net.forward(&x, false), &labels);
        prop_assert!(after <= before + 1e-6, "loss rose: {before} -> {after}");
    }

    /// The gradient w.r.t. the input has the input's shape, for both CNN
    /// and GAN topologies.
    #[test]
    fn input_gradient_shape(seed in 0u64..50) {
        let mut net = random_net(seed, 8, 3);
        let x = random_input(seed, 2, 8);
        let y = net.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&y, &[0, 2]);
        let gin = net.backward(&grad);
        prop_assert_eq!(gin.shape(), x.shape());
    }

    /// Spec extraction is stable: the same constructor yields the same
    /// geometry regardless of RNG seed (weights differ, shapes don't).
    #[test]
    fn spec_independent_of_weights(a in 0u64..50, b in 50u64..100) {
        let na = random_net(a, 8, 3);
        let nb = random_net(b, 8, 3);
        prop_assert_eq!(na.spec().layers, nb.spec().layers);
    }

    /// Model-zoo specs have consistent MAC accounting: training MACs are
    /// between 2x and 3x forward MACs.
    #[test]
    fn training_mac_ratio_bounded(idx in 0usize..4) {
        let spec = match idx {
            0 => models::lenet_spec(),
            1 => models::mnist_deep_spec(),
            2 => models::alexnet_spec(),
            _ => models::vgg_a_spec(),
        };
        let f = spec.forward_macs() as f64;
        let t = spec.training_macs() as f64;
        prop_assert!(t >= 2.0 * f && t <= 3.0 * f, "ratio {}", t / f);
    }
}
