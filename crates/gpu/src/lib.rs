//! Analytical GPU baseline — the GTX 1080 platform of the paper's Table I.
//!
//! "Both evaluations were compared to the implementation on the state-of-art
//! GPU platform, GTX 1080." We do not have that GPU (or cuDNN), so the
//! comparison baseline is an analytical *roofline* model: every layer's time
//! is the maximum of its compute time (FLOPs against achievable FLOP/s) and
//! its memory time (bytes moved against achievable bandwidth), plus a kernel
//! launch overhead; energy is execution time times board power. This
//! captures the structure the paper's comparison relies on — GPUs pay DRAM
//! traffic for weights and activations on every pass, while the
//! processing-in-memory accelerator keeps weights resident in the crossbars
//! — and is recorded as a substitution in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use reram_nn::{LayerWork, NetworkSpec};
use serde::{Deserialize, Serialize};

/// Analytical GPU device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Device display name.
    pub name: String,
    /// Peak single-precision throughput, FLOP/s.
    pub peak_flops: f64,
    /// Peak DRAM bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Fraction of peak FLOP/s dense kernels achieve (cuDNN efficiency).
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth streaming kernels achieve.
    pub bandwidth_efficiency: f64,
    /// Fixed overhead per kernel launch, seconds.
    pub kernel_launch_s: f64,
    /// Average board power while busy, watts.
    pub busy_power_w: f64,
    /// Bytes per activation/weight element (fp32).
    pub bytes_per_elem: f64,
}

impl GpuModel {
    /// The GTX 1080 used by the paper: 8.87 TFLOP/s peak, 320 GB/s GDDR5X,
    /// 180 W TDP. Efficiency factors follow common cuDNN measurements.
    pub fn gtx1080() -> Self {
        Self {
            name: "GTX 1080".into(),
            peak_flops: 8.87e12,
            mem_bandwidth: 320e9,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.70,
            // Per-op dispatch overhead of a 2017-era framework + driver
            // stack (launch + cuDNN descriptor handling).
            kernel_launch_s: 10e-6,
            busy_power_w: 150.0,
            bytes_per_elem: 4.0,
        }
    }
}

/// Time and energy of a workload on the GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GpuCost {
    /// Wall-clock time, seconds.
    pub time_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
}

impl GpuCost {
    /// Component-wise sum.
    pub fn add(&mut self, other: GpuCost) {
        self.time_s += other.time_s;
        self.energy_j += other.energy_j;
    }

    /// Cost scaled by a repetition count.
    pub fn times(&self, n: f64) -> GpuCost {
        GpuCost {
            time_s: self.time_s * n,
            energy_j: self.energy_j * n,
        }
    }
}

/// Pass direction for per-layer costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    Forward,
    /// Backward data + weight gradients (≈ 2× forward compute) plus the
    /// re-read of stored forward activations.
    Backward,
}

impl GpuModel {
    /// Roofline cost of one pass of one lowered layer: compute time versus
    /// memory time, whichever dominates, plus a kernel launch.
    fn work_cost(&self, work: &LayerWork, batch: usize, pass: Pass) -> GpuCost {
        let b = batch as f64;
        // 1 MAC = 2 FLOPs; the backward volume (error product + weight
        // gradient) is already folded into the lowered work quantities.
        let macs = match pass {
            Pass::Forward => work.forward_macs as f64,
            Pass::Backward => work.backward_macs() as f64,
        } * b;
        let flops = 2.0 * macs;
        // Traffic: weights once per pass + activations in/out per example;
        // backward re-reads the stored forward activations and streams the
        // gradient tensors alongside.
        let out_elems = work.output_elems as f64 * b;
        let weight_elems = work.weight_elems as f64;
        let traffic_elems = match pass {
            Pass::Forward => weight_elems + 2.0 * out_elems,
            Pass::Backward => weight_elems * 2.0 + 4.0 * out_elems,
        };
        let bytes = traffic_elems * self.bytes_per_elem;
        let compute_s = flops / (self.peak_flops * self.compute_efficiency);
        let memory_s = bytes / (self.mem_bandwidth * self.bandwidth_efficiency);
        let time_s = compute_s.max(memory_s) + self.kernel_launch_s;
        GpuCost {
            time_s,
            energy_j: time_s * self.busy_power_w,
        }
    }

    /// Cost of one forward (inference) pass over lowered layer work.
    ///
    /// This is the primitive `reram_core::plan::ExecutionPlan` prices its
    /// GPU baseline with, guaranteeing both backends cost identical work.
    pub fn forward_cost_work(&self, works: &[LayerWork], batch: usize) -> GpuCost {
        let mut total = GpuCost::default();
        for w in works {
            total.add(self.work_cost(w, batch, Pass::Forward));
        }
        total
    }

    /// Cost of one full training step (forward + backward + update) over
    /// lowered layer work.
    pub fn training_cost_work(&self, works: &[LayerWork], batch: usize) -> GpuCost {
        let mut total = self.forward_cost_work(works, batch);
        for w in works {
            total.add(self.work_cost(w, batch, Pass::Backward));
        }
        total.add(self.weight_update_cost(works.iter().map(|w| w.weight_elems).sum()));
        total
    }

    /// Weight update: stream all weights + gradients + momenta once.
    fn weight_update_cost(&self, weight_elems: u64) -> GpuCost {
        let weight_bytes = weight_elems as f64 * self.bytes_per_elem * 3.0;
        let t = weight_bytes / (self.mem_bandwidth * self.bandwidth_efficiency);
        GpuCost {
            time_s: t,
            energy_j: t * self.busy_power_w,
        }
    }

    /// Cost of one forward (inference) pass of a whole network on a batch.
    pub fn forward_cost(&self, net: &NetworkSpec, batch: usize) -> GpuCost {
        self.forward_cost_work(&net.work(), batch)
    }

    /// Cost of one full training step (forward + backward + update) of a
    /// network on a batch.
    pub fn training_cost(&self, net: &NetworkSpec, batch: usize) -> GpuCost {
        self.training_cost_work(&net.work(), batch)
    }

    /// Cost of one GAN training step over lowered generator/discriminator
    /// work (the three phases of the paper's Fig. 8): D on real, D on
    /// generated (G forward included), and G's update through a fixed D.
    pub fn gan_training_cost_work(
        &self,
        generator: &[LayerWork],
        discriminator: &[LayerWork],
        batch: usize,
    ) -> GpuCost {
        let d_fwd = self.forward_cost_work(discriminator, batch);
        let g_fwd = self.forward_cost_work(generator, batch);
        let mut d_bwd = GpuCost::default();
        for w in discriminator {
            d_bwd.add(self.work_cost(w, batch, Pass::Backward));
        }
        let mut g_bwd = GpuCost::default();
        for w in generator {
            g_bwd.add(self.work_cost(w, batch, Pass::Backward));
        }
        let mut total = GpuCost::default();
        // ① D on real: D fwd + D bwd.
        total.add(d_fwd);
        total.add(d_bwd);
        // ② D on generated: G fwd + D fwd + D bwd.
        total.add(g_fwd);
        total.add(d_fwd);
        total.add(d_bwd);
        // ③ G: G fwd + D fwd + D bwd (data gradients) + G bwd.
        total.add(g_fwd);
        total.add(d_fwd);
        total.add(d_bwd);
        total.add(g_bwd);
        // Two weight updates (D and G).
        let weight_elems: u64 = generator
            .iter()
            .chain(discriminator)
            .map(|w| w.weight_elems)
            .sum();
        total.add(self.weight_update_cost(weight_elems));
        total
    }

    /// Cost of one GAN training step on a batch, from network specs.
    pub fn gan_training_cost(
        &self,
        generator: &NetworkSpec,
        discriminator: &NetworkSpec,
        batch: usize,
    ) -> GpuCost {
        self.gan_training_cost_work(&generator.work(), &discriminator.work(), batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_nn::{models, LayerSpec};

    #[test]
    fn training_costs_more_than_inference() {
        let gpu = GpuModel::gtx1080();
        let net = models::lenet_spec();
        let f = gpu.forward_cost(&net, 32);
        let t = gpu.training_cost(&net, 32);
        assert!(t.time_s > 2.0 * f.time_s, "{} vs {}", t.time_s, f.time_s);
        assert!(t.energy_j > f.energy_j);
    }

    #[test]
    fn bigger_networks_cost_more() {
        let gpu = GpuModel::gtx1080();
        let small = gpu.training_cost(&models::lenet_spec(), 32);
        let big = gpu.training_cost(&models::vgg_a_spec(), 32);
        assert!(big.time_s > 50.0 * small.time_s);
    }

    #[test]
    fn vgg_forward_time_plausible() {
        // Real VGG-A forward on a GTX 1080 at batch 32 runs on the order of
        // tens of milliseconds; the model should land in that regime.
        let gpu = GpuModel::gtx1080();
        let t = gpu.forward_cost(&models::vgg_a_spec(), 32).time_s;
        assert!((0.01..1.0).contains(&t), "VGG-A fwd batch-32: {t} s");
    }

    #[test]
    fn small_batches_are_launch_dominated() {
        let gpu = GpuModel::gtx1080();
        let net = models::lenet_spec();
        let t1 = gpu.forward_cost(&net, 1);
        let t64 = gpu.forward_cost(&net, 64);
        // 64x the work costs far less than 64x the time.
        assert!(t64.time_s < 32.0 * t1.time_s);
    }

    #[test]
    fn gan_step_costs_more_than_three_d_passes() {
        let gpu = GpuModel::gtx1080();
        let g = models::dcgan_generator_spec(100, 3, 64);
        let d = models::dcgan_discriminator_spec(3, 64);
        let gan = gpu.gan_training_cost(&g, &d, 64);
        let d_train = gpu.training_cost(&d, 64);
        assert!(gan.time_s > d_train.time_s);
    }

    #[test]
    fn energy_tracks_time() {
        let gpu = GpuModel::gtx1080();
        let c = gpu.training_cost(&models::alexnet_spec(), 16);
        assert!((c.energy_j / c.time_s - gpu.busy_power_w).abs() < 1.0);
    }

    #[test]
    fn compute_bound_layers_scale_with_flops() {
        // VGG's big conv layers are compute-bound: doubling the batch
        // roughly doubles time.
        let gpu = GpuModel::gtx1080();
        let net = models::vgg_a_spec();
        let t32 = gpu.forward_cost(&net, 32).time_s;
        let t64 = gpu.forward_cost(&net, 64).time_s;
        assert!((t64 / t32 - 2.0).abs() < 0.2, "ratio {}", t64 / t32);
    }

    #[test]
    fn fc_layers_are_memory_bound() {
        // A lone 4096x4096 FC at batch 1 moves 64MB of weights for 16M
        // MACs: memory time dominates compute time.
        let gpu = GpuModel::gtx1080();
        let fc = NetworkSpec::new(
            "fc",
            reram_tensor::Shape4::new(1, 4096, 1, 1),
            vec![LayerSpec::Fc {
                in_features: 4096,
                out_features: 4096,
            }],
        );
        let t = gpu.forward_cost(&fc, 1).time_s;
        let weight_bytes = 4096.0 * 4096.0 * 4.0;
        let mem_floor = weight_bytes / (gpu.mem_bandwidth * gpu.bandwidth_efficiency);
        assert!(t >= mem_floor, "time {t} below memory floor {mem_floor}");
        let compute = 2.0 * 4096.0 * 4096.0 / (gpu.peak_flops * gpu.compute_efficiency);
        assert!(mem_floor > 10.0 * compute, "FC should be memory-bound");
    }

    #[test]
    fn gan_cost_exceeds_sum_of_parts_lower_bound() {
        // The three-phase schedule runs D forward three times and backward
        // three times: the GAN step must cost at least 3x one D fwd+bwd.
        let gpu = GpuModel::gtx1080();
        let g = models::dcgan_generator_spec(100, 3, 32);
        let d = models::dcgan_discriminator_spec(3, 32);
        let gan = gpu.gan_training_cost(&g, &d, 32);
        let d_fwd = gpu.forward_cost(&d, 32);
        assert!(gan.time_s >= 3.0 * d_fwd.time_s);
    }

    #[test]
    fn spec_and_work_costing_agree() {
        // The NetworkSpec conveniences are thin wrappers over the lowered
        // LayerWork path — pricing the same plan must give the same cost.
        let gpu = GpuModel::gtx1080();
        let net = models::alexnet_spec();
        let works = net.work();
        let f = gpu.forward_cost(&net, 16);
        let fw = gpu.forward_cost_work(&works, 16);
        assert_eq!(f, fw);
        let t = gpu.training_cost(&net, 16);
        let tw = gpu.training_cost_work(&works, 16);
        assert_eq!(t, tw);
    }

    #[test]
    fn model_clone_round_trips() {
        let gpu = GpuModel::gtx1080();
        assert_eq!(gpu.clone(), gpu);
        assert_eq!(gpu.name, "GTX 1080");
    }

    #[test]
    fn cost_arithmetic() {
        let a = GpuCost {
            time_s: 1.0,
            energy_j: 2.0,
        };
        let b = a.times(3.0);
        assert_eq!(b.time_s, 3.0);
        let mut c = a;
        c.add(b);
        assert_eq!(c.energy_j, 8.0);
    }
}
