//! Property-based tests of the crossbar substrate's invariants.

use proptest::prelude::*;
use reram_crossbar::{CrossbarConfig, TiledMatrix};
use reram_tensor::{Matrix, Shape2};

fn small_config() -> CrossbarConfig {
    CrossbarConfig {
        rows: 16,
        cols: 32,
        ..CrossbarConfig::default()
    }
}

fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(Shape2::new(rows, cols), |r, c| {
        let k = (seed as usize).wrapping_add(r * 31 + c * 17) % 41;
        (k as f32 - 20.0) / 20.0
    })
}

fn vector(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| (((seed as usize + i * 13) % 23) as f32 - 11.0) / 11.0)
        .collect()
}

proptest! {
    /// MVM is (approximately) linear in the input: scaling the input by an
    /// integer factor scales the output within quantization error.
    #[test]
    fn mvm_scales_with_input(rows in 1usize..20, cols in 1usize..20, seed in 0u64..200) {
        let w = matrix(rows, cols, seed);
        let x = vector(cols, seed);
        let half: Vec<f32> = x.iter().map(|v| v * 0.5).collect();
        let mut t = TiledMatrix::program(&w, &small_config());
        let y = t.matvec(&x);
        let y_half = t.matvec(&half);
        for (a, b) in y.iter().zip(&y_half) {
            let tol = 0.01 * cols as f32 + 0.02;
            prop_assert!((a * 0.5 - b).abs() <= tol, "{a}*0.5 vs {b}");
        }
    }

    /// Zero weights produce exactly zero outputs regardless of input.
    #[test]
    fn zero_matrix_is_exactly_zero(rows in 1usize..20, cols in 1usize..20, seed in 0u64..50) {
        let w = Matrix::zeros(Shape2::new(rows, cols));
        let mut t = TiledMatrix::program(&w, &small_config());
        let y = t.matvec(&vector(cols, seed));
        prop_assert!(y.iter().all(|&v| v == 0.0));
    }

    /// Reprogramming with the same matrix never changes the result.
    #[test]
    fn reprogram_is_idempotent(rows in 1usize..12, cols in 1usize..12, seed in 0u64..50) {
        let w = matrix(rows, cols, seed);
        let x = vector(cols, seed);
        let mut t = TiledMatrix::program(&w, &small_config());
        let before = t.matvec(&x);
        t.reprogram(&w);
        let after = t.matvec(&x);
        prop_assert_eq!(before, after);
    }

    /// Delta reprogramming with unchanged weights issues zero pulses and
    /// preserves results exactly.
    #[test]
    fn delta_noop_is_free(rows in 1usize..12, cols in 1usize..12, seed in 0u64..50) {
        let w = matrix(rows, cols, seed);
        let x = vector(cols, seed);
        let mut t = TiledMatrix::program(&w, &small_config());
        let before = t.matvec(&x);
        let pulses = t.reprogram_delta(&w.clone());
        prop_assert_eq!(pulses, 0);
        prop_assert_eq!(t.matvec(&x), before);
    }

    /// Delta and full reprogramming agree functionally for in-range updates.
    #[test]
    fn delta_equals_full_reprogram(
        rows in 1usize..10, cols in 1usize..10, seed in 0u64..50,
    ) {
        let w1 = matrix(rows, cols, seed);
        // Scale weights down: stays inside the original full-scale range.
        let w2 = Matrix::from_fn(w1.shape(), |r, c| w1.at(r, c) * 0.75);
        let x = vector(cols, seed);
        let mut full = TiledMatrix::program(&w1, &small_config());
        let mut delta = TiledMatrix::program(&w1, &small_config());
        full.reprogram(&w2);
        let _ = delta.reprogram_delta(&w2);
        let yf = full.matvec(&x);
        let yd = delta.matvec(&x);
        // Full reprogram refits the scale; both stay within combined
        // quantization error of the exact product.
        let exact = w2.matvec(&x);
        let tol = 0.01 * cols as f32 + 0.05;
        for i in 0..exact.len() {
            prop_assert!((yf[i] - exact[i]).abs() <= tol, "full: {} vs {}", yf[i], exact[i]);
            prop_assert!((yd[i] - exact[i]).abs() <= tol, "delta: {} vs {}", yd[i], exact[i]);
        }
    }

    /// Moderate device noise shifts results by a bounded amount.
    #[test]
    fn noise_bounded_perturbation(seed in 0u64..50) {
        let w = matrix(12, 12, seed);
        let x = vector(12, seed);
        let mut ideal = TiledMatrix::program(&w, &small_config());
        let noisy_cfg = small_config().with_noise(0.02, 0.02, seed);
        let mut noisy = TiledMatrix::program(&w, &noisy_cfg);
        let yi = ideal.matvec(&x);
        let yn = noisy.matvec(&x);
        for (a, b) in yi.iter().zip(&yn) {
            prop_assert!((a - b).abs() < 1.0, "ideal {a} vs noisy {b}");
        }
    }

    /// Fault rate zero is bit-identical to the fault-free array.
    #[test]
    fn zero_fault_rate_is_ideal(seed in 0u64..50) {
        let w = matrix(8, 8, seed);
        let x = vector(8, seed);
        let mut a = TiledMatrix::program(&w, &small_config());
        let mut b = TiledMatrix::program(&w, &small_config().with_faults(0.0, 0.0, seed));
        prop_assert_eq!(a.matvec(&x), b.matvec(&x));
    }
}
