//! Spike driver and integrate-and-fire readout — paper §III-A.3 (a, b).
//!
//! PipeLayer replaces per-bitline ADCs with a spike-based scheme: the
//! *spike driver* converts each input value into a weighted train of binary
//! spikes (bit `t` of the code fires in cycle `t` and carries weight `2^t`),
//! and the *integrate-and-fire* (I&F) circuit integrates the bitline current
//! of each cycle into output spikes tallied by a counter, "essentially
//! converting the analog currents into digital values".

use reram_telemetry::{self as telemetry, Event};

/// Encodes unsigned integer input codes into bit-serial spike frames.
///
/// Frame `t` holds one boolean per wordline: whether bit `t` of that input
/// code is set. Total frames = `input_bits`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeTrain {
    input_bits: u32,
    frames: Vec<Vec<bool>>,
    total_spikes: u64,
}

impl SpikeTrain {
    /// Encodes `codes` (one per wordline) into `input_bits` spike frames.
    ///
    /// # Panics
    ///
    /// Panics if any code needs more than `input_bits` bits.
    pub fn encode(codes: &[u64], input_bits: u32) -> Self {
        let limit = if input_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << input_bits) - 1
        };
        // The spike driver is the digital-to-analog boundary: one input code
        // per wordline becomes a weighted spike train.
        telemetry::record(Event::DacConversion, codes.len() as u64);
        let mut total = 0u64;
        let frames = (0..input_bits)
            .map(|t| {
                codes
                    .iter()
                    .map(|&c| {
                        assert!(c <= limit, "code {c} exceeds {input_bits} input bits");
                        let fire = (c >> t) & 1 == 1;
                        total += fire as u64;
                        fire
                    })
                    .collect()
            })
            .collect();
        Self {
            input_bits,
            frames,
            total_spikes: total,
        }
    }

    /// Number of bit-serial frames (equals the configured input bits).
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// The wordline activity of frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn frame(&self, t: usize) -> &[bool] {
        &self.frames[t]
    }

    /// Binary weight of frame `t` in the final merge (`2^t`).
    pub fn frame_weight(&self, t: usize) -> u64 {
        1u64 << t
    }

    /// Total number of spikes across all frames — the driver's dynamic
    /// energy is proportional to this.
    pub fn total_spikes(&self) -> u64 {
        self.total_spikes
    }

    /// Bits of input precision carried by this train.
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }
}

/// Integrate-and-fire converter: turns an integrated bitline current into a
/// digital spike count.
///
/// With an ideal device the bitline current of one frame is an exact integer
/// (a sum of integer cell conductances), so the count is exact. With noise
/// the rounding performed here *is* the quantization the physical I&F
/// applies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegrateFire {
    conversions: u64,
}

impl IntegrateFire {
    /// Creates an I&F unit with a zeroed conversion counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts an integrated current into a non-negative spike count.
    pub fn convert(&mut self, current: f64) -> u64 {
        self.conversions += 1;
        current.round().max(0.0) as u64
    }

    /// Number of conversions performed (for energy accounting).
    pub fn conversions(&self) -> u64 {
        self.conversions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_reconstructs_codes() {
        let codes = [0u64, 1, 5, 255, 170];
        let train = SpikeTrain::encode(&codes, 8);
        assert_eq!(train.num_frames(), 8);
        for (i, &c) in codes.iter().enumerate() {
            let rebuilt: u64 = (0..8)
                .map(|t| (train.frame(t)[i] as u64) * train.frame_weight(t))
                .sum();
            assert_eq!(rebuilt, c);
        }
    }

    #[test]
    fn total_spikes_counts_set_bits() {
        let train = SpikeTrain::encode(&[0b1011, 0b0001], 4);
        assert_eq!(train.total_spikes(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds 4 input bits")]
    fn encode_rejects_oversized_code() {
        let _ = SpikeTrain::encode(&[16], 4);
    }

    #[test]
    fn frame_weights_are_powers_of_two() {
        let train = SpikeTrain::encode(&[1], 6);
        for t in 0..6 {
            assert_eq!(train.frame_weight(t), 1 << t);
        }
    }

    #[test]
    fn zero_codes_produce_silent_train() {
        let train = SpikeTrain::encode(&[0, 0, 0], 16);
        assert_eq!(train.total_spikes(), 0);
        for t in 0..16 {
            assert!(train.frame(t).iter().all(|&f| !f));
        }
    }

    #[test]
    fn integrate_fire_rounds_and_clamps() {
        let mut inf = IntegrateFire::new();
        assert_eq!(inf.convert(3.4), 3);
        assert_eq!(inf.convert(3.6), 4);
        assert_eq!(inf.convert(-0.7), 0);
        assert_eq!(inf.conversions(), 3);
    }

    #[test]
    fn integrate_fire_exact_on_integers() {
        let mut inf = IntegrateFire::new();
        for i in 0..100u64 {
            assert_eq!(inf.convert(i as f64), i);
        }
    }
}
