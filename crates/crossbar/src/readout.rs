//! Readout-scheme design space: spike-based I&F vs. conventional ADCs.
//!
//! PipeLayer "uses a weighted spike coding scheme \[9\] to further reduce the
//! area and energy overhead" of conventional per-bitline ADC readout
//! (§III-A.3 (a)). This module makes that claim checkable: it models both
//! readout styles over the same array geometry and bit-serial schedule so
//! their area, energy and latency can be compared directly.
//!
//! * **Spike I&F** — one integrate-and-fire converter plus counter per
//!   bitline: tiny and parallel, one conversion per bitline per frame.
//! * **ADC** — one SAR ADC time-shared by `share` bitlines (the ISAAC
//!   organization): far larger per instance, and the sharing serializes
//!   conversions, stretching each frame.

use crate::CrossbarConfig;
use serde::{Deserialize, Serialize};

/// Readout circuit style at the bitline periphery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReadoutKind {
    /// Integrate-and-fire + counter per bitline (PipeLayer, §III-A.3 (b)).
    SpikeIf,
    /// SAR ADC of `bits` resolution shared across `share` bitlines
    /// (ISAAC-style).
    Adc {
        /// ADC resolution in bits.
        bits: u32,
        /// Bitlines multiplexed onto one ADC.
        share: usize,
    },
}

/// Circuit parameters of the two readout styles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadoutModel {
    /// I&F + counter area per bitline, µm².
    pub if_area_um2: f64,
    /// I&F energy per conversion, pJ.
    pub if_energy_pj: f64,
    /// I&F conversion time, ns (overlapped with the frame; no added
    /// latency when it fits in one frame).
    pub if_conversion_ns: f64,
    /// SAR ADC area per instance at 8 bits, µm² (doubles per extra bit).
    pub adc_area_um2_8b: f64,
    /// SAR ADC energy per conversion at 8 bits, pJ (doubles per extra bit).
    pub adc_energy_pj_8b: f64,
    /// SAR ADC conversion time at 8 bits, ns (doubles per extra bit).
    pub adc_conversion_ns_8b: f64,
}

impl Default for ReadoutModel {
    fn default() -> Self {
        Self {
            if_area_um2: 60.0,
            if_energy_pj: 2.0,
            if_conversion_ns: 10.0,
            adc_area_um2_8b: 1500.0,
            adc_energy_pj_8b: 2.0,
            adc_conversion_ns_8b: 10.0,
        }
    }
}

/// Per-array readout cost of one full bit-serial MVM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadoutCost {
    /// Periphery silicon area per array, µm².
    pub area_um2: f64,
    /// Readout energy per MVM, pJ.
    pub energy_pj: f64,
    /// Readout latency added per frame beyond the analog settle, ns.
    pub frame_latency_ns: f64,
}

impl ReadoutModel {
    fn adc_scale(bits: u32) -> f64 {
        2.0f64.powi(bits as i32 - 8)
    }

    /// Readout cost of one MVM for the given scheme over `config`'s
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if an ADC scheme has zero sharing or a resolution outside
    /// `4..=12` bits.
    pub fn mvm_cost(&self, kind: ReadoutKind, config: &CrossbarConfig) -> ReadoutCost {
        let cols = config.cols as f64;
        let frames = config.input_bits as f64;
        match kind {
            ReadoutKind::SpikeIf => ReadoutCost {
                area_um2: cols * self.if_area_um2,
                energy_pj: cols * frames * self.if_energy_pj,
                // All bitlines convert in parallel within the frame.
                frame_latency_ns: self.if_conversion_ns,
            },
            ReadoutKind::Adc { bits, share } => {
                assert!(share > 0, "ADC sharing must be positive");
                assert!(
                    (4..=12).contains(&bits),
                    "ADC resolution {bits} outside 4..=12"
                );
                let s = Self::adc_scale(bits);
                let adcs = (config.cols as f64 / share as f64).ceil();
                ReadoutCost {
                    area_um2: adcs * self.adc_area_um2_8b * s,
                    energy_pj: cols * frames * self.adc_energy_pj_8b * s,
                    // The shared ADC walks its bitlines serially each frame.
                    frame_latency_ns: share as f64 * self.adc_conversion_ns_8b * s,
                }
            }
        }
    }

    /// Area advantage of the spike scheme over an ADC scheme (>1 = spike
    /// smaller).
    pub fn spike_area_advantage(&self, adc: ReadoutKind, config: &CrossbarConfig) -> f64 {
        let s = self.mvm_cost(ReadoutKind::SpikeIf, config);
        let a = self.mvm_cost(adc, config);
        a.area_um2 / s.area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CrossbarConfig {
        CrossbarConfig::default()
    }

    fn isaac_adc() -> ReadoutKind {
        ReadoutKind::Adc {
            bits: 8,
            share: 128,
        }
    }

    #[test]
    fn spike_scheme_is_smaller_per_array() {
        // The paper's claim: spike coding reduces area overhead. A shared
        // 8-bit ADC is area-competitive only because it is shared; at one
        // ADC per array vs one I&F per bitline the totals still favour
        // spikes at our parameters once latency is equalized — check the
        // unshared comparison where the claim is unambiguous.
        let m = ReadoutModel::default();
        let per_bitline_adc = ReadoutKind::Adc { bits: 8, share: 1 };
        let adv = m.spike_area_advantage(per_bitline_adc, &cfg());
        assert!(adv > 10.0, "spike area advantage {adv}");
    }

    #[test]
    fn shared_adc_pays_latency() {
        let m = ReadoutModel::default();
        let spike = m.mvm_cost(ReadoutKind::SpikeIf, &cfg());
        let adc = m.mvm_cost(isaac_adc(), &cfg());
        // Time-sharing one ADC across 128 bitlines stretches every frame.
        assert!(
            adc.frame_latency_ns > 50.0 * spike.frame_latency_ns,
            "ADC frame {} vs spike {}",
            adc.frame_latency_ns,
            spike.frame_latency_ns
        );
    }

    #[test]
    fn adc_energy_grows_exponentially_with_bits() {
        let m = ReadoutModel::default();
        let e8 = m
            .mvm_cost(
                ReadoutKind::Adc {
                    bits: 8,
                    share: 128,
                },
                &cfg(),
            )
            .energy_pj;
        let e10 = m
            .mvm_cost(
                ReadoutKind::Adc {
                    bits: 10,
                    share: 128,
                },
                &cfg(),
            )
            .energy_pj;
        assert!((e10 / e8 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn spike_energy_matches_if_budget() {
        let m = ReadoutModel::default();
        let c = m.mvm_cost(ReadoutKind::SpikeIf, &cfg());
        // 128 bitlines x 16 frames x 2 pJ.
        assert!((c.energy_pj - 128.0 * 16.0 * 2.0).abs() < 1e-9);
        assert!((c.area_um2 - 128.0 * 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside 4..=12")]
    fn rejects_extreme_adc_resolution() {
        let _ = ReadoutModel::default().mvm_cost(ReadoutKind::Adc { bits: 16, share: 8 }, &cfg());
    }

    #[test]
    fn sharing_trades_area_for_latency() {
        let m = ReadoutModel::default();
        let tight = m.mvm_cost(
            ReadoutKind::Adc {
                bits: 8,
                share: 128,
            },
            &cfg(),
        );
        let wide = m.mvm_cost(ReadoutKind::Adc { bits: 8, share: 16 }, &cfg());
        assert!(wide.area_um2 > tight.area_um2);
        assert!(wide.frame_latency_ns < tight.frame_latency_ns);
        // Energy is per conversion, independent of sharing.
        assert_eq!(wide.energy_pj, tight.energy_pj);
    }
}
