//! A single ReRAM crossbar array — paper Fig. 3(a, b).
//!
//! "The vector is represented by the input signals on the wordlines. Each
//! element of the matrix is programmed into the cell conductance in the
//! crossbar array. Thus, the current flowing to the end of each bitline is
//! viewed as the result of the matrix-vector multiplication."

use crate::device::{ReramCell, ReramDeviceModel};
use crate::spike::{IntegrateFire, SpikeTrain};
use crate::CrossbarConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reram_telemetry::{self as telemetry, Event};

/// Fixed-geometry crossbar of ReRAM cells with bit-serial analog MVM.
///
/// Cells are stored row-major: `cells[r * cols + c]` sits at wordline `r`,
/// bitline `c`. The array is unsigned — sign handling lives one level up in
/// [`crate::tile::TiledMatrix`] via differential array pairs.
///
/// Stuck-at cell faults (manufacturing defects / worn-out cells) are drawn
/// once at construction and persist: a stuck cell ignores every subsequent
/// programming pulse and always presents its stuck conductance.
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    cells: Vec<ReramCell>,
    /// Per-cell stuck level (`None` = healthy).
    stuck: Vec<Option<u32>>,
    device: ReramDeviceModel,
    mvm_count: u64,
    spike_count: u64,
}

impl CrossbarArray {
    /// Creates an array with all cells programmed to level 0.
    pub fn new(config: &CrossbarConfig) -> Self {
        let mut device = ReramDeviceModel::new(
            config.cell_bits,
            config.write_sigma,
            config.read_sigma,
            config.noise_seed,
        );
        let max_level = device.max_level();
        let stuck: Vec<Option<u32>> = if config.stuck_off_rate > 0.0 || config.stuck_on_rate > 0.0 {
            // Distinct RNG stream from the variation RNG so enabling
            // faults does not perturb the variation draws.
            let mut rng =
                StdRng::seed_from_u64(config.noise_seed.wrapping_mul(0x51_7c_c1_b7_27_22_0a_95));
            (0..config.rows * config.cols)
                .map(|_| {
                    let r: f64 = rng.gen();
                    if r < config.stuck_off_rate {
                        Some(0)
                    } else if r < config.stuck_off_rate + config.stuck_on_rate {
                        Some(max_level)
                    } else {
                        None
                    }
                })
                .collect()
        } else {
            vec![None; config.rows * config.cols]
        };
        let cells = stuck
            .iter()
            .map(|s| device.program(s.unwrap_or(0)))
            .collect();
        Self {
            rows: config.rows,
            cols: config.cols,
            cells,
            stuck,
            device,
            mvm_count: 0,
            spike_count: 0,
        }
    }

    /// Number of stuck (faulty) cells in this array.
    pub fn fault_count(&self) -> usize {
        self.stuck.iter().filter(|s| s.is_some()).count()
    }

    /// Wordline count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bitline count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Programs the whole array from row-major levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != rows * cols` or any level exceeds the
    /// device range.
    pub fn program(&mut self, levels: &[u32]) {
        assert_eq!(
            levels.len(),
            self.rows * self.cols,
            "program: {} levels for a {}x{} array",
            levels.len(),
            self.rows,
            self.cols
        );
        self.cells = levels
            .iter()
            .zip(&self.stuck)
            .map(|(&l, s)| self.device.program(s.unwrap_or(l)))
            .collect();
    }

    /// Programs a single cell (used by in-place weight updates).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range or the level too large.
    pub fn program_cell(&mut self, row: usize, col: usize, level: u32) {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row},{col}) out of range"
        );
        let i = row * self.cols + col;
        let effective = self.stuck[i].unwrap_or(level);
        self.cells[i] = self.device.program(effective);
    }

    /// The digital level currently programmed at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn level_at(&self, row: usize, col: usize) -> u32 {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row},{col}) out of range"
        );
        self.cells[row * self.cols + col].level()
    }

    /// One analog frame: bitline currents with the given wordlines active.
    ///
    /// Returns `cols` currents, each the sum of active cells' conductances.
    /// Read noise (if configured) is drawn once per bitline per frame,
    /// modelling integrated current noise at the I&F input.
    ///
    /// # Panics
    ///
    /// Panics if `active.len() != rows`.
    pub fn bitline_currents(&mut self, active: &[bool]) -> Vec<f64> {
        assert_eq!(
            active.len(),
            self.rows,
            "bitline_currents: {} wordline states for {} rows",
            active.len(),
            self.rows
        );
        let mut currents = vec![0.0f64; self.cols];
        for (r, &on) in active.iter().enumerate() {
            if !on {
                continue;
            }
            self.spike_count += 1;
            let base = r * self.cols;
            for (c, cur) in currents.iter_mut().enumerate() {
                *cur += self.cells[base + c].conductance();
            }
        }
        if !self.device.is_ideal() {
            // One equivalent read-noise draw per bitline; a dummy level-0
            // cell turns the device's read noise into additive current noise.
            // The dummy is a readout artifact: it must not count as cell
            // write/read traffic in endurance or telemetry accounting.
            let dummy = self.device.noise_dummy();
            for cur in &mut currents {
                *cur += self.device.read_noise(&dummy);
            }
        }
        currents
    }

    /// Full spike-coded matrix-vector multiplication.
    ///
    /// Encodes `codes` (one unsigned integer per wordline) as a weighted
    /// spike train, integrates every frame through I&F counters, and merges
    /// the per-frame counts with binary weights. Returns one accumulated
    /// count per bitline: `y_c = Σ_t 2^t · IF(Σ_r g[r][c] · bit_t(x_r))`.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != rows` or a code exceeds `input_bits`.
    pub fn mvm_codes(&mut self, codes: &[u64], input_bits: u32) -> Vec<u64> {
        assert_eq!(
            codes.len(),
            self.rows,
            "mvm_codes: {} codes for {} rows",
            codes.len(),
            self.rows
        );
        self.mvm_count += 1;
        let train = SpikeTrain::encode(codes, input_bits);
        // Batched: one recorder acquisition for the whole MVM. Each of the
        // `input_bits` frames drives every bitline through one I&F
        // conversion, so conversions = frames x cols (core::timing's
        // closed form).
        telemetry::with_recorder(|t| {
            t.record(Event::CrossbarMvm, 1);
            t.record(Event::SpikeFrame, train.num_frames() as u64);
            t.record(
                Event::AdcConversion,
                (train.num_frames() * self.cols) as u64,
            );
        });
        let mut inf = IntegrateFire::new();
        let mut acc = vec![0u64; self.cols];
        for t in 0..train.num_frames() {
            let currents = self.bitline_currents(train.frame(t));
            let w = train.frame_weight(t);
            for (a, cur) in acc.iter_mut().zip(currents) {
                *a += inf.convert(cur) * w;
            }
        }
        acc
    }

    /// Number of MVM operations performed.
    pub fn mvm_count(&self) -> u64 {
        self.mvm_count
    }

    /// Number of wordline spikes driven (dynamic energy proxy).
    pub fn spike_count(&self) -> u64 {
        self.spike_count
    }

    /// Number of cell programming operations (endurance proxy).
    pub fn write_count(&self) -> u64 {
        self.device.write_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CrossbarConfig {
        CrossbarConfig {
            rows: 4,
            cols: 4,
            cell_bits: 4,
            weight_bits: 4,
            input_bits: 4,
            ..CrossbarConfig::default()
        }
    }

    #[test]
    fn new_array_is_all_zero() {
        let mut a = CrossbarArray::new(&small_config());
        let y = a.mvm_codes(&[15, 15, 15, 15], 4);
        assert!(y.iter().all(|&v| v == 0));
    }

    #[test]
    fn program_and_read_back_levels() {
        let mut a = CrossbarArray::new(&small_config());
        let levels: Vec<u32> = (0..16).collect();
        a.program(&levels);
        assert_eq!(a.level_at(0, 0), 0);
        assert_eq!(a.level_at(3, 3), 15);
        assert_eq!(a.level_at(1, 2), 6);
    }

    #[test]
    fn bitline_current_sums_active_rows() {
        let mut a = CrossbarArray::new(&small_config());
        let levels: Vec<u32> = (0..16).map(|i| i % 16).collect();
        a.program(&levels);
        // Activate rows 0 and 2: column c current = levels[c] + levels[8+c].
        let currents = a.bitline_currents(&[true, false, true, false]);
        for c in 0..4 {
            assert_eq!(currents[c], (c + (8 + c)) as f64);
        }
    }

    #[test]
    fn mvm_codes_computes_integer_product() {
        let mut a = CrossbarArray::new(&small_config());
        // g = row-major 4x4 matrix of levels.
        let g = [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0];
        a.program(&g);
        let x = [3u64, 0, 7, 15];
        let y = a.mvm_codes(&x, 4);
        for c in 0..4 {
            let want: u64 = (0..4).map(|r| g[r * 4 + c] as u64 * x[r]).sum();
            assert_eq!(y[c], want, "column {c}");
        }
    }

    #[test]
    fn mvm_is_exact_for_max_inputs() {
        let mut a = CrossbarArray::new(&small_config());
        a.program(&[15u32; 16]);
        let y = a.mvm_codes(&[15; 4], 4);
        // Every column: 4 rows * 15 * 15 = 900.
        assert!(y.iter().all(|&v| v == 900));
    }

    #[test]
    fn counters_accumulate() {
        let mut a = CrossbarArray::new(&small_config());
        a.program(&[1; 16]);
        let _ = a.mvm_codes(&[0b1010, 0b0101, 0, 0b1111], 4);
        assert_eq!(a.mvm_count(), 1);
        // spikes = popcount sum = 2 + 2 + 0 + 4 = 8
        assert_eq!(a.spike_count(), 8);
        // writes = initial 16 + programmed 16
        assert_eq!(a.write_count(), 32);
    }

    #[test]
    fn noisy_array_stays_close_to_ideal() {
        let cfg = small_config().with_noise(0.02, 0.02, 5);
        let mut noisy = CrossbarArray::new(&cfg);
        let mut ideal = CrossbarArray::new(&small_config());
        let g: Vec<u32> = (0..16).map(|i| (i * 3) % 16).collect();
        noisy.program(&g);
        ideal.program(&g);
        let x = [7u64, 3, 15, 1];
        let yn = noisy.mvm_codes(&x, 4);
        let yi = ideal.mvm_codes(&x, 4);
        for (a, b) in yn.iter().zip(&yi) {
            let diff = (*a as i64 - *b as i64).abs();
            assert!(diff <= 16, "noisy {a} vs ideal {b}");
        }
    }

    #[test]
    #[should_panic(expected = "codes for")]
    fn mvm_rejects_wrong_length() {
        let mut a = CrossbarArray::new(&small_config());
        let _ = a.mvm_codes(&[1, 2], 4);
    }

    #[test]
    fn fault_free_array_has_no_stuck_cells() {
        let a = CrossbarArray::new(&small_config());
        assert_eq!(a.fault_count(), 0);
    }

    #[test]
    fn fault_rate_statistics() {
        let cfg = CrossbarConfig {
            rows: 64,
            cols: 64,
            ..CrossbarConfig::default()
        }
        .with_faults(0.05, 0.05, 17);
        let a = CrossbarArray::new(&cfg);
        let rate = a.fault_count() as f64 / (64.0 * 64.0);
        assert!((rate - 0.10).abs() < 0.03, "fault rate {rate}");
    }

    #[test]
    fn stuck_cells_ignore_programming() {
        let cfg = small_config().with_faults(0.5, 0.0, 23);
        let mut a = CrossbarArray::new(&cfg);
        let faults_before = a.fault_count();
        assert!(faults_before > 0, "need at least one stuck cell");
        a.program(&[15u32; 16]);
        // Stuck-off cells still read level 0 after programming to 15.
        let zeros = (0..4)
            .flat_map(|r| (0..4).map(move |c| (r, c)))
            .filter(|&(r, c)| a.level_at(r, c) == 0)
            .count();
        assert_eq!(zeros, faults_before);
    }

    #[test]
    fn stuck_on_cells_add_current() {
        let cfg = small_config().with_faults(0.0, 0.5, 29);
        let mut a = CrossbarArray::new(&cfg);
        // Without programming anything, stuck-on cells conduct at max.
        let y = a.mvm_codes(&[1, 1, 1, 1], 4);
        let total: u64 = y.iter().sum();
        assert_eq!(total, a.fault_count() as u64 * 15);
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let cfg = small_config().with_faults(0.3, 0.1, 31);
        let a = CrossbarArray::new(&cfg);
        let b = CrossbarArray::new(&cfg);
        assert_eq!(a.fault_count(), b.fault_count());
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(a.level_at(r, c), b.level_at(r, c));
            }
        }
    }

    #[test]
    fn program_cell_updates_single_weight() {
        let mut a = CrossbarArray::new(&small_config());
        a.program_cell(2, 1, 9);
        assert_eq!(a.level_at(2, 1), 9);
        assert_eq!(a.level_at(2, 2), 0);
    }
}
