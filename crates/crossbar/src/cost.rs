//! Latency, energy and area accounting for crossbar operations.
//!
//! The paper's evaluations (Table I) are produced by exactly this style of
//! component-budget model: each circuit block — spike driver, cell array,
//! integrate-and-fire converter, write driver — contributes a per-operation
//! latency/energy, and an experiment sums the contributions of every
//! operation its schedule performs. Default parameters follow the published
//! ISAAC/PipeLayer component budgets in spirit; absolute values are
//! configurable because the comparison shape, not the absolute numbers, is
//! the reproduction target (see `EXPERIMENTS.md`).

use serde::{Deserialize, Serialize};

use crate::CrossbarConfig;

/// Per-component circuit parameters of the crossbar cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarCostModel {
    /// Latency of one 1-bit spike frame through an array, ns.
    pub frame_latency_ns: f64,
    /// Spike driver energy per wordline spike, pJ.
    pub spike_driver_energy_pj: f64,
    /// Cell read energy per active cell per frame, pJ.
    pub cell_read_energy_pj: f64,
    /// Integrate-and-fire + counter energy per bitline per frame, pJ.
    pub inf_energy_pj: f64,
    /// Cell programming energy, pJ per cell.
    pub cell_write_energy_pj: f64,
    /// Programming latency per array row (rows write in parallel across
    /// bitlines), ns.
    pub row_write_latency_ns: f64,
    /// Partial-sum adder latency per merge level, ns.
    pub adder_latency_ns: f64,
    /// Buffer subarray read+write energy per byte moved, pJ.
    pub buffer_energy_pj_per_byte: f64,
    /// Silicon area per array including periphery, µm².
    pub array_area_um2: f64,
}

impl Default for CrossbarCostModel {
    fn default() -> Self {
        Self {
            frame_latency_ns: 20.0,
            spike_driver_energy_pj: 1.0,
            cell_read_energy_pj: 0.1,
            inf_energy_pj: 2.0,
            cell_write_energy_pj: 20.0,
            row_write_latency_ns: 100.0,
            adder_latency_ns: 1.0,
            buffer_energy_pj_per_byte: 1.0,
            array_area_um2: 2500.0,
        }
    }
}

/// Energy breakdown of an MVM by circuit component, pJ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentEnergy {
    /// Spike drivers (input application).
    pub driver_pj: f64,
    /// Cell array reads.
    pub cells_pj: f64,
    /// Integrate-and-fire converters and counters.
    pub inf_pj: f64,
}

impl ComponentEnergy {
    /// Total energy across components, pJ.
    pub fn total_pj(&self) -> f64 {
        self.driver_pj + self.cells_pj + self.inf_pj
    }

    /// Component-wise sum.
    pub fn accumulate(&mut self, other: &ComponentEnergy) {
        self.driver_pj += other.driver_pj;
        self.cells_pj += other.cells_pj;
        self.inf_pj += other.inf_pj;
    }
}

/// Cost of one (possibly grid-wide) matrix-vector multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MvmCost {
    /// End-to-end latency, ns.
    pub latency_ns: f64,
    /// Energy breakdown, pJ.
    pub energy: ComponentEnergy,
    /// Spike frames driven (equals configured input bits).
    pub frames: u32,
    /// Physical arrays engaged.
    pub arrays: usize,
}

impl MvmCost {
    /// Total energy, pJ.
    pub fn energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }
}

impl CrossbarCostModel {
    /// Cost of a full bit-serial MVM through a single array.
    ///
    /// `activity` is the fraction of wordline spikes actually firing
    /// (average input bit density); it scales driver and cell energy but not
    /// latency — the schedule always walks all `input_bits` frames.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn mvm_cost(&self, config: &CrossbarConfig, activity: f64) -> MvmCost {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity {activity} outside [0, 1]"
        );
        let frames = config.input_bits as f64;
        let active_rows = config.rows as f64 * activity;
        MvmCost {
            latency_ns: frames * self.frame_latency_ns,
            energy: ComponentEnergy {
                driver_pj: frames * active_rows * self.spike_driver_energy_pj,
                cells_pj: frames * active_rows * config.cols as f64 * self.cell_read_energy_pj,
                inf_pj: frames * config.cols as f64 * self.inf_energy_pj,
            },
            frames: config.input_bits,
            arrays: 1,
        }
    }

    /// Cost of an MVM across a `row_tiles × col_tiles` differential grid.
    ///
    /// All arrays operate in parallel, so latency is one array MVM plus a
    /// logarithmic partial-sum merge tree over the row tiles; energy is the
    /// sum over all `2 · row_tiles · col_tiles` arrays.
    ///
    /// # Panics
    ///
    /// Panics if either tile count is zero or `activity` is out of range.
    pub fn grid_mvm_cost(
        &self,
        config: &CrossbarConfig,
        row_tiles: usize,
        col_tiles: usize,
        activity: f64,
    ) -> MvmCost {
        assert!(row_tiles > 0 && col_tiles > 0, "empty grid");
        let one = self.mvm_cost(config, activity);
        let arrays = 2 * row_tiles * col_tiles;
        let merge_levels = usize::BITS - (row_tiles - 1).leading_zeros();
        let mut energy = ComponentEnergy::default();
        for _ in 0..arrays {
            energy.accumulate(&one.energy);
        }
        MvmCost {
            latency_ns: one.latency_ns + merge_levels as f64 * self.adder_latency_ns,
            energy,
            frames: one.frames,
            arrays,
        }
    }

    /// Cost of programming (weight-updating) one full array:
    /// `(latency_ns, energy_pj)`.
    pub fn program_cost(&self, config: &CrossbarConfig) -> (f64, f64) {
        let cells = (config.rows * config.cols) as f64;
        (
            config.rows as f64 * self.row_write_latency_ns,
            cells * self.cell_write_energy_pj,
        )
    }

    /// Buffer traffic energy for moving `bytes` through a buffer subarray, pJ.
    pub fn buffer_energy_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.buffer_energy_pj_per_byte
    }

    /// Silicon area of an array grid, µm².
    pub fn grid_area_um2(&self, arrays: usize) -> f64 {
        arrays as f64 * self.array_area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CrossbarConfig {
        CrossbarConfig::default()
    }

    #[test]
    fn mvm_latency_scales_with_input_bits() {
        let m = CrossbarCostModel::default();
        let c16 = m.mvm_cost(&cfg(), 0.5);
        let mut cfg8 = cfg();
        cfg8.input_bits = 8;
        let c8 = m.mvm_cost(&cfg8, 0.5);
        assert!((c16.latency_ns / c8.latency_ns - 2.0).abs() < 1e-9);
        assert_eq!(c16.frames, 16);
        assert_eq!(c8.frames, 8);
    }

    #[test]
    fn mvm_energy_scales_with_activity() {
        let m = CrossbarCostModel::default();
        let quiet = m.mvm_cost(&cfg(), 0.0);
        let busy = m.mvm_cost(&cfg(), 1.0);
        assert_eq!(quiet.energy.driver_pj, 0.0);
        assert_eq!(quiet.energy.cells_pj, 0.0);
        // I&F runs regardless of input activity.
        assert!(quiet.energy.inf_pj > 0.0);
        assert!(busy.energy_pj() > quiet.energy_pj());
    }

    #[test]
    fn grid_latency_is_one_array_plus_merge() {
        let m = CrossbarCostModel::default();
        let one = m.mvm_cost(&cfg(), 0.5);
        let grid = m.grid_mvm_cost(&cfg(), 9, 2, 0.5);
        assert_eq!(grid.arrays, 36);
        // ceil(log2(9)) = 4 merge levels.
        assert!((grid.latency_ns - (one.latency_ns + 4.0 * m.adder_latency_ns)).abs() < 1e-9);
    }

    #[test]
    fn grid_energy_sums_arrays() {
        let m = CrossbarCostModel::default();
        let one = m.mvm_cost(&cfg(), 0.5);
        let grid = m.grid_mvm_cost(&cfg(), 3, 4, 0.5);
        assert!((grid.energy_pj() - 24.0 * one.energy_pj()).abs() < 1e-6);
    }

    #[test]
    fn single_row_tile_has_zero_merge() {
        let m = CrossbarCostModel::default();
        let one = m.mvm_cost(&cfg(), 0.5);
        let grid = m.grid_mvm_cost(&cfg(), 1, 1, 0.5);
        assert_eq!(grid.latency_ns, one.latency_ns);
    }

    #[test]
    fn program_cost_scales_with_geometry() {
        let m = CrossbarCostModel::default();
        let (lat, en) = m.program_cost(&cfg());
        assert_eq!(lat, 128.0 * m.row_write_latency_ns);
        assert_eq!(en, (128.0 * 128.0) * m.cell_write_energy_pj);
    }

    #[test]
    fn component_energy_breakdown_sums() {
        let e = ComponentEnergy {
            driver_pj: 1.0,
            cells_pj: 2.0,
            inf_pj: 3.0,
        };
        assert_eq!(e.total_pj(), 6.0);
        let mut acc = ComponentEnergy::default();
        acc.accumulate(&e);
        acc.accumulate(&e);
        assert_eq!(acc.total_pj(), 12.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_activity() {
        let _ = CrossbarCostModel::default().mvm_cost(&cfg(), 1.5);
    }

    #[test]
    fn buffer_and_area_helpers() {
        let m = CrossbarCostModel::default();
        assert_eq!(m.buffer_energy_pj(1000), 1000.0);
        assert_eq!(m.grid_area_um2(4), 10_000.0);
    }
}
