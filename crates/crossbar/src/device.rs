//! ReRAM device (cell) model — paper §II-B.
//!
//! "Resistive random access memory (ReRAM) is a type of non-volatile memory
//! that stores information as device resistance states." We model a cell as
//! a discrete conductance level in `0..2^cell_bits`, with optional Gaussian
//! programming variation frozen at write time (non-volatile state) and
//! Gaussian noise added per read.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reram_telemetry::{self as telemetry, Event};

/// One ReRAM cell: a target conductance level plus the actually-programmed
/// (variation-affected) analog conductance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReramCell {
    level: u32,
    conductance: f64,
}

impl ReramCell {
    /// The digital level the cell was programmed to.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The analog conductance realized after programming variation, in units
    /// of one level step.
    pub fn conductance(&self) -> f64 {
        self.conductance
    }
}

/// Stateful device model shared by all cells of a subsystem.
///
/// Owns the variation RNG so that programming the same matrix twice with the
/// same seed yields identical devices (reproducible experiments), while two
/// different arrays draw independent variations.
#[derive(Debug, Clone)]
pub struct ReramDeviceModel {
    levels: u32,
    write_sigma: f64,
    read_sigma: f64,
    rng: StdRng,
    writes: u64,
    reads: u64,
}

impl ReramDeviceModel {
    /// Creates a device model.
    ///
    /// `cell_bits` gives `2^cell_bits` conductance levels; `write_sigma` and
    /// `read_sigma` are expressed as a fraction of one level step.
    ///
    /// # Panics
    ///
    /// Panics if `cell_bits` is 0 or greater than 8.
    pub fn new(cell_bits: u32, write_sigma: f64, read_sigma: f64, seed: u64) -> Self {
        assert!(
            (1..=8).contains(&cell_bits),
            "cell_bits {cell_bits} outside 1..=8"
        );
        Self {
            levels: 1 << cell_bits,
            write_sigma,
            read_sigma,
            rng: StdRng::seed_from_u64(seed),
            writes: 0,
            reads: 0,
        }
    }

    /// Number of programmable conductance levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Highest programmable level value.
    pub fn max_level(&self) -> u32 {
        self.levels - 1
    }

    /// Programs a cell to `level`, applying write variation.
    ///
    /// The variation is frozen into the returned cell — ReRAM is
    /// non-volatile, so the error persists across every subsequent read
    /// until the cell is reprogrammed (a weight update in PipeLayer's
    /// terms, §III-A.3(a)).
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the device's level range.
    pub fn program(&mut self, level: u32) -> ReramCell {
        assert!(
            level < self.levels,
            "level {level} exceeds device range {}",
            self.levels
        );
        self.writes += 1;
        telemetry::record(Event::CellWrite, 1);
        let noise = if self.write_sigma > 0.0 {
            self.write_sigma * self.gaussian()
        } else {
            0.0
        };
        ReramCell {
            level,
            conductance: (level as f64 + noise).max(0.0),
        }
    }

    /// Reads a cell's conductance, adding read noise.
    pub fn read(&mut self, cell: &ReramCell) -> f64 {
        self.reads += 1;
        telemetry::record(Event::CellRead, 1);
        if self.read_sigma > 0.0 {
            (cell.conductance + self.read_sigma * self.gaussian()).max(0.0)
        } else {
            cell.conductance
        }
    }

    /// Programs an *uncounted* dummy level-0 cell for read-noise sampling.
    ///
    /// Draws from the same RNG stream as [`program`](Self::program) but
    /// counts as neither a write nor a telemetry event: the dummy cell is a
    /// measurement artifact of the readout circuit, not endurance traffic.
    pub fn noise_dummy(&mut self) -> ReramCell {
        let noise = if self.write_sigma > 0.0 {
            self.write_sigma * self.gaussian()
        } else {
            0.0
        };
        ReramCell {
            level: 0,
            conductance: noise.max(0.0),
        }
    }

    /// Additive read-noise sample for `cell`, without counting a read.
    ///
    /// Returns `read(cell) - cell.conductance()` using the same RNG stream
    /// as [`read`](Self::read), leaving the read counter untouched.
    pub fn read_noise(&mut self, cell: &ReramCell) -> f64 {
        if self.read_sigma > 0.0 {
            (cell.conductance + self.read_sigma * self.gaussian()).max(0.0) - cell.conductance
        } else {
            0.0
        }
    }

    /// Total program operations issued (for endurance accounting).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total read operations issued.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Whether the model adds any non-ideality.
    pub fn is_ideal(&self) -> bool {
        self.write_sigma == 0.0 && self.read_sigma == 0.0
    }

    fn gaussian(&mut self) -> f64 {
        // Box–Muller; cheap and dependency-free.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_program_read_round_trips() {
        let mut dev = ReramDeviceModel::new(4, 0.0, 0.0, 0);
        for level in 0..16 {
            let cell = dev.program(level);
            assert_eq!(cell.level(), level);
            assert_eq!(dev.read(&cell), level as f64);
        }
        assert!(dev.is_ideal());
    }

    #[test]
    fn levels_follow_cell_bits() {
        assert_eq!(ReramDeviceModel::new(1, 0.0, 0.0, 0).levels(), 2);
        assert_eq!(ReramDeviceModel::new(4, 0.0, 0.0, 0).levels(), 16);
        assert_eq!(ReramDeviceModel::new(8, 0.0, 0.0, 0).max_level(), 255);
    }

    #[test]
    #[should_panic(expected = "exceeds device range")]
    fn program_rejects_out_of_range_level() {
        let mut dev = ReramDeviceModel::new(2, 0.0, 0.0, 0);
        let _ = dev.program(4);
    }

    #[test]
    fn write_variation_is_frozen_per_cell() {
        let mut dev = ReramDeviceModel::new(4, 0.1, 0.0, 7);
        let cell = dev.program(8);
        let first = dev.read(&cell);
        // Non-volatility: every read of the same cell sees the same
        // (variation-shifted) conductance when read noise is off.
        for _ in 0..10 {
            assert_eq!(dev.read(&cell), first);
        }
    }

    #[test]
    fn read_noise_varies_per_read() {
        let mut dev = ReramDeviceModel::new(4, 0.0, 0.1, 7);
        let cell = dev.program(8);
        let a = dev.read(&cell);
        let b = dev.read(&cell);
        assert_ne!(a, b);
        // Both stay near the programmed level.
        assert!((a - 8.0).abs() < 1.0 && (b - 8.0).abs() < 1.0);
    }

    #[test]
    fn variation_statistics_match_sigma() {
        let mut dev = ReramDeviceModel::new(8, 0.05, 0.0, 11);
        let errs: Vec<f64> = (0..2000)
            .map(|_| dev.program(100).conductance() - 100.0)
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let var = errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errs.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.01, "sigma {}", var.sqrt());
    }

    #[test]
    fn conductance_never_negative() {
        let mut dev = ReramDeviceModel::new(1, 0.5, 0.5, 13);
        for _ in 0..500 {
            let cell = dev.program(0);
            assert!(cell.conductance() >= 0.0);
            assert!(dev.read(&cell) >= 0.0);
        }
    }

    #[test]
    fn counters_track_operations() {
        let mut dev = ReramDeviceModel::new(4, 0.0, 0.0, 0);
        let c = dev.program(3);
        let _ = dev.read(&c);
        let _ = dev.read(&c);
        assert_eq!(dev.write_count(), 1);
        assert_eq!(dev.read_count(), 2);
    }

    #[test]
    fn noise_helpers_match_counted_path() {
        // noise_dummy/read_noise must draw the same RNG stream as
        // program(0)/read, differing only in what they count.
        let mut counted = ReramDeviceModel::new(4, 0.1, 0.1, 42);
        let mut free = ReramDeviceModel::new(4, 0.1, 0.1, 42);
        let dummy_c = counted.program(0);
        let dummy_f = free.noise_dummy();
        assert_eq!(dummy_c.conductance(), dummy_f.conductance());
        for _ in 0..5 {
            let a = counted.read(&dummy_c) - dummy_c.conductance();
            let b = free.read_noise(&dummy_f);
            assert_eq!(a, b);
        }
        assert_eq!(free.write_count(), 0);
        assert_eq!(free.read_count(), 0);
    }

    #[test]
    fn same_seed_reproduces_variation() {
        let mut a = ReramDeviceModel::new(4, 0.1, 0.0, 99);
        let mut b = ReramDeviceModel::new(4, 0.1, 0.0, 99);
        for level in [0, 5, 15, 3] {
            assert_eq!(
                a.program(level).conductance(),
                b.program(level).conductance()
            );
        }
    }
}
