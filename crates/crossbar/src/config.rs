use serde::{Deserialize, Serialize};

/// Geometry and precision configuration of a ReRAM crossbar subsystem.
///
/// Defaults follow the published component budgets of the PipeLayer/ISAAC
/// line of work: 128×128 arrays (the subarray size of the paper's Fig. 4
/// balanced mapping), 4-bit cells, 16-bit weights sliced across four cells,
/// and 16 bit-serial input spike cycles per MVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Wordlines per array (input vector slice length).
    pub rows: usize,
    /// Physical bitlines per array.
    pub cols: usize,
    /// Bits stored per ReRAM cell (conductance levels = `2^cell_bits`).
    pub cell_bits: u32,
    /// Bits per weight magnitude; sliced across `weight_bits / cell_bits`
    /// adjacent bitlines.
    pub weight_bits: u32,
    /// Bits per input value; applied bit-serially as spikes over
    /// `input_bits` cycles (the weighted spike coding of \[9\]).
    pub input_bits: u32,
    /// Standard deviation of programming (write) variation, as a fraction of
    /// one conductance level. `0.0` gives an ideal device.
    pub write_sigma: f64,
    /// Standard deviation of read (bitline current) noise, as a fraction of
    /// one unit cell current. `0.0` gives an ideal readout.
    pub read_sigma: f64,
    /// Fraction of cells stuck at the lowest conductance (stuck-at-off
    /// manufacturing/endurance faults). `0.0` gives a fault-free array.
    pub stuck_off_rate: f64,
    /// Fraction of cells stuck at the highest conductance (stuck-at-on).
    pub stuck_on_rate: f64,
    /// RNG seed for device variation, so noisy experiments reproduce.
    pub noise_seed: u64,
}

impl CrossbarConfig {
    /// Configuration with all non-idealities disabled (exact fixed-point
    /// arithmetic). This is the reference configuration used by the
    /// functional experiments.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// Same configuration with device variation and read noise enabled.
    pub fn with_noise(mut self, write_sigma: f64, read_sigma: f64, seed: u64) -> Self {
        self.write_sigma = write_sigma;
        self.read_sigma = read_sigma;
        self.noise_seed = seed;
        self
    }

    /// Same configuration with stuck-at cell faults enabled.
    pub fn with_faults(mut self, stuck_off_rate: f64, stuck_on_rate: f64, seed: u64) -> Self {
        self.stuck_off_rate = stuck_off_rate;
        self.stuck_on_rate = stuck_on_rate;
        self.noise_seed = seed;
        self
    }

    /// Same configuration with a different array geometry.
    pub fn with_array_size(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Number of cells (physical bitlines) a single weight occupies.
    pub fn slices_per_weight(&self) -> usize {
        debug_assert!(self.cell_bits > 0);
        self.weight_bits.div_ceil(self.cell_bits) as usize
    }

    /// Logical (weight) columns available per physical array.
    ///
    /// # Panics
    ///
    /// Panics if the array is narrower than one weight slice group.
    pub fn logical_cols(&self) -> usize {
        let s = self.slices_per_weight();
        assert!(
            self.cols >= s,
            "array has {} bitlines but one weight needs {s}",
            self.cols
        );
        self.cols / s
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    #[must_use = "the validation outcome must be checked"]
    pub fn validate(&self) -> Result<(), String> {
        if self.rows == 0 || self.cols == 0 {
            return Err("array geometry must be non-zero".into());
        }
        if self.cell_bits == 0 || self.cell_bits > 8 {
            return Err(format!("cell_bits {} outside 1..=8", self.cell_bits));
        }
        if self.weight_bits == 0 || self.weight_bits > 32 {
            return Err(format!("weight_bits {} outside 1..=32", self.weight_bits));
        }
        if self.input_bits == 0 || self.input_bits > 32 {
            return Err(format!("input_bits {} outside 1..=32", self.input_bits));
        }
        if self.cols < self.slices_per_weight() {
            return Err(format!(
                "array width {} cannot hold one {}-bit weight at {} bits/cell",
                self.cols, self.weight_bits, self.cell_bits
            ));
        }
        if !(0.0..1.0).contains(&self.write_sigma) || !(0.0..1.0).contains(&self.read_sigma) {
            return Err("noise sigmas must lie in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.stuck_off_rate)
            || !(0.0..=1.0).contains(&self.stuck_on_rate)
            || self.stuck_off_rate + self.stuck_on_rate > 1.0
        {
            return Err("stuck-at rates must lie in [0, 1] and sum to at most 1".into());
        }
        Ok(())
    }
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        Self {
            rows: 128,
            cols: 128,
            cell_bits: 4,
            weight_bits: 16,
            input_bits: 16,
            write_sigma: 0.0,
            read_sigma: 0.0,
            stuck_off_rate: 0.0,
            stuck_on_rate: 0.0,
            noise_seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(CrossbarConfig::default().validate(), Ok(()));
    }

    #[test]
    fn slices_per_weight_rounds_up() {
        let mut c = CrossbarConfig::default();
        assert_eq!(c.slices_per_weight(), 4); // 16 / 4
        c.cell_bits = 3;
        assert_eq!(c.slices_per_weight(), 6); // ceil(16/3)
    }

    #[test]
    fn logical_cols_divides_out_slices() {
        let c = CrossbarConfig::default();
        assert_eq!(c.logical_cols(), 32); // 128 / 4
    }

    #[test]
    fn validate_rejects_zero_geometry() {
        let c = CrossbarConfig::default().with_array_size(0, 128);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_narrow_array() {
        let c = CrossbarConfig::default().with_array_size(128, 2);
        assert!(c.validate().unwrap_err().contains("cannot hold"));
    }

    #[test]
    fn validate_rejects_bad_sigma() {
        let c = CrossbarConfig::default().with_noise(1.5, 0.0, 0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_fault_rates() {
        let c = CrossbarConfig::default().with_faults(0.7, 0.7, 0);
        assert!(c.validate().is_err());
        let c = CrossbarConfig::default().with_faults(-0.1, 0.0, 0);
        assert!(c.validate().is_err());
        let ok = CrossbarConfig::default().with_faults(0.01, 0.01, 3);
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn with_noise_sets_fields() {
        let c = CrossbarConfig::default().with_noise(0.02, 0.01, 42);
        assert_eq!(c.write_sigma, 0.02);
        assert_eq!(c.read_sigma, 0.01);
        assert_eq!(c.noise_seed, 42);
        assert_eq!(c.validate(), Ok(()));
    }
}
