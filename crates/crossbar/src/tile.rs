//! Partitioned mapping of large matrices onto crossbar grids — Fig. 3(c).
//!
//! "For a large matrix that can not fit in a single array, the input and the
//! output shall be partitioned and grouped into multiple arrays. The output
//! of each array is a partial sum, which is collected horizontally and
//! summed vertically to generate the final calculation results."
//!
//! [`TiledMatrix`] implements exactly that: the weight matrix is split along
//! its input dimension into *row tiles* (wordline groups) and along its
//! output dimension into *column tiles* (bitline groups); partial sums from
//! row tiles are added to produce each output. Signed weights use a
//! differential pair of arrays (positive and negative magnitudes) whose
//! outputs are merged by a subtractor, as in the paper's Fig. 10 Ⓑ.

use crate::array::CrossbarArray;
use crate::quant::{differential_split, slice_magnitude, Quantizer};
use crate::CrossbarConfig;
use reram_telemetry::{self as telemetry, Event};
use reram_tensor::Matrix;

/// A weight matrix programmed across a grid of differential crossbar pairs,
/// supporting quantized matrix-vector multiplication.
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    config: CrossbarConfig,
    out_dim: usize,
    in_dim: usize,
    weight_quant: Quantizer,
    row_tiles: usize,
    col_tiles: usize,
    /// `pos[rt * col_tiles + ct]` and the matching `neg` array hold the
    /// magnitudes of positive / negative weights of that tile.
    pos: Vec<CrossbarArray>,
    neg: Vec<CrossbarArray>,
    reprogram_count: u64,
}

impl TiledMatrix {
    /// Programs matrix `w` (shape `out × in`, computing `y = W x`) onto a
    /// crossbar grid.
    ///
    /// # Panics
    ///
    /// Panics if `w` is empty or `config` is invalid.
    pub fn program(w: &Matrix, config: &CrossbarConfig) -> Self {
        config
            .validate()
            // lint:allow(panic) documented contract — invalid configs abort programming
            .unwrap_or_else(|e| panic!("invalid crossbar config: {e}"));
        assert!(
            w.rows() > 0 && w.cols() > 0,
            "cannot program an empty matrix"
        );
        let (out_dim, in_dim) = (w.rows(), w.cols());
        let logical_cols = config.logical_cols();
        let row_tiles = in_dim.div_ceil(config.rows);
        let col_tiles = out_dim.div_ceil(logical_cols);

        let mut this = Self {
            config: config.clone(),
            out_dim,
            in_dim,
            weight_quant: Quantizer::fit(config.weight_bits, w.abs_max()),
            row_tiles,
            col_tiles,
            pos: Vec::with_capacity(row_tiles * col_tiles),
            neg: Vec::with_capacity(row_tiles * col_tiles),
            reprogram_count: 0,
        };
        for i in 0..row_tiles * col_tiles {
            // Vary the noise seed per array so variations are independent.
            let mut cfg = config.clone();
            cfg.noise_seed = config.noise_seed.wrapping_add(2 * i as u64);
            this.pos.push(CrossbarArray::new(&cfg));
            cfg.noise_seed = config.noise_seed.wrapping_add(2 * i as u64 + 1);
            this.neg.push(CrossbarArray::new(&cfg));
        }
        this.write_levels(w);
        this
    }

    /// Reprograms the grid with new weights (a PipeLayer weight update).
    ///
    /// # Panics
    ///
    /// Panics if the new matrix's shape differs from the programmed one.
    pub fn reprogram(&mut self, w: &Matrix) {
        assert_eq!(
            (w.rows(), w.cols()),
            (self.out_dim, self.in_dim),
            "reprogram requires the original {}x{} shape",
            self.out_dim,
            self.in_dim
        );
        self.weight_quant = Quantizer::fit(self.config.weight_bits, w.abs_max());
        self.reprogram_count += 1;
        telemetry::record(Event::WeightUpdate, 1);
        self.write_levels(w);
    }

    /// Incrementally reprograms only the cells whose level changed — the
    /// paper's weight-update path, where the spike driver "serves as write
    /// driver to tune weights stored in the ReRAM array" (§III-A.3 (a)).
    /// Returns the number of cell programming pulses issued.
    ///
    /// The existing quantization scale is kept so unchanged weights map to
    /// unchanged levels; if a new weight exceeds the current full-scale
    /// range the grid falls back to a full reprogram with a refitted scale.
    ///
    /// # Panics
    ///
    /// Panics if the new matrix's shape differs from the programmed one.
    pub fn reprogram_delta(&mut self, w: &Matrix) -> u64 {
        assert_eq!(
            (w.rows(), w.cols()),
            (self.out_dim, self.in_dim),
            "reprogram_delta requires the original {}x{} shape",
            self.out_dim,
            self.in_dim
        );
        let full_scale = self.weight_quant.dequantize(self.weight_quant.q_max());
        if w.abs_max() > full_scale {
            let cells = (self.config.rows * self.config.cols) as u64
                * 2
                * (self.row_tiles * self.col_tiles) as u64;
            self.reprogram(w);
            return cells;
        }
        self.reprogram_count += 1;
        telemetry::record(Event::WeightUpdate, 1);
        let slices = self.config.slices_per_weight();
        let cell_bits = self.config.cell_bits;
        let logical_cols = self.config.logical_cols();
        let rows = self.config.rows;
        let mut pulses = 0u64;
        for rt in 0..self.row_tiles {
            for ct in 0..self.col_tiles {
                let idx = rt * self.col_tiles + ct;
                for r in 0..rows {
                    let in_idx = rt * rows + r;
                    if in_idx >= self.in_dim {
                        break;
                    }
                    for j in 0..logical_cols {
                        let out_idx = ct * logical_cols + j;
                        if out_idx >= self.out_dim {
                            break;
                        }
                        let q = self.weight_quant.quantize(w.at(out_idx, in_idx));
                        let (p, n) = differential_split(q);
                        for (k, &s) in slice_magnitude(p, cell_bits, slices).iter().enumerate() {
                            let col = j * slices + k;
                            if self.pos[idx].level_at(r, col) != s {
                                self.pos[idx].program_cell(r, col, s);
                                pulses += 1;
                            }
                        }
                        for (k, &s) in slice_magnitude(n, cell_bits, slices).iter().enumerate() {
                            let col = j * slices + k;
                            if self.neg[idx].level_at(r, col) != s {
                                self.neg[idx].program_cell(r, col, s);
                                pulses += 1;
                            }
                        }
                    }
                }
            }
        }
        pulses
    }

    fn write_levels(&mut self, w: &Matrix) {
        let slices = self.config.slices_per_weight();
        let cell_bits = self.config.cell_bits;
        let logical_cols = self.config.logical_cols();
        let rows = self.config.rows;
        let cols = self.config.cols;

        for rt in 0..self.row_tiles {
            for ct in 0..self.col_tiles {
                let mut pos_levels = vec![0u32; rows * cols];
                let mut neg_levels = vec![0u32; rows * cols];
                for r in 0..rows {
                    let in_idx = rt * rows + r;
                    if in_idx >= self.in_dim {
                        break;
                    }
                    for j in 0..logical_cols {
                        let out_idx = ct * logical_cols + j;
                        if out_idx >= self.out_dim {
                            break;
                        }
                        let q = self.weight_quant.quantize(w.at(out_idx, in_idx));
                        let (p, n) = differential_split(q);
                        for (k, &s) in slice_magnitude(p, cell_bits, slices).iter().enumerate() {
                            pos_levels[r * cols + j * slices + k] = s;
                        }
                        for (k, &s) in slice_magnitude(n, cell_bits, slices).iter().enumerate() {
                            neg_levels[r * cols + j * slices + k] = s;
                        }
                    }
                }
                let idx = rt * self.col_tiles + ct;
                self.pos[idx].program(&pos_levels);
                self.neg[idx].program(&neg_levels);
            }
        }
    }

    /// Output dimension (`W` rows).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Input dimension (`W` columns).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Grid extent as `(row_tiles, col_tiles)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.row_tiles, self.col_tiles)
    }

    /// Total physical arrays used (differential pairs count as two).
    pub fn array_count(&self) -> usize {
        2 * self.row_tiles * self.col_tiles
    }

    /// The configuration the grid was programmed with.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Number of whole-grid reprogramming operations since creation.
    pub fn reprogram_count(&self) -> u64 {
        self.reprogram_count
    }

    /// Quantized matrix-vector product `y = W x`.
    ///
    /// Inputs are quantized to `input_bits`, split by sign, driven through
    /// every row tile as spike trains, and the per-array partial sums are
    /// merged (bit-slice weights within an array, subtraction across the
    /// differential pair, addition across row tiles) before dequantization.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn matvec(&mut self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.in_dim,
            "matvec: input length {} vs in_dim {}",
            x.len(),
            self.in_dim
        );
        let abs_max = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let input_quant = Quantizer::fit(self.config.input_bits, abs_max);
        let codes: Vec<i64> = x.iter().map(|&v| input_quant.quantize(v)).collect();

        let mut acc = vec![0i128; self.out_dim];
        // Two polarity passes: positive input magnitudes add, negative subtract.
        for (sign, polarity_codes) in [
            (
                1i128,
                codes.iter().map(|&q| q.max(0) as u64).collect::<Vec<_>>(),
            ),
            (
                -1i128,
                codes
                    .iter()
                    .map(|&q| (-q).max(0) as u64)
                    .collect::<Vec<_>>(),
            ),
        ] {
            if polarity_codes.iter().all(|&c| c == 0) {
                continue;
            }
            self.accumulate_polarity(&polarity_codes, sign, &mut acc);
        }

        let scale = self.weight_quant.scale() * input_quant.scale();
        acc.iter().map(|&v| v as f32 * scale).collect()
    }

    fn accumulate_polarity(&mut self, codes: &[u64], sign: i128, acc: &mut [i128]) {
        let rows = self.config.rows;
        let slices = self.config.slices_per_weight();
        let cell_bits = self.config.cell_bits;
        let logical_cols = self.config.logical_cols();
        let input_bits = self.config.input_bits;

        for rt in 0..self.row_tiles {
            // Chunk of the input vector on this tile's wordlines, zero-padded.
            let mut chunk = vec![0u64; rows];
            for r in 0..rows {
                let idx = rt * rows + r;
                if idx < self.in_dim {
                    chunk[r] = codes[idx];
                }
            }
            if chunk.iter().all(|&c| c == 0) {
                continue;
            }
            for ct in 0..self.col_tiles {
                let idx = rt * self.col_tiles + ct;
                let p = self.pos[idx].mvm_codes(&chunk, input_bits);
                let n = self.neg[idx].mvm_codes(&chunk, input_bits);
                for j in 0..logical_cols {
                    let out_idx = ct * logical_cols + j;
                    if out_idx >= self.out_dim {
                        break;
                    }
                    // Merge bit slices: slice k carries weight 2^(k*cell_bits).
                    let mut partial = 0i128;
                    for k in 0..slices {
                        let weight = 1i128 << (k as u32 * cell_bits);
                        let col = j * slices + k;
                        partial += weight * (p[col] as i128 - n[col] as i128);
                    }
                    acc[out_idx] += sign * partial;
                }
            }
        }
    }

    /// Batched product: one [`matvec`](Self::matvec) per row of `xs`.
    ///
    /// `xs` is `(batch × in)`; the result is `(batch × out)`.
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols() != self.in_dim()`.
    pub fn matmul_rows(&mut self, xs: &Matrix) -> Matrix {
        let mut out = Vec::with_capacity(xs.rows() * self.out_dim);
        for r in 0..xs.rows() {
            out.extend(self.matvec(xs.row(r)));
        }
        Matrix::from_vec(reram_tensor::Shape2::new(xs.rows(), self.out_dim), out)
    }

    /// Total wordline spikes driven across all arrays (energy proxy).
    pub fn total_spikes(&self) -> u64 {
        self.pos
            .iter()
            .chain(&self.neg)
            .map(CrossbarArray::spike_count)
            .sum()
    }

    /// Total cell programming operations across all arrays.
    pub fn total_writes(&self) -> u64 {
        self.pos
            .iter()
            .chain(&self.neg)
            .map(CrossbarArray::write_count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_tensor::Shape2;

    fn test_config() -> CrossbarConfig {
        CrossbarConfig {
            rows: 8,
            cols: 16,
            cell_bits: 4,
            weight_bits: 8,
            input_bits: 8,
            ..CrossbarConfig::default()
        }
    }

    fn pattern_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(Shape2::new(rows, cols), |r, c| {
            (((r * 31 + c * 17) % 21) as f32 - 10.0) / 10.0
        })
    }

    fn pattern_vec(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 13 % 19) as f32 - 9.0) / 9.0).collect()
    }

    fn assert_close(got: &[f32], want: &[f32], tol: f32) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() <= tol,
                "output {i}: got {g}, want {w} (tol {tol})"
            );
        }
    }

    #[test]
    fn single_tile_matvec_matches_exact() {
        let w = pattern_matrix(4, 8); // fits one 8x16 array (2 slices/weight)
        let mut t = TiledMatrix::program(&w, &test_config());
        assert_eq!(t.grid(), (1, 1));
        let x = pattern_vec(8);
        let y = t.matvec(&x);
        assert_close(&y, &w.matvec(&x), 0.05);
    }

    #[test]
    fn multi_tile_matches_exact() {
        // 20 outputs x 25 inputs on 8-row tiles with 8 logical cols:
        // grid = ceil(25/8) x ceil(20/8) = 4 x 3.
        let w = pattern_matrix(20, 25);
        let mut t = TiledMatrix::program(&w, &test_config());
        assert_eq!(t.grid(), (4, 3));
        assert_eq!(t.array_count(), 24);
        let x = pattern_vec(25);
        let y = t.matvec(&x);
        assert_close(&y, &w.matvec(&x), 0.2);
    }

    #[test]
    fn negative_weights_and_inputs_handled() {
        let w = Matrix::from_vec(Shape2::new(2, 2), vec![-1.0, 0.5, 0.25, -0.75]);
        let mut t = TiledMatrix::program(&w, &test_config());
        let x = vec![-0.5, 1.0];
        let y = t.matvec(&x);
        assert_close(&y, &w.matvec(&x), 0.02);
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let w = pattern_matrix(6, 6);
        let mut t = TiledMatrix::program(&w, &test_config());
        let y = t.matvec(&[0.0; 6]);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matrix_preserves_vector() {
        let w = Matrix::identity(8);
        let mut t = TiledMatrix::program(&w, &test_config());
        let x = pattern_vec(8);
        let y = t.matvec(&x);
        assert_close(&y, &x, 0.02);
    }

    #[test]
    fn reprogram_changes_results() {
        let w1 = Matrix::identity(4);
        let w2 = Matrix::from_fn(Shape2::new(4, 4), |r, c| if r == c { 2.0 } else { 0.0 });
        let mut t = TiledMatrix::program(&w1, &test_config());
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y1 = t.matvec(&x);
        t.reprogram(&w2);
        let y2 = t.matvec(&x);
        assert_eq!(t.reprogram_count(), 1);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((2.0 * a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn delta_reprogram_writes_only_changed_cells() {
        let w1 = pattern_matrix(6, 6);
        let mut t = TiledMatrix::program(&w1, &test_config());
        // Unchanged weights: zero pulses.
        assert_eq!(t.reprogram_delta(&w1.clone()), 0);
        // Change a single weight (within the existing full-scale range).
        let mut w2 = w1.clone();
        w2.set(2, 3, w2.at(2, 3) * 0.5);
        let pulses = t.reprogram_delta(&w2);
        // One weight = at most slices cells in each differential array.
        assert!(pulses >= 1 && pulses <= 2 * t.config().slices_per_weight() as u64);
        // Results follow the new weights.
        let x = pattern_vec(6);
        let y = t.matvec(&x);
        let want = w2.matvec(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn delta_reprogram_falls_back_on_range_growth() {
        let w1 = pattern_matrix(4, 4);
        let mut t = TiledMatrix::program(&w1, &test_config());
        // A weight far outside the old full-scale range forces a refit.
        let mut w2 = w1.clone();
        w2.set(0, 0, 100.0);
        let pulses = t.reprogram_delta(&w2);
        assert!(pulses > 0);
        let x = pattern_vec(4);
        let y = t.matvec(&x);
        let want = w2.matvec(&x);
        for (a, b) in y.iter().zip(&want) {
            // Coarser scale now (full range 100), so tolerance is wider.
            assert!((a - b).abs() < 2.0, "{a} vs {b}");
        }
    }

    #[test]
    fn delta_cheaper_than_full_reprogram() {
        let w1 = pattern_matrix(20, 25);
        let mut full = TiledMatrix::program(&w1, &test_config());
        let mut delta = TiledMatrix::program(&w1, &test_config());
        // Small update: perturb 3 weights slightly.
        let mut w2 = w1.clone();
        for (r, c) in [(0, 0), (5, 7), (19, 24)] {
            w2.set(r, c, w2.at(r, c) + 0.01);
        }
        let writes_before_full = full.total_writes();
        full.reprogram(&w2);
        let full_writes = full.total_writes() - writes_before_full;
        let writes_before_delta = delta.total_writes();
        let _ = delta.reprogram_delta(&w2);
        let delta_writes = delta.total_writes() - writes_before_delta;
        assert!(
            delta_writes * 10 < full_writes,
            "delta {delta_writes} vs full {full_writes}"
        );
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn matvec_rejects_wrong_len() {
        let mut t = TiledMatrix::program(&Matrix::identity(4), &test_config());
        let _ = t.matvec(&[1.0; 5]);
    }

    #[test]
    fn matmul_rows_batches() {
        let w = pattern_matrix(5, 7);
        let mut t = TiledMatrix::program(&w, &test_config());
        let xs = Matrix::from_fn(Shape2::new(3, 7), |r, c| ((r + c) % 5) as f32 / 5.0 - 0.4);
        let ys = t.matmul_rows(&xs);
        assert_eq!(ys.shape(), Shape2::new(3, 5));
        for r in 0..3 {
            assert_close(ys.row(r), &w.matvec(xs.row(r)), 0.1);
        }
    }

    #[test]
    fn paper_fig4_balanced_grid() {
        // Fig. 4(b): an 1152x256 matrix divided into 18 (= 9 x 2) groups of
        // 128x128 arrays. Our grid counts tiles the same way (the paper's
        // figure counts the differential pair as one group).
        let cfg = CrossbarConfig {
            weight_bits: 4,
            cell_bits: 4,
            ..CrossbarConfig::default()
        }; // 1 slice/weight: 128 logical cols
        let w = Matrix::zeros(Shape2::new(256, 1152));
        let t = TiledMatrix::program(&w, &cfg);
        assert_eq!(t.grid(), (9, 2));
        assert_eq!(t.grid().0 * t.grid().1, 18);
    }

    #[test]
    fn tiled_matrix_is_send() {
        // Grids move between threads in fleet-style sweeps (C-SEND-SYNC).
        fn assert_send<T: Send>() {}
        assert_send::<TiledMatrix>();
    }

    #[test]
    fn noisy_grid_close_to_ideal() {
        let w = pattern_matrix(10, 12);
        let ideal_cfg = test_config();
        let noisy_cfg = test_config().with_noise(0.01, 0.01, 3);
        let mut ti = TiledMatrix::program(&w, &ideal_cfg);
        let mut tn = TiledMatrix::program(&w, &noisy_cfg);
        let x = pattern_vec(12);
        let yi = ti.matvec(&x);
        let yn = tn.matvec(&x);
        for (a, b) in yi.iter().zip(&yn) {
            assert!((a - b).abs() < 0.5, "ideal {a} vs noisy {b}");
        }
    }
}
