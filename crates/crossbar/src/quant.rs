//! Fixed-point quantization and bit slicing.
//!
//! Crossbar cells hold small unsigned integers, so the floating-point
//! weights and activations of the network must be scaled to fixed point.
//! Signs are handled differentially (separate positive/negative arrays,
//! merged by a subtractor — paper Fig. 10 Ⓑ), and a multi-bit magnitude is
//! sliced across several cells, each holding `cell_bits` bits.

/// Symmetric linear quantizer mapping `f32` values to signed integers.
///
/// `q = round(x / scale)`, clamped to `[-q_max, q_max]` with
/// `q_max = 2^(bits-1) - 1`. The same scheme serves weights (programmed into
/// cells) and inputs (encoded as spike trains).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u32,
    scale: f32,
}

impl Quantizer {
    /// Creates a quantizer with an explicit scale (value of one LSB).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=32` or `scale` is not positive.
    pub fn new(bits: u32, scale: f32) -> Self {
        assert!((2..=32).contains(&bits), "bits {bits} outside 2..=32");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Self { bits, scale }
    }

    /// Fits the scale so that `abs_max` maps to the largest code.
    ///
    /// A zero or non-finite `abs_max` falls back to scale 1, which encodes
    /// an all-zero tensor exactly.
    pub fn fit(bits: u32, abs_max: f32) -> Self {
        let q_max = ((1u64 << (bits - 1)) - 1) as f32;
        let scale = if abs_max > 0.0 && abs_max.is_finite() {
            abs_max / q_max
        } else {
            1.0
        };
        Self::new(bits, scale)
    }

    /// Bits of precision (including sign).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Value of one least-significant bit.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Largest representable code magnitude.
    pub fn q_max(&self) -> i64 {
        ((1u64 << (self.bits - 1)) - 1) as i64
    }

    /// Quantizes a value to its signed integer code.
    pub fn quantize(&self, x: f32) -> i64 {
        let q = (x / self.scale).round() as i64;
        q.clamp(-self.q_max(), self.q_max())
    }

    /// Reconstructs the real value of a code.
    pub fn dequantize(&self, q: i64) -> f32 {
        q as f32 * self.scale
    }

    /// Worst-case absolute reconstruction error for in-range inputs.
    pub fn max_error(&self) -> f32 {
        self.scale / 2.0
    }
}

/// Splits an unsigned magnitude into little-endian slices of `cell_bits` each.
///
/// Slice `k` holds bits `[k*cell_bits, (k+1)*cell_bits)`; the bitline `k`
/// readout is therefore weighted by `2^(k*cell_bits)` when merged.
///
/// # Panics
///
/// Panics if the magnitude does not fit in `n_slices * cell_bits` bits.
pub fn slice_magnitude(mag: u64, cell_bits: u32, n_slices: usize) -> Vec<u32> {
    let mask = (1u64 << cell_bits) - 1;
    let capacity_bits = cell_bits as usize * n_slices;
    assert!(
        capacity_bits >= 64 || mag < (1u64 << capacity_bits),
        "magnitude {mag} does not fit in {n_slices} x {cell_bits}-bit cells"
    );
    (0..n_slices)
        .map(|k| ((mag >> (k as u32 * cell_bits)) & mask) as u32)
        .collect()
}

/// Reassembles a magnitude from its little-endian slices.
pub fn unslice(slices: &[u32], cell_bits: u32) -> u64 {
    slices
        .iter()
        .enumerate()
        .map(|(k, &s)| (s as u64) << (k as u32 * cell_bits))
        .sum()
}

/// Splits a signed code into `(positive_magnitude, negative_magnitude)`,
/// exactly one of which is non-zero — the differential-pair encoding.
pub fn differential_split(q: i64) -> (u64, u64) {
    if q >= 0 {
        (q as u64, 0)
    } else {
        (0, (-q) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_maps_extremes_to_full_scale() {
        let q = Quantizer::fit(8, 2.0);
        assert_eq!(q.quantize(2.0), 127);
        assert_eq!(q.quantize(-2.0), -127);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn round_trip_error_bounded() {
        let q = Quantizer::fit(16, 1.0);
        for i in 0..1000 {
            let x = (i as f32 / 999.0) * 2.0 - 1.0;
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.max_error() * 1.001, "x={x} err={err}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let q = Quantizer::fit(8, 1.0);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -127);
    }

    #[test]
    fn fit_degenerate_abs_max() {
        let q = Quantizer::fit(8, 0.0);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.dequantize(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside 2..=32")]
    fn rejects_one_bit() {
        let _ = Quantizer::new(1, 1.0);
    }

    #[test]
    fn slice_unslice_round_trip() {
        for mag in [0u64, 1, 255, 256, 65535, 40000] {
            let slices = slice_magnitude(mag, 4, 4);
            assert_eq!(slices.len(), 4);
            assert!(slices.iter().all(|&s| s < 16));
            assert_eq!(unslice(&slices, 4), mag);
        }
    }

    #[test]
    fn slice_is_little_endian() {
        // 0xABCD -> nibbles D, C, B, A
        let slices = slice_magnitude(0xABCD, 4, 4);
        assert_eq!(slices, vec![0xD, 0xC, 0xB, 0xA]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn slice_rejects_overflow() {
        let _ = slice_magnitude(16, 4, 1);
    }

    #[test]
    fn differential_split_exclusive() {
        assert_eq!(differential_split(5), (5, 0));
        assert_eq!(differential_split(-7), (0, 7));
        assert_eq!(differential_split(0), (0, 0));
    }

    #[test]
    fn quantize_sixteen_bits_precise() {
        // The default 16-bit weights should carry ~4-decimal-digit precision.
        let q = Quantizer::fit(16, 1.0);
        let x = 0.123_456;
        assert!((q.dequantize(q.quantize(x)) - x).abs() < 1e-4);
    }
}
