//! Behavioural, energy and latency model of ReRAM crossbar compute arrays.
//!
//! This crate is the compute substrate of the paper (§II-B, Fig. 3): a ReRAM
//! crossbar stores a matrix as cell conductances and computes a matrix-vector
//! multiplication in the analog domain — inputs drive the wordlines, and the
//! current summed on each bitline is the dot product of the input vector with
//! that bitline's column of weights.
//!
//! The model covers the full circuit stack the paper's accelerators use:
//!
//! * [`device`] — the ReRAM cell: discrete conductance levels, programming,
//!   write variation and read noise,
//! * [`array`](mod@array) — a fixed-geometry crossbar of cells with bit-serial
//!   (spike-coded) analog MVM,
//! * [`spike`] — the spike driver and integrate-and-fire counter readout of
//!   PipeLayer §III-A.3 (a, b): inputs are applied as weighted spike trains,
//!   bitline currents are integrated into digital counts without a
//!   conventional ADC,
//! * [`quant`] — fixed-point quantization of weights/activations and bit
//!   slicing of multi-bit weights across cells,
//! * [`tile`] — partitioning of large matrices over grids of arrays with
//!   horizontal collection and vertical summation of partial results
//!   (Fig. 3(c)), using differential positive/negative arrays for signed
//!   weights (Fig. 10 Ⓑ),
//! * [`cost`] — per-component latency/energy/area accounting.
//!
//! # Example
//!
//! ```
//! use reram_crossbar::{CrossbarConfig, tile::TiledMatrix};
//! use reram_tensor::{Matrix, Shape2};
//!
//! let w = Matrix::from_fn(Shape2::new(300, 200), |r, c| {
//!     ((r * 7 + c * 3) % 13) as f32 / 13.0 - 0.5
//! });
//! let mut tiled = TiledMatrix::program(&w, &CrossbarConfig::default());
//! let x = vec![0.25_f32; 200];
//! let y = tiled.matvec(&x);
//! let exact = w.matvec(&x);
//! let err: f32 = y.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
//! assert!(err / 300.0 < 1e-2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Dense matrix/tensor kernels index multiple arrays by the same
// coordinate; explicit index loops read closer to the paper's
// equations than iterator chains would.
#![allow(clippy::needless_range_loop)]

pub mod array;
pub mod cost;
pub mod device;
pub mod quant;
pub mod readout;
pub mod spike;
pub mod tile;

mod config;

pub use config::CrossbarConfig;
pub use cost::{ComponentEnergy, CrossbarCostModel, MvmCost};
pub use device::{ReramCell, ReramDeviceModel};
pub use readout::{ReadoutCost, ReadoutKind, ReadoutModel};
pub use tile::TiledMatrix;
