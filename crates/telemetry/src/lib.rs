//! Workspace-wide hardware telemetry.
//!
//! Simulation code in the crossbar/core/nn crates emits *events* (how many
//! crossbar MVMs ran, how many ADC conversions they needed, how many cells
//! were reprogrammed), *spans* (scoped stage timers attributing wall-clock
//! and simulated cycles to pipeline stages), and *metrics* (scalar samples
//! such as per-step training loss). All three flow to a process-global
//! [`Recorder`] which defaults to "off":
//!
//! - When no recorder is installed, every instrumentation call is a single
//!   relaxed atomic load — cheap enough to leave in hot MVM loops.
//! - Tests and the `repro` binary install a [`CounterRecorder`] (or any
//!   custom [`Recorder`]) for the duration of a scope via
//!   [`scoped_recorder`], then snapshot counters into a serializable
//!   [`RunReport`].
//!
//! The design mirrors the `log` crate's facade pattern: instrumented crates
//! depend only on this tiny crate, never on a concrete sink.
//!
//! ```
//! use reram_telemetry as telemetry;
//! use telemetry::{CounterRecorder, Event};
//! use std::sync::Arc;
//!
//! let counters = Arc::new(CounterRecorder::new());
//! {
//!     let _guard = telemetry::scoped_recorder(counters.clone());
//!     telemetry::record(Event::AdcConversion, 128);
//!     let mut span = telemetry::Span::enter("forward");
//!     span.add_cycles(42);
//! }
//! assert_eq!(counters.count(Event::AdcConversion), 128);
//! ```

#![forbid(unsafe_code)]

mod counters;
mod event;
mod recorder;
mod report;
mod span;

pub use counters::CounterRecorder;
pub use event::{Event, EVENT_COUNT};
pub use recorder::{
    clear_recorder, enabled, metric, record, scoped_recorder, set_recorder, with_recorder,
    Recorder, ScopedRecorder,
};
pub use report::{
    EventCounts, LayerReport, MetricSample, RunReport, SpanReport, REPORT_SCHEMA_VERSION,
};
pub use span::Span;
