//! The global recorder facade.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use crate::Event;

/// A sink for telemetry events, spans, and metrics.
///
/// Implementations must be cheap and thread-safe: instrumented code calls
/// these methods from hot simulation loops (batched at array granularity,
/// but still frequent). The default method bodies make span/metric support
/// optional for counter-only sinks.
pub trait Recorder: Send + Sync {
    /// Records `count` occurrences of `event`.
    fn record(&self, event: Event, count: u64);

    /// Records a completed stage span with its wall-clock duration and the
    /// simulated cycles attributed to it.
    fn span(&self, name: &str, wall_ns: u64, sim_cycles: u64) {
        let _ = (name, wall_ns, sim_cycles);
    }

    /// Records a scalar metric sample (e.g. training loss at a step).
    fn metric(&self, name: &str, value: f64) {
        let _ = (name, value);
    }
}

/// Fast-path switch: `false` means every instrumentation call returns after
/// one relaxed atomic load, without touching the recorder lock.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder. A `RwLock` (not `OnceLock`) so tests can swap
/// recorders; the write path only runs at install/teardown time.
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Serializes [`scoped_recorder`] users so concurrently running tests never
/// observe each other's events.
static SCOPE: Mutex<()> = Mutex::new(());

/// Whether a recorder is currently installed. Instrumented code may use
/// this to skip preparing expensive event arguments.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `recorder` as the process-global sink.
///
/// Prefer [`scoped_recorder`] in tests; this unscoped variant suits binaries
/// that install one recorder for their whole run.
pub fn set_recorder(recorder: Arc<dyn Recorder>) {
    let mut slot = RECORDER
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the global recorder, returning instrumentation to no-op mode.
pub fn clear_recorder() {
    ENABLED.store(false, Ordering::Release);
    let mut slot = RECORDER
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = None;
}

/// Installs `recorder` for the lifetime of the returned guard.
///
/// Guards are mutually exclusive process-wide: a second caller blocks until
/// the first guard drops, which keeps parallel `cargo test` threads from
/// polluting each other's counters.
pub fn scoped_recorder(recorder: Arc<dyn Recorder>) -> ScopedRecorder {
    let lock = SCOPE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    set_recorder(recorder);
    ScopedRecorder { _lock: lock }
}

/// RAII guard from [`scoped_recorder`]; uninstalls the recorder on drop.
pub struct ScopedRecorder {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ScopedRecorder {
    fn drop(&mut self) {
        clear_recorder();
    }
}

/// Runs `f` against the installed recorder, if any.
///
/// This is the batching primitive: one enabled-check and one lock
/// acquisition for any number of `record` calls inside `f`.
#[inline]
pub fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !enabled() {
        return;
    }
    let guard = RECORDER
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(recorder) = guard.as_ref() {
        f(recorder.as_ref());
    }
}

/// Records `count` occurrences of `event` against the installed recorder.
#[inline]
pub fn record(event: Event, count: u64) {
    with_recorder(|r| r.record(event, count));
}

/// Records a scalar metric sample against the installed recorder.
#[inline]
pub fn metric(name: &str, value: f64) {
    with_recorder(|r| r.metric(name, value));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CounterRecorder;

    #[test]
    fn disabled_by_default_and_scoped_install_works() {
        let counters = Arc::new(CounterRecorder::new());
        {
            let _guard = scoped_recorder(counters.clone());
            assert!(enabled());
            record(Event::CellWrite, 3);
            record(Event::CellWrite, 4);
            metric("loss", 0.5);
        }
        assert!(!enabled());
        record(Event::CellWrite, 100); // dropped: no recorder installed
        assert_eq!(counters.count(Event::CellWrite), 7);
        assert_eq!(counters.metrics(), vec![("loss".to_string(), 0.5)]);
    }

    #[test]
    fn scopes_are_exclusive_and_sequential() {
        let first = Arc::new(CounterRecorder::new());
        let second = Arc::new(CounterRecorder::new());
        {
            let _guard = scoped_recorder(first.clone());
            record(Event::CrossbarMvm, 1);
        }
        {
            let _guard = scoped_recorder(second.clone());
            record(Event::CrossbarMvm, 2);
        }
        assert_eq!(first.count(Event::CrossbarMvm), 1);
        assert_eq!(second.count(Event::CrossbarMvm), 2);
    }
}
