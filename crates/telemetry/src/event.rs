//! The hardware event vocabulary.

/// Number of distinct [`Event`] kinds (array dimension for counter sinks).
pub const EVENT_COUNT: usize = 14;

/// A countable hardware event in the simulated accelerator.
///
/// The vocabulary follows the paper's cost model: spike-coded crossbar MVMs
/// broken down into per-frame DAC drives and per-column ADC (or
/// integrate-and-fire) conversions, cell-level programming traffic that
/// feeds the endurance model, and the buffer/subarray activity that the
/// pipeline schedule generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Event {
    /// One analog matrix-vector multiply on one crossbar array.
    CrossbarMvm = 0,
    /// One bit-serial spike frame applied to an array's word lines.
    SpikeFrame = 1,
    /// One digital-to-analog conversion driving an input row.
    DacConversion = 2,
    /// One analog-to-digital (or integrate-and-fire) output conversion.
    AdcConversion = 3,
    /// One ReRAM cell programmed (SET/RESET pulse train).
    CellWrite = 4,
    /// One ReRAM cell read outside an MVM (e.g. verify, checkpoint).
    CellRead = 5,
    /// One subarray switched from idle to active duty.
    SubarrayActivation = 6,
    /// One value read from an inter-stage eDRAM/SRAM buffer.
    BufferRead = 7,
    /// One value written to an inter-stage eDRAM/SRAM buffer.
    BufferWrite = 8,
    /// One layer's weights updated (one reprogramming campaign).
    WeightUpdate = 9,
    /// One optimizer step over a minibatch.
    TrainStep = 10,
    /// One inference/training request admitted into a serving queue.
    RequestEnqueued = 11,
    /// One dynamic batch closed and dispatched to a chip.
    BatchFormed = 12,
    /// One serving request completed (response ready).
    RequestCompleted = 13,
}

impl Event {
    /// Every event kind, in counter-index order.
    pub const ALL: [Event; EVENT_COUNT] = [
        Event::CrossbarMvm,
        Event::SpikeFrame,
        Event::DacConversion,
        Event::AdcConversion,
        Event::CellWrite,
        Event::CellRead,
        Event::SubarrayActivation,
        Event::BufferRead,
        Event::BufferWrite,
        Event::WeightUpdate,
        Event::TrainStep,
        Event::RequestEnqueued,
        Event::BatchFormed,
        Event::RequestCompleted,
    ];

    /// Stable dense index of this event, `0..EVENT_COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Event::CrossbarMvm => "crossbar_mvms",
            Event::SpikeFrame => "spike_frames",
            Event::DacConversion => "dac_conversions",
            Event::AdcConversion => "adc_conversions",
            Event::CellWrite => "cell_writes",
            Event::CellRead => "cell_reads",
            Event::SubarrayActivation => "subarray_activations",
            Event::BufferRead => "buffer_reads",
            Event::BufferWrite => "buffer_writes",
            Event::WeightUpdate => "weight_updates",
            Event::TrainStep => "train_steps",
            Event::RequestEnqueued => "requests_enqueued",
            Event::BatchFormed => "batches_formed",
            Event::RequestCompleted => "requests_completed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, event) in Event::ALL.iter().enumerate() {
            assert_eq!(event.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Event::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EVENT_COUNT);
    }
}
