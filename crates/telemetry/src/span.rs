//! Scoped stage timers.

use std::time::Instant;

use crate::recorder::{enabled, with_recorder};

/// An RAII stage timer.
///
/// Created with [`Span::enter`]; on drop it reports the elapsed wall-clock
/// time plus any simulated cycles attributed via [`Span::add_cycles`] to the
/// installed recorder. When telemetry is disabled at entry the span holds no
/// timestamp and drop is free — safe to use in per-batch loops.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    sim_cycles: u64,
}

impl Span {
    /// Starts timing a stage. `name` groups repeated entries of the same
    /// stage in reports ("forward", "backward", "weight_update", ...).
    pub fn enter(name: &'static str) -> Self {
        Self {
            name,
            start: enabled().then(Instant::now),
            sim_cycles: 0,
        }
    }

    /// Attributes simulated hardware cycles to this span. Callers add the
    /// model-derived cycle count so reports can show both host wall-clock
    /// and simulated time per stage.
    pub fn add_cycles(&mut self, cycles: u64) {
        self.sim_cycles += cycles;
    }

    /// The stage name this span reports under.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let cycles = self.sim_cycles;
            with_recorder(|r| r.span(self.name, wall_ns, cycles));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scoped_recorder, CounterRecorder};
    use std::sync::Arc;

    #[test]
    fn span_reports_on_drop_with_cycles() {
        let counters = Arc::new(CounterRecorder::new());
        {
            let _guard = scoped_recorder(counters.clone());
            let mut span = Span::enter("forward");
            span.add_cycles(10);
            span.add_cycles(32);
        }
        let spans = counters.span_reports();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "forward");
        assert_eq!(spans[0].calls, 1);
        assert_eq!(spans[0].sim_cycles, 42);
    }

    #[test]
    fn disabled_span_reports_nothing() {
        let counters = Arc::new(CounterRecorder::new());
        {
            let span = Span::enter("orphan"); // telemetry disabled at entry
            let _guard = scoped_recorder(counters.clone());
            drop(span);
        }
        assert!(counters.span_reports().is_empty());
    }
}
