//! The standard counting sink.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::report::{EventCounts, MetricSample, SpanReport};
use crate::{Event, Recorder, EVENT_COUNT};

/// A [`Recorder`] that tallies events in lock-free atomic counters and
/// aggregates spans/metrics under a mutex (span ends and metric samples are
/// orders of magnitude rarer than event records).
#[derive(Debug, Default)]
pub struct CounterRecorder {
    counts: [AtomicU64; EVENT_COUNT],
    spans: Mutex<Vec<SpanReport>>,
    metrics: Mutex<Vec<MetricSample>>,
}

impl CounterRecorder {
    /// A recorder with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tally for one event kind.
    pub fn count(&self, event: Event) -> u64 {
        self.counts[event.index()].load(Ordering::Relaxed)
    }

    /// Snapshot of all counters as a serializable struct.
    pub fn snapshot(&self) -> EventCounts {
        EventCounts {
            crossbar_mvms: self.count(Event::CrossbarMvm),
            spike_frames: self.count(Event::SpikeFrame),
            dac_conversions: self.count(Event::DacConversion),
            adc_conversions: self.count(Event::AdcConversion),
            cell_writes: self.count(Event::CellWrite),
            cell_reads: self.count(Event::CellRead),
            subarray_activations: self.count(Event::SubarrayActivation),
            buffer_reads: self.count(Event::BufferRead),
            buffer_writes: self.count(Event::BufferWrite),
            weight_updates: self.count(Event::WeightUpdate),
            train_steps: self.count(Event::TrainStep),
            requests_enqueued: self.count(Event::RequestEnqueued),
            batches_formed: self.count(Event::BatchFormed),
            requests_completed: self.count(Event::RequestCompleted),
        }
    }

    /// Completed spans aggregated by stage name, in first-seen order.
    pub fn span_reports(&self) -> Vec<SpanReport> {
        self.spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// All recorded metric samples, in record order.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|m| (m.name.clone(), m.value))
            .collect()
    }

    /// All recorded metric samples as serializable structs.
    pub fn metric_samples(&self) -> Vec<MetricSample> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Zeroes every counter and clears spans/metrics.
    pub fn reset(&self) {
        for counter in &self.counts {
            counter.store(0, Ordering::Relaxed);
        }
        self.spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

impl Recorder for CounterRecorder {
    fn record(&self, event: Event, count: u64) {
        self.counts[event.index()].fetch_add(count, Ordering::Relaxed);
    }

    fn span(&self, name: &str, wall_ns: u64, sim_cycles: u64) {
        let mut spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(existing) = spans.iter_mut().find(|s| s.name == name) {
            existing.calls += 1;
            existing.wall_ns += wall_ns;
            existing.sim_cycles += sim_cycles;
        } else {
            spans.push(SpanReport {
                name: name.to_owned(),
                calls: 1,
                wall_ns,
                sim_cycles,
            });
        }
    }

    fn metric(&self, name: &str, value: f64) {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(MetricSample {
                name: name.to_owned(),
                value,
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_event() {
        let rec = CounterRecorder::new();
        rec.record(Event::AdcConversion, 16);
        rec.record(Event::AdcConversion, 16);
        rec.record(Event::CellWrite, 256);
        assert_eq!(rec.count(Event::AdcConversion), 32);
        assert_eq!(rec.count(Event::CellWrite), 256);
        assert_eq!(rec.count(Event::CrossbarMvm), 0);

        let snap = rec.snapshot();
        assert_eq!(snap.adc_conversions, 32);
        assert_eq!(snap.cell_writes, 256);
        assert_eq!(snap.total(), 288);
    }

    #[test]
    fn spans_aggregate_by_name() {
        let rec = CounterRecorder::new();
        rec.span("forward", 100, 8);
        rec.span("backward", 50, 4);
        rec.span("forward", 300, 2);
        let spans = rec.span_reports();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "forward");
        assert_eq!(spans[0].calls, 2);
        assert_eq!(spans[0].wall_ns, 400);
        assert_eq!(spans[0].sim_cycles, 10);
        assert_eq!(spans[1].name, "backward");
    }

    #[test]
    fn reset_clears_everything() {
        let rec = CounterRecorder::new();
        rec.record(Event::TrainStep, 5);
        rec.span("s", 1, 1);
        rec.metric("loss", 1.0);
        rec.reset();
        assert_eq!(rec.snapshot().total(), 0);
        assert!(rec.span_reports().is_empty());
        assert!(rec.metrics().is_empty());
    }
}
