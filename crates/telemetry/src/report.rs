//! Serializable run-report types.
//!
//! A [`RunReport`] is the structured artifact a simulation run emits next to
//! its human-readable tables: workload identification, per-layer hardware
//! cost breakdown, per-stage timing, raw event totals, and scalar metric
//! samples. `repro --json <path>` writes one; tests round-trip them through
//! `serde::json`.

use serde::{Deserialize, Serialize};

/// Schema version stamped into every [`RunReport`]; bump on breaking shape
/// changes so downstream tooling can detect mismatches. Version 2 added the
/// serving-layer counters (`requests_enqueued`, `batches_formed`,
/// `requests_completed`).
pub const REPORT_SCHEMA_VERSION: u32 = 2;

/// Snapshot of every event counter (field names match [`crate::Event::name`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    pub crossbar_mvms: u64,
    pub spike_frames: u64,
    pub dac_conversions: u64,
    pub adc_conversions: u64,
    pub cell_writes: u64,
    pub cell_reads: u64,
    pub subarray_activations: u64,
    pub buffer_reads: u64,
    pub buffer_writes: u64,
    pub weight_updates: u64,
    pub train_steps: u64,
    pub requests_enqueued: u64,
    pub batches_formed: u64,
    pub requests_completed: u64,
}

impl EventCounts {
    /// Sum over every counter — handy for "did anything happen" checks.
    pub fn total(&self) -> u64 {
        self.crossbar_mvms
            + self.spike_frames
            + self.dac_conversions
            + self.adc_conversions
            + self.cell_writes
            + self.cell_reads
            + self.subarray_activations
            + self.buffer_reads
            + self.buffer_writes
            + self.weight_updates
            + self.train_steps
            + self.requests_enqueued
            + self.batches_formed
            + self.requests_completed
    }
}

/// Aggregated timing for one named stage (all entries of that stage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Stage name ("forward", "backward", "weight_update", ...).
    pub name: String,
    /// How many spans completed under this name.
    pub calls: u64,
    /// Total host wall-clock time spent, nanoseconds.
    pub wall_ns: u64,
    /// Total simulated hardware cycles attributed to the stage.
    pub sim_cycles: u64,
}

/// Per-layer hardware cost breakdown for one mapped network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name from the network description.
    pub name: String,
    /// Crossbar arrays consumed by the layer's weight mapping.
    pub arrays: u64,
    /// Analog MVM operations one input sample triggers in this layer.
    pub mvms_per_input: u64,
    /// Simulated cycles for one forward pass through this layer.
    pub cycles: u64,
    /// ADC/I&F conversions one forward pass performs in this layer.
    pub adc_conversions: u64,
    /// Cells reprogrammed when this layer's weights update once.
    pub cell_writes: u64,
    /// Forward-pass energy for one input, picojoules.
    pub energy_pj: f64,
}

/// One scalar metric sample (e.g. training loss at a given step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name ("train/loss", "train/accuracy", ...).
    pub name: String,
    /// Sampled value.
    pub value: f64,
}

/// The structured result of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version ([`REPORT_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Which artifact/experiment produced this report ("fig3", "table1", ...).
    pub artifact: String,
    /// Workload identification, free-form ("lenet", "dcgan", ...).
    pub workload: String,
    /// Per-layer hardware cost breakdown (empty when no network was mapped).
    pub layers: Vec<LayerReport>,
    /// Per-stage timing, aggregated by stage name.
    pub stages: Vec<SpanReport>,
    /// Raw event-counter totals for the whole run.
    pub totals: EventCounts,
    /// Scalar metric samples in record order.
    pub metrics: Vec<MetricSample>,
}

impl RunReport {
    /// An empty report for the given artifact/workload pair.
    pub fn new(artifact: impl Into<String>, workload: impl Into<String>) -> Self {
        Self {
            schema_version: REPORT_SCHEMA_VERSION,
            artifact: artifact.into(),
            workload: workload.into(),
            layers: Vec::new(),
            stages: Vec::new(),
            totals: EventCounts::default(),
            metrics: Vec::new(),
        }
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    #[must_use = "the parsed report is the result"]
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            schema_version: REPORT_SCHEMA_VERSION,
            artifact: "fig3".into(),
            workload: "lenet".into(),
            layers: vec![LayerReport {
                name: "conv1".into(),
                arrays: 2,
                mvms_per_input: 4,
                cycles: 128,
                adc_conversions: 512,
                cell_writes: 1024,
                energy_pj: 33.5,
            }],
            stages: vec![SpanReport {
                name: "forward".into(),
                calls: 3,
                wall_ns: 42_000,
                sim_cycles: 384,
            }],
            totals: EventCounts {
                crossbar_mvms: 12,
                adc_conversions: 1536,
                ..EventCounts::default()
            },
            metrics: vec![MetricSample {
                name: "train/loss".into(),
                value: 0.25,
            }],
        }
    }

    #[test]
    fn json_round_trip_preserves_report() {
        let report = sample_report();
        let text = report.to_json();
        let parsed = RunReport::from_json(&text).expect("report JSON should parse");
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_contains_expected_fields() {
        let text = sample_report().to_json();
        for needle in [
            "\"schema_version\"",
            "\"artifact\"",
            "\"adc_conversions\"",
            "\"cell_writes\"",
            "\"sim_cycles\"",
            "\"train/loss\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(RunReport::from_json("{\"schema_version\": 1}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }
}
