//! Thread-safety of the counter recorder and the global facade.
//!
//! Instrumented simulation code calls `telemetry::record` from whatever
//! thread the caller happens to run on (rayon-style sharded MVM loops,
//! parallel `cargo test` binaries), so lost updates would silently corrupt
//! the hardware event totals that the regenerated paper tables rest on.
//! These tests hammer one recorder from many threads and demand *exact*
//! totals — relaxed-ordering counters still guarantee atomicity per update.

use std::sync::Arc;
use std::thread;

use reram_telemetry as telemetry;
use reram_telemetry::{CounterRecorder, Event};

const THREADS: u64 = 8;
const ITERS: u64 = 10_000;

/// N threads record through the global facade installed once; every update
/// must land.
#[test]
fn facade_counters_are_exact_under_contention() {
    let counters = Arc::new(CounterRecorder::new());
    let _guard = telemetry::scoped_recorder(counters.clone());

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                for i in 0..ITERS {
                    telemetry::record(Event::CrossbarMvm, 1);
                    // Mix in a second event and variable counts so threads
                    // contend on more than one counter slot.
                    telemetry::record(Event::AdcConversion, (t + i) % 3);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    assert_eq!(counters.count(Event::CrossbarMvm), THREADS * ITERS);
    let expected_adc: u64 = (0..THREADS)
        .map(|t| (0..ITERS).map(|i| (t + i) % 3).sum::<u64>())
        .sum();
    assert_eq!(counters.count(Event::AdcConversion), expected_adc);
    // Nothing else was recorded.
    let snapshot = counters.snapshot();
    assert_eq!(
        snapshot.total(),
        THREADS * ITERS + expected_adc,
        "unexpected events leaked into the snapshot: {snapshot:?}"
    );
}

/// Direct (facade-free) recorder use from many threads: the recorder alone
/// must be exact, independent of the global installation machinery.
#[test]
fn recorder_is_exact_without_global_install() {
    let counters = Arc::new(CounterRecorder::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = counters.clone();
            thread::spawn(move || {
                use telemetry::Recorder;
                for _ in 0..ITERS {
                    c.record(Event::CellWrite, 2);
                    c.record(Event::BufferRead, 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    assert_eq!(counters.count(Event::CellWrite), 2 * THREADS * ITERS);
    assert_eq!(counters.count(Event::BufferRead), THREADS * ITERS);
}

/// Spans and metrics recorded concurrently with events must not poison the
/// recorder or drop event counts.
#[test]
fn mixed_span_metric_event_traffic() {
    let counters = Arc::new(CounterRecorder::new());
    let _guard = telemetry::scoped_recorder(counters.clone());

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                for i in 0..(ITERS / 10) {
                    let mut span = telemetry::Span::enter("stress");
                    span.add_cycles(1);
                    telemetry::record(Event::WeightUpdate, 1);
                    telemetry::metric("loss", (t * ITERS + i) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    assert_eq!(counters.count(Event::WeightUpdate), THREADS * (ITERS / 10));
    let report = counters.span_reports();
    let stress: u64 = report
        .iter()
        .filter(|s| s.name == "stress")
        .map(|s| s.calls)
        .sum();
    assert_eq!(stress, THREADS * (ITERS / 10));
}
