//! Criterion benches — one group per paper table/figure, timing the code
//! that regenerates each artifact (see DESIGN.md's experiment index).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reram_bench::experiments::{ablations, fig3, fig4, fig5, fig7, fig8, fig9, table1};
use std::hint::black_box;

/// E1 (Fig. 4): mapping the example layer across replication factors.
fn bench_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_mapping");
    for x in [1usize, 256, 12544] {
        g.bench_with_input(BenchmarkId::new("balanced", x), &x, |b, &x| {
            b.iter(|| black_box(fig4::measure(x)));
        });
    }
    g.finish();
}

/// E2 (Fig. 5): cycle-stepped pipeline simulation.
fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_pipeline");
    for (l, b) in [(5usize, 16usize), (11, 32), (16, 128)] {
        g.bench_with_input(
            BenchmarkId::new("simulate", format!("L{l}_B{b}")),
            &(l, b),
            |bench, &(l, b)| bench.iter(|| black_box(fig5::measure(l, b, 4))),
        );
    }
    g.finish();
}

/// E3 (Fig. 7): fractional-strided convolution functional check.
fn bench_fcnn(c: &mut Criterion) {
    c.bench_function("fig7_fcnn_check", |b| {
        b.iter(|| black_box(fig7::functional_check(256, 128, 8, 64)));
    });
}

/// E4 (Fig. 8): ReGAN schedule simulation.
fn bench_regan_pipeline(c: &mut Criterion) {
    c.bench_function("fig8_regan_cycles", |b| {
        b.iter(|| black_box(fig8::measure(5, 5, 64)));
    });
}

/// E5 (Fig. 9): SP/CS ablation across the four dataset shapes.
fn bench_regan_opt(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_regan_opt");
    for (name, ch, hw) in fig9::DATASETS {
        g.bench_with_input(
            BenchmarkId::new("levels", name),
            &(ch, hw),
            |b, &(ch, hw)| b.iter(|| black_box(fig9::cycles_by_level(ch, hw, 64))),
        );
    }
    g.finish();
}

/// E6 (Table I): PipeLayer-vs-GPU comparison per network.
fn bench_table1_pipelayer(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_pipelayer");
    for net in table1::pipelayer_networks() {
        g.bench_with_input(
            BenchmarkId::new("compare", net.name.clone()),
            &net,
            |b, net| b.iter(|| black_box(table1::pipelayer_row(net, 32, 512))),
        );
    }
    g.finish();
}

/// E7 (Table I): ReGAN-vs-GPU comparison per dataset.
fn bench_table1_regan(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_regan");
    for (name, ch, hw) in fig9::DATASETS {
        g.bench_with_input(
            BenchmarkId::new("compare", name),
            &(ch, hw),
            |b, &(ch, hw)| b.iter(|| black_box(table1::regan_row(name, ch, hw, 64, 50))),
        );
    }
    g.finish();
}

/// E8 (Fig. 3(c)): tiled crossbar MVM.
fn bench_tile_mvm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_tile_mvm");
    g.sample_size(10);
    for (o, i) in [(64usize, 64usize), (256, 300)] {
        g.bench_with_input(
            BenchmarkId::new("mvm", format!("{o}x{i}")),
            &(o, i),
            |b, &(o, i)| b.iter(|| black_box(fig3::measure(o, i))),
        );
    }
    g.finish();
}

/// Ablation: spike precision error evaluation.
fn bench_ablation_precision(c: &mut Criterion) {
    c.bench_function("ablation_spike_precision", |b| {
        b.iter(|| black_box(ablations::spike_precision_error(8)));
    });
}

criterion_group!(
    paper,
    bench_mapping,
    bench_pipeline,
    bench_fcnn,
    bench_regan_pipeline,
    bench_regan_opt,
    bench_table1_pipelayer,
    bench_table1_regan,
    bench_tile_mvm,
    bench_ablation_precision,
);
criterion_main!(paper);
