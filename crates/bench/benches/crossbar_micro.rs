//! Micro-benchmarks of the crossbar substrate's primitive operations:
//! spike-train encoding, single-array MVM, grid programming (full vs
//! delta), and the quantization pipeline. These sit below the paper-level
//! artifacts in `paper_artifacts.rs` and track the cost of the simulator
//! itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reram_crossbar::array::CrossbarArray;
use reram_crossbar::quant::{slice_magnitude, Quantizer};
use reram_crossbar::spike::SpikeTrain;
use reram_crossbar::{CrossbarConfig, TiledMatrix};
use reram_tensor::{Matrix, Shape2};
use std::hint::black_box;

fn pattern_matrix(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(Shape2::new(rows, cols), |r, c| {
        (((r * 31 + c * 17) % 41) as f32 - 20.0) / 20.0
    })
}

fn bench_spike_encode(c: &mut Criterion) {
    let codes: Vec<u64> = (0..128).map(|i| (i * 37) % 65536).collect();
    c.bench_function("spike_encode_128x16b", |b| {
        b.iter(|| black_box(SpikeTrain::encode(&codes, 16)));
    });
}

fn bench_array_mvm(c: &mut Criterion) {
    let cfg = CrossbarConfig::default();
    let mut array = CrossbarArray::new(&cfg);
    let levels: Vec<u32> = (0..cfg.rows * cfg.cols).map(|i| (i % 16) as u32).collect();
    array.program(&levels);
    let codes: Vec<u64> = (0..cfg.rows as u64).map(|i| (i * 97) % 65536).collect();
    c.bench_function("array_mvm_128x128_16b", |b| {
        b.iter(|| black_box(array.mvm_codes(&codes, 16)));
    });
}

fn bench_tiled_program(c: &mut Criterion) {
    let w = pattern_matrix(256, 256);
    let cfg = CrossbarConfig::default();
    c.bench_function("tiled_program_256x256", |b| {
        b.iter(|| black_box(TiledMatrix::program(&w, &cfg)));
    });
}

fn bench_reprogram_full_vs_delta(c: &mut Criterion) {
    let w1 = pattern_matrix(256, 256);
    let mut w2 = w1.clone();
    // A sparse update: 16 of 65536 weights change.
    for k in 0..16usize {
        let (r, q) = (k * 15 % 256, k * 37 % 256);
        w2.set(r, q, w2.at(r, q) * 0.9);
    }
    let cfg = CrossbarConfig::default();
    let mut g = c.benchmark_group("weight_update_256x256");
    g.bench_function(BenchmarkId::new("reprogram", "full"), |b| {
        let mut t = TiledMatrix::program(&w1, &cfg);
        b.iter(|| {
            t.reprogram(black_box(&w2));
        });
    });
    g.bench_function(BenchmarkId::new("reprogram", "delta"), |b| {
        let mut t = TiledMatrix::program(&w1, &cfg);
        b.iter(|| black_box(t.reprogram_delta(black_box(&w2))));
    });
    g.finish();
}

fn bench_quantizer(c: &mut Criterion) {
    let q = Quantizer::fit(16, 1.0);
    let values: Vec<f32> = (0..4096).map(|i| (i as f32 / 4096.0) * 2.0 - 1.0).collect();
    c.bench_function("quantize_4096x16b", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &v in &values {
                acc += q.quantize(black_box(v));
            }
            black_box(acc)
        });
    });
    c.bench_function("bit_slice_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..4096u64 {
                acc += slice_magnitude(black_box(i * 13 % 65536), 4, 4)[3];
            }
            black_box(acc)
        });
    });
}

fn bench_grid_matvec(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiled_matvec");
    g.sample_size(20);
    for n in [64usize, 256] {
        let w = pattern_matrix(n, n);
        let x: Vec<f32> = (0..n).map(|i| ((i % 13) as f32 - 6.0) / 6.0).collect();
        g.bench_with_input(BenchmarkId::new("square", n), &n, |b, _| {
            let mut t = TiledMatrix::program(&w, &CrossbarConfig::default());
            b.iter(|| black_box(t.matvec(&x)));
        });
    }
    g.finish();
}

criterion_group!(
    micro,
    bench_spike_encode,
    bench_array_mvm,
    bench_tiled_program,
    bench_reprogram_full_vs_delta,
    bench_quantizer,
    bench_grid_matvec,
);
criterion_main!(micro);
