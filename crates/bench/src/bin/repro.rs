//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p reram-bench --bin repro --release             # everything
//! cargo run -p reram-bench --bin repro --release -- table1   # one artifact
//! ```
//!
//! Artifacts: `fig3 fig4 fig5 fig7 fig8 fig9 table1 ablations`.

use reram_bench::experiments::{ablations, fig3, fig4, fig5, fig7, fig8, fig9, table1};

fn section(title: &str, body: String) {
    println!("== {title} ==");
    println!("{body}");
}

fn run(artifact: &str) -> bool {
    match artifact {
        "fig3" => section(
            "Fig. 3(c): partitioned large-matrix mapping (E8)",
            fig3::run().render(),
        ),
        "fig4" => section(
            "Fig. 4: naive vs balanced data mapping, replication sweep (E1)",
            fig4::run().render(),
        ),
        "fig5" => section(
            "Fig. 5: inter-layer training pipeline, simulator vs formulas (E2)",
            fig5::run().render(),
        ),
        "fig7" => section(
            "Fig. 7: fractional-strided convolution equivalences (E3)",
            fig7::run().render(),
        ),
        "fig8" => section(
            "Fig. 8: ReGAN GAN training pipeline cycles (E4)",
            fig8::run().render(),
        ),
        "fig9" => section(
            "Fig. 9: SP and CS optimization ablation (E5)",
            fig9::run().render(),
        ),
        "table1" => section(
            "Table I: PipeLayer and ReGAN vs GTX 1080 (E6/E7)",
            table1::run().render(),
        ),
        "ablations" => {
            section("Ablation: spike-code input precision", ablations::spike_precision().render());
            section("Ablation: crossbar array size (AlexNet)", ablations::array_size().render());
            section("Ablation: batch size vs pipeline overhead", ablations::batch_size().render());
            section(
                "Ablation: replication array budget (VGG-A)",
                ablations::replication_budget().render(),
            );
            section("Ablation: device variation / read noise", ablations::device_noise().render());
            section("Ablation: stuck-at cell faults", ablations::stuck_faults().render());
            section(
                "Analysis: ReRAM endurance under continuous in-situ training",
                ablations::endurance().render(),
            );
            section(
                "Analysis: chip-level bank provisioning (batch 32)",
                ablations::chip_plan().render(),
            );
            section(
                "Analysis: training-energy breakdown by component",
                ablations::energy_breakdown().render(),
            );
            section(
                "Ablation: readout scheme (spike I&F vs shared ADCs)",
                ablations::readout_schemes().render(),
            );
        }
        _ => return false,
    }
    true
}

fn main() {
    const ALL: [&str; 8] = [
        "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "table1", "ablations",
    ];
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for a in ALL {
            assert!(run(a), "built-in artifact {a} must exist");
        }
        return;
    }
    for a in &args {
        if !run(a) {
            eprintln!("unknown artifact '{a}'; expected one of {ALL:?}");
            std::process::exit(1);
        }
    }
}
