//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p reram-bench --bin repro --release             # everything
//! cargo run -p reram-bench --bin repro --release -- table1   # one artifact
//! cargo run -p reram-bench --bin repro --release -- --json out.json
//! ```
//!
//! Artifacts: `fig3 fig4 fig5 fig7 fig8 fig9 table1 plan ablations serve`.
//!
//! The `serve` artifact additionally writes `BENCH_serve.json` next to the
//! current directory: p99 latency and throughput for every scheduling
//! policy at every swept arrival rate, for machine comparison across runs.
//!
//! With `--json <path>`, a telemetry recorder observes the whole run and a
//! structured [`reram_telemetry::RunReport`] is written to `<path>`: the
//! LeNet per-layer closed-form breakdown (cycles, ADC conversions, cell
//! writes) plus stage spans and raw event totals from the experiments
//! themselves. The human-readable tables on stdout are unchanged.

use std::sync::Arc;

use reram_bench::experiments::{
    ablations, fig3, fig4, fig5, fig7, fig8, fig9, plan_latency, serve, table1,
};
use reram_core::AcceleratorConfig;
use reram_nn::models;
use reram_telemetry::CounterRecorder;

fn section(title: &str, body: String) {
    println!("== {title} ==");
    println!("{body}");
}

fn run(artifact: &str) -> bool {
    match artifact {
        "fig3" => section(
            "Fig. 3(c): partitioned large-matrix mapping (E8)",
            fig3::run().render(),
        ),
        "fig4" => section(
            "Fig. 4: naive vs balanced data mapping, replication sweep (E1)",
            fig4::run().render(),
        ),
        "fig5" => section(
            "Fig. 5: inter-layer training pipeline, simulator vs formulas (E2)",
            fig5::run().render(),
        ),
        "fig7" => section(
            "Fig. 7: fractional-strided convolution equivalences (E3)",
            fig7::run().render(),
        ),
        "fig8" => section(
            "Fig. 8: ReGAN GAN training pipeline cycles (E4)",
            fig8::run().render(),
        ),
        "fig9" => section(
            "Fig. 9: SP and CS optimization ablation (E5)",
            fig9::run().render(),
        ),
        "table1" => section(
            "Table I: PipeLayer and ReGAN vs GTX 1080 (E6/E7)",
            table1::run().render(),
        ),
        "plan" => {
            section(
                "Analysis: uniform macro-cycles vs per-layer plan latency, AlexNet (E9)",
                plan_latency::run().render(),
            );
            // Static verification footer: the numbers above come from
            // lowered plans, so stamp the artifact with the verifier's
            // zoo-wide sweep result.
            let (plans, findings) = reram_core::verify::verify_zoo();
            println!("verified: {plans} plans, {} violations", findings.len());
            for f in &findings {
                eprintln!("plan/{}/{}: {}", f.config, f.network, f.violation);
            }
            if !findings.is_empty() {
                std::process::exit(1);
            }
        }
        "serve" => {
            section(
                "Serving: scheduling policies, 4 chips, LeNet+AlexNet mix (E10)",
                serve::run().render(),
            );
            let path = "BENCH_serve.json";
            match std::fs::write(path, serve::bench_json()) {
                Ok(()) => eprintln!("wrote serving benchmark to {path}"),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        "ablations" => {
            section(
                "Ablation: spike-code input precision",
                ablations::spike_precision().render(),
            );
            section(
                "Ablation: crossbar array size (AlexNet)",
                ablations::array_size().render(),
            );
            section(
                "Ablation: batch size vs pipeline overhead",
                ablations::batch_size().render(),
            );
            section(
                "Ablation: replication array budget (VGG-A)",
                ablations::replication_budget().render(),
            );
            section(
                "Ablation: device variation / read noise",
                ablations::device_noise().render(),
            );
            section(
                "Ablation: stuck-at cell faults",
                ablations::stuck_faults().render(),
            );
            section(
                "Analysis: ReRAM endurance under continuous in-situ training",
                ablations::endurance().render(),
            );
            section(
                "Analysis: chip-level bank provisioning (batch 32)",
                ablations::chip_plan().render(),
            );
            section(
                "Analysis: training-energy breakdown by component",
                ablations::energy_breakdown().render(),
            );
            section(
                "Ablation: readout scheme (spike I&F vs shared ADCs)",
                ablations::readout_schemes().render(),
            );
        }
        _ => return false,
    }
    true
}

fn main() {
    const ALL: [&str; 10] = [
        "fig3",
        "fig4",
        "fig5",
        "fig7",
        "fig8",
        "fig9",
        "table1",
        "plan",
        "ablations",
        "serve",
    ];
    let mut artifacts: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires an output path");
                    std::process::exit(1);
                }
            }
        } else {
            artifacts.push(arg);
        }
    }
    if artifacts.is_empty() {
        artifacts = ALL.iter().map(|a| (*a).to_string()).collect();
    }

    let counters = json_path.as_ref().map(|_| {
        let counters = Arc::new(CounterRecorder::new());
        reram_telemetry::set_recorder(counters.clone());
        counters
    });

    for a in &artifacts {
        if !run(a) {
            eprintln!("unknown artifact '{a}'; expected one of {ALL:?}");
            std::process::exit(1);
        }
    }

    if let (Some(path), Some(counters)) = (json_path, counters) {
        reram_telemetry::clear_recorder();
        let net = models::lenet_spec();
        let report = reram_core::build_run_report(
            &artifacts.join("+"),
            &net,
            &AcceleratorConfig::default(),
            &counters,
        );
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("failed to write report to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote run report to {path}");
    }
}
