//! Experiment harness shared by the `repro` binary and the Criterion
//! benches: one module per paper artifact (table / figure), each producing
//! printable rows so the binary and the benches report identical data.
//!
//! See `EXPERIMENTS.md` at the workspace root for the paper-vs-measured
//! record produced by `cargo run -p reram-bench --bin repro --release`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;
