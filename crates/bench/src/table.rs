//! Minimal fixed-width table printer for experiment output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} vs header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as `12.3x`.
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Formats seconds with an adaptive unit.
pub fn seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Formats joules with an adaptive unit.
pub fn joules(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.3} J")
    } else if j >= 1e-3 {
        format!("{:.3} mJ", j * 1e3)
    } else {
        format!("{:.3} uJ", j * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        // Columns align: "1" and "23456" start at the same offset.
        let off = lines[2].find('1').expect("value present");
        assert_eq!(&lines[3][off..off + 1], "2");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(123.4), "123x");
        assert_eq!(ratio(42.45), "42.5x");
        assert_eq!(ratio(7.17), "7.17x");
        assert_eq!(seconds(0.5), "500.000 ms");
        assert_eq!(seconds(2.0), "2.000 s");
        assert_eq!(joules(0.002), "2.000 mJ");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["x"]);
        assert_eq!(t.len(), 1);
    }
}
