//! E8 — Fig. 3(c): partitioned large-matrix mapping on crossbar grids.
//!
//! Programs matrices that do not fit one array across a grid, runs the
//! quantized spike-coded MVM, and reports the grid extent, array count and
//! relative error against the exact floating-point product.

use crate::Table;
use reram_crossbar::{CrossbarConfig, TiledMatrix};
use reram_tensor::{Matrix, Shape2};

/// One measured row of the experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TileRow {
    /// Matrix extent (`out × in`).
    pub out_dim: usize,
    /// Matrix extent (`out × in`).
    pub in_dim: usize,
    /// Grid extent `(row_tiles, col_tiles)`.
    pub grid: (usize, usize),
    /// Physical arrays.
    pub arrays: usize,
    /// Mean absolute error of the crossbar MVM vs. the exact product.
    pub mean_abs_err: f64,
    /// Mean absolute magnitude of the exact result (error scale).
    pub mean_abs_ref: f64,
}

/// Runs the MVM for one matrix size, returning the measured row.
pub fn measure(out_dim: usize, in_dim: usize) -> TileRow {
    let w = Matrix::from_fn(Shape2::new(out_dim, in_dim), |r, c| {
        (((r * 31 + c * 17) % 41) as f32 - 20.0) / 20.0
    });
    let x: Vec<f32> = (0..in_dim)
        .map(|i| ((i * 13 % 23) as f32 - 11.0) / 11.0)
        .collect();
    let mut tiled = TiledMatrix::program(&w, &CrossbarConfig::default());
    let got = tiled.matvec(&x);
    let want = w.matvec(&x);
    let mean_abs_err = got
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs() as f64)
        .sum::<f64>()
        / out_dim as f64;
    let mean_abs_ref = want.iter().map(|v| v.abs() as f64).sum::<f64>() / out_dim as f64;
    TileRow {
        out_dim,
        in_dim,
        grid: tiled.grid(),
        arrays: tiled.array_count(),
        mean_abs_err,
        mean_abs_ref,
    }
}

/// The sizes swept by the experiment.
pub const SIZES: [(usize, usize); 4] = [(64, 64), (256, 300), (512, 1152), (1000, 2048)];

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new([
        "matrix (out x in)",
        "grid (rt x ct)",
        "arrays",
        "mean |err|",
        "mean |ref|",
        "rel err",
    ]);
    for (o, i) in SIZES {
        let r = measure(o, i);
        t.row([
            format!("{o} x {i}"),
            format!("{} x {}", r.grid.0, r.grid.1),
            r.arrays.to_string(),
            format!("{:.5}", r.mean_abs_err),
            format!("{:.3}", r.mean_abs_ref),
            format!("{:.3}%", 100.0 * r.mean_abs_err / r.mean_abs_ref),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_mvm_accurate_at_all_sizes() {
        // The largest size is exercised by the release-mode repro binary;
        // debug-mode tests cover the first three.
        for (o, i) in SIZES.into_iter().take(3) {
            let r = measure(o, i);
            assert!(
                r.mean_abs_err < 0.02 * r.mean_abs_ref.max(0.1),
                "{o}x{i}: err {} vs ref {}",
                r.mean_abs_err,
                r.mean_abs_ref
            );
        }
    }

    #[test]
    fn grid_grows_with_matrix() {
        let small = measure(64, 64);
        let big = measure(512, 1152);
        assert!(big.arrays > small.arrays);
        assert_eq!(big.grid.0, 1152usize.div_ceil(128));
    }

    #[test]
    fn run_produces_all_rows() {
        assert_eq!(run().len(), SIZES.len());
    }
}
