//! E1 — Fig. 4: naïve vs. balanced data mapping and the replication
//! trade-off.
//!
//! Reproduces the paper's worked example: the CONV layer
//! 114×114×128 → 112×112×256 with 3×3 kernels, whose kernel matrix is
//! 1152×256 and which needs 12544 input vectors per image. Sweeps the
//! replication factor `X` to show the cycles-versus-arrays trade-off the
//! paper calls "a carefully chosen X".

use crate::Table;
use reram_core::{AcceleratorConfig, LayerMapping, MappingScheme};
use reram_crossbar::CrossbarConfig;
use reram_nn::LayerSpec;

/// The Fig. 4 example layer.
pub fn fig4_layer() -> LayerSpec {
    LayerSpec::Conv {
        in_c: 128,
        out_c: 256,
        k: 3,
        stride: 1,
        pad: 0,
        in_h: 114,
        in_w: 114,
    }
}

/// Accelerator config with 4-bit weights (one cell per weight), matching
/// the figure's 128-logical-column arrays.
pub fn fig4_config() -> AcceleratorConfig {
    AcceleratorConfig {
        crossbar: CrossbarConfig {
            weight_bits: 4,
            cell_bits: 4,
            ..CrossbarConfig::default()
        },
        ..AcceleratorConfig::default()
    }
}

/// The replication factors swept (the paper highlights X = 1, 256, 12544).
pub const REPLICATIONS: [usize; 6] = [1, 16, 64, 256, 1024, 12544];

/// Maps the Fig. 4 layer at replication `x`.
pub fn measure(x: usize) -> LayerMapping {
    LayerMapping::map(
        &fig4_layer(),
        &fig4_config(),
        MappingScheme::Balanced { replication: x },
    )
}

/// Runs the full experiment.
pub fn run() -> Table {
    let cfg = fig4_config();
    let naive = LayerMapping::map(&fig4_layer(), &cfg, MappingScheme::Naive);
    let mut t = Table::new([
        "scheme",
        "X",
        "grid",
        "arrays",
        "steps/input",
        "latency/input",
    ]);
    t.row([
        "naive (Fig.4a)".to_string(),
        "-".to_string(),
        "1 x 1 (logical)".to_string(),
        naive.arrays.to_string(),
        naive.steps_per_input.to_string(),
        crate::table::seconds(naive.stage_latency_ns() * 1e-9),
    ]);
    for x in REPLICATIONS {
        let m = measure(x);
        t.row([
            "balanced (Fig.4b)".to_string(),
            x.to_string(),
            format!("{} x {}", m.row_tiles, m.col_tiles),
            m.arrays.to_string(),
            m.steps_per_input.to_string(),
            crate::table::seconds(m.stage_latency_ns() * 1e-9),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_constants() {
        let m = measure(1);
        assert_eq!(m.mvms_per_input, 12544);
        assert_eq!((m.row_tiles, m.col_tiles), (9, 2));
    }

    #[test]
    fn x_one_equals_naive_steps() {
        let naive = LayerMapping::map(&fig4_layer(), &fig4_config(), MappingScheme::Naive);
        assert_eq!(measure(1).steps_per_input, naive.steps_per_input);
    }

    #[test]
    fn full_replication_single_cycle() {
        assert_eq!(measure(12544).steps_per_input, 1);
    }

    #[test]
    fn monotone_tradeoff() {
        let rows: Vec<_> = REPLICATIONS.iter().map(|&x| measure(x)).collect();
        for w in rows.windows(2) {
            assert!(w[0].steps_per_input >= w[1].steps_per_input);
            assert!(w[0].arrays < w[1].arrays);
        }
    }

    #[test]
    fn run_has_naive_plus_sweep() {
        assert_eq!(run().len(), 1 + REPLICATIONS.len());
    }
}
