//! E10 — multi-chip serving: scheduling-policy comparison under load.
//!
//! A four-chip cluster serves a heterogeneous model mix (70% LeNet, 30%
//! AlexNet — per-request service costs differ by an order of magnitude) at
//! three Poisson arrival rates. Each [`reram_serve::Policy`] runs the same
//! seeded workload, so rows differ only in scheduling decisions. The point
//! the table makes: once the cluster is loaded, plan-cost-aware dispatch
//! (which prices each candidate batch with the chip's lowered
//! [`reram_core::ExecutionPlan`]) beats both round-robin and queue-length
//! balancing on tail latency, because queue *length* is a poor proxy for
//! queue *time* when batches are this unequal.

use crate::Table;
use reram_core::AcceleratorConfig;
use reram_nn::{models, NetworkSpec};
use reram_serve::{simulate, Policy, ServeConfig, ServeReport, TrafficModel};

/// Chips in the simulated cluster.
pub const CHIPS: usize = 4;

/// Request mix over the catalog: 70% LeNet, 30% AlexNet.
pub const MODEL_MIX: [f64; 2] = [0.7, 0.3];

/// Swept Poisson arrival rates (requests/second): light, moderate, heavy.
/// The heavy point sits near the cluster's service capacity for this mix,
/// where scheduling quality dominates the tail.
pub const ARRIVAL_RATES_RPS: [f64; 3] = [250_000.0, 1_000_000.0, 2_500_000.0];

/// Simulated arrival horizon: 20 ms of traffic (then the queues drain).
pub const HORIZON_NS: u64 = 20_000_000;

/// Workload seed shared by every row so policies see identical arrivals.
pub const SEED: u64 = 42;

/// The served model catalog (index order matches [`MODEL_MIX`]).
pub fn catalog() -> [NetworkSpec; 2] {
    [models::lenet_spec(), models::alexnet_spec()]
}

/// Simulates one (policy, arrival-rate) cell of the sweep.
pub fn measure(policy: Policy, rate_rps: f64) -> ServeReport {
    let cfg = ServeConfig {
        chips: CHIPS,
        policy,
        traffic: TrafficModel::Poisson { rate_rps },
        mix: MODEL_MIX.to_vec(),
        horizon_ns: HORIZON_NS,
        seed: SEED,
        ..ServeConfig::default()
    };
    // lint:allow(panic) fixed zoo networks under the default config always plan
    simulate(&cfg, &catalog(), &AcceleratorConfig::default()).expect("serving sweep simulates")
}

/// Runs the full 3 policies x 3 rates sweep, rate-major.
pub fn measure_all() -> Vec<ServeReport> {
    let mut reports = Vec::with_capacity(ARRIVAL_RATES_RPS.len() * Policy::ALL.len());
    for rate in ARRIVAL_RATES_RPS {
        for policy in Policy::ALL {
            reports.push(measure(policy, rate));
        }
    }
    reports
}

/// Renders the policy-comparison table.
pub fn run() -> Table {
    let mut t = Table::new([
        "policy",
        "arrival rate",
        "throughput",
        "mean batch",
        "p50",
        "p95",
        "p99",
        "utilization",
        "energy",
    ]);
    let mut reports = measure_all().into_iter();
    for rate in ARRIVAL_RATES_RPS {
        for _ in Policy::ALL {
            // lint:allow(panic) measure_all emits exactly rates x policies cells
            let r = reports.next().expect("sweep covers every cell");
            t.row([
                r.policy.clone(),
                format!("{:.2} Mrps", rate / 1e6),
                format!("{:.2} Mrps", r.throughput_rps / 1e6),
                format!("{:.1}", r.mean_batch_size),
                percentile_cell(r.p50_latency_ns),
                percentile_cell(r.p95_latency_ns),
                percentile_cell(r.p99_latency_ns),
                format!("{:.0}%", r.mean_utilization() * 100.0),
                crate::table::joules(r.total_energy_uj * 1e-6),
            ]);
        }
    }
    t
}

/// Formats one latency percentile, or `-` for a zero-completion run (the
/// percentiles are `None` then — there is no tail to report).
fn percentile_cell(latency_ns: Option<u64>) -> String {
    match latency_ns {
        Some(ns) => crate::table::seconds(ns as f64 * 1e-9),
        None => "-".to_owned(),
    }
}

/// One `BENCH_serve.json` record: the headline numbers for a sweep cell.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeBenchRecord {
    /// Scheduling policy name.
    pub policy: String,
    /// Offered Poisson arrival rate, requests/second.
    pub arrival_rate_rps: f64,
    /// Achieved throughput over the makespan, requests/second.
    pub throughput_rps: f64,
    /// 99th-percentile request latency, simulated nanoseconds.
    pub p99_latency_ns: u64,
}

/// The machine-readable artifact behind `BENCH_serve.json`: p99 latency and
/// throughput for every sweep cell, in [`measure_all`] order.
pub fn bench_records() -> Vec<ServeBenchRecord> {
    let mut out = Vec::new();
    let mut reports = measure_all().into_iter();
    for rate in ARRIVAL_RATES_RPS {
        for _ in Policy::ALL {
            // lint:allow(panic) measure_all emits exactly rates x policies cells
            let r = reports.next().expect("sweep covers every cell");
            out.push(ServeBenchRecord {
                policy: r.policy,
                arrival_rate_rps: rate,
                throughput_rps: r.throughput_rps,
                // lint:allow(panic) every sweep cell admits and completes requests
                p99_latency_ns: r.p99_latency_ns.expect("sweep cells complete requests"),
            });
        }
    }
    out
}

/// Serializes [`bench_records`] as pretty-printed JSON.
pub fn bench_json() -> String {
    serde::json::to_string_pretty(&bench_records())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_aware_beats_round_robin_on_tail_latency_under_load() {
        let heavy = *ARRIVAL_RATES_RPS.last().expect("rates non-empty");
        let rr = measure(Policy::RoundRobin, heavy)
            .p99_latency_ns
            .expect("completions");
        let ca = measure(Policy::PlanCostAware, heavy)
            .p99_latency_ns
            .expect("completions");
        assert!(
            ca < rr,
            "plan-cost-aware p99 {ca} ns should undercut round-robin p99 {rr} ns"
        );
    }

    #[test]
    fn every_policy_serves_the_identical_workload() {
        let heavy = *ARRIVAL_RATES_RPS.last().expect("rates non-empty");
        let admitted: Vec<u64> = Policy::ALL
            .iter()
            .map(|&p| measure(p, heavy).requests_admitted)
            .collect();
        assert!(admitted[0] > 0);
        assert!(admitted.iter().all(|&n| n == admitted[0]));
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(bench_json(), bench_json());
    }

    #[test]
    fn run_covers_the_full_sweep() {
        assert_eq!(run().len(), ARRIVAL_RATES_RPS.len() * Policy::ALL.len());
        assert_eq!(
            bench_records().len(),
            ARRIVAL_RATES_RPS.len() * Policy::ALL.len()
        );
    }
}
