//! E9 — uniform macro-cycles vs per-layer execution-plan latency (AlexNet).
//!
//! The paper's pipeline accounting pads every stage to the slowest layer
//! (one macro-cycle per stage); the [`reram_core::ExecutionPlan`] lowering
//! keeps each layer's own latency, so faster stages only pay their real
//! cost while the initiation interval is still set by the slowest stage.
//! This table quantifies how much wall-clock the uniform padding overstates
//! for `alexnet_spec()`.

use crate::Table;
use reram_core::{AcceleratorConfig, PipeLayerAccelerator};
use reram_nn::models;

/// One measured row.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanLatencyRow {
    /// Workload phase ("inference" or "training").
    pub mode: &'static str,
    /// Batch size (1 for inference).
    pub batch: usize,
    /// Inputs processed.
    pub inputs: u64,
    /// Wall-clock under uniform macro-cycle accounting, seconds.
    pub uniform_s: f64,
    /// Wall-clock under per-layer plan stage latencies, seconds.
    pub per_layer_s: f64,
}

impl PlanLatencyRow {
    /// How much the uniform padding overstates the latency.
    pub fn overstatement(&self) -> f64 {
        self.uniform_s / self.per_layer_s
    }
}

/// Swept `(batch, inputs)` training configurations.
pub const TRAIN_CONFIGS: [(usize, u64); 3] = [(16, 1024), (32, 1024), (64, 1024)];

/// Measures AlexNet under both accounting schemes.
pub fn measure() -> Vec<PlanLatencyRow> {
    let net = models::alexnet_spec();
    let accel = PipeLayerAccelerator::new(AcceleratorConfig::default());
    let mut rows = vec![PlanLatencyRow {
        mode: "inference",
        batch: 1,
        inputs: 1024,
        uniform_s: accel.inference_cost(&net, 1024).time_s,
        per_layer_s: accel.inference_time_per_layer_s(&net, 1024),
    }];
    for (batch, n) in TRAIN_CONFIGS {
        rows.push(PlanLatencyRow {
            mode: "training",
            batch,
            inputs: n,
            uniform_s: accel.train_cost(&net, batch, n).time_s,
            per_layer_s: accel.train_time_per_layer_s(&net, batch, n),
        });
    }
    rows
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new([
        "mode",
        "B",
        "inputs",
        "uniform macro-cycle",
        "per-layer plan",
        "overstatement",
    ]);
    for r in measure() {
        t.row([
            r.mode.to_string(),
            r.batch.to_string(),
            r.inputs.to_string(),
            crate::table::seconds(r.uniform_s),
            crate::table::seconds(r.per_layer_s),
            crate::table::ratio(r.overstatement()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_layer_never_slower_than_uniform() {
        for r in measure() {
            assert!(r.uniform_s > 0.0 && r.per_layer_s > 0.0, "{}", r.mode);
            assert!(
                r.per_layer_s <= r.uniform_s,
                "{} B={}: per-layer {} > uniform {}",
                r.mode,
                r.batch,
                r.per_layer_s,
                r.uniform_s
            );
        }
    }

    #[test]
    fn alexnet_stages_are_heterogeneous_enough_to_matter() {
        // Steady-state inference is initiation-interval bound in both
        // schemes (only the pipeline fill differs), but training pads every
        // forward stage to the slowest *backward* stage, so AlexNet's
        // heterogeneous layers make the uniform accounting overstate
        // latency by a real margin there.
        for r in measure() {
            match r.mode {
                "inference" => assert!(
                    r.overstatement() >= 1.0,
                    "inference: overstatement {}",
                    r.overstatement()
                ),
                _ => assert!(
                    r.overstatement() > 1.1,
                    "{} B={}: overstatement {}",
                    r.mode,
                    r.batch,
                    r.overstatement()
                ),
            }
        }
    }

    #[test]
    fn run_covers_all_configs() {
        assert_eq!(run().len(), TRAIN_CONFIGS.len() + 1);
    }
}
