//! E5 — Fig. 9: the SP and CS pipeline optimizations, ablated.
//!
//! For DCGAN at the four ReGAN dataset resolutions, reports iteration
//! cycles, crossbar time and energy at each optimization level —
//! no-pipeline → pipeline → +SP → +SP+CS — along with the array cost of
//! SP's duplicated discriminator and CS's doubled buffers.

use crate::Table;
use reram_core::{AcceleratorConfig, ReGanAccelerator, ReganOpt, ReganPipeline};
use reram_nn::models;

/// The ReGAN evaluation datasets as `(name, channels, image hw)`.
pub const DATASETS: [(&str, usize, usize); 4] = [
    ("MNIST", 1, 32),
    ("cifar-10", 3, 32),
    ("celebA", 3, 64),
    ("LSUN", 3, 64),
];

/// Iteration cycles at every optimization level for one dataset shape.
pub fn cycles_by_level(channels: usize, hw: usize, batch: usize) -> Vec<(ReganOpt, u64)> {
    let g = models::dcgan_generator_spec(100, channels, hw);
    let d = models::dcgan_discriminator_spec(channels, hw);
    let p = ReganPipeline::new(d.weighted_layer_count(), g.weighted_layer_count(), batch);
    ReganOpt::ALL
        .iter()
        .map(|&o| (o, p.iteration_cycles(o)))
        .collect()
}

/// Accelerator time/energy at every optimization level for one dataset.
pub fn reports_by_level(
    channels: usize,
    hw: usize,
    batch: usize,
    iterations: u64,
) -> Vec<(ReganOpt, reram_core::AccelReport)> {
    let g = models::dcgan_generator_spec(100, channels, hw);
    let d = models::dcgan_discriminator_spec(channels, hw);
    ReganOpt::ALL
        .iter()
        .map(|&o| {
            (
                o,
                ReGanAccelerator::new(AcceleratorConfig::default(), o)
                    .train_cost(&g, &d, batch, iterations),
            )
        })
        .collect()
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new([
        "dataset",
        "level",
        "iter cycles",
        "time",
        "energy",
        "arrays",
        "vs no-pipeline",
    ]);
    for (name, c, hw) in DATASETS {
        let reports = reports_by_level(c, hw, 64, 100);
        let base_time = reports[0].1.time_s;
        for (opt, r) in &reports {
            t.row([
                name.to_string(),
                opt.name().to_string(),
                (r.cycles / 100).to_string(),
                crate::table::seconds(r.time_s),
                crate::table::joules(r.energy_j),
                r.arrays.to_string(),
                crate::table::ratio(base_time / r.time_s),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_level_strictly_faster() {
        for (_, c, hw) in DATASETS {
            let cycles = cycles_by_level(c, hw, 64);
            for w in cycles.windows(2) {
                assert!(w[0].1 > w[1].1, "{:?} !> {:?} at {c}ch {hw}px", w[0], w[1]);
            }
        }
    }

    #[test]
    fn sp_duplicates_discriminator_arrays() {
        let reports = reports_by_level(3, 32, 64, 10);
        let pipeline = &reports[1].1;
        let sp = &reports[2].1;
        assert!(sp.arrays > pipeline.arrays);
    }

    #[test]
    fn cs_reduces_energy_per_iteration() {
        let reports = reports_by_level(3, 64, 64, 10);
        let sp = &reports[2].1;
        let cs = &reports[3].1;
        assert!(cs.energy_j < sp.energy_j);
    }

    #[test]
    fn run_covers_datasets_times_levels() {
        assert_eq!(run().len(), DATASETS.len() * ReganOpt::ALL.len());
    }
}
