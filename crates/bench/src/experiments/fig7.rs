//! E3 — Fig. 7: fractional-strided convolution as ordinary convolution.
//!
//! Verifies, on DCGAN generator layer shapes, that (a) the forward FCNN
//! computed by zero insertion + unit-stride convolution matches the direct
//! transposed-convolution semantics, and (b) the error back-propagation is
//! the strided convolution the paper describes — then reports the crossbar
//! cost of treating the FCNN as the equivalent convolution.

use crate::Table;
use reram_core::{AcceleratorConfig, LayerMapping, MappingScheme};
use reram_nn::LayerSpec;
use reram_tensor::{init, ops, Shape4, Tensor};

/// DCGAN generator FCNN shapes `(in_c, out_c, in_hw)` with k=4, s=2, p=1.
pub const LAYERS: [(usize, usize, usize); 4] =
    [(1024, 512, 4), (512, 256, 8), (256, 128, 16), (128, 3, 32)];

/// Functional check: forward matches scatter semantics, backward-input is
/// the strided convolution. Returns `(forward_rms, backward_rms)` of a
/// scaled-down instance (channel counts divided by `scale`).
pub fn functional_check(in_c: usize, out_c: usize, hw: usize, scale: usize) -> (f32, f32) {
    let (ic, oc) = ((in_c / scale).max(1), (out_c / scale).max(1));
    let mut rng = init::seeded_rng(42);
    let x = init::uniform(Shape4::new(1, ic, hw, hw), -1.0, 1.0, &mut rng);
    let w = init::normal(Shape4::new(ic, oc, 4, 4), 0.05, &mut rng);

    // Forward: zero-insertion path (the library implementation) vs direct
    // scatter reference.
    let fwd = ops::conv_transpose2d(&x, &w, None, 2, 1);
    let mut reference = Tensor::zeros(fwd.shape());
    for n in 0..1 {
        for ci in 0..ic {
            for iy in 0..hw {
                for ix in 0..hw {
                    let v = x.at(n, ci, iy, ix);
                    for co in 0..oc {
                        for ky in 0..4usize {
                            let oy = (iy * 2 + ky) as isize - 1;
                            if oy < 0 || oy >= fwd.shape().h as isize {
                                continue;
                            }
                            for kx in 0..4usize {
                                let ox = (ix * 2 + kx) as isize - 1;
                                if ox < 0 || ox >= fwd.shape().w as isize {
                                    continue;
                                }
                                reference.add_at(
                                    n,
                                    co,
                                    oy as usize,
                                    ox as usize,
                                    v * w.at(ci, co, ky, kx),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    let fwd_rms = (fwd.squared_distance(&reference) / fwd.len() as f32).sqrt();

    // Backward: library backward-input vs explicit strided conv2d of the
    // upstream gradient with the kernel (Fig. 7(b)).
    let g = init::uniform(fwd.shape(), -1.0, 1.0, &mut rng);
    let bwd = ops::conv_transpose2d_backward_input(&g, &w, 2, 1);
    let strided = ops::conv2d(&g, &w, None, 2, 1);
    let bwd_rms = (bwd.squared_distance(&strided) / bwd.len() as f32).sqrt();
    (fwd_rms, bwd_rms)
}

/// Crossbar mapping cost of one FCNN layer treated as a convolution over
/// the dilated feature map.
pub fn mapping_cost(in_c: usize, out_c: usize, hw: usize) -> LayerMapping {
    let spec = LayerSpec::FracConv {
        in_c,
        out_c,
        k: 4,
        stride: 2,
        pad: 1,
        in_h: hw,
        in_w: hw,
    };
    LayerMapping::map(
        &spec,
        &AcceleratorConfig::default(),
        MappingScheme::Balanced { replication: 1 },
    )
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new([
        "FCNN layer",
        "out hw",
        "fwd==scatter rms",
        "bwd==strided-conv rms",
        "crossbar grid",
        "MVMs/input",
    ]);
    for (ic, oc, hw) in LAYERS {
        let (f, b) = functional_check(ic, oc, hw, 64);
        let m = mapping_cost(ic, oc, hw);
        t.row([
            format!("{ic}->{oc} @ {hw}x{hw}"),
            format!("{}", hw * 2),
            format!("{f:.2e}"),
            format!("{b:.2e}"),
            format!("{} x {}", m.row_tiles, m.col_tiles),
            m.mvms_per_input.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_insertion_equals_scatter() {
        for (ic, oc, hw) in LAYERS {
            let (f, _) = functional_check(ic, oc, hw, 128);
            assert!(f < 1e-4, "{ic}->{oc}@{hw}: fwd rms {f}");
        }
    }

    #[test]
    fn backward_is_strided_convolution() {
        for (ic, oc, hw) in LAYERS {
            let (_, b) = functional_check(ic, oc, hw, 128);
            assert!(b < 1e-4, "{ic}->{oc}@{hw}: bwd rms {b}");
        }
    }

    #[test]
    fn fcnn_mvm_count_is_upsampled_positions() {
        // One MVM per OUTPUT position of the up-sampled map.
        let m = mapping_cost(256, 128, 16);
        assert_eq!(m.mvms_per_input, 32 * 32);
    }

    #[test]
    fn run_covers_generator() {
        assert_eq!(run().len(), LAYERS.len());
    }
}
