//! One module per paper artifact. Each `run()` returns a [`crate::Table`]
//! whose rows are what `EXPERIMENTS.md` records; helper functions expose the
//! underlying numbers to the Criterion benches and integration tests.

pub mod ablations;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod plan_latency;
pub mod serve;
pub mod table1;
