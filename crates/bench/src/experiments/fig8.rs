//! E4 — Fig. 8: the ReGAN GAN training pipeline.
//!
//! Sweeps discriminator/generator depths and batch sizes, comparing the
//! event-driven schedule simulation against the paper's cycle formulas for
//! training D and training G, with and without the pipeline.

use crate::Table;
use reram_core::{ReganOpt, ReganPipeline};

/// Swept `(L_D, L_G, B)` configurations (DCGAN-class depths).
pub const CONFIGS: [(usize, usize, usize); 5] =
    [(4, 4, 8), (4, 4, 32), (4, 4, 128), (5, 5, 64), (8, 6, 64)];

/// One measured row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReganRow {
    /// Discriminator depth.
    pub l_d: usize,
    /// Generator depth.
    pub l_g: usize,
    /// Batch size.
    pub batch: usize,
    /// D-update cycles, pipelined.
    pub d_pipelined: u64,
    /// G-update cycles, pipelined.
    pub g_pipelined: u64,
    /// D-update cycles, no pipeline.
    pub d_sequential: u64,
    /// G-update cycles, no pipeline.
    pub g_sequential: u64,
    /// Simulated full-iteration cycles, pipelined.
    pub simulated_iteration: u64,
}

/// Measures one configuration.
pub fn measure(l_d: usize, l_g: usize, batch: usize) -> ReganRow {
    let p = ReganPipeline::new(l_d, l_g, batch);
    ReganRow {
        l_d,
        l_g,
        batch,
        d_pipelined: p.d_training_cycles(ReganOpt::Pipeline),
        g_pipelined: p.g_training_cycles(ReganOpt::Pipeline),
        d_sequential: p.d_training_cycles(ReganOpt::NoPipeline),
        g_sequential: p.g_training_cycles(ReganOpt::NoPipeline),
        simulated_iteration: p.simulate_iteration(ReganOpt::Pipeline),
    }
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new([
        "L_D",
        "L_G",
        "B",
        "train D (pipe)",
        "train G (pipe)",
        "train D (seq)",
        "train G (seq)",
        "iter sim",
        "pipe speedup",
    ]);
    for (l_d, l_g, b) in CONFIGS {
        let r = measure(l_d, l_g, b);
        let seq = r.d_sequential + r.g_sequential;
        let pipe = r.d_pipelined + r.g_pipelined;
        t.row([
            r.l_d.to_string(),
            r.l_g.to_string(),
            r.batch.to_string(),
            r.d_pipelined.to_string(),
            r.g_pipelined.to_string(),
            r.d_sequential.to_string(),
            r.g_sequential.to_string(),
            r.simulated_iteration.to_string(),
            crate::table::ratio(seq as f64 / pipe as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_paper() {
        for (l_d, l_g, b) in CONFIGS {
            let r = measure(l_d, l_g, b);
            let (ld, lg, bb) = (l_d as u64, l_g as u64, b as u64);
            assert_eq!(r.d_pipelined, (2 * ld + bb) + (lg + 2 * ld + bb) + 1);
            assert_eq!(r.g_pipelined, 2 * lg + 2 * ld + bb + 1);
            assert_eq!(r.d_sequential, (4 * ld + lg + 2) * bb);
            assert_eq!(r.g_sequential, (2 * lg + 2 * ld + 1) * bb);
        }
    }

    #[test]
    fn simulation_matches_sum() {
        for (l_d, l_g, b) in CONFIGS {
            let r = measure(l_d, l_g, b);
            assert_eq!(r.simulated_iteration, r.d_pipelined + r.g_pipelined);
        }
    }

    #[test]
    fn run_covers_sweep() {
        assert_eq!(run().len(), CONFIGS.len());
    }
}
