//! Ablation benches for the design choices DESIGN.md calls out:
//! spike-code input precision, crossbar array size, batch size, and the
//! replication budget.

use crate::Table;
use reram_core::{
    AcceleratorConfig, BankShape, ChipPlan, EnduranceClass, EnduranceReport, PipeLayerAccelerator,
    PipelineModel, ReplicationPolicy,
};
use reram_crossbar::{CrossbarConfig, TiledMatrix};
use reram_nn::models;
use reram_tensor::{Matrix, Shape2};

/// Spike-code precision ablation: MVM accuracy and latency factor vs.
/// `input_bits` (the weighted spike coding of \[9\] walks one frame per bit).
pub fn spike_precision() -> Table {
    let w = Matrix::from_fn(Shape2::new(96, 96), |r, c| {
        (((r * 7 + c * 5) % 31) as f32 - 15.0) / 15.0
    });
    let x: Vec<f32> = (0..96).map(|i| ((i % 17) as f32 - 8.0) / 8.0).collect();
    let exact = w.matvec(&x);
    let ref_mean = exact.iter().map(|v| v.abs() as f64).sum::<f64>() / exact.len() as f64;
    let mut t = Table::new(["input bits", "frames/MVM", "mean rel err"]);
    for bits in [2u32, 4, 6, 8, 12, 16] {
        let cfg = CrossbarConfig {
            input_bits: bits,
            ..CrossbarConfig::default()
        };
        let mut tiled = TiledMatrix::program(&w, &cfg);
        let got = tiled.matvec(&x);
        let err = got
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b).abs() as f64)
            .sum::<f64>()
            / exact.len() as f64;
        t.row([
            bits.to_string(),
            bits.to_string(),
            format!("{:.4}%", 100.0 * err / ref_mean),
        ]);
    }
    t
}

/// Mean relative error of the crossbar MVM at a given input precision
/// (used by tests and benches).
pub fn spike_precision_error(bits: u32) -> f64 {
    let w = Matrix::from_fn(Shape2::new(96, 96), |r, c| {
        (((r * 7 + c * 5) % 31) as f32 - 15.0) / 15.0
    });
    let x: Vec<f32> = (0..96).map(|i| ((i % 17) as f32 - 8.0) / 8.0).collect();
    let exact = w.matvec(&x);
    let cfg = CrossbarConfig {
        input_bits: bits,
        ..CrossbarConfig::default()
    };
    let mut tiled = TiledMatrix::program(&w, &cfg);
    let got = tiled.matvec(&x);
    let err = got
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs() as f64)
        .sum::<f64>()
        / exact.len() as f64;
    let ref_mean = exact.iter().map(|v| v.abs() as f64).sum::<f64>() / exact.len() as f64;
    err / ref_mean
}

/// Array-size ablation: arrays needed and training time for AlexNet as the
/// crossbar geometry sweeps 64..512.
pub fn array_size() -> Table {
    let net = models::alexnet_spec();
    let mut t = Table::new(["array", "arrays used", "area", "train time (512 in)"]);
    for size in [64usize, 128, 256, 512] {
        let mut cfg = AcceleratorConfig::default();
        cfg.crossbar = cfg.crossbar.with_array_size(size, size);
        let r = PipeLayerAccelerator::new(cfg).train_cost(&net, 32, 512);
        t.row([
            format!("{size}x{size}"),
            r.arrays.to_string(),
            format!("{:.1} mm2", r.area_mm2),
            crate::table::seconds(r.time_s),
        ]);
    }
    t
}

/// Batch-size ablation: pipeline fill/drain overhead vs. throughput
/// (cycles per input for varying B at fixed L).
pub fn batch_size() -> Table {
    let mut t = Table::new(["B", "cycles/batch", "cycles/input", "speedup vs seq"]);
    let l = 11; // VGG-A depth
    for b in [1usize, 4, 16, 64, 256] {
        let p = PipelineModel::new(l, b);
        let n = 1024u64.div_ceil(b as u64) * b as u64;
        t.row([
            b.to_string(),
            p.training_cycles_per_batch().to_string(),
            format!("{:.2}", p.training_cycles(n) as f64 / n as f64),
            crate::table::ratio(p.training_speedup(n)),
        ]);
    }
    t
}

/// Replication-budget ablation: VGG-A training time vs. the chip's array
/// budget.
pub fn replication_budget() -> Table {
    let net = models::vgg_a_spec();
    let mut t = Table::new(["array budget", "arrays used", "train time (512 in)", "area"]);
    for budget in [16_384usize, 65_536, 131_072, 524_288] {
        let cfg =
            AcceleratorConfig::default().with_replication(ReplicationPolicy::ArrayBudget(budget));
        let r = PipeLayerAccelerator::new(cfg).train_cost(&net, 32, 512);
        t.row([
            budget.to_string(),
            r.arrays.to_string(),
            crate::table::seconds(r.time_s),
            format!("{:.1} mm2", r.area_mm2),
        ]);
    }
    t
}

/// Endurance study: continuous-training lifetime of the weight cells per
/// endurance class (in-situ training's wear-out constraint).
pub fn endurance() -> Table {
    let mut t = Table::new(["network", "endurance class", "continuous-training lifetime"]);
    for net in [models::lenet_spec(), models::vgg_a_spec()] {
        let r = EnduranceReport::analyze(&net, &AcceleratorConfig::default(), 32);
        for class in [
            EnduranceClass::Conservative,
            EnduranceClass::Typical,
            EnduranceClass::Optimistic,
        ] {
            let s = r.lifetime_s(class);
            let human = if s < 3600.0 {
                format!("{:.1} min", s / 60.0)
            } else if s < 48.0 * 3600.0 {
                format!("{:.1} h", s / 3600.0)
            } else {
                format!("{:.1} days", s / 86400.0)
            };
            t.row([net.name.clone(), class.name().to_string(), human]);
        }
    }
    t
}

/// Readout-scheme ablation: spike I&F vs. shared SAR ADCs per array —
/// the §III-A.3 claim that spike coding "further reduce\[s\] the area and
/// energy overhead" of conventional readout.
pub fn readout_schemes() -> Table {
    use reram_crossbar::{ReadoutKind, ReadoutModel};
    let cfg = CrossbarConfig::default();
    let model = ReadoutModel::default();
    let mut t = Table::new(["readout", "periphery area", "energy/MVM", "frame stretch"]);
    let schemes = [
        ("spike I&F / bitline", ReadoutKind::SpikeIf),
        (
            "8b ADC, share 128",
            ReadoutKind::Adc {
                bits: 8,
                share: 128,
            },
        ),
        ("8b ADC, share 16", ReadoutKind::Adc { bits: 8, share: 16 }),
        ("8b ADC / bitline", ReadoutKind::Adc { bits: 8, share: 1 }),
        (
            "10b ADC, share 128",
            ReadoutKind::Adc {
                bits: 10,
                share: 128,
            },
        ),
    ];
    for (name, kind) in schemes {
        let c = model.mvm_cost(kind, &cfg);
        t.row([
            name.to_string(),
            format!("{:.0} um2", c.area_um2),
            format!("{:.1} nJ", c.energy_pj / 1e3),
            format!("{:.0} ns", c.frame_latency_ns),
        ]);
    }
    t
}

/// Training-energy breakdown by component (where a training joule goes).
pub fn energy_breakdown() -> Table {
    use reram_core::timing::NetworkTiming;
    let mut t = Table::new([
        "network",
        "forward",
        "backward",
        "buffer",
        "weight update",
        "total (512 in)",
    ]);
    for net in [
        models::lenet_spec(),
        models::alexnet_spec(),
        models::vgg_a_spec(),
    ] {
        let timing = NetworkTiming::analyze(&net, &AcceleratorConfig::default());
        let b = timing.training_energy_breakdown(512, 16);
        let pct = |x: f64| format!("{:.1}%", 100.0 * x / b.total_j());
        t.row([
            net.name.clone(),
            pct(b.forward_j),
            pct(b.backward_j),
            pct(b.buffer_j),
            pct(b.update_j),
            crate::table::joules(b.total_j()),
        ]);
    }
    t
}

/// Chip-plan analysis: banks, memory residency and peak power per network.
pub fn chip_plan() -> Table {
    let mut t = Table::new([
        "network",
        "compute arrays",
        "banks",
        "resident acts",
        "mem util",
        "peak power",
    ]);
    for net in [
        models::lenet_spec(),
        models::mnist_deep_spec(),
        models::alexnet_spec(),
        models::vgg_a_spec(),
    ] {
        let p = ChipPlan::plan(
            &net,
            &AcceleratorConfig::default(),
            BankShape::default(),
            32,
        )
        // lint:allow(panic) zoo networks plan under the default config
        .expect("zoo network plans under default config");
        t.row([
            net.name.clone(),
            p.compute_arrays.to_string(),
            p.total_banks().to_string(),
            format!("{:.2} MB", p.resident_activation_bytes as f64 / 1e6),
            format!("{:.1}%", 100.0 * p.memory_utilization()),
            format!("{:.1} W", p.peak_power_w),
        ]);
    }
    t
}

/// Mean relative MVM error for a noise/fault configuration (shared by the
/// device ablations below).
fn mvm_rel_error(cfg: &CrossbarConfig) -> f64 {
    let w = Matrix::from_fn(Shape2::new(96, 96), |r, c| {
        (((r * 7 + c * 5) % 31) as f32 - 15.0) / 15.0
    });
    let x: Vec<f32> = (0..96).map(|i| ((i % 17) as f32 - 8.0) / 8.0).collect();
    let exact = w.matvec(&x);
    let mut tiled = TiledMatrix::program(&w, cfg);
    let got = tiled.matvec(&x);
    let err = got
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs() as f64)
        .sum::<f64>()
        / exact.len() as f64;
    let ref_mean = exact.iter().map(|v| v.abs() as f64).sum::<f64>() / exact.len() as f64;
    err / ref_mean
}

/// Device-variation ablation: MVM error vs. programming/read noise sigma.
pub fn device_noise() -> Table {
    let mut t = Table::new(["write sigma", "read sigma", "mean rel err"]);
    for &(ws, rs) in &[
        (0.0, 0.0),
        (0.01, 0.0),
        (0.0, 0.01),
        (0.02, 0.02),
        (0.05, 0.05),
        (0.1, 0.1),
    ] {
        let cfg = CrossbarConfig::default().with_noise(ws, rs, 99);
        t.row([
            format!("{ws:.2}"),
            format!("{rs:.2}"),
            format!("{:.3}%", 100.0 * mvm_rel_error(&cfg)),
        ]);
    }
    t
}

/// MVM error at a given symmetric noise level (for tests/benches).
pub fn device_noise_error(sigma: f64) -> f64 {
    mvm_rel_error(&CrossbarConfig::default().with_noise(sigma, sigma, 99))
}

/// Stuck-at-fault ablation: MVM error vs. faulty-cell fraction.
pub fn stuck_faults() -> Table {
    let mut t = Table::new(["stuck-off", "stuck-on", "mean rel err"]);
    for &(off, on) in &[
        (0.0, 0.0),
        (0.001, 0.001),
        (0.005, 0.005),
        (0.01, 0.01),
        (0.05, 0.05),
    ] {
        let cfg = CrossbarConfig::default().with_faults(off, on, 101);
        t.row([
            format!("{:.1}%", off * 100.0),
            format!("{:.1}%", on * 100.0),
            format!("{:.3}%", 100.0 * mvm_rel_error(&cfg)),
        ]);
    }
    t
}

/// MVM error at a given symmetric stuck-at rate (for tests/benches).
pub fn stuck_fault_error(rate: f64) -> f64 {
    mvm_rel_error(&CrossbarConfig::default().with_faults(rate, rate, 101))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_error_decreases_with_bits() {
        let coarse = spike_precision_error(4);
        let fine = spike_precision_error(12);
        assert!(fine < coarse, "{fine} !< {coarse}");
        assert!(spike_precision_error(16) < 0.01);
    }

    #[test]
    fn batch_speedup_monotone() {
        let t = batch_size();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn bigger_budget_never_slower() {
        let net = models::vgg_a_spec();
        let time = |budget| {
            let cfg = AcceleratorConfig::default()
                .with_replication(ReplicationPolicy::ArrayBudget(budget));
            PipeLayerAccelerator::new(cfg)
                .train_cost(&net, 32, 512)
                .time_s
        };
        assert!(time(524_288) <= time(65_536));
        assert!(time(65_536) <= time(16_384));
    }

    #[test]
    fn tables_render() {
        assert!(!spike_precision().is_empty());
        assert!(!array_size().is_empty());
        assert!(!replication_budget().is_empty());
        assert!(!device_noise().is_empty());
        assert!(!stuck_faults().is_empty());
        assert_eq!(endurance().len(), 6);
        assert_eq!(chip_plan().len(), 4);
        assert_eq!(energy_breakdown().len(), 3);
        assert_eq!(readout_schemes().len(), 5);
    }

    #[test]
    fn noise_error_grows_with_sigma() {
        assert!(device_noise_error(0.0) < 1e-3);
        assert!(device_noise_error(0.1) > device_noise_error(0.01));
    }

    #[test]
    fn fault_error_grows_with_rate() {
        assert!(stuck_fault_error(0.0) < 1e-3);
        assert!(stuck_fault_error(0.05) > stuck_fault_error(0.005));
    }
}
