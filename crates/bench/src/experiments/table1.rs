//! E6/E7 — Table I: PipeLayer and ReGAN vs. the GTX 1080.
//!
//! The paper reports average 42.45× speedup / 7.17× energy saving for
//! PipeLayer (MNIST + ImageNet benchmarks) and 240× / 94× for ReGAN (DCGAN
//! on MNIST, cifar-10, celebA, LSUN). We reproduce the comparison with our
//! calibrated component models; the reproduction target is the *shape*
//! (see EXPERIMENTS.md): both accelerators win by 1–2 orders of magnitude,
//! speedup exceeds energy saving, and ReGAN's benefit exceeds PipeLayer's.

use crate::Table;
use reram_core::{AcceleratorConfig, PipeLayerAccelerator, ReGanAccelerator, ReganOpt};
use reram_gpu::GpuModel;
use reram_nn::{models, NetworkSpec};

/// PipeLayer benchmark networks (MNIST class + ImageNet class).
pub fn pipelayer_networks() -> Vec<NetworkSpec> {
    vec![
        models::lenet_spec(),
        models::mnist_deep_spec(),
        models::alexnet_spec(),
        models::googlenet_spec(),
        models::vgg_a_spec(),
    ]
}

/// One comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Workload name.
    pub workload: String,
    /// Accelerator time, s.
    pub accel_time_s: f64,
    /// GPU time, s.
    pub gpu_time_s: f64,
    /// Speedup over the GPU.
    pub speedup: f64,
    /// Energy saving over the GPU.
    pub energy_saving: f64,
}

/// PipeLayer training comparison on one network.
pub fn pipelayer_row(net: &NetworkSpec, batch: usize, n: u64) -> ComparisonRow {
    let accel = PipeLayerAccelerator::new(AcceleratorConfig::default());
    let r = accel.train_cost(net, batch, n);
    let gpu = GpuModel::gtx1080()
        .training_cost(net, batch)
        .times(n as f64 / batch as f64);
    ComparisonRow {
        workload: net.name.clone(),
        accel_time_s: r.time_s,
        gpu_time_s: gpu.time_s,
        speedup: r.speedup_vs(&gpu),
        energy_saving: r.energy_saving_vs(&gpu),
    }
}

/// ReGAN training comparison on one dataset shape.
pub fn regan_row(
    name: &str,
    channels: usize,
    hw: usize,
    batch: usize,
    iters: u64,
) -> ComparisonRow {
    let g = models::dcgan_generator_spec(100, channels, hw);
    let d = models::dcgan_discriminator_spec(channels, hw);
    let accel = ReGanAccelerator::new(AcceleratorConfig::default(), ReganOpt::PipelineSpCs);
    let r = accel.train_cost(&g, &d, batch, iters);
    let gpu = GpuModel::gtx1080()
        .gan_training_cost(&g, &d, batch)
        .times(iters as f64);
    ComparisonRow {
        workload: format!("DCGAN/{name}"),
        accel_time_s: r.time_s,
        gpu_time_s: gpu.time_s,
        speedup: r.speedup_vs(&gpu),
        energy_saving: r.energy_saving_vs(&gpu),
    }
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// All PipeLayer rows (batch 32, 512 training inputs).
pub fn pipelayer_rows() -> Vec<ComparisonRow> {
    pipelayer_networks()
        .iter()
        .map(|net| pipelayer_row(net, 32, 512))
        .collect()
}

/// All ReGAN rows (batch 64, 50 iterations).
pub fn regan_rows() -> Vec<ComparisonRow> {
    super::fig9::DATASETS
        .iter()
        .map(|&(name, c, hw)| regan_row(name, c, hw, 64, 50))
        .collect()
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new([
        "accelerator",
        "workload",
        "accel time",
        "GPU time",
        "speedup",
        "energy saving",
    ]);
    let pl = pipelayer_rows();
    for r in &pl {
        t.row([
            "PipeLayer".to_string(),
            r.workload.clone(),
            crate::table::seconds(r.accel_time_s),
            crate::table::seconds(r.gpu_time_s),
            crate::table::ratio(r.speedup),
            crate::table::ratio(r.energy_saving),
        ]);
    }
    t.row([
        "PipeLayer".to_string(),
        "GEOMEAN (paper: 42.45x / 7.17x)".to_string(),
        String::new(),
        String::new(),
        crate::table::ratio(geomean(&pl.iter().map(|r| r.speedup).collect::<Vec<_>>())),
        crate::table::ratio(geomean(
            &pl.iter().map(|r| r.energy_saving).collect::<Vec<_>>(),
        )),
    ]);
    let rg = regan_rows();
    for r in &rg {
        t.row([
            "ReGAN".to_string(),
            r.workload.clone(),
            crate::table::seconds(r.accel_time_s),
            crate::table::seconds(r.gpu_time_s),
            crate::table::ratio(r.speedup),
            crate::table::ratio(r.energy_saving),
        ]);
    }
    t.row([
        "ReGAN".to_string(),
        "GEOMEAN (paper: 240x / 94x)".to_string(),
        String::new(),
        String::new(),
        crate::table::ratio(geomean(&rg.iter().map(|r| r.speedup).collect::<Vec<_>>())),
        crate::table::ratio(geomean(
            &rg.iter().map(|r| r.energy_saving).collect::<Vec<_>>(),
        )),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelayer_wins_on_every_network() {
        for r in pipelayer_rows() {
            assert!(r.speedup > 1.0, "{}: speedup {}", r.workload, r.speedup);
            assert!(
                r.energy_saving > 1.0,
                "{}: saving {}",
                r.workload,
                r.energy_saving
            );
        }
    }

    #[test]
    fn regan_wins_on_every_dataset() {
        for r in regan_rows() {
            assert!(r.speedup > 1.0, "{}: speedup {}", r.workload, r.speedup);
            assert!(
                r.energy_saving > 1.0,
                "{}: saving {}",
                r.workload,
                r.energy_saving
            );
        }
    }

    #[test]
    fn table1_shape_holds() {
        let pl = pipelayer_rows();
        let rg = regan_rows();
        let pl_speed = geomean(&pl.iter().map(|r| r.speedup).collect::<Vec<_>>());
        let pl_energy = geomean(&pl.iter().map(|r| r.energy_saving).collect::<Vec<_>>());
        let rg_speed = geomean(&rg.iter().map(|r| r.speedup).collect::<Vec<_>>());
        // Shape 1: order-of-magnitude PipeLayer wins.
        assert!(pl_speed > 10.0, "PipeLayer speedup {pl_speed}");
        // Shape 2: speedup exceeds energy saving (paper: 42.45 vs 7.17).
        assert!(pl_speed > pl_energy, "{pl_speed} vs {pl_energy}");
        // Shape 3: the GAN accelerator's win exceeds the CNN accelerator's
        // (paper: 240 vs 42.45).
        assert!(
            rg_speed > pl_speed,
            "ReGAN {rg_speed} vs PipeLayer {pl_speed}"
        );
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[7.0]) - 7.0).abs() < 1e-9);
    }
}
