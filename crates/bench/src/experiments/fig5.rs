//! E2 — Fig. 5: the inter-layer training pipeline.
//!
//! Sweeps network depth `L` and batch size `B`, running the cycle-stepped
//! simulator and checking it against the paper's closed forms
//! `(N/B)(2L + B + 1)` (pipelined) and `(2L + 1)N + N/B` (sequential).

use crate::Table;
use reram_core::PipelineModel;

/// Swept `(L, B)` configurations.
pub const CONFIGS: [(usize, usize); 6] = [(3, 4), (5, 16), (5, 64), (8, 32), (11, 32), (16, 128)];

/// One measured row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineRow {
    /// Weighted layers.
    pub layers: usize,
    /// Batch size.
    pub batch: usize,
    /// Inputs processed.
    pub inputs: u64,
    /// Simulated pipelined cycles.
    pub simulated: u64,
    /// Closed-form pipelined cycles.
    pub formula: u64,
    /// Closed-form sequential cycles.
    pub sequential: u64,
}

/// Simulates one configuration over `batches` batches.
pub fn measure(layers: usize, batch: usize, batches: u64) -> PipelineRow {
    let p = PipelineModel::new(layers, batch);
    let n = batches * batch as u64;
    let trace = p.simulate_training(n);
    PipelineRow {
        layers,
        batch,
        inputs: n,
        simulated: trace.total_cycles,
        formula: p.training_cycles(n),
        sequential: p.sequential_training_cycles(n),
    }
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new([
        "L",
        "B",
        "inputs",
        "simulated",
        "formula (N/B)(2L+B+1)",
        "sequential (2L+1)N+N/B",
        "speedup",
    ]);
    for (l, b) in CONFIGS {
        let r = measure(l, b, 8);
        t.row([
            r.layers.to_string(),
            r.batch.to_string(),
            r.inputs.to_string(),
            r.simulated.to_string(),
            r.formula.to_string(),
            r.sequential.to_string(),
            crate::table::ratio(r.sequential as f64 / r.simulated as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_equals_formula_everywhere() {
        for (l, b) in CONFIGS {
            let r = measure(l, b, 8);
            assert_eq!(r.simulated, r.formula, "L={l} B={b}");
        }
    }

    #[test]
    fn pipeline_always_at_least_as_fast() {
        for (l, b) in CONFIGS {
            let r = measure(l, b, 4);
            assert!(r.sequential >= r.simulated);
        }
    }

    #[test]
    fn run_covers_sweep() {
        assert_eq!(run().len(), CONFIGS.len());
    }
}
