//! CLI entry point: `cargo run -p reram-lint [-- --root <dir>]`.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use reram_lint::{check_workspace, plans, rules, Workspace};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut plans_mode = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--plans" => plans_mode = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("reram-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (name, description, _) in rules::RULES {
                    println!("{name}: {description}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "reram-lint: first-party architectural lint\n\n\
                     usage: cargo run -p reram-lint [-- --root <dir> | --list-rules | --plans]\n\n\
                     Checks the workspace's simulator invariants (layering, unit\n\
                     discipline, telemetry coverage, panic policy, determinism,\n\
                     dead events, must_use) and exits non-zero on any violation.\n\
                     Waive a justified exception with\n\
                     `// lint:allow(<rule>) <reason>` on or above the line.\n\n\
                     --plans verifies lowered IR instead of source: every model-zoo\n\
                     network is lowered under a matrix of accelerator configs and\n\
                     statically checked (conservation laws, feasibility, metamorphic\n\
                     monotonicity); violations print as plan/<config>/<network>\n\
                     diagnostics under the rule name `plan`."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("reram-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if plans_mode {
        // Plan verification runs over lowered IR, not the source tree — no
        // workspace loading needed.
        let check = plans::check_plans();
        for d in &check.diags {
            println!("{d}");
        }
        return if check.diags.is_empty() {
            println!(
                "reram-lint --plans: verified {} plans across {} configs — clean",
                check.plans, check.configs
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("reram-lint --plans: {} violation(s)", check.diags.len());
            ExitCode::FAILURE
        };
    }

    let Some(root) = root.or_else(discover_root) else {
        eprintln!(
            "reram-lint: no workspace root found (run from inside the \
             workspace or pass --root <dir>)"
        );
        return ExitCode::from(2);
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("reram-lint: loading workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let diags = check_workspace(&ws);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!(
            "reram-lint: {} crates, {} files, {} rules — clean",
            ws.crates.len(),
            ws.file_count(),
            rules::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("reram-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

/// Ascends from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn discover_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
