//! Loading the first-party workspace into a lintable model.
//!
//! Only first-party code is modelled: the root `reram-suite` package and
//! every crate under `crates/`. The `vendor/` stand-ins mirror upstream
//! crates' idioms, not this repository's architecture, and are skipped for
//! the same reason `scripts/check.sh` skips them.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::scanner::SourceFile;

/// One first-party crate: its manifest and its `src/` tree.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name, e.g. `reram-core`.
    pub name: String,
    /// Workspace-relative manifest path.
    pub manifest_path: String,
    /// Raw manifest text.
    pub manifest: String,
    /// Parsed source files under the crate's `src/`.
    pub files: Vec<SourceFile>,
}

impl CrateInfo {
    /// The crate's library root (`src/lib.rs`), if it has one.
    pub fn lib_root(&self) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path.ends_with("src/lib.rs"))
    }

    /// First-party dependencies declared in the manifest:
    /// `(name, 1-based manifest line, is_dev_or_build)`.
    pub fn first_party_deps(&self) -> Vec<(String, usize, bool)> {
        let mut deps = Vec::new();
        let mut section = String::new();
        for (idx, line) in self.manifest.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                section = trimmed.to_owned();
                continue;
            }
            let is_dep_section = matches!(
                section.as_str(),
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
            );
            if !is_dep_section {
                continue;
            }
            let Some(name) = trimmed
                .split(['=', '.', ' ', '\t'])
                .next()
                .filter(|n| n.starts_with("reram-"))
            else {
                continue;
            };
            let dev = section != "[dependencies]";
            deps.push((name.to_owned(), idx + 1, dev));
        }
        deps
    }
}

/// Fixture-crate input for [`Workspace::from_sources`]:
/// `(crate_name, manifest_toml, [(workspace-relative path, source)])`.
pub type FixtureCrate<'a> = (&'a str, &'a str, &'a [(&'a str, &'a str)]);

/// The whole first-party workspace.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// All first-party crates, in directory order.
    pub crates: Vec<CrateInfo>,
}

/// Errors loading a workspace from disk.
#[derive(Debug)]
pub struct LoadError(String);

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LoadError {}

impl Workspace {
    /// Loads the workspace rooted at `root` (the directory holding the
    /// workspace `Cargo.toml` with the `crates/` and `src/` trees).
    #[must_use = "the loaded workspace is the result"]
    pub fn load(root: &Path) -> Result<Workspace, LoadError> {
        let mut crates = Vec::new();
        // Root package (reram-suite): manifest at the workspace root.
        crates.push(load_crate(root, root, "Cargo.toml")?);

        let crates_dir = root.join("crates");
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| LoadError(format!("reading {}: {e}", crates_dir.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        entries.sort();
        for dir in entries {
            crates.push(load_crate(root, &dir, "Cargo.toml")?);
        }
        Ok(Workspace { crates })
    }

    /// Builds an in-memory workspace for fixture tests:
    /// `(crate_name, manifest_toml, [(workspace-relative path, source)])`.
    pub fn from_sources(sources: &[FixtureCrate<'_>]) -> Workspace {
        let crates = sources
            .iter()
            .map(|(name, manifest, files)| CrateInfo {
                name: (*name).to_owned(),
                manifest_path: format!("crates/{name}/Cargo.toml"),
                manifest: (*manifest).to_owned(),
                files: files
                    .iter()
                    .map(|(path, src)| SourceFile::parse(*path, *src))
                    .collect(),
            })
            .collect();
        Workspace { crates }
    }

    /// Looks up a crate by package name.
    pub fn get(&self, name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.name == name)
    }

    /// Total parsed source files.
    pub fn file_count(&self) -> usize {
        self.crates.iter().map(|c| c.files.len()).sum()
    }
}

fn load_crate(root: &Path, dir: &Path, manifest_name: &str) -> Result<CrateInfo, LoadError> {
    let manifest_path = dir.join(manifest_name);
    let manifest = fs::read_to_string(&manifest_path)
        .map_err(|e| LoadError(format!("reading {}: {e}", manifest_path.display())))?;
    let name = package_name(&manifest).ok_or_else(|| {
        LoadError(format!(
            "{}: no [package] name found",
            manifest_path.display()
        ))
    })?;
    let src_dir = dir.join("src");
    let mut files = Vec::new();
    if src_dir.is_dir() {
        let mut paths = Vec::new();
        collect_rs_files(&src_dir, &mut paths)?;
        paths.sort();
        for path in paths {
            let raw = fs::read_to_string(&path)
                .map_err(|e| LoadError(format!("reading {}: {e}", path.display())))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::parse(rel, raw));
        }
    }
    let rel_manifest = manifest_path
        .strip_prefix(root)
        .unwrap_or(&manifest_path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(CrateInfo {
        name,
        manifest_path: rel_manifest,
        manifest,
        files,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LoadError> {
    let entries =
        fs::read_dir(dir).map_err(|e| LoadError(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LoadError(format!("reading {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts the `[package]` table's `name` from a manifest.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_package = trimmed == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = trimmed.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_owned());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_dep_extraction() {
        let c = CrateInfo {
            name: "reram-x".to_owned(),
            manifest_path: "crates/x/Cargo.toml".to_owned(),
            manifest: "[package]\nname = \"reram-x\"\n[dependencies]\nserde.workspace = true\nreram-tensor.workspace = true\nreram-nn = { path = \"../nn\" }\n[dev-dependencies]\nreram-core.workspace = true\n"
                .to_owned(),
            files: Vec::new(),
        };
        let deps = c.first_party_deps();
        assert_eq!(
            deps,
            vec![
                ("reram-tensor".to_owned(), 5, false),
                ("reram-nn".to_owned(), 6, false),
                ("reram-core".to_owned(), 8, true),
            ]
        );
    }

    #[test]
    fn package_name_parses() {
        assert_eq!(
            package_name("[workspace]\nmembers = []\n[package]\nname = \"reram-suite\"\n"),
            Some("reram-suite".to_owned())
        );
    }
}
