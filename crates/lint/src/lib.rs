//! `reram-lint` — first-party architectural lint for the ReRAM accelerator
//! workspace.
//!
//! The paper-reproduction's credibility rests on closed-form hardware
//! accounting: if a constant loses its unit, an event loses its
//! instrumentation, or a simulation path reads the wall clock, the numbers
//! in the regenerated tables silently stop meaning what they claim. This
//! crate is a workspace-aware static-analysis pass — a small token-level
//! Rust scanner, no external parser dependencies — that fails the build
//! when the codebase violates its own architecture:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `layering` | crate dependencies point down the stack, no back-edges |
//! | `units` | cost/timing/report quantities carry unit suffixes; no cross-dimension `+`/`-` |
//! | `telemetry-coverage` | every `telemetry::Event` variant is emitted outside the telemetry crate |
//! | `panic` | no `unwrap`/`expect`/`panic!`/`todo!` in library code without an annotated reason |
//! | `determinism` | no `Instant`/`SystemTime`/`HashMap` in simulation paths; crate roots forbid `unsafe_code` |
//! | `dead-event` | every `telemetry::Event` variant is *emitted* via `record(...)` outside the telemetry crate |
//! | `must_use` | public `fn`s returning `Result` in library crates carry `#[must_use]` |
//!
//! A justified exception is waived in place with
//! `// lint:allow(<rule>) <reason>` on (or directly above) the offending
//! line; the reason is mandatory and malformed annotations are themselves
//! diagnostics. Run via `cargo run -p reram-lint` (wired into
//! `scripts/check.sh`); the binary exits non-zero on any violation and
//! prints `file:line: [rule] message` diagnostics.
//!
//! Beyond the source rules, `cargo run -p reram-lint -- --plans` verifies
//! *lowered IR* instead of text: every model-zoo network is lowered under a
//! matrix of accelerator configs and statically checked by
//! [`reram_core::verify`] (conservation laws, feasibility, metamorphic
//! monotonicity), with violations reported in the same diagnostic format
//! under the rule name `plan` (see [`plans`]).

#![forbid(unsafe_code)]

pub mod plans;
pub mod rules;
pub mod scanner;
pub mod workspace;

use std::fmt;

pub use scanner::SourceFile;
pub use workspace::{CrateInfo, Workspace};

/// One lint finding, pointing at a file/line with the violated rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (`layering`, `units`, ...).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(path: &str, line: usize, rule: &'static str, message: String) -> Self {
        Self {
            path: path.to_owned(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Runs every rule plus annotation-hygiene checks; diagnostics are sorted
/// by path and line.
pub fn check_workspace(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (_, _, check) in rules::RULES {
        diags.extend(check(ws));
    }
    // Malformed allow-annotations are violations in their own right — a
    // silently ignored waiver would un-waive itself confusingly later.
    for krate in &ws.crates {
        for file in &krate.files {
            for (line, problem) in &file.bad_allows {
                diags.push(Diagnostic::new(
                    &file.path,
                    *line,
                    "allow-syntax",
                    problem.clone(),
                ));
            }
        }
    }
    diags.sort();
    diags.dedup();
    diags
}
