//! The rule set. Each rule module exposes `check(&Workspace) -> Vec<Diagnostic>`.

pub mod dead_events;
pub mod determinism;
pub mod layering;
pub mod must_use;
pub mod panics;
pub mod telemetry;
pub mod units;

use crate::workspace::Workspace;
use crate::Diagnostic;

/// Signature every rule's `check` entry point shares.
pub type RuleFn = fn(&Workspace) -> Vec<Diagnostic>;

/// `(rule name, one-line description, check fn)` for every rule.
pub const RULES: &[(&str, &str, RuleFn)] = &[
    (
        "layering",
        "crate dependencies must point down the stack (tensor/telemetry -> crossbar -> nn -> gpu -> core -> bench -> suite)",
        layering::check,
    ),
    (
        "units",
        "f64 quantities in crossbar::cost / core::timing / core::report carry unit suffixes; no cross-dimension +/-",
        units::check,
    ),
    (
        "telemetry-coverage",
        "every telemetry::Event variant is emitted somewhere outside the telemetry crate",
        telemetry::check,
    ),
    (
        "panic",
        "no unwrap/expect/panic!/todo!/unimplemented! in library code without lint:allow(panic)",
        panics::check,
    ),
    (
        "determinism",
        "no Instant/SystemTime/HashMap/HashSet in simulation paths; crate roots forbid unsafe_code",
        determinism::check,
    ),
    (
        "dead-event",
        "every telemetry::Event variant is emitted via a record(...) call outside the telemetry crate",
        dead_events::check,
    ),
    (
        "must_use",
        "public fns returning Result in library crates carry #[must_use] (or lint:allow(must_use))",
        must_use::check,
    ),
];
