//! Rule `units`: physical quantities in the cost/timing/report models must
//! name their unit.
//!
//! The closed-form hardware accounting lives in three modules —
//! `crossbar::cost`, `core::timing`, and `core::report`. Every `f64`/`f32`
//! struct field and constant there is a physical quantity, and its
//! identifier must carry a unit segment (`_pj`, `_ns`, `_cycles`, `_mw`,
//! `_bits`, ...); integer fields are counts and stay unit-free. On top of
//! that, adding or subtracting two unit-bearing identifiers of *different*
//! dimensions on one line (`energy_pj + latency_ns`) is flagged — the
//! classic silent unit bug this rule exists to stop. Multiplication and
//! division legitimately combine dimensions and are not checked.

use crate::scanner::{tokenize, SourceFile, Token};
use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "units";

/// `(crate, file suffix)` pairs the rule applies to.
pub const SCOPED_FILES: &[(&str, &str)] = &[
    ("reram-crossbar", "src/cost.rs"),
    ("reram-core", "src/timing.rs"),
    ("reram-core", "src/report.rs"),
];

/// Recognized unit segments and the physical dimension each names.
pub const UNITS: &[(&str, &str)] = &[
    ("pj", "energy"),
    ("nj", "energy"),
    ("uj", "energy"),
    ("mj", "energy"),
    ("j", "energy"),
    ("ns", "time"),
    ("us", "time"),
    ("ms", "time"),
    ("cycles", "cycles"),
    ("mw", "power"),
    ("w", "power"),
    ("kw", "power"),
    ("bits", "data"),
    ("bytes", "data"),
    ("um2", "area"),
    ("mm2", "area"),
    ("hz", "frequency"),
    ("mhz", "frequency"),
    ("ghz", "frequency"),
];

/// The dimension named by an identifier's unit segment, if any.
///
/// Segments are searched from the end so `energy_pj_per_byte` reads as
/// energy (its trailing segments qualify the denominator).
pub fn dimension_of(ident: &str) -> Option<&'static str> {
    let lower = ident.to_ascii_lowercase();
    for seg in lower.split('_').rev() {
        if let Some(&(_, dim)) = UNITS.iter().find(|(u, _)| *u == seg) {
            return Some(dim);
        }
    }
    None
}

fn in_scope(crate_name: &str, path: &str) -> bool {
    SCOPED_FILES
        .iter()
        .any(|(c, suffix)| *c == crate_name && path.ends_with(suffix))
}

/// Runs the unit-discipline rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for krate in &ws.crates {
        for file in &krate.files {
            if !in_scope(&krate.name, &file.path) {
                continue;
            }
            check_float_decls(file, &mut diags);
            check_mixed_arithmetic(file, &mut diags);
        }
    }
    diags
}

/// Flags `f64`/`f32` struct fields and `const`s without a unit segment.
fn check_float_decls(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let struct_lines = struct_body_lines(file);
    for (line_no, line) in file.code_lines() {
        let tokens = tokenize(line);
        for w in 0..tokens.len() {
            // `const NAME: f64` anywhere; `name: f64` inside a struct body.
            let is_float_ann = |i: usize| {
                tokens.get(i).is_some_and(|t| t.is_punct(':'))
                    && tokens
                        .get(i + 1)
                        .and_then(Token::ident)
                        .is_some_and(|t| t == "f64" || t == "f32")
            };
            let decl = if tokens[w].ident() == Some("const") {
                tokens
                    .get(w + 1)
                    .and_then(Token::ident)
                    .filter(|_| is_float_ann(w + 2))
            } else if struct_lines.get(line_no - 1).copied().unwrap_or(false) {
                // Field: `ident : f64` followed by `,` or end of line, with
                // the ident not preceded by `:` (type position).
                tokens[w]
                    .ident()
                    .filter(|_| is_float_ann(w + 1))
                    .filter(|_| {
                        tokens
                            .get(w + 3)
                            .is_none_or(|t| t.is_punct(',') || t.is_punct('}'))
                    })
                    .filter(|_| w == 0 || !tokens[w - 1].is_punct(':'))
            } else {
                None
            };
            let Some(name) = decl else { continue };
            if name == "pub" || dimension_of(name).is_some() {
                continue;
            }
            if file.allowed(line_no, RULE) {
                continue;
            }
            diags.push(Diagnostic::new(
                &file.path,
                line_no,
                RULE,
                format!(
                    "float quantity `{name}` has no unit suffix; name its unit \
                     (e.g. `{name}_pj`, `{name}_ns`) or annotate \
                     `// lint:allow(units) <reason>`"
                ),
            ));
        }
    }
}

/// Marks lines inside `struct { ... }` bodies (field-declaration scope).
fn struct_body_lines(file: &SourceFile) -> Vec<bool> {
    let mut flags = vec![false; file.masked_lines.len()];
    let flat: Vec<(usize, char)> = file
        .masked_lines
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| l.chars().map(move |c| (ln, c)).chain([(ln, '\n')]))
        .collect();
    let text: String = flat.iter().map(|&(_, c)| c).collect();
    let bytes = text.as_bytes();
    let mut search = 0;
    while let Some(pos) = text[search..].find("struct ") {
        let start = search + pos;
        // Must be the keyword, not part of an identifier.
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            search = start + 1;
            continue;
        }
        // Find the opening `{` (tuple structs end with `;` first).
        let mut j = start;
        let mut open = None;
        while j < flat.len() {
            match flat[j].1 {
                '{' => {
                    open = Some(j);
                    break;
                }
                ';' => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(open_idx) = open {
            let mut depth = 0usize;
            let mut k = open_idx;
            while k < flat.len() {
                match flat[k].1 {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end = k.min(flat.len() - 1);
            // Interior lines only: fields sit strictly between the braces.
            for flag in flags
                .iter_mut()
                .take(flat[end].0)
                .skip(flat[open_idx].0 + 1)
            {
                *flag = true;
            }
            search = end;
        } else {
            search = j.min(text.len());
        }
        search = search.max(start + 1);
        if search >= text.len() {
            break;
        }
    }
    flags
}

/// Flags `a_pj + b_ns`-style additions/subtractions of mixed dimensions.
fn check_mixed_arithmetic(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for (line_no, line) in file.code_lines() {
        let tokens = tokenize(line);
        for i in 0..tokens.len() {
            let (Token::Punct(op @ ('+' | '-')), true) = (tokens[i], true) else {
                continue;
            };
            // Binary position: something value-like on the left.
            let Some(prev) = (i > 0).then(|| tokens[i - 1]) else {
                continue;
            };
            let left = match prev {
                Token::Ident(id) => Some(id),
                _ => None,
            };
            let binary = matches!(prev, Token::Ident(_) | Token::Number(_))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if !binary {
                continue;
            }
            // Right operand: skip `=` (compound assignment), then walk the
            // `a.b.c` / `a::b` path and take its final identifier.
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct('=')) {
                j += 1;
            }
            let mut right = None;
            while let Some(tok) = tokens.get(j) {
                match tok {
                    Token::Ident(id) => {
                        right = Some(*id);
                        let path_continues = tokens.get(j + 1).is_some_and(|t| {
                            t.is_punct('.')
                                || (t.is_punct(':')
                                    && tokens.get(j + 2).is_some_and(|t2| t2.is_punct(':')))
                        });
                        if !path_continues {
                            break;
                        }
                        j += if tokens[j + 1].is_punct('.') { 2 } else { 3 };
                    }
                    _ => break,
                }
            }
            let (Some(l), Some(r)) = (left, right) else {
                continue;
            };
            let (Some(ld), Some(rd)) = (dimension_of(l), dimension_of(r)) else {
                continue;
            };
            if ld != rd && !file.allowed(line_no, RULE) {
                diags.push(Diagnostic::new(
                    &file.path,
                    line_no,
                    RULE,
                    format!(
                        "mixed units: `{l}` ({ld}) {op} `{r}` ({rd}) — convert to a \
                         common dimension first"
                    ),
                ));
            }
        }
    }
}
