//! Rule `determinism`: simulation and report paths must replay exactly.
//!
//! The evaluation artifacts are regenerated from closed forms and seeded
//! simulations; a wall-clock read or a hash-ordered iteration anywhere in
//! those paths makes two runs disagree for no physical reason. Banned in
//! first-party non-test code:
//!
//! - `Instant` / `SystemTime` (wall-clock reads),
//! - `HashMap` / `HashSet` (iteration order varies across runs/platforms —
//!   use `BTreeMap`/`BTreeSet` or index-keyed `Vec`s).
//!
//! The single sanctioned exception is the telemetry span timer
//! (`crates/telemetry/src/span.rs`): host wall-clock per stage is exactly
//! what it exists to report, and it never feeds simulated results. Other
//! justified uses need `// lint:allow(determinism) <reason>`.
//!
//! The rule also enforces `#![forbid(unsafe_code)]` in every first-party
//! crate root: determinism guarantees are only as strong as the memory
//! model they stand on.

use crate::scanner::tokenize;
use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "determinism";

/// Type identifiers banned from simulation/report code.
pub const BANNED_TYPES: &[(&str, &str)] = &[
    ("Instant", "wall-clock reads are not replayable"),
    ("SystemTime", "wall-clock reads are not replayable"),
    (
        "HashMap",
        "iteration order varies between runs; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order varies between runs; use BTreeSet",
    ),
];

/// The sanctioned wall-clock site: the telemetry stage-span timer.
pub const SANCTIONED_FILE: &str = "telemetry/src/span.rs";

/// Runs the determinism rule (including the `forbid(unsafe_code)` check)
/// over the workspace.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for krate in &ws.crates {
        // Crate-root hygiene: every lib crate forbids unsafe code.
        if let Some(lib) = krate.lib_root() {
            if !lib.raw.contains("#![forbid(unsafe_code)]") {
                diags.push(Diagnostic::new(
                    &lib.path,
                    1,
                    RULE,
                    format!(
                        "crate `{}` is missing `#![forbid(unsafe_code)]` in its \
                         crate root",
                        krate.name
                    ),
                ));
            }
        }

        for file in &krate.files {
            if file.path.ends_with(SANCTIONED_FILE) {
                continue;
            }
            for (line_no, line) in file.code_lines() {
                for token in tokenize(line) {
                    let Some(ident) = token.ident() else { continue };
                    let Some(&(_, why)) = BANNED_TYPES.iter().find(|(name, _)| *name == ident)
                    else {
                        continue;
                    };
                    if file.allowed(line_no, RULE) {
                        continue;
                    }
                    diags.push(Diagnostic::new(
                        &file.path,
                        line_no,
                        RULE,
                        format!(
                            "`{ident}` in simulation/report code: {why} \
                             (annotate `// lint:allow(determinism) <reason>` if \
                             this cannot feed simulated results)"
                        ),
                    ));
                }
            }
        }
    }
    diags
}
