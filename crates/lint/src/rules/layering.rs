//! Rule `layering`: crate dependencies must point down the stack.
//!
//! The sanctioned dependency direction is
//! `{tensor, telemetry} → {crossbar, datasets} → nn → gpu → core →
//! serve → bench → suite`: a crate may depend only on first-party crates in a
//! strictly lower layer, so no back-edges (and no same-layer edges) can
//! form. `reram-lint` itself is a tool at the top of the stack: it may
//! depend downward like any crate (the `--plans` mode lowers the model zoo
//! through `reram-core`), but nothing may depend on it — the stack must
//! keep building when the tool is deleted.
//!
//! Both declaration sites are checked: `Cargo.toml` dependency tables and
//! `reram_*` paths in non-test source (a `use` back-edge would not compile
//! without the manifest edge, but checking both catches a manifest edit
//! that sneaks an edge in "temporarily").
//!
//! Inside `reram-core` — the only crate with enough internal structure to
//! grow cycles of its own — the rule additionally enforces a module-level
//! allowed-edges table: every `crate::<module>` reference in non-test code
//! must be a sanctioned edge in [`CORE_MODULE_EDGES`] (self-edges and the
//! crate root `lib.rs` are exempt). New intra-core dependencies are
//! therefore a reviewed one-line table change, not an accident.

use crate::workspace::{CrateInfo, Workspace};
use crate::Diagnostic;

/// Layer rank of every first-party crate. Lower = closer to the bottom of
/// the stack; dependencies must strictly decrease rank.
pub const LAYERS: &[(&str, u32)] = &[
    ("reram-tensor", 0),
    ("reram-telemetry", 0),
    ("reram-crossbar", 1),
    ("reram-datasets", 1),
    ("reram-nn", 2),
    ("reram-gpu", 3),
    ("reram-core", 4),
    ("reram-serve", 5),
    ("reram-bench", 6),
    ("reram-suite", 7),
    ("reram-lint", 7),
];

/// Crates nothing in the stack may depend on: the tools must stay
/// deletable without breaking a single build.
pub const TOOL_CRATES: &[&str] = &["reram-lint"];

/// The crate whose internal module graph is table-enforced.
pub const CORE_CRATE: &str = "reram-core";

/// Top-level modules of `reram-core`. A `crate::<ident>` reference is only
/// treated as a module edge when `<ident>` appears here, so re-exported
/// types addressed through the crate root stay exempt.
pub const CORE_MODULES: &[&str] = &[
    "accelerator",
    "chip",
    "compiler",
    "config",
    "endurance",
    "isa",
    "mapping",
    "pipeline",
    "plan",
    "regan",
    "report",
    "subarray",
    "timing",
    "verify",
];

/// Sanctioned `(from, to)` module edges inside `reram-core`. The plan IR
/// is the hub: `plan` lowers specs onto `mapping` and hands stage vectors
/// to `pipeline`/`regan`, while `timing`, `report` and `accelerator`
/// consume the lowered plan instead of re-walking the spec.
pub const CORE_MODULE_EDGES: &[(&str, &str)] = &[
    ("accelerator", "pipeline"),
    ("accelerator", "plan"),
    ("accelerator", "regan"),
    ("accelerator", "timing"),
    ("chip", "mapping"),
    ("chip", "timing"),
    ("compiler", "isa"),
    ("compiler", "subarray"),
    ("config", "mapping"),
    ("endurance", "timing"),
    ("plan", "mapping"),
    ("plan", "pipeline"),
    ("plan", "regan"),
    // lower() re-verifies its own output in debug builds; the verifier in
    // turn recomputes mapping/plan closed forms. A sanctioned 2-cycle.
    ("plan", "verify"),
    ("verify", "mapping"),
    ("verify", "plan"),
    ("regan", "pipeline"),
    ("report", "mapping"),
    ("report", "plan"),
    ("report", "timing"),
    ("subarray", "isa"),
    ("timing", "mapping"),
    ("timing", "plan"),
];

const RULE: &str = "layering";

fn rank(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, r)| r)
}

fn is_tool(name: &str) -> bool {
    TOOL_CRATES.contains(&name)
}

/// Top-level module a core source file belongs to, derived from its path:
/// `crates/core/src/<mod>.rs` and `crates/core/src/<mod>/...` both map to
/// `<mod>`. The crate root and binaries are exempt (they may wire any
/// modules together).
fn core_module_of(path: &str) -> Option<&str> {
    let rest = path.split("/src/").nth(1)?;
    if rest == "lib.rs" || rest.starts_with("bin/") {
        return None;
    }
    let first = rest.split('/').next()?;
    Some(first.strip_suffix(".rs").unwrap_or(first))
}

fn core_edge_allowed(from: &str, to: &str) -> bool {
    CORE_MODULE_EDGES.iter().any(|&(f, t)| f == from && t == to)
}

/// Enforces the intra-core module table: every `crate::<module>` path in
/// non-test code must be a sanctioned edge.
fn check_core_modules(krate: &CrateInfo) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &krate.files {
        let Some(own) = core_module_of(&file.path) else {
            continue;
        };
        for (line_no, line) in file.code_lines() {
            let tokens = crate::scanner::tokenize(line);
            for w in tokens.windows(4) {
                if w[0].ident() != Some("crate") || !w[1].is_punct(':') || !w[2].is_punct(':') {
                    continue;
                }
                let Some(target) = w[3].ident() else { continue };
                if target == own || !CORE_MODULES.contains(&target) {
                    continue;
                }
                if file.allowed(line_no, RULE) {
                    continue;
                }
                if !core_edge_allowed(own, target) {
                    diags.push(Diagnostic::new(
                        &file.path,
                        line_no,
                        RULE,
                        format!(
                            "intra-core edge `{own} -> {target}` is not sanctioned; \
                             add it to rules::layering::CORE_MODULE_EDGES if the \
                             direction is intended"
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Runs the layering rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for krate in &ws.crates {
        let Some(own_rank) = rank(&krate.name) else {
            diags.push(Diagnostic::new(
                &krate.manifest_path,
                1,
                RULE,
                format!(
                    "crate `{}` is not in the layering table; add it to \
                     rules::layering::LAYERS with its layer rank",
                    krate.name
                ),
            ));
            continue;
        };

        // Manifest edges.
        for (dep, line, _dev) in krate.first_party_deps() {
            if is_tool(&dep) {
                diags.push(Diagnostic::new(
                    &krate.manifest_path,
                    line,
                    RULE,
                    format!("`{dep}` is a tool crate; nothing may depend on it"),
                ));
                continue;
            }
            match rank(&dep) {
                Some(dep_rank) if dep_rank >= own_rank => {
                    diags.push(Diagnostic::new(
                        &krate.manifest_path,
                        line,
                        RULE,
                        format!(
                            "back-edge: `{}` (layer {own_rank}) may not depend on \
                             `{dep}` (layer {dep_rank}); dependencies must point \
                             down the stack",
                            krate.name
                        ),
                    ));
                }
                Some(_) => {}
                None => diags.push(Diagnostic::new(
                    &krate.manifest_path,
                    line,
                    RULE,
                    format!("dependency `{dep}` is not in the layering table"),
                )),
            }
        }

        // Intra-core module edges (`crate::<module>` in non-test code).
        if krate.name == CORE_CRATE {
            diags.extend(check_core_modules(krate));
        }

        // Source-path edges (`reram_foo::...` in non-test code).
        let own_ident = krate.name.replace('-', "_");
        for file in &krate.files {
            for (line_no, line) in file.code_lines() {
                for token in crate::scanner::tokenize(line) {
                    let Some(ident) = token.ident() else { continue };
                    if !ident.starts_with("reram_") || ident == own_ident {
                        continue;
                    }
                    if file.allowed(line_no, RULE) {
                        continue;
                    }
                    let dep = ident.replace('_', "-");
                    match rank(&dep) {
                        Some(dep_rank) if dep_rank >= own_rank || is_tool(&dep) => {
                            diags.push(Diagnostic::new(
                                &file.path,
                                line_no,
                                RULE,
                                format!(
                                    "back-edge: `{}` (layer {own_rank}) references \
                                     `{ident}` (layer {dep_rank})",
                                    krate.name
                                ),
                            ));
                        }
                        Some(_) => {}
                        None => diags.push(Diagnostic::new(
                            &file.path,
                            line_no,
                            RULE,
                            format!("path `{ident}` is not a known first-party crate"),
                        )),
                    }
                }
            }
        }
    }
    diags
}
