//! Rule `layering`: crate dependencies must point down the stack.
//!
//! The sanctioned dependency direction is
//! `{tensor, telemetry} → {crossbar, datasets} → nn → gpu → core →
//! bench → suite`: a crate may depend only on first-party crates in a
//! strictly lower layer, so no back-edges (and no same-layer edges) can
//! form. `reram-lint` itself is a tool outside the stack: it takes no
//! first-party dependencies and nothing may depend on it.
//!
//! Both declaration sites are checked: `Cargo.toml` dependency tables and
//! `reram_*` paths in non-test source (a `use` back-edge would not compile
//! without the manifest edge, but checking both catches a manifest edit
//! that sneaks an edge in "temporarily").

use crate::workspace::Workspace;
use crate::Diagnostic;

/// Layer rank of every first-party crate. Lower = closer to the bottom of
/// the stack; dependencies must strictly decrease rank.
pub const LAYERS: &[(&str, u32)] = &[
    ("reram-tensor", 0),
    ("reram-telemetry", 0),
    ("reram-crossbar", 1),
    ("reram-datasets", 1),
    ("reram-nn", 2),
    ("reram-gpu", 3),
    ("reram-core", 4),
    ("reram-bench", 5),
    ("reram-suite", 6),
    ("reram-lint", 0),
];

/// Crates outside the dependency stack: no first-party edges in or out.
pub const TOOL_CRATES: &[&str] = &["reram-lint"];

const RULE: &str = "layering";

fn rank(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, r)| r)
}

fn is_tool(name: &str) -> bool {
    TOOL_CRATES.contains(&name)
}

/// Runs the layering rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for krate in &ws.crates {
        let Some(own_rank) = rank(&krate.name) else {
            diags.push(Diagnostic::new(
                &krate.manifest_path,
                1,
                RULE,
                format!(
                    "crate `{}` is not in the layering table; add it to \
                     rules::layering::LAYERS with its layer rank",
                    krate.name
                ),
            ));
            continue;
        };

        // Manifest edges.
        for (dep, line, _dev) in krate.first_party_deps() {
            if is_tool(&dep) {
                diags.push(Diagnostic::new(
                    &krate.manifest_path,
                    line,
                    RULE,
                    format!("`{dep}` is a tool crate; nothing may depend on it"),
                ));
                continue;
            }
            if is_tool(&krate.name) {
                diags.push(Diagnostic::new(
                    &krate.manifest_path,
                    line,
                    RULE,
                    format!(
                        "tool crate `{}` must stay dependency-free of the \
                         stack but depends on `{dep}`",
                        krate.name
                    ),
                ));
                continue;
            }
            match rank(&dep) {
                Some(dep_rank) if dep_rank >= own_rank => {
                    diags.push(Diagnostic::new(
                        &krate.manifest_path,
                        line,
                        RULE,
                        format!(
                            "back-edge: `{}` (layer {own_rank}) may not depend on \
                             `{dep}` (layer {dep_rank}); dependencies must point \
                             down the stack",
                            krate.name
                        ),
                    ));
                }
                Some(_) => {}
                None => diags.push(Diagnostic::new(
                    &krate.manifest_path,
                    line,
                    RULE,
                    format!("dependency `{dep}` is not in the layering table"),
                )),
            }
        }

        // Source-path edges (`reram_foo::...` in non-test code).
        let own_ident = krate.name.replace('-', "_");
        for file in &krate.files {
            for (line_no, line) in file.code_lines() {
                for token in crate::scanner::tokenize(line) {
                    let Some(ident) = token.ident() else { continue };
                    if !ident.starts_with("reram_") || ident == own_ident {
                        continue;
                    }
                    if file.allowed(line_no, RULE) {
                        continue;
                    }
                    let dep = ident.replace('_', "-");
                    match rank(&dep) {
                        Some(dep_rank) if dep_rank >= own_rank || is_tool(&dep) => {
                            diags.push(Diagnostic::new(
                                &file.path,
                                line_no,
                                RULE,
                                format!(
                                    "back-edge: `{}` (layer {own_rank}) references \
                                     `{ident}` (layer {dep_rank})",
                                    krate.name
                                ),
                            ));
                        }
                        Some(_) => {}
                        None => diags.push(Diagnostic::new(
                            &file.path,
                            line_no,
                            RULE,
                            format!("path `{ident}` is not a known first-party crate"),
                        )),
                    }
                }
            }
        }
    }
    diags
}
