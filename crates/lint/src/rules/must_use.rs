//! Rule `must_use`: public fallible APIs must not be silently droppable.
//!
//! A `pub fn` returning `Result` in a first-party library crate must carry
//! a `#[must_use]` attribute (the workspace uses the
//! `#[must_use = "reason"]` form — the bare form trips clippy's
//! `double_must_use` on `Result` returns) or waive the rule with
//! `// lint:allow(must_use) <reason>`. `Result` is itself `#[must_use]`,
//! which protects direct callers, but an annotation on the *function*
//! survives wrapping, `let _ = ...` audits grep for it, and — more to the
//! point here — it documents at the signature that the error path is part
//! of the API contract.
//!
//! Binary targets (`src/main.rs`, `src/bin/`) are exempt: their `pub` is
//! not a library surface.

use crate::scanner::tokenize;
use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "must_use";

/// A signature can be rustfmt-wrapped over at most this many lines before
/// the rule stops following it.
const MAX_SIGNATURE_LINES: usize = 30;

/// Attributes and doc comments above a `fn` are scanned at most this far
/// up for an existing `#[must_use]`.
const MAX_ATTR_LOOKBACK_LINES: usize = 20;

/// Runs the must_use rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for krate in &ws.crates {
        for file in &krate.files {
            if is_binary_target(&file.path) {
                continue;
            }
            for (line_no, line) in file.code_lines() {
                if !is_pub_fn_line(line) {
                    continue;
                }
                if !signature_returns_result(file, line_no) {
                    continue;
                }
                if has_must_use_attr(file, line_no) || file.allowed(line_no, RULE) {
                    continue;
                }
                let name = fn_name(line).unwrap_or("<fn>");
                diags.push(Diagnostic::new(
                    &file.path,
                    line_no,
                    RULE,
                    format!(
                        "public fn `{name}` returns Result but is not \
                         #[must_use]; annotate it (use the \
                         `#[must_use = \"reason\"]` form) or waive with \
                         `// lint:allow(must_use) <reason>`"
                    ),
                ));
            }
        }
    }
    diags
}

fn is_binary_target(path: &str) -> bool {
    path.ends_with("src/main.rs") || path.contains("/src/bin/") || !path.contains("src/")
}

/// Whether the masked line opens a `pub fn` item: a `pub` keyword (without
/// a visibility qualifier — `pub(crate)` and `pub(super)` are not a public
/// surface) followed by `fn`, allowing `const`/`async`/`unsafe`/`extern`
/// qualifiers between.
fn is_pub_fn_line(masked_line: &str) -> bool {
    let tokens = tokenize(masked_line);
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("pub") {
            if tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                // `pub(in path)` visibility — restricted, not public.
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while let Some(ident) = tokens.get(j).and_then(crate::scanner::Token::ident) {
                match ident {
                    "const" | "async" | "unsafe" | "extern" => j += 1,
                    "fn" => return true,
                    _ => break,
                }
            }
        }
        i += 1;
    }
    false
}

/// The function name on a `pub fn` line.
fn fn_name(masked_line: &str) -> Option<&str> {
    let tokens = tokenize(masked_line);
    tokens
        .windows(2)
        .find(|w| w[0].ident() == Some("fn"))
        .and_then(|w| w[1].ident())
}

/// Whether the signature starting at `line_no` (1-based) declares a
/// `Result` return type: accumulate lines up to the body `{` (or `;` for
/// trait/extern declarations), take the text after the *last* `->`, and
/// look for a `Result` ident before any `<` closes over it being the
/// outermost constructor. Closure arrows inside default arguments would
/// also match `->`, which is why the last arrow wins (the return type is
/// rightmost in the header).
fn signature_returns_result(file: &crate::scanner::SourceFile, line_no: usize) -> bool {
    let mut signature = String::new();
    for idx in 0..MAX_SIGNATURE_LINES {
        let Some(line) = file.masked_lines.get(line_no - 1 + idx) else {
            break;
        };
        let stop = line.find(['{', ';']);
        match stop {
            Some(pos) => {
                signature.push_str(&line[..pos]);
                break;
            }
            None => {
                signature.push_str(line);
                signature.push(' ');
            }
        }
    }
    let Some(arrow) = signature.rfind("->") else {
        return false;
    };
    let ret = &signature[arrow + 2..];
    for token in tokenize(ret) {
        if token.is_punct('<') {
            // Past the outermost constructor's generics: `Option<Result<..`
            // is Option-shaped, not Result-shaped.
            return false;
        }
        if token.ident() == Some("Result") {
            return true;
        }
    }
    false
}

/// Whether an `#[must_use]`/`#[must_use = ".."]` attribute sits on the
/// `fn` line or in the attribute/doc block directly above it.
fn has_must_use_attr(file: &crate::scanner::SourceFile, line_no: usize) -> bool {
    let line_has = |idx: usize| -> bool {
        file.masked_lines
            .get(idx)
            .is_some_and(|l| attr_line_has_must_use(l))
    };
    if line_has(line_no - 1) {
        return true;
    }
    // Walk upward through attributes, doc comments (masked to blank), and
    // blank lines; anything else ends the item's attribute block.
    for step in 1..=MAX_ATTR_LOOKBACK_LINES {
        let Some(idx) = (line_no - 1).checked_sub(step) else {
            break;
        };
        let Some(masked) = file.masked_lines.get(idx) else {
            break;
        };
        let trimmed = masked.trim();
        if attr_line_has_must_use(masked) {
            return true;
        }
        let is_attr_or_blank = trimmed.is_empty() || trimmed.starts_with('#') ||
            // Continuation of a multi-line attribute, e.g. a wrapped
            // `#[must_use = "..."]` closes on its own `]` line.
            trimmed == "]" || trimmed.ends_with(")]");
        if !is_attr_or_blank {
            break;
        }
    }
    false
}

fn attr_line_has_must_use(masked_line: &str) -> bool {
    let tokens = tokenize(masked_line);
    tokens
        .windows(3)
        .any(|w| w[0].is_punct('#') && w[1].is_punct('[') && w[2].ident() == Some("must_use"))
        || (masked_line.trim_start().starts_with('#') && masked_line.contains("must_use"))
}
