//! Rule `panic-policy`: library code must not reach for process aborts.
//!
//! `unwrap()`, `expect(...)`, `panic!`, `todo!`, and `unimplemented!` are
//! forbidden in first-party library code outside `#[cfg(test)]` items.
//! Simulation invariants should be `assert!`ed with a message (asserts
//! document contracts and stay), recoverable conditions should return a
//! typed error, and the rare justified abort must carry a
//! `// lint:allow(panic) <reason>` annotation on or above the line.
//! Binary entry points (`src/bin/`, `main.rs`) are exempt: aborting with a
//! message *is* a CLI's error path.

use crate::scanner::tokenize;
use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "panic";

/// Method calls that abort: `.unwrap()` / `.expect(...)`.
const BANNED_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that abort: `panic!` / `todo!` / `unimplemented!`.
const BANNED_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

fn is_binary_source(path: &str) -> bool {
    path.contains("/bin/") || path.ends_with("/main.rs") || path == "main.rs"
}

/// Runs the panic-policy rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for krate in &ws.crates {
        for file in &krate.files {
            if is_binary_source(&file.path) {
                continue;
            }
            for (line_no, line) in file.code_lines() {
                let tokens = tokenize(line);
                for i in 0..tokens.len() {
                    let Some(ident) = tokens[i].ident() else {
                        continue;
                    };
                    let method_call = BANNED_METHODS.contains(&ident)
                        && i > 0
                        && tokens[i - 1].is_punct('.')
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
                    let macro_call = BANNED_MACROS.contains(&ident)
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
                    if !(method_call || macro_call) {
                        continue;
                    }
                    if file.allowed(line_no, RULE) {
                        continue;
                    }
                    let display = if macro_call {
                        format!("{ident}!")
                    } else {
                        format!(".{ident}()")
                    };
                    diags.push(Diagnostic::new(
                        &file.path,
                        line_no,
                        RULE,
                        format!(
                            "`{display}` in library code — return a typed error, \
                             use a messaged `assert!`, or annotate \
                             `// lint:allow(panic) <reason>`"
                        ),
                    ));
                }
            }
        }
    }
    diags
}
