//! Rule `telemetry-coverage`: every hardware event must be instrumented.
//!
//! The telemetry crate defines the event vocabulary (`Event::ALL`); the
//! simulation crates are responsible for emitting each event wherever the
//! modelled hardware activity happens. A variant that is never referenced
//! outside the telemetry crate is a hole in the instrumentation: reports
//! would silently show zero for it. This rule parses the `enum Event`
//! variants out of the telemetry crate and requires at least one
//! `Event::<Variant>` reference in another crate's non-test code.

use crate::scanner::tokenize;
use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "telemetry-coverage";

/// Name of the crate defining the event vocabulary.
pub const TELEMETRY_CRATE: &str = "reram-telemetry";

/// Runs the telemetry-coverage rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(telemetry) = ws.get(TELEMETRY_CRATE) else {
        // Fixture workspaces without a telemetry crate have nothing to cover.
        return Vec::new();
    };
    let variants = event_variants(telemetry);
    if variants.is_empty() {
        return vec![Diagnostic::new(
            &telemetry.manifest_path,
            1,
            RULE,
            "could not find any `enum Event` variants in the telemetry crate \
             (rule out of sync with the code?)"
                .to_owned(),
        )];
    }

    let mut diags = Vec::new();
    for (variant, def_path, def_line) in &variants {
        let mut emitted = false;
        'search: for krate in &ws.crates {
            if krate.name == TELEMETRY_CRATE {
                continue;
            }
            for file in &krate.files {
                for (_, line) in file.code_lines() {
                    if references_variant(line, variant) {
                        emitted = true;
                        break 'search;
                    }
                }
            }
        }
        if !emitted {
            diags.push(Diagnostic::new(
                def_path,
                *def_line,
                RULE,
                format!(
                    "telemetry event `Event::{variant}` is never emitted outside \
                     the telemetry crate — instrument the simulation path that \
                     models it (or remove the variant)"
                ),
            ));
        }
    }
    diags
}

/// `Event::<Variant>` with an identifier boundary after the variant.
/// Shared with the `dead-event` rule, which looks for the same references
/// but only inside `record(...)` call spans.
pub(super) fn references_variant(masked_line: &str, variant: &str) -> bool {
    let needle = format!("Event::{variant}");
    let mut from = 0;
    while let Some(pos) = masked_line[from..].find(&needle) {
        let end = from + pos + needle.len();
        let boundary = masked_line[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// Parses `(variant, defining file, line)` out of the telemetry crate's
/// `enum Event { ... }` block. Shared with the `dead-event` rule.
pub(super) fn event_variants(
    telemetry: &crate::workspace::CrateInfo,
) -> Vec<(String, String, usize)> {
    let mut variants = Vec::new();
    for file in &telemetry.files {
        // Find `enum Event` and walk its block line by line.
        let mut depth_into_enum: Option<usize> = None;
        let mut depth = 0usize;
        for (idx, line) in file.masked_lines.iter().enumerate() {
            let tokens = tokenize(line);
            let mut enum_here = false;
            for w in 0..tokens.len() {
                if tokens[w].ident() == Some("enum")
                    && tokens
                        .get(w + 1)
                        .and_then(super::super::scanner::Token::ident)
                        == Some("Event")
                {
                    enum_here = true;
                }
            }
            if enum_here {
                depth_into_enum = Some(depth);
            }
            if let Some(enum_depth) = depth_into_enum {
                // Variant lines sit at depth enum_depth + 1 and start with
                // an uppercase identifier followed by `,` or `=`.
                if depth == enum_depth + 1 {
                    if let Some(first) =
                        tokens.first().and_then(super::super::scanner::Token::ident)
                    {
                        let starts_upper = first.chars().next().is_some_and(char::is_uppercase);
                        let followed = tokens
                            .get(1)
                            .is_some_and(|t| t.is_punct(',') || t.is_punct('='));
                        if starts_upper && followed {
                            variants.push((first.to_owned(), file.path.clone(), idx + 1));
                        }
                    }
                }
            }
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if let Some(enum_depth) = depth_into_enum {
                            if depth == enum_depth {
                                depth_into_enum = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if !variants.is_empty() {
            break;
        }
    }
    variants
}
