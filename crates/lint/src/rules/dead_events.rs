//! Rule `dead-event`: every telemetry event must actually be *emitted*.
//!
//! `telemetry-coverage` requires each `Event` variant to be *referenced*
//! outside the telemetry crate, but a reference is a weaker guarantee than
//! an emission: matching on an event in a report renderer, or naming it in
//! a test helper, satisfies coverage while the counter still never moves.
//! This rule requires each variant to appear inside the argument span of a
//! `record(...)` call — the only way the workspace increments a counter —
//! in non-test code outside the telemetry crate. Call spans may run over
//! multiple lines (rustfmt wraps wide `record` calls), so the rule tracks
//! parenthesis depth from the `record(` opener across lines.

use crate::workspace::Workspace;
use crate::Diagnostic;

use super::telemetry::{event_variants, references_variant, TELEMETRY_CRATE};

const RULE: &str = "dead-event";

/// A `record(...)` call can be reformatted over at most this many lines
/// before the rule stops following it (a safety bound, far above any real
/// rustfmt output).
const MAX_CALL_SPAN_LINES: usize = 12;

/// Runs the dead-event rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(telemetry) = ws.get(TELEMETRY_CRATE) else {
        // Fixture workspaces without a telemetry crate have no vocabulary.
        return Vec::new();
    };
    let variants = event_variants(telemetry);

    // Collect every record-call argument span outside the telemetry crate.
    let mut spans: Vec<String> = Vec::new();
    for krate in &ws.crates {
        if krate.name == TELEMETRY_CRATE {
            continue;
        }
        for file in &krate.files {
            let lines: Vec<(usize, &str)> = file.code_lines().collect();
            for (i, (_, line)) in lines.iter().enumerate() {
                for opener in record_call_offsets(line) {
                    let mut span = String::new();
                    let mut depth = 0i64;
                    let mut started = false;
                    'span: for (j, (_, later)) in
                        lines.iter().enumerate().skip(i).take(MAX_CALL_SPAN_LINES)
                    {
                        let skip_chars = if j == i { opener } else { 0 };
                        for c in later.chars().skip(skip_chars) {
                            match c {
                                '(' => {
                                    depth += 1;
                                    started = true;
                                }
                                ')' => depth -= 1,
                                _ => {}
                            }
                            if depth > 0 {
                                span.push(c);
                            }
                        }
                        span.push(' ');
                        if started && depth <= 0 {
                            break 'span;
                        }
                    }
                    spans.push(span);
                }
            }
        }
    }

    let mut diags = Vec::new();
    for (variant, def_path, def_line) in &variants {
        if !spans.iter().any(|s| references_variant(s, variant)) {
            diags.push(Diagnostic::new(
                def_path,
                *def_line,
                RULE,
                format!(
                    "telemetry event `Event::{variant}` is never emitted: no \
                     `record(Event::{variant}, ..)` call exists outside the \
                     telemetry crate — wire the counter up or remove the variant"
                ),
            ));
        }
    }
    diags
}

/// Character offsets of each `record(` call opener on a masked line: a
/// `record` identifier (boundary on the left, so `try_record` does not
/// match) followed, after optional whitespace, by `(`. The returned offset
/// points at the identifier, before the opening paren.
fn record_call_offsets(masked_line: &str) -> Vec<usize> {
    let chars: Vec<char> = masked_line.chars().collect();
    let mut offsets = Vec::new();
    let needle: Vec<char> = "record".chars().collect();
    let mut i = 0;
    while i + needle.len() <= chars.len() {
        if chars[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        let before_ok = i == 0 || (!chars[i - 1].is_alphanumeric() && chars[i - 1] != '_');
        let mut j = i + needle.len();
        // `record` must end at an identifier boundary and open a call.
        let word_ok = chars
            .get(j)
            .is_none_or(|c| !c.is_alphanumeric() && *c != '_');
        while chars.get(j).is_some_and(|c| c.is_whitespace()) {
            j += 1;
        }
        if before_ok && word_ok && chars.get(j) == Some(&'(') {
            offsets.push(i);
        }
        i += needle.len();
    }
    offsets
}
