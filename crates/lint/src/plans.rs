//! `--plans` mode: static verification of lowered execution plans.
//!
//! Where the source rules scan text, this mode scans *lowered IR*: it runs
//! [`reram_core::verify::verify_zoo`] — every zoo network lowered under
//! every config-matrix entry, each plan checked against its conservation
//! laws, feasibility constraints, and metamorphic monotonicity properties
//! — plus a serving-shape feasibility pass over a representative cluster
//! config. Findings come back as ordinary [`Diagnostic`]s (rule `plan`),
//! so CI output and waiver ergonomics match the source rules; the synthetic
//! "path" is `plan/<config>/<network>` since a violation lives in a lowered
//! artifact, not a file.

use reram_core::verify::{config_matrix, verify_serve, ServeShape, Violation, ZooFinding};
use reram_core::ExecutionPlan;
use reram_nn::models;

use crate::Diagnostic;

const RULE: &str = "plan";

/// The serving shape the feasibility pass checks: the default 4-chip,
/// 16-deep-batch cluster from `reram-serve`, offered half of each
/// config's own plan-priced service capacity over a LeNet-heavy mix.
/// Capacity varies by orders of magnitude across the matrix (replication
/// is what buys throughput), so the offered load is derived per config —
/// comfortably inside capacity by construction, meaning any violation is
/// a regression in the closed forms, not an infeasible shape.
const SERVE_CHIPS: usize = 4;
const SERVE_MAX_BATCH: usize = 16;
const SERVE_MAX_LINGER_NS: u64 = 20_000;
const SERVE_MIX: [f64; 2] = [0.7, 0.3];
const SERVE_LOAD_FRACTION: f64 = 0.5;

/// Outcome of the plan verification sweep.
pub struct PlanCheck {
    /// Lowered plans verified (zoo networks × matrix configs).
    pub plans: usize,
    /// Accelerator configs in the matrix.
    pub configs: usize,
    /// Violations, rendered as diagnostics.
    pub diags: Vec<Diagnostic>,
}

/// Runs the full plan verification sweep: the zoo × config matrix, plus a
/// serving-shape feasibility check per matrix config.
#[must_use = "the returned findings are the verification result"]
pub fn check_plans() -> PlanCheck {
    let (plans, findings) = reram_core::verify::verify_zoo();
    let mut diags: Vec<Diagnostic> = findings.iter().map(finding_diag).collect();

    // Serving feasibility: one plan per catalog model under each matrix
    // config, checked against the representative cluster shape.
    let catalog = [models::lenet_spec(), models::alexnet_spec()];
    let matrix = config_matrix();
    for (config_name, config) in &matrix {
        let lowered: Result<Vec<ExecutionPlan>, _> = catalog
            .iter()
            .map(|net| ExecutionPlan::lower(net, config))
            .collect();
        let violations = match lowered {
            Ok(plans) => {
                let shape = ServeShape {
                    chips: SERVE_CHIPS,
                    max_batch: SERVE_MAX_BATCH,
                    max_linger_ns: SERVE_MAX_LINGER_NS,
                    mean_arrival_rps: SERVE_LOAD_FRACTION * capacity_rps(&plans),
                    mix: SERVE_MIX.to_vec(),
                };
                verify_serve(&plans, &shape)
            }
            Err(e) => vec![Violation::LoweringFailed {
                error: e.to_string(),
            }],
        };
        diags.extend(violations.iter().map(|violation| {
            Diagnostic::new(
                &format!("plan/{config_name}/serve-shape"),
                1,
                RULE,
                violation.to_string(),
            )
        }));
    }

    diags.sort();
    diags.dedup();
    PlanCheck {
        plans,
        configs: matrix.len(),
        diags,
    }
}

/// Cluster service capacity in requests per second for the checked shape:
/// `chips / s̄` with `s̄` the mix-weighted amortized full-batch latency —
/// the same closed form [`verify_serve`] prices stability against.
fn capacity_rps(plans: &[ExecutionPlan]) -> f64 {
    let total_weight: f64 = SERVE_MIX.iter().sum();
    let mean_service_ns: f64 = plans
        .iter()
        .zip(SERVE_MIX)
        .map(|(plan, w)| {
            (w / total_weight) * plan.batch_inference_latency_ns(SERVE_MAX_BATCH)
                / SERVE_MAX_BATCH as f64
        })
        .sum();
    if mean_service_ns > 0.0 {
        SERVE_CHIPS as f64 * 1e9 / mean_service_ns
    } else {
        0.0
    }
}

fn finding_diag(finding: &ZooFinding) -> Diagnostic {
    Diagnostic::new(
        &format!("plan/{}/{}", finding.config, finding.network),
        1,
        RULE,
        finding.violation.to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_zoo_verifies_clean_across_the_matrix() {
        let check = check_plans();
        assert!(check.configs >= 3, "matrix shrank below the floor");
        assert!(
            check.plans >= 3 * check.configs,
            "zoo shrank: {} plans",
            check.plans
        );
        assert_eq!(
            check.diags,
            Vec::new(),
            "plan verification must be clean on the live workspace"
        );
    }
}
