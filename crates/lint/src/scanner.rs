//! Token-level Rust source scanning.
//!
//! The lint rules do not need a full parse tree — they need reliable answers
//! to four questions about every line of a source file:
//!
//! 1. what does the line look like with comments and string/char literals
//!    blanked out (so `panic!` inside a doc comment is not a violation),
//! 2. is the line inside a `#[cfg(test)]` (or `#[test]`) item,
//! 3. which rules has the author explicitly waived on the line via a
//!    `// lint:allow(<rule>) <reason>` annotation, and
//! 4. what identifier/punctuation tokens does the line contain.
//!
//! Masking preserves line structure exactly: the masked text has the same
//! number of lines as the raw text and every retained token sits on its
//! original line, so diagnostics can report true line numbers.

/// One parsed source file: raw text plus the derived views the rules use.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/core/src/mapping.rs`.
    pub path: String,
    /// Raw file contents.
    pub raw: String,
    /// One entry per line: the line with comments/strings/chars blanked.
    pub masked_lines: Vec<String>,
    /// One entry per line: `true` when the line is inside a test item.
    pub in_test: Vec<bool>,
    /// One entry per line: rules waived on this line by `lint:allow`.
    pub allows: Vec<Vec<String>>,
    /// Malformed `lint:allow` annotations: `(line, problem)`.
    pub bad_allows: Vec<(usize, String)>,
}

impl SourceFile {
    /// Parses `raw` into the masked/test/allow views.
    pub fn parse(path: impl Into<String>, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let masked = mask_source(&raw);
        let masked_lines: Vec<String> = masked.lines().map(str::to_owned).collect();
        let in_test = test_lines(&masked_lines);
        // Annotations are read from a strings-masked view that keeps
        // comments, so a diagnostic message *quoting* the grammar in a
        // string literal is not mistaken for an annotation.
        let (allows, bad_allows) = parse_allows(&mask(&raw, true));
        Self {
            path: path.into(),
            raw,
            masked_lines,
            in_test,
            allows,
            bad_allows,
        }
    }

    /// Iterator over `(1-based line number, masked line)` pairs that are
    /// outside test items.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.masked_lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.in_test.get(*i).copied().unwrap_or(false))
            .map(|(i, l)| (i + 1, l.as_str()))
    }

    /// Whether `rule` is waived on 1-based line `line`.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .get(line.saturating_sub(1))
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Blanks comments, string literals, and char literals, preserving line
/// breaks and all other tokens byte-for-byte in their original positions
/// (multi-byte characters inside literals become one space each).
pub fn mask_source(src: &str) -> String {
    mask(src, false)
}

/// Masking worker: `keep_comments` retains comment text (used for the
/// annotation view) while still blanking string/char literals.
fn mask(src: &str, keep_comments: bool) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;

    let keep_line = |c: char| if c == '\n' { '\n' } else { ' ' };

    while i < chars.len() {
        let c = chars[i];
        // Line comment (including doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                out.push(if keep_comments { chars[i] } else { ' ' });
                i += 1;
            }
            continue;
        }
        // Block comment (nestable).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(keep_line(chars[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Identifier (may prefix a raw/byte string literal).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            if ident == "b" && next == Some('"') {
                // Cooked byte string: blank the prefix and let the string
                // scanner below handle escapes on the next iteration.
                out.push(' ');
                continue;
            }
            let raw_prefix = matches!(ident.as_str(), "r" | "br");
            // Confirm the full `r#*"` shape so raw identifiers (`r#fn`)
            // stay intact.
            let mut lookahead = i;
            while chars.get(lookahead) == Some(&'#') {
                lookahead += 1;
            }
            if raw_prefix && chars.get(lookahead) == Some(&'"') {
                // Raw or byte string: skip the prefix, fall through to the
                // string scanner below with hash counting.
                let mut hashes = 0usize;
                out.push_str(&" ".repeat(ident.chars().count()));
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    out.push(' ');
                    i += 1;
                }
                if chars.get(i) == Some(&'"') {
                    out.push('"');
                    i += 1;
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut ok = true;
                            for h in 0..hashes {
                                if chars.get(i + 1 + h) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                out.push('"');
                                out.push_str(&" ".repeat(hashes));
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        out.push(keep_line(chars[i]));
                        i += 1;
                    }
                }
            } else {
                out.push_str(&ident);
            }
            continue;
        }
        // Cooked string literal.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' {
                    out.push(' ');
                    i += 1;
                    if i < chars.len() {
                        out.push(keep_line(chars[i]));
                        i += 1;
                    }
                } else if chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    out.push(keep_line(chars[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs. lifetime: `'x'` / `'\n'` are literals, `'a` in
        // `&'a str` is a lifetime (no closing quote).
        if c == '\'' {
            let is_escape = chars.get(i + 1) == Some(&'\\');
            let closes_simple = chars.get(i + 2) == Some(&'\'');
            if is_escape || closes_simple {
                out.push('\'');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' {
                        out.push(' ');
                        i += 1;
                        if i < chars.len() {
                            out.push(keep_line(chars[i]));
                            i += 1;
                        }
                    } else if chars[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    } else {
                        out.push(keep_line(chars[i]));
                        i += 1;
                    }
                }
            } else {
                out.push('\'');
                i += 1;
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Marks every line inside a `#[cfg(test)]` or `#[test]` item.
///
/// After such an attribute, the next `{` opens the test item's block; the
/// region runs to its matching `}`. A `mod name;` form (no block before the
/// first `;`) marks only the attribute/declaration lines.
fn test_lines(masked_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked_lines.len()];
    // Flatten with line indices for brace matching.
    let flat: Vec<(usize, char)> = masked_lines
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| l.chars().map(move |c| (ln, c)).chain([(ln, '\n')]))
        .collect();

    let mut i = 0;
    while i < flat.len() {
        if starts_with_at(&flat, i, "#[cfg(test)]")
            || starts_with_at(&flat, i, "#[cfg(all(test")
            || starts_with_at(&flat, i, "#[test]")
        {
            // Find the block opened by the attributed item.
            let mut j = i;
            let mut depth = 0usize;
            let mut open = None;
            while j < flat.len() {
                match flat[j].1 {
                    '{' => {
                        open = Some(j);
                        break;
                    }
                    // `mod tests;` — out-of-line module, no inline block.
                    ';' if depth == 0 => break,
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth = depth.saturating_sub(1),
                    _ => {}
                }
                j += 1;
            }
            let end = match open {
                Some(open_idx) => {
                    let mut d = 0usize;
                    let mut k = open_idx;
                    while k < flat.len() {
                        match flat[k].1 {
                            '{' => d += 1,
                            '}' => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k.min(flat.len() - 1)
                }
                None => j.min(flat.len().saturating_sub(1)),
            };
            let (start_line, end_line) = (flat[i].0, flat[end].0);
            for flag in in_test.iter_mut().take(end_line + 1).skip(start_line) {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

fn starts_with_at(flat: &[(usize, char)], i: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, pc)| flat.get(i + k).map(|&(_, c)| c) == Some(pc))
}

/// Parses `// lint:allow(<rule>) <reason>` annotations.
///
/// Works on a strings-masked view so the grammar can be quoted in string
/// literals; only plain `//` comments count (doc comments `///` and `//!`
/// merely *describe* the grammar and never waive anything).
///
/// An annotation waives `<rule>` on its own line and on the line directly
/// below it (so it can sit on the violating line or just above it). The
/// reason is mandatory: an allow without one is reported as malformed.
fn parse_allows(strings_masked: &str) -> (Vec<Vec<String>>, Vec<(usize, String)>) {
    let lines: Vec<&str> = strings_masked.lines().collect();
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); lines.len()];
    let mut bad = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(comment_start) = line.find("//") else {
            continue;
        };
        let comment = &line[comment_start..];
        if comment.starts_with("///") || comment.starts_with("//!") {
            continue;
        }
        let Some(tag_pos) = comment.find("lint:allow") else {
            continue;
        };
        let rest = &comment[tag_pos + "lint:allow".len()..];
        let Some(open) = rest.strip_prefix('(') else {
            bad.push((idx + 1, "expected `lint:allow(<rule>) <reason>`".to_owned()));
            continue;
        };
        let Some(close) = open.find(')') else {
            bad.push((idx + 1, "unclosed `lint:allow(` annotation".to_owned()));
            continue;
        };
        let rule = open[..close].trim().to_owned();
        let reason = open[close + 1..].trim();
        if rule.is_empty()
            || !rule
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            bad.push((idx + 1, format!("invalid rule name {rule:?} in lint:allow")));
            continue;
        }
        if reason.is_empty() {
            bad.push((
                idx + 1,
                format!("lint:allow({rule}) needs a reason after the closing paren"),
            ));
            continue;
        }
        allows[idx].push(rule.clone());
        if idx + 1 < allows.len() {
            allows[idx + 1].push(rule);
        }
    }
    (allows, bad)
}

/// A token: an identifier/number or a single punctuation character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token<'a> {
    /// Identifier or keyword.
    Ident(&'a str),
    /// Numeric literal (possibly with suffix/underscores/dots).
    Number(&'a str),
    /// One punctuation character.
    Punct(char),
}

impl<'a> Token<'a> {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&'a str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Token::Punct(p) if *p == c)
    }
}

/// Tokenizes one masked line. Whitespace separates tokens; every
/// non-alphanumeric character is its own `Punct` token.
pub fn tokenize(line: &str) -> Vec<Token<'_>> {
    let mut tokens = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token::Ident(&line[start..i]));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'.')
            {
                // Stop a numeric token before `..` ranges and method calls
                // on literals (`1.0.max(x)` is rare; ranges are not).
                if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                    break;
                }
                i += 1;
            }
            tokens.push(Token::Number(&line[start..i]));
        } else {
            // Multi-byte punctuation (e.g. masked unicode) — take one char.
            let ch_len = line[i..].chars().next().map_or(1, char::len_utf8);
            tokens.push(Token::Punct(c));
            i += ch_len;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"panic!\"; // unwrap()\nlet b = 'x'; /* expect( */ let c = 1;";
        let masked = mask_source(src);
        assert!(!masked.contains("panic"));
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("expect"));
        assert!(masked.contains("let a"));
        assert!(masked.contains("let c = 1"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_raw_strings_and_keeps_lifetimes() {
        let src = "let s: &'static str = r#\"todo!()\"#; fn f<'a>(x: &'a str) {}";
        let masked = mask_source(src);
        assert!(!masked.contains("todo"));
        assert!(masked.contains("'static"));
        assert!(masked.contains("'a"));
    }

    #[test]
    fn escaped_quotes_do_not_desync() {
        let src = "let s = \"a\\\"b\"; let t = unwrap;";
        let masked = mask_source(src);
        assert!(masked.contains("let t = unwrap"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\nfn tail() {}";
        let f = SourceFile::parse("a.rs", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn allow_parsing_and_reason_required() {
        let src = "x.unwrap(); // lint:allow(panic) invariant: always present\ny();\n// lint:allow(panic)\nz();";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.allowed(1, "panic"));
        assert!(f.allowed(2, "panic")); // line below an annotation
        assert!(!f.allowed(4, "panic")); // reason missing -> malformed
        assert_eq!(f.bad_allows.len(), 1);
        assert_eq!(f.bad_allows[0].0, 3);
    }

    #[test]
    fn tokenizer_splits_idents_and_puncts() {
        let toks = tokenize("self.latency_ns + 3.0e2;");
        assert_eq!(
            toks,
            vec![
                Token::Ident("self"),
                Token::Punct('.'),
                Token::Ident("latency_ns"),
                Token::Punct('+'),
                Token::Number("3.0e2"),
                Token::Punct(';'),
            ]
        );
    }
}
