//! The live workspace must be lint-clean: every invariant the rules encode
//! holds for the code as committed. A violation here is a real architecture
//! regression, not a lint bug — fix the code or annotate it with a reason.

use std::path::Path;

use reram_lint::{check_workspace, Workspace};

#[test]
fn live_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace loads");
    assert!(
        ws.crates.len() >= 10,
        "expected all first-party crates, found {}",
        ws.crates.len()
    );
    let diags = check_workspace(&ws);
    assert!(
        diags.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn live_workspace_covers_known_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace loads");
    for name in [
        "reram-suite",
        "reram-tensor",
        "reram-telemetry",
        "reram-crossbar",
        "reram-nn",
        "reram-datasets",
        "reram-gpu",
        "reram-core",
        "reram-bench",
        "reram-lint",
    ] {
        assert!(ws.get(name).is_some(), "missing first-party crate {name}");
    }
}
