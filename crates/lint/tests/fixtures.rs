//! Fixture-based rule tests: each rule must trip on a known-bad snippet and
//! stay quiet on the corresponding good snippet.

use reram_lint::{check_workspace, Workspace};

fn manifest(name: &str, deps: &[&str]) -> String {
    let mut m = format!("[package]\nname = \"{name}\"\n[dependencies]\n");
    for dep in deps {
        m.push_str(&format!("{dep}.workspace = true\n"));
    }
    m
}

fn rules_hit(ws: &Workspace) -> Vec<(String, &'static str)> {
    check_workspace(ws)
        .into_iter()
        .map(|d| (format!("{}:{}", d.path, d.line), d.rule))
        .collect()
}

#[test]
fn layering_flags_manifest_back_edge() {
    // tensor (layer 0) depending on nn (layer 2) is a back-edge.
    let m = manifest("reram-tensor", &["reram-nn"]);
    let ws = Workspace::from_sources(&[(
        "reram-tensor",
        &m,
        &[("crates/tensor/src/lib.rs", "#![forbid(unsafe_code)]\n")],
    )]);
    let diags = check_workspace(&ws);
    assert!(
        diags.iter().any(|d| d.rule == "layering"
            && d.path.ends_with("Cargo.toml")
            && d.message.contains("back-edge")),
        "expected a manifest layering diagnostic, got: {diags:?}"
    );
}

#[test]
fn layering_flags_use_path_back_edge() {
    let m = manifest("reram-crossbar", &["reram-tensor"]);
    let src = "#![forbid(unsafe_code)]\nuse reram_core::AcceleratorConfig;\n";
    let ws =
        Workspace::from_sources(&[("reram-crossbar", &m, &[("crates/crossbar/src/lib.rs", src)])]);
    let diags = check_workspace(&ws);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "layering" && d.path.ends_with("lib.rs") && d.line == 2),
        "expected a source-path layering diagnostic, got: {diags:?}"
    );
}

#[test]
fn layering_accepts_downward_edges() {
    let m = manifest("reram-crossbar", &["reram-tensor", "reram-telemetry"]);
    let src =
        "#![forbid(unsafe_code)]\nuse reram_tensor::Matrix;\nuse reram_telemetry as telemetry;\n";
    let ws =
        Workspace::from_sources(&[("reram-crossbar", &m, &[("crates/crossbar/src/lib.rs", src)])]);
    assert!(
        check_workspace(&ws).is_empty(),
        "downward edges must pass: {:?}",
        check_workspace(&ws)
    );
}

#[test]
fn layering_protects_tool_crate() {
    let m = manifest("reram-bench", &["reram-lint"]);
    let ws = Workspace::from_sources(&[(
        "reram-bench",
        &m,
        &[("crates/bench/src/lib.rs", "#![forbid(unsafe_code)]\n")],
    )]);
    assert!(check_workspace(&ws)
        .iter()
        .any(|d| d.rule == "layering" && d.message.contains("tool crate")),);
}

#[test]
fn layering_flags_unsanctioned_core_module_edge() {
    // `mapping` is a leaf of the intra-core graph; it reaching up into
    // `accelerator` is exactly the cycle the module table forbids.
    let src = "#![forbid(unsafe_code)]\nuse crate::accelerator::PipeLayerAccelerator;\n";
    let m = manifest("reram-core", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-core",
        &m,
        &[
            ("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/core/src/mapping.rs", src),
        ],
    )]);
    let diags = check_workspace(&ws);
    assert!(
        diags.iter().any(|d| d.rule == "layering"
            && d.path.ends_with("mapping.rs")
            && d.line == 2
            && d.message.contains("mapping -> accelerator")),
        "expected an intra-core module diagnostic, got: {diags:?}"
    );
}

#[test]
fn layering_accepts_sanctioned_core_module_edges() {
    // Sanctioned table edges, self-references, the crate root, test code,
    // and annotated lines must all stay quiet.
    let plan_src = "#![forbid(unsafe_code)]\n\
                    use crate::mapping::LayerMapping;\n\
                    use crate::pipeline::PipelineModel;\n\
                    pub use crate::plan::layer::LayerPlan;\n";
    let timing_src = "#![forbid(unsafe_code)]\n\
                      use crate::plan::ExecutionPlan;\n\
                      // lint:allow(layering) doc example exercises the report facade\n\
                      use crate::report::RunReport;\n\
                      #[cfg(test)]\nmod tests {\n    use crate::accelerator::PipeLayerAccelerator;\n}\n";
    let root_src = "#![forbid(unsafe_code)]\npub use crate::plan::ExecutionPlan;\n";
    let m = manifest("reram-core", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-core",
        &m,
        &[
            ("crates/core/src/lib.rs", root_src),
            ("crates/core/src/plan/mod.rs", plan_src),
            ("crates/core/src/timing.rs", timing_src),
        ],
    )]);
    let diags = check_workspace(&ws);
    assert!(
        diags.iter().all(|d| d.rule != "layering"),
        "sanctioned core module edges must pass: {diags:?}"
    );
}

#[test]
fn units_flags_unsuffixed_float_field_and_const() {
    let src = "#![forbid(unsafe_code)]\n\
               const FRAME_OVERHEAD: f64 = 2.0;\n\
               pub struct Cost {\n    pub latency: f64,\n    pub frames: u32,\n}\n";
    let m = manifest("reram-crossbar", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-crossbar",
        &m,
        &[
            ("crates/crossbar/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/crossbar/src/cost.rs", src),
        ],
    )]);
    let hits = rules_hit(&ws);
    assert!(
        hits.contains(&("crates/crossbar/src/cost.rs:2".to_owned(), "units")),
        "unsuffixed const must trip: {hits:?}"
    );
    assert!(
        hits.contains(&("crates/crossbar/src/cost.rs:4".to_owned(), "units")),
        "unsuffixed f64 field must trip: {hits:?}"
    );
    // The u32 count field is exempt.
    assert!(!hits.contains(&("crates/crossbar/src/cost.rs:5".to_owned(), "units")));
}

#[test]
fn units_flags_cross_dimension_addition() {
    let src = "#![forbid(unsafe_code)]\n\
               pub fn total(latency_ns: f64, energy_pj: f64) -> f64 {\n\
                   latency_ns + energy_pj\n\
               }\n";
    let m = manifest("reram-core", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-core",
        &m,
        &[
            ("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/core/src/timing.rs", src),
        ],
    )]);
    let hits = rules_hit(&ws);
    assert!(
        hits.contains(&("crates/core/src/timing.rs:3".to_owned(), "units")),
        "ns + pj must trip: {hits:?}"
    );
}

#[test]
fn units_accepts_suffixed_quantities_and_same_dimension_sums() {
    let src = "#![forbid(unsafe_code)]\n\
               const FRAME_LATENCY_NS: f64 = 20.0;\n\
               pub struct Cost {\n    pub latency_ns: f64,\n    pub energy_pj: f64,\n}\n\
               pub fn f(c: &Cost) -> f64 {\n    c.latency_ns + 2.0 * FRAME_LATENCY_NS\n}\n\
               pub fn g(a_pj: f64, b_pj: f64) -> f64 {\n    a_pj + b_pj\n}\n";
    let m = manifest("reram-crossbar", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-crossbar",
        &m,
        &[
            ("crates/crossbar/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/crossbar/src/cost.rs", src),
        ],
    )]);
    let diags = check_workspace(&ws);
    assert!(diags.is_empty(), "clean unit code must pass: {diags:?}");
}

#[test]
fn telemetry_coverage_flags_unemitted_variant() {
    let telemetry_manifest = manifest("reram-telemetry", &[]);
    let event_src = "#![forbid(unsafe_code)]\n\
                     pub enum Event {\n    CrossbarMvm = 0,\n    CellWrite = 1,\n}\n";
    let emitter_manifest = manifest("reram-crossbar", &["reram-telemetry"]);
    let emitter_src = "#![forbid(unsafe_code)]\n\
                       pub fn mvm() { record(Event::CrossbarMvm, 1); }\n";
    let ws = Workspace::from_sources(&[
        (
            "reram-telemetry",
            &telemetry_manifest,
            &[
                ("crates/telemetry/src/lib.rs", "#![forbid(unsafe_code)]\n"),
                ("crates/telemetry/src/event.rs", event_src),
            ],
        ),
        (
            "reram-crossbar",
            &emitter_manifest,
            &[("crates/crossbar/src/lib.rs", emitter_src)],
        ),
    ]);
    let diags = check_workspace(&ws);
    let coverage: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "telemetry-coverage")
        .collect();
    assert_eq!(coverage.len(), 1, "exactly CellWrite uncovered: {diags:?}");
    assert!(coverage[0].message.contains("CellWrite"));
    assert_eq!(coverage[0].line, 4);
}

#[test]
fn telemetry_coverage_passes_when_all_variants_emitted() {
    let telemetry_manifest = manifest("reram-telemetry", &[]);
    let event_src = "#![forbid(unsafe_code)]\npub enum Event {\n    CrossbarMvm = 0,\n}\n";
    let emitter_manifest = manifest("reram-crossbar", &["reram-telemetry"]);
    let emitter_src = "#![forbid(unsafe_code)]\npub fn mvm() { record(Event::CrossbarMvm, 1); }\n";
    let ws = Workspace::from_sources(&[
        (
            "reram-telemetry",
            &telemetry_manifest,
            &[
                ("crates/telemetry/src/lib.rs", "#![forbid(unsafe_code)]\n"),
                ("crates/telemetry/src/event.rs", event_src),
            ],
        ),
        (
            "reram-crossbar",
            &emitter_manifest,
            &[("crates/crossbar/src/lib.rs", emitter_src)],
        ),
    ]);
    assert!(check_workspace(&ws).is_empty());
}

#[test]
fn panic_policy_flags_unannotated_aborts() {
    let src = "#![forbid(unsafe_code)]\n\
               pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               pub fn g() { panic!(\"boom\"); }\n\
               pub fn h() { todo!() }\n";
    let m = manifest("reram-nn", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-nn",
        &m,
        &[
            ("crates/nn/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/nn/src/layers.rs", src),
        ],
    )]);
    let hits = rules_hit(&ws);
    for line in [2, 3, 4] {
        assert!(
            hits.contains(&(format!("crates/nn/src/layers.rs:{line}"), "panic")),
            "line {line} must trip: {hits:?}"
        );
    }
}

#[test]
fn panic_policy_honors_tests_annotations_and_binaries() {
    let src = "#![forbid(unsafe_code)]\n\
               // lint:allow(panic) poisoned mutex means a test already failed\n\
               pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               pub fn doc() { /* panic! in a comment */ let s = \"unwrap()\"; let _ = s; }\n\
               #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
    let bin_src = "fn main() { std::env::args().next().unwrap(); }\n";
    let m = manifest("reram-nn", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-nn",
        &m,
        &[
            ("crates/nn/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/nn/src/layers.rs", src),
            ("crates/nn/src/bin/tool.rs", bin_src),
        ],
    )]);
    let diags = check_workspace(&ws);
    assert!(
        diags.iter().all(|d| d.rule != "panic"),
        "annotated/test/binary/comment panics must pass: {diags:?}"
    );
}

#[test]
fn allow_without_reason_is_itself_flagged() {
    let src = "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(panic)\n";
    let m = manifest("reram-nn", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-nn",
        &m,
        &[
            ("crates/nn/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/nn/src/layers.rs", src),
        ],
    )]);
    let diags = check_workspace(&ws);
    assert!(diags.iter().any(|d| d.rule == "allow-syntax"));
    // And the reasonless allow does not waive the underlying violation.
    assert!(diags.iter().any(|d| d.rule == "panic"));
}

#[test]
fn determinism_flags_wall_clock_and_hash_iteration() {
    let src = "#![forbid(unsafe_code)]\n\
               use std::time::Instant;\n\
               use std::collections::HashMap;\n\
               pub fn f() { let _t = Instant::now(); }\n";
    let m = manifest("reram-core", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-core",
        &m,
        &[
            ("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/core/src/pipeline.rs", src),
        ],
    )]);
    let hits = rules_hit(&ws);
    for line in [2, 3, 4] {
        assert!(
            hits.contains(&(format!("crates/core/src/pipeline.rs:{line}"), "determinism")),
            "line {line} must trip: {hits:?}"
        );
    }
}

#[test]
fn determinism_sanctions_telemetry_span_and_annotations() {
    let span_src = "#![forbid(unsafe_code)]\nuse std::time::Instant;\n";
    let annotated = "#![forbid(unsafe_code)]\n\
                     // lint:allow(determinism) cache key only, never ordered output\n\
                     use std::collections::HashMap;\n";
    let tm = manifest("reram-telemetry", &[]);
    let cm = manifest("reram-core", &[]);
    let ws = Workspace::from_sources(&[
        (
            "reram-telemetry",
            &tm,
            &[
                ("crates/telemetry/src/lib.rs", "#![forbid(unsafe_code)]\n"),
                ("crates/telemetry/src/span.rs", span_src),
            ],
        ),
        (
            "reram-core",
            &cm,
            &[
                ("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n"),
                ("crates/core/src/cache.rs", annotated),
            ],
        ),
    ]);
    let diags = check_workspace(&ws);
    assert!(
        diags.iter().all(|d| d.rule != "determinism"),
        "span.rs and annotated uses must pass: {diags:?}"
    );
}

#[test]
fn dead_event_flags_referenced_but_never_recorded_variant() {
    let telemetry_manifest = manifest("reram-telemetry", &[]);
    let event_src = "#![forbid(unsafe_code)]\n\
                     pub enum Event {\n    CrossbarMvm = 0,\n    CellWrite = 1,\n}\n";
    let emitter_manifest = manifest("reram-crossbar", &["reram-telemetry"]);
    // `CellWrite` is *referenced* (a match arm), which satisfies
    // telemetry-coverage — but only `CrossbarMvm` is ever passed to a
    // `record(...)` call, so its counter can never move.
    let emitter_src = "#![forbid(unsafe_code)]\n\
                       pub fn mvm() { record(Event::CrossbarMvm, 1); }\n\
                       pub fn label(e: &Event) -> u32 {\n\
                       match e { Event::CellWrite => 1, _ => 0 }\n\
                       }\n";
    let ws = Workspace::from_sources(&[
        (
            "reram-telemetry",
            &telemetry_manifest,
            &[
                ("crates/telemetry/src/lib.rs", "#![forbid(unsafe_code)]\n"),
                ("crates/telemetry/src/event.rs", event_src),
            ],
        ),
        (
            "reram-crossbar",
            &emitter_manifest,
            &[("crates/crossbar/src/lib.rs", emitter_src)],
        ),
    ]);
    let diags = check_workspace(&ws);
    assert!(
        diags.iter().all(|d| d.rule != "telemetry-coverage"),
        "the match arm satisfies coverage: {diags:?}"
    );
    let dead: Vec<_> = diags.iter().filter(|d| d.rule == "dead-event").collect();
    assert_eq!(dead.len(), 1, "exactly CellWrite is dead: {diags:?}");
    assert!(dead[0].message.contains("CellWrite"));
    assert!(dead[0].path.ends_with("event.rs"));
    assert_eq!(dead[0].line, 4);
}

#[test]
fn dead_event_follows_wrapped_record_calls() {
    let telemetry_manifest = manifest("reram-telemetry", &[]);
    let event_src = "#![forbid(unsafe_code)]\npub enum Event {\n    CrossbarMvm = 0,\n}\n";
    let emitter_manifest = manifest("reram-crossbar", &["reram-telemetry"]);
    // rustfmt wraps wide record calls; the variant lands on a later line
    // than the `record(` opener and must still count as emitted.
    let emitter_src = "#![forbid(unsafe_code)]\n\
                       pub fn mvm() {\n\
                       record(\n\
                       Event::CrossbarMvm,\n\
                       1,\n\
                       );\n\
                       }\n";
    let ws = Workspace::from_sources(&[
        (
            "reram-telemetry",
            &telemetry_manifest,
            &[
                ("crates/telemetry/src/lib.rs", "#![forbid(unsafe_code)]\n"),
                ("crates/telemetry/src/event.rs", event_src),
            ],
        ),
        (
            "reram-crossbar",
            &emitter_manifest,
            &[("crates/crossbar/src/lib.rs", emitter_src)],
        ),
    ]);
    let diags = check_workspace(&ws);
    assert!(
        diags.iter().all(|d| d.rule != "dead-event"),
        "a wrapped record call still emits: {diags:?}"
    );
}

#[test]
fn must_use_flags_unannotated_result_fn() {
    let src = "#![forbid(unsafe_code)]\n\
               pub fn parse(s: &str) -> Result<u32, String> {\n    Err(s.to_owned())\n}\n";
    let m = manifest("reram-nn", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-nn",
        &m,
        &[
            ("crates/nn/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/nn/src/layers.rs", src),
        ],
    )]);
    let hits = rules_hit(&ws);
    assert!(
        hits.contains(&("crates/nn/src/layers.rs:2".to_owned(), "must_use")),
        "unannotated Result-returning pub fn must trip: {hits:?}"
    );
}

#[test]
fn must_use_honors_annotations_waivers_and_binaries() {
    let src = "#![forbid(unsafe_code)]\n\
               #[must_use = \"the parsed value is the result\"]\n\
               pub fn parse(s: &str) -> Result<u32, String> {\n    Err(s.to_owned())\n}\n\
               // lint:allow(must_use) callers poll this in a retry loop\n\
               pub fn poll() -> Result<(), String> {\n    Ok(())\n}\n\
               pub fn infallible() -> u32 {\n    7\n}\n\
               pub(crate) fn internal() -> Result<(), String> {\n    Ok(())\n}\n\
               pub fn wrapped() -> Option<Result<u32, String>> {\n    None\n}\n";
    let bin_src = "fn main() {}\npub fn run() -> Result<(), String> {\n    Ok(())\n}\n";
    let m = manifest("reram-nn", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-nn",
        &m,
        &[
            ("crates/nn/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/nn/src/layers.rs", src),
            ("crates/nn/src/bin/tool.rs", bin_src),
        ],
    )]);
    let diags = check_workspace(&ws);
    assert!(
        diags.iter().all(|d| d.rule != "must_use"),
        "annotated/waived/non-public/non-Result/binary fns must pass: {diags:?}"
    );
}

#[test]
fn determinism_requires_forbid_unsafe_in_crate_root() {
    let m = manifest("reram-gpu", &[]);
    let ws = Workspace::from_sources(&[(
        "reram-gpu",
        &m,
        &[("crates/gpu/src/lib.rs", "pub fn f() {}\n")],
    )]);
    assert!(check_workspace(&ws)
        .iter()
        .any(|d| d.rule == "determinism" && d.message.contains("forbid(unsafe_code)")));
}
