//! Pluggable batch-placement policies.
//!
//! A [`Scheduler`] picks the chip a freshly closed batch is dispatched to.
//! Three built-in policies span the classic trade-off:
//!
//! * [`RoundRobin`] — cyclic assignment, blind to load and cost.
//! * [`LeastLoaded`] — pick the chip with the fewest outstanding requests.
//!   Cheap and load-aware, but blind to *how expensive* those requests are:
//!   one queued AlexNet batch counts the same as one queued LeNet batch.
//! * [`PlanCostAware`] — pick the chip with the earliest predicted batch
//!   completion, priced through each chip's lowered
//!   [`reram_core::ExecutionPlan`] ([`crate::Chip::predicted_completion_ns`]).
//!   This sees both the backlog *and* the per-model service cost, so a
//!   heterogeneous model mix (or a heterogeneous cluster) no longer skews
//!   tail latency.
//!
//! All tie-breaks go to the lowest chip id, keeping every policy fully
//! deterministic.

use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;

/// Picks a chip for each dispatched batch.
pub trait Scheduler {
    /// Stable policy name used in reports and tables.
    fn name(&self) -> &'static str;

    /// Chooses the chip (by id) to serve a batch of `batch` requests of
    /// catalog model `model`, given the cluster state at `now_ns`.
    fn pick(&mut self, cluster: &Cluster, now_ns: u64, model: usize, batch: usize) -> usize;
}

/// Cyclic assignment ignoring all state.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, cluster: &Cluster, _now_ns: u64, _model: usize, _batch: usize) -> usize {
        let id = self.next % cluster.len();
        self.next = (self.next + 1) % cluster.len();
        id
    }
}

/// Fewest outstanding requests wins (ties to the lowest id).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl Scheduler for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn pick(&mut self, cluster: &Cluster, _now_ns: u64, _model: usize, _batch: usize) -> usize {
        cluster
            .chips
            .iter()
            .min_by_key(|c| (c.queued_requests, c.id))
            .map_or(0, |c| c.id)
    }
}

/// Earliest plan-priced batch completion wins (ties to the lowest id).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanCostAware;

impl Scheduler for PlanCostAware {
    fn name(&self) -> &'static str {
        "plan-cost-aware"
    }

    fn pick(&mut self, cluster: &Cluster, now_ns: u64, model: usize, batch: usize) -> usize {
        cluster
            .chips
            .iter()
            .min_by_key(|c| (c.predicted_completion_ns(now_ns, model, batch), c.id))
            .map_or(0, |c| c.id)
    }
}

/// Named policy selector — the serializable configuration-side handle for
/// the built-in [`Scheduler`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`PlanCostAware`].
    PlanCostAware,
}

impl Policy {
    /// Every built-in policy, in comparison order.
    pub const ALL: [Policy; 3] = [
        Policy::RoundRobin,
        Policy::LeastLoaded,
        Policy::PlanCostAware,
    ];

    /// Instantiates the scheduler this policy names.
    pub fn scheduler(self) -> Box<dyn Scheduler> {
        match self {
            Policy::RoundRobin => Box::new(RoundRobin::default()),
            Policy::LeastLoaded => Box::new(LeastLoaded),
            Policy::PlanCostAware => Box::new(PlanCostAware),
        }
    }

    /// Stable policy name (matches [`Scheduler::name`]).
    pub fn name(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round-robin",
            Policy::LeastLoaded => "least-loaded",
            Policy::PlanCostAware => "plan-cost-aware",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_core::AcceleratorConfig;
    use reram_nn::models;

    fn cluster() -> Cluster {
        Cluster::homogeneous(
            3,
            &[models::lenet_spec(), models::alexnet_spec()],
            &AcceleratorConfig::default(),
        )
        .expect("buildable")
    }

    #[test]
    fn round_robin_cycles() {
        let c = cluster();
        let mut s = RoundRobin::default();
        let picks: Vec<usize> = (0..5).map(|_| s.pick(&c, 0, 0, 1)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn least_loaded_prefers_empty_queue() {
        let mut c = cluster();
        c.chips[0].queued_requests = 4;
        c.chips[1].queued_requests = 1;
        c.chips[2].queued_requests = 4;
        assert_eq!(LeastLoaded.pick(&c, 0, 0, 1), 1);
        c.chips[1].queued_requests = 4;
        // All equal: lowest id.
        assert_eq!(LeastLoaded.pick(&c, 0, 0, 1), 0);
    }

    #[test]
    fn cost_aware_sees_backlog_time_not_request_count() {
        let mut c = cluster();
        // Chip 0: one queued request, but it is a huge AlexNet backlog.
        c.chips[0].queued_requests = 1;
        c.chips[0].busy_until_ns = 10_000_000;
        // Chip 1: more queued requests, but nearly drained.
        c.chips[1].queued_requests = 3;
        c.chips[1].busy_until_ns = 1_000;
        c.chips[2].queued_requests = 3;
        c.chips[2].busy_until_ns = 2_000;
        // Least-loaded walks into the backlog; cost-aware does not.
        assert_eq!(LeastLoaded.pick(&c, 500, 0, 2), 0);
        assert_eq!(PlanCostAware.pick(&c, 500, 0, 2), 1);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in Policy::ALL {
            assert_eq!(p.scheduler().name(), p.name());
        }
    }
}
