//! The deterministic discrete-event loop.
//!
//! [`ServeSim`] drains a binary-heap event queue keyed on `(time, seq)` —
//! simulated nanoseconds plus a monotone sequence number, so simultaneous
//! events replay in insertion order and two runs of the same seed are
//! byte-identical. Wall-clock types are lint-banned from this crate; the
//! only clock is the head of the heap.
//!
//! Three event kinds close the loop:
//!
//! 1. `Arrival` — a request joins its model's batch queue
//!    ([`reram_telemetry::Event::RequestEnqueued`]); filling the batch
//!    dispatches it, opening one schedules a linger deadline.
//! 2. `BatchDeadline` — the oldest waiter lingered long enough; a partial
//!    batch dispatches unless the deadline went stale (generation
//!    mismatch).
//! 3. `BatchDone` — a chip finished a batch; every request in it completes
//!    ([`reram_telemetry::Event::RequestCompleted`]) and its latency is
//!    recorded.
//!
//! Dispatch asks the [`Scheduler`] for a chip, charges the chip's FIFO
//! queue with the plan-priced service latency, and emits
//! [`reram_telemetry::Event::BatchFormed`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use reram_core::plan::ExecutionPlan;
use reram_core::verify::{verify_serve, ServeShape, Violation};
use reram_core::AcceleratorConfig;
use reram_nn::NetworkSpec;
use reram_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::batcher::{BatchAction, Batcher, BatcherConfig};
use crate::cluster::Cluster;
use crate::report::{percentile_ns, ChipReport, ServeReport};
use crate::scheduler::{Policy, Scheduler};
use crate::workload::{generate_requests, ModelMix, Request, TrafficModel};
use crate::ServeError;

/// What happens at one simulated instant.
#[derive(Debug, Clone)]
enum EventKind {
    /// A request arrives at the serving layer.
    Arrival(Request),
    /// A dynamic batch's linger deadline fires.
    BatchDeadline { model: usize, generation: u64 },
    /// A chip finishes serving a batch.
    BatchDone { chip: usize, requests: Vec<Request> },
}

/// Heap entry ordered by `(at_ns, seq)` only; `seq` is unique per event, so
/// the ordering is total and consistent with this partial equality.
#[derive(Debug, Clone)]
struct HeapEvent {
    at_ns: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for HeapEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}

impl Eq for HeapEvent {}

impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, the simulation needs the
        // earliest event first.
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq))
    }
}

/// Everything a serving simulation needs besides the model catalog and the
/// chip configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Chips in the (homogeneous) cluster.
    pub chips: usize,
    /// Dynamic batching knobs.
    pub batcher: BatcherConfig,
    /// Batch placement policy.
    pub policy: Policy,
    /// Arrival process.
    pub traffic: TrafficModel,
    /// Relative traffic weight per catalog model (must match the catalog
    /// length; ignored for trace traffic).
    pub mix: Vec<f64>,
    /// Arrival horizon, simulated nanoseconds (arrivals stop here; the
    /// simulation runs on until every admitted request completes).
    pub horizon_ns: u64,
    /// Workload seed.
    pub seed: u64,
}

impl ServeConfig {
    /// Static feasibility check, no simulation: lowers one plan per catalog
    /// model and runs [`reram_core::verify::verify_serve`] over this
    /// config's shape — flagging a batcher linger that can never bind and
    /// an offered arrival rate at or beyond the cluster's plan-priced
    /// service capacity (queueing instability, `ρ = λ/μ ≥ 1`).
    ///
    /// # Errors
    ///
    /// Propagates the [`ServeError`] when a catalog model fails to lower
    /// or the traffic model is degenerate — there is nothing to verify.
    #[must_use = "the returned violations are the verification result"]
    pub fn verify(
        &self,
        catalog: &[NetworkSpec],
        accel: &AcceleratorConfig,
    ) -> Result<Vec<Violation>, ServeError> {
        let plans = catalog
            .iter()
            .map(|net| ExecutionPlan::lower(net, accel))
            .collect::<Result<Vec<_>, _>>()?;
        let shape = ServeShape {
            chips: self.chips,
            max_batch: self.batcher.max_batch,
            max_linger_ns: self.batcher.max_linger_ns,
            mean_arrival_rps: self.traffic.mean_rate_rps(self.horizon_ns),
            mix: self.mix.clone(),
        };
        Ok(verify_serve(&plans, &shape))
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            chips: 4,
            batcher: BatcherConfig::default(),
            policy: Policy::PlanCostAware,
            traffic: TrafficModel::Poisson {
                rate_rps: 100_000.0,
            },
            mix: vec![1.0, 1.0],
            horizon_ns: 10_000_000,
            seed: 42,
        }
    }
}

/// A runnable simulation: cluster + batcher + scheduler.
pub struct ServeSim {
    cluster: Cluster,
    batcher: Batcher,
    scheduler: Box<dyn Scheduler>,
    seed: u64,
    queue: BinaryHeap<HeapEvent>,
    next_seq: u64,
    latencies_ns: Vec<u64>,
    admitted: u64,
    completed: u64,
    batches: u64,
}

impl ServeSim {
    /// Builds a simulation over an existing cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadBatcher`] when `batcher.max_batch` is zero.
    #[must_use = "the built simulation is the result"]
    pub fn new(
        cluster: Cluster,
        batcher: BatcherConfig,
        scheduler: Box<dyn Scheduler>,
        seed: u64,
    ) -> Result<Self, ServeError> {
        if batcher.max_batch == 0 {
            return Err(ServeError::BadBatcher);
        }
        let models = cluster.models();
        Ok(Self {
            cluster,
            batcher: Batcher::new(models, batcher),
            scheduler,
            seed,
            queue: BinaryHeap::new(),
            next_seq: 0,
            latencies_ns: Vec::new(),
            admitted: 0,
            completed: 0,
            batches: 0,
        })
    }

    fn push_event(&mut self, at_ns: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(HeapEvent { at_ns, seq, kind });
    }

    /// Closes a batch: pick a chip, charge its FIFO queue with the
    /// plan-priced service latency, and schedule the completion.
    fn dispatch(&mut self, now_ns: u64, requests: Vec<Request>) {
        debug_assert!(!requests.is_empty(), "batches are never empty");
        let model = requests[0].model;
        let batch = requests.len();
        let id = self.scheduler.pick(&self.cluster, now_ns, model, batch);
        let chip = &mut self.cluster.chips[id];
        let service_ns = chip.batch_service_ns(model, batch);
        let start_ns = chip.busy_until_ns.max(now_ns);
        let done_ns = start_ns + service_ns;
        chip.busy_until_ns = done_ns;
        chip.busy_ns += service_ns;
        chip.queued_requests += batch;
        chip.batches_served += 1;
        chip.energy_pj += chip.batch_energy_pj(model, batch);
        self.batches += 1;
        telemetry::record(telemetry::Event::BatchFormed, 1);
        self.push_event(done_ns, EventKind::BatchDone { chip: id, requests });
    }

    /// Runs the simulation over a pre-generated arrival sequence until
    /// every admitted request completes, then reports.
    pub fn run(mut self, arrivals: Vec<Request>) -> ServeReport {
        for request in arrivals {
            self.push_event(request.arrival_ns, EventKind::Arrival(request));
        }
        let mut makespan_ns = 0u64;
        while let Some(event) = self.queue.pop() {
            let now_ns = event.at_ns;
            match event.kind {
                EventKind::Arrival(request) => {
                    self.admitted += 1;
                    telemetry::record(telemetry::Event::RequestEnqueued, 1);
                    match self.batcher.push(request, now_ns) {
                        BatchAction::Dispatch(batch) => self.dispatch(now_ns, batch),
                        BatchAction::Deadline {
                            model,
                            generation,
                            deadline_ns,
                        } => {
                            self.push_event(
                                deadline_ns,
                                EventKind::BatchDeadline { model, generation },
                            );
                        }
                        BatchAction::Wait => {}
                    }
                }
                EventKind::BatchDeadline { model, generation } => {
                    if let Some(batch) = self.batcher.flush_deadline(model, generation) {
                        self.dispatch(now_ns, batch);
                    }
                }
                EventKind::BatchDone { chip, requests } => {
                    let chip = &mut self.cluster.chips[chip];
                    chip.queued_requests -= requests.len();
                    chip.completed_requests += requests.len() as u64;
                    telemetry::record(telemetry::Event::RequestCompleted, requests.len() as u64);
                    makespan_ns = makespan_ns.max(now_ns);
                    for request in requests {
                        self.completed += 1;
                        self.latencies_ns.push(now_ns - request.arrival_ns);
                    }
                }
            }
        }
        debug_assert_eq!(self.batcher.pending(), 0, "every open batch must flush");
        self.report(makespan_ns)
    }

    fn report(mut self, makespan_ns: u64) -> ServeReport {
        self.latencies_ns.sort_unstable();
        let n = self.latencies_ns.len();
        let mean_latency_ns = if n == 0 {
            0.0
        } else {
            self.latencies_ns.iter().map(|&l| l as f64).sum::<f64>() / n as f64
        };
        let chips: Vec<ChipReport> = self
            .cluster
            .chips
            .iter()
            .map(|c| ChipReport {
                chip: c.id,
                completed_requests: c.completed_requests,
                batches_served: c.batches_served,
                utilization: if makespan_ns == 0 {
                    0.0
                } else {
                    c.busy_ns as f64 / makespan_ns as f64
                },
                energy_uj: c.energy_pj * 1e-6,
            })
            .collect();
        ServeReport {
            policy: self.scheduler.name().to_owned(),
            seed: self.seed,
            requests_admitted: self.admitted,
            requests_completed: self.completed,
            batches: self.batches,
            mean_batch_size: if self.batches == 0 {
                0.0
            } else {
                self.completed as f64 / self.batches as f64
            },
            makespan_ns,
            throughput_rps: if makespan_ns == 0 {
                0.0
            } else {
                self.completed as f64 / (makespan_ns as f64 * 1e-9)
            },
            mean_latency_ns,
            p50_latency_ns: percentile_ns(&self.latencies_ns, 0.50),
            p95_latency_ns: percentile_ns(&self.latencies_ns, 0.95),
            p99_latency_ns: percentile_ns(&self.latencies_ns, 0.99),
            max_latency_ns: self.latencies_ns.last().copied().unwrap_or(0),
            total_energy_uj: chips.iter().map(|c| c.energy_uj).sum(),
            chips,
        }
    }
}

/// One-call entry point: build a homogeneous cluster over `catalog`,
/// generate the seeded workload, and run it under the configured policy.
///
/// # Errors
///
/// Propagates every setup error: empty cluster/catalog, bad mix or traffic
/// parameters, a zero `max_batch`, or a model that fails to lower.
#[must_use = "the serving report is the result"]
pub fn simulate(
    config: &ServeConfig,
    catalog: &[NetworkSpec],
    accel: &AcceleratorConfig,
) -> Result<ServeReport, ServeError> {
    let cluster = Cluster::homogeneous(config.chips, catalog, accel)?;
    let mix = ModelMix::new(&config.mix)?;
    if mix.models() != catalog.len() {
        return Err(ServeError::BadMix);
    }
    let arrivals = generate_requests(&config.traffic, &mix, config.horizon_ns, config.seed)?;
    let sim = ServeSim::new(
        cluster,
        config.batcher,
        config.policy.scheduler(),
        config.seed,
    )?;
    Ok(sim.run(arrivals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_nn::models;

    fn catalog() -> [NetworkSpec; 2] {
        [models::lenet_spec(), models::alexnet_spec()]
    }

    fn config() -> ServeConfig {
        ServeConfig {
            chips: 4,
            traffic: TrafficModel::Poisson {
                rate_rps: 200_000.0,
            },
            mix: vec![0.7, 0.3],
            horizon_ns: 5_000_000,
            seed: 11,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn every_request_completes() {
        let report =
            simulate(&config(), &catalog(), &AcceleratorConfig::default()).expect("simulates");
        assert!(report.requests_admitted > 0);
        assert_eq!(report.requests_completed, report.requests_admitted);
        assert_eq!(
            report
                .chips
                .iter()
                .map(|c| c.completed_requests)
                .sum::<u64>(),
            report.requests_completed
        );
        let (p50, p95, p99) = (
            report.p50_latency_ns.expect("completions"),
            report.p95_latency_ns.expect("completions"),
            report.p99_latency_ns.expect("completions"),
        );
        assert!(p50 <= p95);
        assert!(p95 <= p99);
        assert!(p99 <= report.max_latency_ns);
        assert!(report.throughput_rps > 0.0);
        assert!(report.total_energy_uj > 0.0);
        assert!(report.mean_batch_size >= 1.0);
    }

    #[test]
    fn batching_amortizes_under_load() {
        // At a high arrival rate the size trigger dominates and batches
        // grow well beyond singletons.
        let mut cfg = config();
        cfg.traffic = TrafficModel::Poisson {
            rate_rps: 2_000_000.0,
        };
        let report = simulate(&cfg, &catalog(), &AcceleratorConfig::default()).expect("simulates");
        assert!(
            report.mean_batch_size > 4.0,
            "mean batch {}",
            report.mean_batch_size
        );
    }

    #[test]
    fn utilization_is_a_fraction_and_energy_adds_up() {
        let report =
            simulate(&config(), &catalog(), &AcceleratorConfig::default()).expect("simulates");
        for chip in &report.chips {
            assert!((0.0..=1.0).contains(&chip.utilization), "{chip:?}");
        }
        let sum: f64 = report.chips.iter().map(|c| c.energy_uj).sum();
        assert!((sum - report.total_energy_uj).abs() < 1e-9);
    }

    #[test]
    fn telemetry_events_flow() {
        use std::sync::Arc;
        let counters = Arc::new(telemetry::CounterRecorder::new());
        let report;
        {
            let _guard = telemetry::scoped_recorder(counters.clone());
            report =
                simulate(&config(), &catalog(), &AcceleratorConfig::default()).expect("simulates");
        }
        assert_eq!(
            counters.count(telemetry::Event::RequestEnqueued),
            report.requests_admitted
        );
        assert_eq!(
            counters.count(telemetry::Event::RequestCompleted),
            report.requests_completed
        );
        assert_eq!(
            counters.count(telemetry::Event::BatchFormed),
            report.batches
        );
    }

    #[test]
    fn zero_max_batch_is_rejected() {
        let mut cfg = config();
        cfg.batcher.max_batch = 0;
        assert_eq!(
            simulate(&cfg, &catalog(), &AcceleratorConfig::default()).unwrap_err(),
            ServeError::BadBatcher
        );
    }

    #[test]
    fn zero_completions_report_no_percentiles() {
        // An empty trace admits nothing: the batcher never fires, no batch
        // ever completes, and the percentile fields must be absent rather
        // than a bogus 0 ns tail.
        let mut cfg = config();
        cfg.traffic = TrafficModel::Trace { arrivals: vec![] };
        let report = simulate(&cfg, &catalog(), &AcceleratorConfig::default()).expect("simulates");
        assert_eq!(report.requests_completed, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.p50_latency_ns, None);
        assert_eq!(report.p95_latency_ns, None);
        assert_eq!(report.p99_latency_ns, None);
        let json = report.to_json();
        assert!(!json.contains("p95_latency_ns"), "{json}");
        assert_eq!(ServeReport::from_json(&json).expect("parse"), report);
    }

    #[test]
    fn default_config_verifies_feasible() {
        let violations = config()
            .verify(&catalog(), &AcceleratorConfig::default())
            .expect("verifiable");
        assert_eq!(violations, Vec::new());
    }

    #[test]
    fn overload_config_is_flagged_with_rho() {
        let mut cfg = config();
        cfg.chips = 1;
        cfg.traffic = TrafficModel::Poisson {
            rate_rps: 5_000_000_000.0,
        };
        let violations = cfg
            .verify(&catalog(), &AcceleratorConfig::default())
            .expect("verifiable");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::Overload { rho, .. } if *rho >= 1.0)),
            "expected an Overload violation, got {violations:?}"
        );
    }

    #[test]
    fn mix_must_match_catalog() {
        let mut cfg = config();
        cfg.mix = vec![1.0];
        assert_eq!(
            simulate(&cfg, &catalog(), &AcceleratorConfig::default()).unwrap_err(),
            ServeError::BadMix
        );
    }
}
