//! Discrete-event multi-chip serving simulator.
//!
//! The paper models one chip pipelined over one stream of inputs; this
//! crate models what sits *above* one chip when the accelerator serves
//! real traffic: request arrival, queueing, dynamic batching, and placement
//! across a pod of chips. Everything is priced analytically through the
//! [`reram_core::ExecutionPlan`] closed forms — a scheduling decision costs
//! exactly what the lowered plan says a batch occupies a chip for, so
//! policies can be compared without Monte-Carlo noise in the service model.
//!
//! The moving parts:
//!
//! * [`workload`] — seeded request generators (stationary Poisson, bursty
//!   two-state MMPP, replayable traces) over a model catalog, producing
//!   [`Request`]s tagged with a model index.
//! * [`cluster`] — a [`Cluster`] of [`Chip`]s, each wrapping one lowered
//!   [`reram_core::ExecutionPlan`] per catalog model and exposing
//!   busy-until / queue-depth state.
//! * [`batcher`] — a dynamic batcher ([`BatcherConfig`]): close a batch at
//!   `max_batch` requests or when the oldest waiter has lingered
//!   `max_linger_ns`, whichever comes first.
//! * [`scheduler`] — the pluggable [`Scheduler`] trait with round-robin,
//!   least-loaded, and plan-cost-aware policies ([`Policy`]).
//! * [`sim`] — the deterministic event loop ([`ServeSim`]): a binary-heap
//!   event queue over simulated nanoseconds (no wall clock anywhere), and
//!   the [`simulate`] convenience entry point.
//! * [`report`] — the serializable [`ServeReport`]: throughput, latency
//!   percentiles, per-chip utilization and energy.
//!
//! Simulated time is `u64` nanoseconds throughout. Same seed + same config
//! ⇒ byte-identical [`ServeReport`] JSON; the test suite pins that.
//!
//! ```
//! use reram_core::AcceleratorConfig;
//! use reram_nn::models;
//! use reram_serve::{simulate, Policy, ServeConfig, TrafficModel};
//!
//! let catalog = [models::lenet_spec(), models::alexnet_spec()];
//! let cfg = ServeConfig {
//!     policy: Policy::PlanCostAware,
//!     traffic: TrafficModel::Poisson { rate_rps: 200_000.0 },
//!     ..ServeConfig::default()
//! };
//! let report = simulate(&cfg, &catalog, &AcceleratorConfig::default()).unwrap();
//! assert_eq!(report.requests_completed, report.requests_admitted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cluster;
pub mod report;
pub mod scheduler;
pub mod sim;
pub mod workload;

pub use batcher::BatcherConfig;
pub use cluster::{Chip, Cluster};
pub use report::{ChipReport, ServeReport};
pub use scheduler::{LeastLoaded, PlanCostAware, Policy, RoundRobin, Scheduler};
pub use sim::{simulate, ServeConfig, ServeSim};
pub use workload::{generate_requests, ModelMix, Request, TrafficModel};

use reram_core::PlanError;

/// Why a serving simulation could not be set up.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The cluster would have no chips.
    NoChips,
    /// The model catalog is empty.
    NoModels,
    /// Mix weights do not match the catalog or sum to zero.
    BadMix,
    /// An arrival rate or dwell time is not positive and finite.
    BadTraffic,
    /// The batcher would never close a batch (`max_batch == 0`).
    BadBatcher,
    /// A catalog model could not be lowered onto the chip configuration.
    Plan(PlanError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoChips => write!(f, "cluster needs at least one chip"),
            ServeError::NoModels => write!(f, "model catalog is empty"),
            ServeError::BadMix => write!(
                f,
                "traffic mix must give one non-negative weight per catalog \
                 model, with a positive sum"
            ),
            ServeError::BadTraffic => {
                write!(
                    f,
                    "arrival rates and dwell times must be positive and finite"
                )
            }
            ServeError::BadBatcher => write!(f, "batcher max_batch must be positive"),
            ServeError::Plan(e) => write!(f, "cannot lower catalog model: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError::Plan(e)
    }
}
