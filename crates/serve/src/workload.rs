//! Seeded workload generators: stationary Poisson, bursty MMPP, and traces.
//!
//! A generator turns a [`TrafficModel`] plus a [`ModelMix`] into a sorted
//! vector of [`Request`]s over a fixed horizon of simulated nanoseconds.
//! All randomness comes from one seeded [`StdRng`], so a `(traffic, mix,
//! horizon, seed)` tuple always reproduces the same arrival sequence —
//! the foundation of the simulator's byte-identical replay guarantee.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::ServeError;

/// One inference request admitted to the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Dense id in arrival order, `0..n`.
    pub id: u64,
    /// Index into the model catalog this request targets.
    pub model: usize,
    /// Simulated arrival time, nanoseconds.
    pub arrival_ns: u64,
}

/// Relative traffic weights over the model catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMix {
    /// Cumulative normalized weights, one entry per catalog model; the last
    /// entry is 1.0.
    cumulative: Vec<f64>,
}

impl ModelMix {
    /// Builds a mix from one non-negative weight per catalog model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadMix`] when `weights` is empty, contains a
    /// negative or non-finite weight, or sums to zero.
    #[must_use = "the built mix is the result"]
    pub fn new(weights: &[f64]) -> Result<Self, ServeError> {
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ServeError::BadMix);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ServeError::BadMix);
        }
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Ok(Self { cumulative })
    }

    /// A mix sending equal traffic to each of `models` catalog entries.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadMix`] when `models == 0`.
    #[must_use = "the built mix is the result"]
    pub fn uniform(models: usize) -> Result<Self, ServeError> {
        Self::new(&vec![1.0; models])
    }

    /// Number of catalog models the mix covers.
    pub fn models(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one model index.
    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .iter()
            .position(|c| u < *c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

/// How requests arrive over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Stationary Poisson arrivals: exponential inter-arrival gaps at
    /// `rate_rps` requests per second.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
    },
    /// Two-state Markov-modulated Poisson process: the source alternates
    /// between a base state and a burst state, each with exponentially
    /// distributed dwell times, emitting Poisson arrivals at the state's
    /// rate. Models flash crowds and diurnal spikes.
    Bursty {
        /// Arrival rate in the base state, requests per second.
        base_rps: f64,
        /// Arrival rate in the burst state, requests per second.
        burst_rps: f64,
        /// Mean dwell time in the base state, nanoseconds.
        mean_base_ns: f64,
        /// Mean dwell time in the burst state, nanoseconds.
        mean_burst_ns: f64,
    },
    /// Replay a recorded trace of `(arrival_ns, model)` pairs verbatim
    /// (entries beyond the horizon are dropped; the mix is ignored).
    Trace {
        /// Arrival time and catalog model index per request.
        arrivals: Vec<(u64, usize)>,
    },
}

impl TrafficModel {
    /// Long-run mean arrival rate, requests per second — the `λ` the
    /// static feasibility check compares against the cluster's service
    /// capacity. Poisson is its rate; the bursty MMPP averages its two
    /// states by dwell time; a trace counts its in-horizon arrivals.
    #[must_use = "the computed rate is the result"]
    pub fn mean_rate_rps(&self, horizon_ns: u64) -> f64 {
        match self {
            TrafficModel::Poisson { rate_rps } => *rate_rps,
            TrafficModel::Bursty {
                base_rps,
                burst_rps,
                mean_base_ns,
                mean_burst_ns,
            } => {
                let dwell = mean_base_ns + mean_burst_ns;
                if dwell <= 0.0 || !dwell.is_finite() {
                    return 0.0;
                }
                (base_rps * mean_base_ns + burst_rps * mean_burst_ns) / dwell
            }
            TrafficModel::Trace { arrivals } => {
                if horizon_ns == 0 {
                    return 0.0;
                }
                let in_horizon = arrivals.iter().filter(|(t, _)| *t < horizon_ns).count();
                in_horizon as f64 / (horizon_ns as f64 * 1e-9)
            }
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        let ok = |x: f64| x.is_finite() && x > 0.0;
        match self {
            TrafficModel::Poisson { rate_rps } => {
                if !ok(*rate_rps) {
                    return Err(ServeError::BadTraffic);
                }
            }
            TrafficModel::Bursty {
                base_rps,
                burst_rps,
                mean_base_ns,
                mean_burst_ns,
            } => {
                if !(ok(*base_rps) && ok(*burst_rps) && ok(*mean_base_ns) && ok(*mean_burst_ns)) {
                    return Err(ServeError::BadTraffic);
                }
            }
            TrafficModel::Trace { .. } => {}
        }
        Ok(())
    }
}

/// Draws an exponential gap with the given mean, nanoseconds (≥ 1 so time
/// strictly advances between draws).
fn exp_gap_ns(mean_ns: f64, rng: &mut StdRng) -> u64 {
    let u: f64 = rng.gen();
    // ln(1 - u) is finite for u ∈ [0, 1).
    let gap = -mean_ns * (1.0 - u).ln();
    (gap.round() as u64).max(1)
}

/// Generates the sorted request sequence of `traffic` over `horizon_ns`
/// simulated nanoseconds, tagging each request with a model drawn from
/// `mix`.
///
/// # Errors
///
/// Returns [`ServeError::BadTraffic`] for non-positive rates or dwell
/// times, and [`ServeError::BadMix`] when a trace entry's model index is
/// outside the mix.
#[must_use = "the generated requests are the result"]
pub fn generate_requests(
    traffic: &TrafficModel,
    mix: &ModelMix,
    horizon_ns: u64,
    seed: u64,
) -> Result<Vec<Request>, ServeError> {
    traffic.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    match traffic {
        TrafficModel::Poisson { rate_rps } => {
            let mean_gap_ns = 1e9 / rate_rps;
            let mut t = 0u64;
            loop {
                t = t.saturating_add(exp_gap_ns(mean_gap_ns, &mut rng));
                if t >= horizon_ns {
                    break;
                }
                requests.push(Request {
                    id: requests.len() as u64,
                    model: mix.sample(&mut rng),
                    arrival_ns: t,
                });
            }
        }
        TrafficModel::Bursty {
            base_rps,
            burst_rps,
            mean_base_ns,
            mean_burst_ns,
        } => {
            let mut in_burst = false;
            let mut t = 0u64;
            let mut state_end = exp_gap_ns(*mean_base_ns, &mut rng);
            while t < horizon_ns {
                let rate = if in_burst { *burst_rps } else { *base_rps };
                let next = t.saturating_add(exp_gap_ns(1e9 / rate, &mut rng));
                if next >= state_end {
                    // State expires before the next arrival: switch state
                    // and restart the (memoryless) arrival draw there.
                    t = state_end;
                    in_burst = !in_burst;
                    let dwell = if in_burst {
                        *mean_burst_ns
                    } else {
                        *mean_base_ns
                    };
                    state_end = state_end.saturating_add(exp_gap_ns(dwell, &mut rng));
                    continue;
                }
                t = next;
                if t >= horizon_ns {
                    break;
                }
                requests.push(Request {
                    id: requests.len() as u64,
                    model: mix.sample(&mut rng),
                    arrival_ns: t,
                });
            }
        }
        TrafficModel::Trace { arrivals } => {
            for &(arrival_ns, model) in arrivals {
                if arrival_ns >= horizon_ns {
                    continue;
                }
                if model >= mix.models() {
                    return Err(ServeError::BadMix);
                }
                requests.push(Request {
                    id: 0,
                    model,
                    arrival_ns,
                });
            }
            requests.sort_by_key(|r| r.arrival_ns);
            for (i, r) in requests.iter_mut().enumerate() {
                r.id = i as u64;
            }
        }
    }
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(traffic: &TrafficModel, horizon_ns: u64, seed: u64) -> usize {
        let mix = ModelMix::uniform(2).expect("mix");
        generate_requests(traffic, &mix, horizon_ns, seed)
            .expect("generable")
            .len()
    }

    #[test]
    fn poisson_rate_is_respected_on_average() {
        // 100k rps over 10 ms ⇒ ~1000 arrivals.
        let n = count(
            &TrafficModel::Poisson {
                rate_rps: 100_000.0,
            },
            10_000_000,
            7,
        );
        assert!((800..1200).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn arrivals_are_sorted_unique_ids_and_within_horizon() {
        let mix = ModelMix::new(&[0.7, 0.3]).expect("mix");
        let reqs = generate_requests(
            &TrafficModel::Bursty {
                base_rps: 50_000.0,
                burst_rps: 500_000.0,
                mean_base_ns: 1_000_000.0,
                mean_burst_ns: 250_000.0,
            },
            &mix,
            5_000_000,
            3,
        )
        .expect("generable");
        assert!(!reqs.is_empty());
        for (i, pair) in reqs.windows(2).enumerate() {
            assert!(pair[0].arrival_ns <= pair[1].arrival_ns);
            assert_eq!(pair[0].id, i as u64);
        }
        assert!(reqs.iter().all(|r| r.arrival_ns < 5_000_000 && r.model < 2));
    }

    #[test]
    fn bursty_outpaces_base_rate() {
        let base = count(
            &TrafficModel::Poisson { rate_rps: 50_000.0 },
            20_000_000,
            11,
        );
        let bursty = count(
            &TrafficModel::Bursty {
                base_rps: 50_000.0,
                burst_rps: 1_000_000.0,
                mean_base_ns: 1_000_000.0,
                mean_burst_ns: 1_000_000.0,
            },
            20_000_000,
            11,
        );
        assert!(bursty > base, "bursty {bursty} <= base {base}");
    }

    #[test]
    fn same_seed_same_stream() {
        let traffic = TrafficModel::Poisson { rate_rps: 80_000.0 };
        let mix = ModelMix::uniform(3).expect("mix");
        let a = generate_requests(&traffic, &mix, 4_000_000, 99).expect("a");
        let b = generate_requests(&traffic, &mix, 4_000_000, 99).expect("b");
        assert_eq!(a, b);
        let c = generate_requests(&traffic, &mix, 4_000_000, 100).expect("c");
        assert_ne!(a, c);
    }

    #[test]
    fn trace_replays_sorted_and_validates_models() {
        let mix = ModelMix::uniform(2).expect("mix");
        let traffic = TrafficModel::Trace {
            arrivals: vec![(300, 1), (100, 0), (900_000, 0), (500, 1)],
        };
        let reqs = generate_requests(&traffic, &mix, 1_000, 0).expect("generable");
        assert_eq!(
            reqs.iter()
                .map(|r| (r.arrival_ns, r.model, r.id))
                .collect::<Vec<_>>(),
            vec![(100, 0, 0), (300, 1, 1), (500, 1, 2)]
        );
        let bad = TrafficModel::Trace {
            arrivals: vec![(1, 5)],
        };
        assert_eq!(
            generate_requests(&bad, &mix, 1_000, 0),
            Err(ServeError::BadMix)
        );
    }

    #[test]
    fn mean_rate_follows_each_traffic_model() {
        assert_eq!(
            TrafficModel::Poisson { rate_rps: 123.0 }.mean_rate_rps(1_000),
            123.0
        );
        // Equal dwell times average the two state rates.
        let bursty = TrafficModel::Bursty {
            base_rps: 100.0,
            burst_rps: 300.0,
            mean_base_ns: 1_000.0,
            mean_burst_ns: 1_000.0,
        };
        assert!((bursty.mean_rate_rps(1_000) - 200.0).abs() < 1e-12);
        // 3 arrivals inside a 1 ms horizon (the 4th is outside) = 3000 rps.
        let trace = TrafficModel::Trace {
            arrivals: vec![(0, 0), (10, 0), (999_999, 1), (1_000_000, 1)],
        };
        assert!((trace.mean_rate_rps(1_000_000) - 3000.0).abs() < 1e-9);
        assert_eq!(trace.mean_rate_rps(0), 0.0);
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let mix = ModelMix::uniform(1).expect("mix");
        for traffic in [
            TrafficModel::Poisson { rate_rps: 0.0 },
            TrafficModel::Poisson {
                rate_rps: f64::INFINITY,
            },
            TrafficModel::Bursty {
                base_rps: 1.0,
                burst_rps: -2.0,
                mean_base_ns: 1.0,
                mean_burst_ns: 1.0,
            },
        ] {
            assert_eq!(
                generate_requests(&traffic, &mix, 1_000, 0),
                Err(ServeError::BadTraffic)
            );
        }
        assert_eq!(ModelMix::new(&[]).unwrap_err(), ServeError::BadMix);
        assert_eq!(ModelMix::new(&[0.0, 0.0]).unwrap_err(), ServeError::BadMix);
        assert_eq!(ModelMix::new(&[1.0, -1.0]).unwrap_err(), ServeError::BadMix);
    }
}
