//! A pod of accelerator chips, each wrapping lowered execution plans.
//!
//! Every [`Chip`] holds one [`ExecutionPlan`] per catalog model, lowered
//! for that chip's [`AcceleratorConfig`], plus the runtime state the
//! schedulers read: when its FIFO dispatch queue drains (`busy_until_ns`),
//! how many requests are dispatched but not yet completed, and the running
//! utilization/energy tallies the final report aggregates. Chips serve one
//! batch at a time in dispatch order — the inter-layer pipeline inside a
//! chip is already priced into the batch latency closed form, so the
//! serving layer never re-simulates individual layers.

use reram_core::{AcceleratorConfig, ExecutionPlan};
use reram_nn::NetworkSpec;

use crate::ServeError;

/// One accelerator chip plus its serving-time state.
#[derive(Debug, Clone)]
pub struct Chip {
    /// Chip index within the cluster.
    pub id: usize,
    /// One lowered plan per catalog model.
    plans: Vec<ExecutionPlan>,
    /// Simulated time at which the chip's dispatch queue drains.
    pub busy_until_ns: u64,
    /// Requests dispatched to this chip and not yet completed.
    pub queued_requests: usize,
    /// Accumulated busy (serving) time, nanoseconds.
    pub busy_ns: u64,
    /// Requests completed by this chip.
    pub completed_requests: u64,
    /// Batches served by this chip.
    pub batches_served: u64,
    /// Accumulated crossbar + buffer energy, picojoules.
    pub energy_pj: f64,
}

impl Chip {
    fn new(id: usize, plans: Vec<ExecutionPlan>) -> Self {
        Self {
            id,
            plans,
            busy_until_ns: 0,
            queued_requests: 0,
            busy_ns: 0,
            completed_requests: 0,
            batches_served: 0,
            energy_pj: 0.0,
        }
    }

    /// The lowered plan for one catalog model.
    ///
    /// # Panics
    ///
    /// Panics if `model` is not a catalog index.
    pub fn plan(&self, model: usize) -> &ExecutionPlan {
        assert!(model < self.plans.len(), "model {model} not in catalog");
        &self.plans[model]
    }

    /// Service latency of one batch of `batch` requests of `model` on this
    /// chip, simulated nanoseconds (plan fill + initiation intervals,
    /// rounded up to a whole tick).
    ///
    /// # Panics
    ///
    /// Panics if `model` is not a catalog index or `batch` is zero.
    pub fn batch_service_ns(&self, model: usize, batch: usize) -> u64 {
        (self.plan(model).batch_inference_latency_ns(batch).ceil() as u64).max(1)
    }

    /// Energy of serving one batch: per-input forward crossbar energy plus
    /// the inference share of buffer traffic, picojoules.
    ///
    /// # Panics
    ///
    /// Panics if `model` is not a catalog index.
    pub fn batch_energy_pj(&self, model: usize, batch: usize) -> f64 {
        let plan = self.plan(model);
        plan.batch_forward_energy_pj(batch) + batch as f64 * plan.inference_buffer_energy_pj()
    }

    /// Predicted completion time of a batch dispatched now: the chip works
    /// FIFO, so the batch starts when the queue drains and occupies the
    /// chip for the plan-priced service latency.
    ///
    /// # Panics
    ///
    /// Panics if `model` is not a catalog index or `batch` is zero.
    pub fn predicted_completion_ns(&self, now_ns: u64, model: usize, batch: usize) -> u64 {
        self.busy_until_ns.max(now_ns) + self.batch_service_ns(model, batch)
    }
}

/// A cluster of chips serving one model catalog.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The chips, indexed by [`Chip::id`].
    pub chips: Vec<Chip>,
    /// Human-readable model names, indexed by catalog position.
    pub model_names: Vec<String>,
}

impl Cluster {
    /// Builds a homogeneous cluster: `n` identical chips, each loaded with
    /// every catalog model lowered for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NoChips`] / [`ServeError::NoModels`] for empty
    /// inputs and [`ServeError::Plan`] when a model fails to lower.
    #[must_use = "the built cluster is the result"]
    pub fn homogeneous(
        n: usize,
        catalog: &[NetworkSpec],
        config: &AcceleratorConfig,
    ) -> Result<Self, ServeError> {
        Self::heterogeneous(&vec![config.clone(); n], catalog)
    }

    /// Builds a cluster with one [`AcceleratorConfig`] per chip — chips may
    /// differ in crossbar geometry or replication budget, and each prices
    /// batches through its own lowered plans.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NoChips`] / [`ServeError::NoModels`] for empty
    /// inputs and [`ServeError::Plan`] when a model fails to lower on any
    /// chip's configuration.
    #[must_use = "the built cluster is the result"]
    pub fn heterogeneous(
        configs: &[AcceleratorConfig],
        catalog: &[NetworkSpec],
    ) -> Result<Self, ServeError> {
        if configs.is_empty() {
            return Err(ServeError::NoChips);
        }
        if catalog.is_empty() {
            return Err(ServeError::NoModels);
        }
        let mut chips = Vec::with_capacity(configs.len());
        for (id, config) in configs.iter().enumerate() {
            let plans = catalog
                .iter()
                .map(|net| ExecutionPlan::lower(net, config))
                .collect::<Result<Vec<_>, _>>()?;
            chips.push(Chip::new(id, plans));
        }
        Ok(Self {
            chips,
            model_names: catalog.iter().map(|n| n.name.clone()).collect(),
        })
    }

    /// Number of chips.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the cluster has no chips (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Number of catalog models each chip serves.
    pub fn models(&self) -> usize {
        self.model_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_nn::models;

    fn cluster() -> Cluster {
        Cluster::homogeneous(
            3,
            &[models::lenet_spec(), models::alexnet_spec()],
            &AcceleratorConfig::default(),
        )
        .expect("buildable")
    }

    #[test]
    fn homogeneous_builds_all_chips_and_models() {
        let c = cluster();
        assert_eq!(c.len(), 3);
        assert_eq!(c.models(), 2);
        assert_eq!(c.model_names, vec!["lenet-mnist", "alexnet-imagenet"]);
        for (i, chip) in c.chips.iter().enumerate() {
            assert_eq!(chip.id, i);
            assert_eq!(chip.busy_until_ns, 0);
            assert_eq!(chip.queued_requests, 0);
        }
    }

    #[test]
    fn batch_pricing_follows_the_plan_closed_forms() {
        let c = cluster();
        let chip = &c.chips[0];
        for model in 0..c.models() {
            let plan = chip.plan(model);
            let want = plan.batch_inference_latency_ns(8).ceil() as u64;
            assert_eq!(chip.batch_service_ns(model, 8), want.max(1));
            // Batching amortizes: 8 together beat 8 separate dispatches.
            assert!(8 * chip.batch_service_ns(model, 1) > chip.batch_service_ns(model, 8));
            let e = chip.batch_energy_pj(model, 4);
            assert!((e / 4.0 - chip.batch_energy_pj(model, 1)).abs() < 1e-6);
        }
        // AlexNet batches cost more than LeNet batches on the same chip.
        assert!(chip.batch_service_ns(1, 8) > chip.batch_service_ns(0, 8));
    }

    #[test]
    fn predicted_completion_respects_fifo_backlog() {
        let mut c = cluster();
        let idle = c.chips[0].predicted_completion_ns(1_000, 0, 4);
        assert_eq!(idle, 1_000 + c.chips[0].batch_service_ns(0, 4));
        c.chips[0].busy_until_ns = 50_000;
        let backed_up = c.chips[0].predicted_completion_ns(1_000, 0, 4);
        assert_eq!(backed_up, 50_000 + c.chips[0].batch_service_ns(0, 4));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let cfg = AcceleratorConfig::default();
        assert_eq!(
            Cluster::homogeneous(0, &[models::lenet_spec()], &cfg).unwrap_err(),
            ServeError::NoChips
        );
        assert_eq!(
            Cluster::homogeneous(2, &[], &cfg).unwrap_err(),
            ServeError::NoModels
        );
    }

    #[test]
    fn lowering_errors_surface() {
        let cfg =
            AcceleratorConfig::default().with_replication(reram_core::ReplicationPolicy::Fixed(0));
        let err = Cluster::homogeneous(1, &[models::lenet_spec()], &cfg).unwrap_err();
        assert!(matches!(err, ServeError::Plan(_)));
    }
}
