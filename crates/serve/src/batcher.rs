//! Dynamic batching: amortize crossbar MVM passes across waiting requests.
//!
//! One logical queue per catalog model accumulates requests. A batch closes
//! and is handed to the scheduler when either trigger fires:
//!
//! * **size** — `max_batch` requests are waiting (closed immediately on the
//!   arrival that fills it), or
//! * **linger** — the *oldest* waiter has been queued `max_linger_ns`
//!   simulated nanoseconds (closed by a deadline event).
//!
//! Batching trades the fill of one pipeline pass for per-input initiation
//! intervals (see [`reram_core::ExecutionPlan::batch_inference_latency_ns`]),
//! mirroring the in-flight residency model of `core::chip`: a batch of `B`
//! occupies a chip once instead of `B` times.
//!
//! Deadline staleness is handled with per-queue generation counters: each
//! generation (the lifetime of one accumulating batch) schedules exactly
//! one deadline event when its first request arrives, and a deadline whose
//! generation no longer matches (the batch already closed on size) is
//! ignored by the event loop.

use serde::{Deserialize, Serialize};

use crate::workload::Request;

/// Dynamic batcher policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatcherConfig {
    /// Close a batch as soon as this many requests wait (per model).
    pub max_batch: usize,
    /// Close a (partial) batch once its oldest request has waited this many
    /// simulated nanoseconds.
    pub max_linger_ns: u64,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_linger_ns: 20_000,
        }
    }
}

/// What the batcher wants done after admitting one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchAction {
    /// The size trigger fired: dispatch this batch now.
    Dispatch(Vec<Request>),
    /// The request opened a fresh batch: schedule its linger deadline.
    Deadline {
        /// Catalog model whose queue opened.
        model: usize,
        /// Generation the deadline belongs to (for staleness checks).
        generation: u64,
        /// Absolute simulated time the deadline fires, nanoseconds.
        deadline_ns: u64,
    },
    /// The request joined an already-open batch: nothing to schedule.
    Wait,
}

#[derive(Debug, Clone, Default)]
struct ModelQueue {
    pending: Vec<Request>,
    generation: u64,
}

/// Per-model dynamic batching state.
#[derive(Debug, Clone)]
pub struct Batcher {
    config: BatcherConfig,
    queues: Vec<ModelQueue>,
}

impl Batcher {
    /// A batcher with one queue per catalog model.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` is zero (validated upstream by
    /// [`crate::sim::ServeSim`]).
    pub fn new(models: usize, config: BatcherConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        Self {
            config,
            queues: (0..models).map(|_| ModelQueue::default()).collect(),
        }
    }

    /// Admits one request at its arrival time.
    pub fn push(&mut self, request: Request, now_ns: u64) -> BatchAction {
        let model = request.model;
        let queue = &mut self.queues[model];
        queue.pending.push(request);
        if queue.pending.len() >= self.config.max_batch {
            let batch = std::mem::take(&mut queue.pending);
            queue.generation += 1;
            return BatchAction::Dispatch(batch);
        }
        if queue.pending.len() == 1 {
            return BatchAction::Deadline {
                model,
                generation: queue.generation,
                // Saturate: an effectively-infinite linger must clamp to
                // the end of simulated time, not wrap past `now_ns`.
                deadline_ns: now_ns.saturating_add(self.config.max_linger_ns),
            };
        }
        BatchAction::Wait
    }

    /// Handles a linger deadline: returns the partial batch to dispatch, or
    /// `None` when the deadline is stale (its batch already closed on the
    /// size trigger).
    pub fn flush_deadline(&mut self, model: usize, generation: u64) -> Option<Vec<Request>> {
        let queue = &mut self.queues[model];
        if queue.generation != generation || queue.pending.is_empty() {
            return None;
        }
        queue.generation += 1;
        Some(std::mem::take(&mut queue.pending))
    }

    /// Requests currently waiting in an open batch, summed over models.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.pending.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, model: usize, arrival_ns: u64) -> Request {
        Request {
            id,
            model,
            arrival_ns,
        }
    }

    #[test]
    fn size_trigger_closes_exactly_at_max_batch() {
        let mut b = Batcher::new(
            1,
            BatcherConfig {
                max_batch: 3,
                max_linger_ns: 100,
            },
        );
        assert!(matches!(
            b.push(req(0, 0, 10), 10),
            BatchAction::Deadline {
                model: 0,
                generation: 0,
                deadline_ns: 110,
            }
        ));
        assert_eq!(b.push(req(1, 0, 11), 11), BatchAction::Wait);
        match b.push(req(2, 0, 12), 12) {
            BatchAction::Dispatch(batch) => {
                assert_eq!(
                    batch.iter().map(|r| r.id).collect::<Vec<_>>(),
                    vec![0, 1, 2]
                );
            }
            other => panic!("expected dispatch, got {other:?}"),
        }
        assert_eq!(b.pending(), 0);
        // The stale deadline for generation 0 must now be a no-op.
        assert_eq!(b.flush_deadline(0, 0), None);
    }

    #[test]
    fn linger_trigger_flushes_partial_batches() {
        let mut b = Batcher::new(2, BatcherConfig::default());
        b.push(req(0, 1, 5), 5);
        b.push(req(1, 1, 9), 9);
        assert_eq!(b.pending(), 2);
        let batch = b.flush_deadline(1, 0).expect("open batch flushes");
        assert_eq!(batch.len(), 2);
        // Double-flush of the same generation is stale.
        assert_eq!(b.flush_deadline(1, 0), None);
        // A new generation restarts cleanly with its own deadline.
        assert!(matches!(
            b.push(req(2, 1, 50), 50),
            BatchAction::Deadline { generation: 1, .. }
        ));
    }

    #[test]
    fn huge_linger_saturates_instead_of_wrapping() {
        let mut b = Batcher::new(
            1,
            BatcherConfig {
                max_batch: 4,
                max_linger_ns: u64::MAX,
            },
        );
        match b.push(req(0, 0, 1_000), 1_000) {
            BatchAction::Deadline { deadline_ns, .. } => {
                assert_eq!(deadline_ns, u64::MAX, "deadline wrapped past now");
            }
            other => panic!("expected deadline, got {other:?}"),
        }
    }

    #[test]
    fn queues_are_per_model() {
        let mut b = Batcher::new(
            2,
            BatcherConfig {
                max_batch: 2,
                max_linger_ns: 100,
            },
        );
        b.push(req(0, 0, 1), 1);
        b.push(req(1, 1, 2), 2);
        assert_eq!(b.pending(), 2);
        // Filling model 0 must not flush model 1.
        match b.push(req(2, 0, 3), 3) {
            BatchAction::Dispatch(batch) => assert!(batch.iter().all(|r| r.model == 0)),
            other => panic!("expected dispatch, got {other:?}"),
        }
        assert_eq!(b.pending(), 1);
    }
}
