//! The serializable outcome of one serving simulation.

use serde::{Deserialize, Error, Serialize, Value};

/// Per-chip serving statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipReport {
    /// Chip id within the cluster.
    pub chip: usize,
    /// Requests this chip completed.
    pub completed_requests: u64,
    /// Batches this chip served.
    pub batches_served: u64,
    /// Fraction of the makespan the chip spent serving, `0..=1`.
    pub utilization: f64,
    /// Crossbar + buffer energy this chip spent, microjoules.
    pub energy_uj: f64,
}

/// Aggregate result of one serving simulation run.
///
/// Produced by [`crate::ServeSim::run`]; fully deterministic for a given
/// seed and configuration, including its [`ServeReport::to_json`] bytes.
///
/// The latency percentiles are `None` when the run completed zero requests
/// — a percentile of an empty sample has no value, and reporting `0` would
/// read as an impossibly fast tail. `None` percentiles are omitted from
/// the JSON encoding entirely (and parse back as `None` when absent), so
/// reports from completed runs keep their previous byte layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Scheduling policy that produced the run.
    pub policy: String,
    /// Workload seed.
    pub seed: u64,
    /// Requests admitted into the simulation.
    pub requests_admitted: u64,
    /// Requests completed (equals admitted when the run drains).
    pub requests_completed: u64,
    /// Dynamic batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Simulated time of the last completion, nanoseconds.
    pub makespan_ns: u64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Mean request latency (completion − arrival), nanoseconds.
    pub mean_latency_ns: f64,
    /// Median request latency, nanoseconds (`None` with zero completions).
    pub p50_latency_ns: Option<u64>,
    /// 95th-percentile request latency, nanoseconds (`None` with zero
    /// completions).
    pub p95_latency_ns: Option<u64>,
    /// 99th-percentile request latency, nanoseconds (`None` with zero
    /// completions).
    pub p99_latency_ns: Option<u64>,
    /// Worst request latency, nanoseconds.
    pub max_latency_ns: u64,
    /// Total energy across chips, microjoules.
    pub total_energy_uj: f64,
    /// Per-chip breakdown, indexed by chip id.
    pub chips: Vec<ChipReport>,
}

// Hand-written (de)serialization: the derive stand-in has no field
// attributes, and the percentile fields must be *skipped* when `None`
// rather than encoded as `null` to keep completed-run reports byte-stable.
impl Serialize for ServeReport {
    fn serialize(&self) -> Value {
        let mut entries = vec![
            ("policy".to_owned(), self.policy.serialize()),
            ("seed".to_owned(), self.seed.serialize()),
            (
                "requests_admitted".to_owned(),
                self.requests_admitted.serialize(),
            ),
            (
                "requests_completed".to_owned(),
                self.requests_completed.serialize(),
            ),
            ("batches".to_owned(), self.batches.serialize()),
            (
                "mean_batch_size".to_owned(),
                self.mean_batch_size.serialize(),
            ),
            ("makespan_ns".to_owned(), self.makespan_ns.serialize()),
            ("throughput_rps".to_owned(), self.throughput_rps.serialize()),
            (
                "mean_latency_ns".to_owned(),
                self.mean_latency_ns.serialize(),
            ),
        ];
        for (name, value) in [
            ("p50_latency_ns", self.p50_latency_ns),
            ("p95_latency_ns", self.p95_latency_ns),
            ("p99_latency_ns", self.p99_latency_ns),
        ] {
            if let Some(ns) = value {
                entries.push((name.to_owned(), ns.serialize()));
            }
        }
        entries.push(("max_latency_ns".to_owned(), self.max_latency_ns.serialize()));
        entries.push((
            "total_energy_uj".to_owned(),
            self.total_energy_uj.serialize(),
        ));
        entries.push(("chips".to_owned(), self.chips.serialize()));
        Value::Map(entries)
    }
}

impl Deserialize for ServeReport {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        fn req<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
            let field = value
                .field(name)
                .ok_or_else(|| Error::new(format!("missing field `{name}` in ServeReport")))?;
            T::deserialize(field)
        }
        // Absent percentile fields mean a zero-completion run.
        fn opt(value: &Value, name: &str) -> Result<Option<u64>, Error> {
            match value.field(name) {
                None | Some(Value::Null) => Ok(None),
                Some(field) => u64::deserialize(field).map(Some),
            }
        }
        value.as_map("struct ServeReport")?;
        Ok(Self {
            policy: req(value, "policy")?,
            seed: req(value, "seed")?,
            requests_admitted: req(value, "requests_admitted")?,
            requests_completed: req(value, "requests_completed")?,
            batches: req(value, "batches")?,
            mean_batch_size: req(value, "mean_batch_size")?,
            makespan_ns: req(value, "makespan_ns")?,
            throughput_rps: req(value, "throughput_rps")?,
            mean_latency_ns: req(value, "mean_latency_ns")?,
            p50_latency_ns: opt(value, "p50_latency_ns")?,
            p95_latency_ns: opt(value, "p95_latency_ns")?,
            p99_latency_ns: opt(value, "p99_latency_ns")?,
            max_latency_ns: req(value, "max_latency_ns")?,
            total_energy_uj: req(value, "total_energy_uj")?,
            chips: req(value, "chips")?,
        })
    }
}

impl ServeReport {
    /// Serializes to pretty-printed JSON (byte-stable per seed + config).
    #[must_use = "the rendered JSON is the result"]
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error on malformed input.
    #[must_use = "the parsed report is the result"]
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }

    /// Mean per-chip utilization, `0..=1`.
    #[must_use = "the computed utilization is the result"]
    pub fn mean_utilization(&self) -> f64 {
        if self.chips.is_empty() {
            return 0.0;
        }
        self.chips.iter().map(|c| c.utilization).sum::<f64>() / self.chips.len() as f64
    }
}

/// The `q`-quantile of sorted latencies via the nearest-rank method
/// (`ceil(q·n)`-th smallest; `q` in `(0, 1]`). `None` for an empty sample —
/// an empty run has no percentile, not a zero-nanosecond one.
pub(crate) fn percentile_ns(sorted_latencies_ns: &[u64], q: f64) -> Option<u64> {
    if sorted_latencies_ns.is_empty() {
        return None;
    }
    let n = sorted_latencies_ns.len();
    let rank = (q * n as f64).ceil() as usize;
    Some(sorted_latencies_ns[rank.clamp(1, n) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&lat, 0.50), Some(50));
        assert_eq!(percentile_ns(&lat, 0.95), Some(95));
        assert_eq!(percentile_ns(&lat, 0.99), Some(99));
        assert_eq!(percentile_ns(&lat, 1.0), Some(100));
        assert_eq!(percentile_ns(&[42], 0.99), Some(42));
        assert_eq!(percentile_ns(&[], 0.5), None);
    }

    fn sample() -> ServeReport {
        ServeReport {
            policy: "plan-cost-aware".into(),
            seed: 7,
            requests_admitted: 10,
            requests_completed: 10,
            batches: 3,
            mean_batch_size: 10.0 / 3.0,
            makespan_ns: 123_456,
            throughput_rps: 81_000.5,
            mean_latency_ns: 1_500.25,
            p50_latency_ns: Some(1_200),
            p95_latency_ns: Some(3_000),
            p99_latency_ns: Some(4_500),
            max_latency_ns: 5_000,
            total_energy_uj: 12.75,
            chips: vec![ChipReport {
                chip: 0,
                completed_requests: 10,
                batches_served: 3,
                utilization: 0.625,
                energy_uj: 12.75,
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let report = sample();
        let back = ServeReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back, report);
        assert!((report.mean_utilization() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn none_percentiles_are_skipped_and_round_trip() {
        let report = ServeReport {
            requests_admitted: 0,
            requests_completed: 0,
            batches: 0,
            mean_batch_size: 0.0,
            makespan_ns: 0,
            throughput_rps: 0.0,
            mean_latency_ns: 0.0,
            p50_latency_ns: None,
            p95_latency_ns: None,
            p99_latency_ns: None,
            max_latency_ns: 0,
            ..sample()
        };
        let json = report.to_json();
        assert!(!json.contains("p50_latency_ns"), "{json}");
        assert!(!json.contains("p99_latency_ns"), "{json}");
        let back = ServeReport::from_json(&json).expect("parse");
        assert_eq!(back, report);
    }
}
