//! The serializable outcome of one serving simulation.

use serde::{Deserialize, Serialize};

/// Per-chip serving statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipReport {
    /// Chip id within the cluster.
    pub chip: usize,
    /// Requests this chip completed.
    pub completed_requests: u64,
    /// Batches this chip served.
    pub batches_served: u64,
    /// Fraction of the makespan the chip spent serving, `0..=1`.
    pub utilization: f64,
    /// Crossbar + buffer energy this chip spent, microjoules.
    pub energy_uj: f64,
}

/// Aggregate result of one serving simulation run.
///
/// Produced by [`crate::ServeSim::run`]; fully deterministic for a given
/// seed and configuration, including its [`ServeReport::to_json`] bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Scheduling policy that produced the run.
    pub policy: String,
    /// Workload seed.
    pub seed: u64,
    /// Requests admitted into the simulation.
    pub requests_admitted: u64,
    /// Requests completed (equals admitted when the run drains).
    pub requests_completed: u64,
    /// Dynamic batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Simulated time of the last completion, nanoseconds.
    pub makespan_ns: u64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Mean request latency (completion − arrival), nanoseconds.
    pub mean_latency_ns: f64,
    /// Median request latency, nanoseconds.
    pub p50_latency_ns: u64,
    /// 95th-percentile request latency, nanoseconds.
    pub p95_latency_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_latency_ns: u64,
    /// Worst request latency, nanoseconds.
    pub max_latency_ns: u64,
    /// Total energy across chips, microjoules.
    pub total_energy_uj: f64,
    /// Per-chip breakdown, indexed by chip id.
    pub chips: Vec<ChipReport>,
}

impl ServeReport {
    /// Serializes to pretty-printed JSON (byte-stable per seed + config).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }

    /// Mean per-chip utilization, `0..=1`.
    pub fn mean_utilization(&self) -> f64 {
        if self.chips.is_empty() {
            return 0.0;
        }
        self.chips.iter().map(|c| c.utilization).sum::<f64>() / self.chips.len() as f64
    }
}

/// The `q`-quantile of sorted latencies via the nearest-rank method
/// (`ceil(q·n)`-th smallest; `q` in `(0, 1]`).
pub(crate) fn percentile_ns(sorted_latencies_ns: &[u64], q: f64) -> u64 {
    if sorted_latencies_ns.is_empty() {
        return 0;
    }
    let n = sorted_latencies_ns.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted_latencies_ns[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&lat, 0.50), 50);
        assert_eq!(percentile_ns(&lat, 0.95), 95);
        assert_eq!(percentile_ns(&lat, 0.99), 99);
        assert_eq!(percentile_ns(&lat, 1.0), 100);
        assert_eq!(percentile_ns(&[42], 0.99), 42);
        assert_eq!(percentile_ns(&[], 0.5), 0);
    }

    #[test]
    fn json_round_trip() {
        let report = ServeReport {
            policy: "plan-cost-aware".into(),
            seed: 7,
            requests_admitted: 10,
            requests_completed: 10,
            batches: 3,
            mean_batch_size: 10.0 / 3.0,
            makespan_ns: 123_456,
            throughput_rps: 81_000.5,
            mean_latency_ns: 1_500.25,
            p50_latency_ns: 1_200,
            p95_latency_ns: 3_000,
            p99_latency_ns: 4_500,
            max_latency_ns: 5_000,
            total_energy_uj: 12.75,
            chips: vec![ChipReport {
                chip: 0,
                completed_requests: 10,
                batches_served: 3,
                utilization: 0.625,
                energy_uj: 12.75,
            }],
        };
        let back = ServeReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back, report);
        assert!((report.mean_utilization() - 0.625).abs() < 1e-12);
    }
}
