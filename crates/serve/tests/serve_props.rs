//! Scheduler correctness and replay properties of the serving simulator.
//!
//! Two guarantees every scheduling policy must uphold, pinned here rather
//! than per-policy:
//!
//! 1. **Request conservation** — every admitted request completes exactly
//!    once, never before it arrived, and per-chip completion tallies sum to
//!    the total (no request is lost, duplicated, or time-travels).
//! 2. **Determinism** — the same seed and configuration reproduce a
//!    byte-identical [`ServeReport`] JSON, which is what makes policy
//!    comparisons and the `repro -- serve` artifact replayable.

use proptest::prelude::*;
use reram_core::AcceleratorConfig;
use reram_nn::{models, NetworkSpec};
use reram_serve::{
    generate_requests, simulate, Cluster, ModelMix, Policy, ServeConfig, ServeSim, TrafficModel,
};

fn catalog() -> [NetworkSpec; 2] {
    [models::lenet_spec(), models::alexnet_spec()]
}

fn config(policy: Policy, rate_rps: f64, seed: u64) -> ServeConfig {
    ServeConfig {
        chips: 4,
        policy,
        traffic: TrafficModel::Poisson { rate_rps },
        mix: vec![0.7, 0.3],
        horizon_ns: 2_000_000,
        seed,
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation holds for every policy across random loads, fleet
    /// sizes, and batcher knobs: completions equal admissions, chips
    /// account for every request, and no latency is negative (completion
    /// time ≥ arrival time by construction of `latency = done - arrival`,
    /// which would underflow and fail loudly if violated).
    #[test]
    fn requests_are_conserved_across_policies(
        seed in 0u64..1_000,
        chips in 1usize..6,
        max_batch in 1usize..24,
        rate_khz in 50u64..2_000,
    ) {
        for policy in Policy::ALL {
            let mut cfg = config(policy, rate_khz as f64 * 1e3, seed);
            cfg.chips = chips;
            cfg.batcher.max_batch = max_batch;
            let report = simulate(&cfg, &catalog(), &AcceleratorConfig::default())
                .expect("simulates");
            prop_assert_eq!(report.requests_completed, report.requests_admitted);
            prop_assert_eq!(
                report.chips.iter().map(|c| c.completed_requests).sum::<u64>(),
                report.requests_completed
            );
            prop_assert_eq!(report.chips.len(), chips);
            prop_assert!(report.batches > 0 || report.requests_admitted == 0);
            prop_assert!(report.p99_latency_ns.unwrap_or(0) <= report.max_latency_ns);
            // Every batch completes after the arrival horizon's first
            // request, so a drained run's makespan covers all latencies.
            prop_assert!(u128::from(report.max_latency_ns) <= u128::from(report.makespan_ns));
        }
    }
}

/// Driving the simulator directly (not through `simulate`) conserves each
/// request id exactly once — the id-level statement of conservation.
#[test]
fn each_admitted_id_completes_exactly_once() {
    let mix = ModelMix::new(&[0.5, 0.5]).expect("mix");
    let arrivals = generate_requests(
        &TrafficModel::Bursty {
            base_rps: 100_000.0,
            burst_rps: 1_500_000.0,
            mean_base_ns: 500_000.0,
            mean_burst_ns: 200_000.0,
        },
        &mix,
        3_000_000,
        17,
    )
    .expect("generable");
    let n = arrivals.len() as u64;
    assert!(n > 0);
    for policy in Policy::ALL {
        let cluster =
            Cluster::homogeneous(3, &catalog(), &AcceleratorConfig::default()).expect("cluster");
        let sim =
            ServeSim::new(cluster, Default::default(), policy.scheduler(), 17).expect("buildable");
        let report = sim.run(arrivals.clone());
        assert_eq!(report.requests_admitted, n, "{}", policy.name());
        assert_eq!(report.requests_completed, n, "{}", policy.name());
    }
}

/// Same seed + same config ⇒ byte-identical `ServeReport` JSON; different
/// seeds diverge (the generators actually consume the seed).
#[test]
fn same_seed_is_byte_identical() {
    for policy in Policy::ALL {
        let cfg = config(policy, 400_000.0, 23);
        let accel = AcceleratorConfig::default();
        let a = simulate(&cfg, &catalog(), &accel).expect("first run");
        let b = simulate(&cfg, &catalog(), &accel).expect("second run");
        assert_eq!(a.to_json(), b.to_json(), "{}", policy.name());

        let mut other = cfg.clone();
        other.seed = 24;
        let c = simulate(&other, &catalog(), &accel).expect("third run");
        assert_ne!(a.to_json(), c.to_json(), "{}", policy.name());
    }
}
