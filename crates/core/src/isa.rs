//! Bank-level instruction set.
//!
//! "Each memory bank contains a bank control unit, which decodes the
//! incoming instructions and determines the operation mode of morphable
//! subarrays" (§III-A.3). The control unit "offloads the computation from
//! the host CPU and orchestrates the data transfers between memory
//! subarrays and morphable subarrays".

use reram_nn::activations::Activation;
use reram_tensor::Matrix;

/// Operating mode of a morphable (full-function) subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubarrayMode {
    /// Behaves as a regular ReRAM memory subarray; the activation peripheral
    /// is bypassed.
    Memory,
    /// Performs matrix-vector multiplications on its programmed weights.
    Compute,
}

/// One instruction decoded by the bank control unit.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Switch a morphable subarray between memory and compute modes.
    SetMode {
        /// Morphable subarray index.
        subarray: usize,
        /// Target mode.
        mode: SubarrayMode,
    },
    /// Program weights into a morphable subarray (weight update path: the
    /// spike drivers act as write drivers).
    Program {
        /// Morphable subarray index.
        subarray: usize,
        /// Weight matrix `(out × in)`.
        weights: Matrix,
    },
    /// Program weights for *training*: both the forward grid and a
    /// transposed copy for error back-propagation (§II-A.2 — the backward
    /// pass is itself a matrix multiplication with `W^T`).
    ProgramTraining {
        /// Morphable subarray index.
        subarray: usize,
        /// Weight matrix `(out × in)`.
        weights: Matrix,
    },
    /// Write data from the host / previous layer into a memory subarray.
    LoadMem {
        /// Memory subarray index.
        mem: usize,
        /// Values to store.
        data: Vec<f32>,
    },
    /// Run a compute-mode morphable subarray on the contents of `src_mem`,
    /// optionally apply the peripheral activation, and store the result in
    /// `dst_mem` (the Connection component of §III-A.3 (d)).
    Compute {
        /// Morphable subarray index (must be in compute mode).
        subarray: usize,
        /// Source memory subarray.
        src_mem: usize,
        /// Destination memory subarray.
        dst_mem: usize,
        /// Peripheral activation function, if enabled.
        activation: Option<Activation>,
    },
    /// Back-propagation step: multiply `src_mem` by the subarray's
    /// *transposed* weights (requires [`Instruction::ProgramTraining`]) and
    /// store the result in `dst_mem`.
    ComputeTransposed {
        /// Morphable subarray index (must be in compute mode).
        subarray: usize,
        /// Source memory subarray (upstream error vector).
        src_mem: usize,
        /// Destination memory subarray (propagated error vector).
        dst_mem: usize,
    },
    /// Max-pool the tensor held in `src_mem` (layout `(C, H, W)` flattened
    /// channel-major) into `dst_mem` — the pooling peripheral that the
    /// morphable subarrays contain alongside the activation circuitry
    /// (§III-A.3 (c)), exposed as its own decoded operation so POOL layers
    /// lower onto the bank without a host round trip.
    MaxPool {
        /// Source memory subarray.
        src_mem: usize,
        /// Destination memory subarray.
        dst_mem: usize,
        /// Channel count of the stored tensor.
        c: usize,
        /// Pooling window size.
        k: usize,
        /// Pooling stride.
        stride: usize,
        /// Stored tensor height.
        in_h: usize,
        /// Stored tensor width.
        in_w: usize,
    },
    /// Copy a memory subarray into the bank buffer (private data ports, so
    /// buffer accesses don't consume memory-subarray bandwidth).
    StoreBuffer {
        /// Source memory subarray.
        src_mem: usize,
    },
    /// Read a memory subarray back to the host.
    ReadMem {
        /// Memory subarray index.
        mem: usize,
    },
    /// Store a morphable subarray's raw cells while in memory mode.
    MemWrite {
        /// Morphable subarray index (must be in memory mode).
        subarray: usize,
        /// Values to store.
        data: Vec<f32>,
    },
    /// Read a morphable subarray's raw cells while in memory mode.
    MemRead {
        /// Morphable subarray index (must be in memory mode).
        subarray: usize,
    },
}

impl Instruction {
    /// Short mnemonic for logging.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::SetMode { .. } => "set_mode",
            Instruction::Program { .. } => "program",
            Instruction::ProgramTraining { .. } => "program_training",
            Instruction::LoadMem { .. } => "load_mem",
            Instruction::Compute { .. } => "compute",
            Instruction::ComputeTransposed { .. } => "compute_t",
            Instruction::MaxPool { .. } => "max_pool",
            Instruction::StoreBuffer { .. } => "store_buffer",
            Instruction::ReadMem { .. } => "read_mem",
            Instruction::MemWrite { .. } => "mem_write",
            Instruction::MemRead { .. } => "mem_read",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_distinct() {
        use std::collections::HashSet;
        let m: HashSet<&str> = [
            Instruction::SetMode {
                subarray: 0,
                mode: SubarrayMode::Memory,
            }
            .mnemonic(),
            Instruction::LoadMem {
                mem: 0,
                data: vec![],
            }
            .mnemonic(),
            Instruction::ReadMem { mem: 0 }.mnemonic(),
            Instruction::StoreBuffer { src_mem: 0 }.mnemonic(),
            Instruction::MemRead { subarray: 0 }.mnemonic(),
            Instruction::MemWrite {
                subarray: 0,
                data: vec![],
            }
            .mnemonic(),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.len(), 6);
    }
}
