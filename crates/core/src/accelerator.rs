//! End-to-end accelerator evaluation — the Table I comparisons.
//!
//! [`PipeLayerAccelerator`] composes the data mapping (Fig. 4), the
//! inter-layer pipeline (Fig. 5) and the circuit cost model into time and
//! energy for training/inference of a network; [`ReGanAccelerator`] does
//! the same for GAN training with the Fig. 8/9 schedule. Comparing either
//! against [`reram_gpu::GpuModel`] reproduces the speedup / energy-saving
//! rows of Table I.

use crate::plan::{self, ExecutionPlan, PlanError};
use crate::regan::ReganOpt;
use crate::timing::NetworkTiming;
use crate::AcceleratorConfig;
use reram_gpu::GpuCost;
use reram_nn::NetworkSpec;
use reram_telemetry::Span;
use serde::{Deserialize, Serialize};

/// Evaluation result of a workload on an accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelReport {
    /// Workload label.
    pub name: String,
    /// Pipeline macro-cycles executed.
    pub cycles: u64,
    /// Wall-clock time, seconds.
    pub time_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Physical crossbar arrays provisioned.
    pub arrays: usize,
    /// Silicon area, mm².
    pub area_mm2: f64,
}

impl AccelReport {
    /// Average power drawn over the run, watts.
    pub fn average_power_w(&self) -> f64 {
        self.energy_j / self.time_s
    }

    /// Speedup of this accelerator run over a GPU run of the same workload.
    pub fn speedup_vs(&self, gpu: &GpuCost) -> f64 {
        gpu.time_s / self.time_s
    }

    /// Energy saving of this accelerator run over a GPU run.
    pub fn energy_saving_vs(&self, gpu: &GpuCost) -> f64 {
        gpu.energy_j / self.energy_j
    }
}

/// The PipeLayer accelerator (paper §III-A).
#[derive(Debug, Clone)]
pub struct PipeLayerAccelerator {
    config: AcceleratorConfig,
}

impl PipeLayerAccelerator {
    /// Creates an accelerator instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: AcceleratorConfig) -> Self {
        config
            .validate()
            // lint:allow(panic) documented constructor contract — invalid configs abort
            .unwrap_or_else(|e| panic!("invalid accelerator config: {e}"));
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Lowers `net` to the [`ExecutionPlan`] every cost method prices.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from [`ExecutionPlan::lower`].
    #[must_use = "the lowered plan is the result"]
    pub fn plan(&self, net: &NetworkSpec) -> Result<ExecutionPlan, PlanError> {
        ExecutionPlan::lower(net, &self.config)
    }

    fn plan_or_panic(&self, net: &NetworkSpec) -> ExecutionPlan {
        self.plan(net)
            // lint:allow(panic) documented contract — unliftable networks abort costing
            .unwrap_or_else(|e| panic!("cannot plan {}: {e}", net.name))
    }

    /// Cost of pipelined training of `n` inputs at batch size `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of `batch`.
    pub fn train_cost(&self, net: &NetworkSpec, batch: usize, n: u64) -> AccelReport {
        let mut span = Span::enter("accel/train_cost");
        let plan = self.plan_or_panic(net);
        let timing = NetworkTiming::from_plan(&plan);
        let pipe = plan.pipeline_model(batch);
        let cycles = pipe.training_cycles(n);
        span.add_cycles(cycles);
        let batches = n / batch as u64;
        let compute_cycles = cycles - batches;
        AccelReport {
            name: format!("pipelayer-train-{}", net.name),
            cycles,
            time_s: timing.cycles_to_seconds(compute_cycles, batches, true),
            energy_j: timing.training_energy_j(n, batches),
            arrays: timing.total_arrays,
            area_mm2: timing.area_mm2,
        }
    }

    /// Cost of *non-pipelined* training (the ablation baseline: same
    /// hardware, inputs strictly sequential).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of `batch`.
    pub fn train_cost_sequential(&self, net: &NetworkSpec, batch: usize, n: u64) -> AccelReport {
        let mut span = Span::enter("accel/train_cost_sequential");
        let plan = self.plan_or_panic(net);
        let timing = NetworkTiming::from_plan(&plan);
        let pipe = plan.pipeline_model(batch);
        let cycles = pipe.sequential_training_cycles(n);
        span.add_cycles(cycles);
        let batches = n / batch as u64;
        let compute_cycles = cycles - batches;
        AccelReport {
            name: format!("pipelayer-train-seq-{}", net.name),
            cycles,
            time_s: timing.cycles_to_seconds(compute_cycles, batches, true),
            energy_j: timing.training_energy_j(n, batches),
            arrays: timing.total_arrays,
            area_mm2: timing.area_mm2,
        }
    }

    /// Cost of pipelined inference over `n` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn inference_cost(&self, net: &NetworkSpec, n: u64) -> AccelReport {
        let mut span = Span::enter("accel/inference_cost");
        let plan = self.plan_or_panic(net);
        let timing = NetworkTiming::from_plan(&plan);
        let pipe = plan.pipeline_model(1);
        let cycles = pipe.inference_cycles(n);
        span.add_cycles(cycles);
        AccelReport {
            name: format!("pipelayer-infer-{}", net.name),
            cycles,
            time_s: timing.cycles_to_seconds(cycles, 0, false),
            energy_j: timing.inference_energy_j(n),
            arrays: timing.total_arrays,
            area_mm2: timing.area_mm2,
        }
    }

    /// Pipelined training wall-clock with *per-layer* stage latencies from
    /// the execution plan, seconds — each stage runs at its own layer's
    /// speed instead of being padded to the slowest (the macro-cycle
    /// accounting of [`PipeLayerAccelerator::train_cost`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of `batch` or the network
    /// cannot be lowered.
    pub fn train_time_per_layer_s(&self, net: &NetworkSpec, batch: usize, n: u64) -> f64 {
        self.plan_or_panic(net).pipelined_training_time_s(n, batch)
    }

    /// Pipelined inference wall-clock with per-layer stage latencies from
    /// the execution plan, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the network cannot be lowered.
    pub fn inference_time_per_layer_s(&self, net: &NetworkSpec, n: u64) -> f64 {
        self.plan_or_panic(net).pipelined_inference_time_s(n)
    }
}

/// The ReGAN accelerator (paper §III-B).
#[derive(Debug, Clone)]
pub struct ReGanAccelerator {
    config: AcceleratorConfig,
    opt: ReganOpt,
}

impl ReGanAccelerator {
    /// Creates an accelerator instance at the given optimization level.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: AcceleratorConfig, opt: ReganOpt) -> Self {
        config
            .validate()
            // lint:allow(panic) documented constructor contract — invalid configs abort
            .unwrap_or_else(|e| panic!("invalid accelerator config: {e}"));
        Self { config, opt }
    }

    /// The optimization level in use.
    pub fn opt(&self) -> ReganOpt {
        self.opt
    }

    /// Cost of `iterations` GAN training iterations at batch size `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` or `batch` is zero.
    pub fn train_cost(
        &self,
        generator: &NetworkSpec,
        discriminator: &NetworkSpec,
        batch: usize,
        iterations: u64,
    ) -> AccelReport {
        assert!(iterations > 0, "need at least one iteration");
        let mut span = Span::enter("accel/regan_train_cost");
        let g_plan = ExecutionPlan::lower(generator, &self.config)
            // lint:allow(panic) documented contract — unliftable networks abort costing
            .unwrap_or_else(|e| panic!("cannot plan {}: {e}", generator.name));
        let d_plan = ExecutionPlan::lower(discriminator, &self.config)
            // lint:allow(panic) documented contract — unliftable networks abort costing
            .unwrap_or_else(|e| panic!("cannot plan {}: {e}", discriminator.name));
        let g_timing = NetworkTiming::from_plan(&g_plan);
        let d_timing = NetworkTiming::from_plan(&d_plan);
        let pipe = plan::regan_pipeline(&d_plan, &g_plan, batch);
        let cycles = pipe.total_cycles(iterations, self.opt);
        span.add_cycles(cycles);
        // Two update cycles per iteration (D and G).
        let update_cycles = 2 * iterations;
        let compute_cycles = cycles.saturating_sub(update_cycles);
        let cycle_ns = g_timing.training_cycle_ns.max(d_timing.training_cycle_ns);
        let update_ns = g_timing.update_cycle_ns.max(d_timing.update_cycle_ns);
        let time_s = (compute_cycles as f64 * cycle_ns + update_cycles as f64 * update_ns) * 1e-9;

        // Energy per iteration, in crossbar passes over B inputs each:
        // ① D fwd + D bwd, ② G fwd + D fwd + D bwd, ③ G fwd + D fwd +
        // D bwd + G bwd; CS shares ②/③'s G-fwd + D-fwd once.
        let b = batch as f64;
        let d_pass = d_timing.forward_energy_pj + d_timing.backward_energy_pj;
        let g_fwd = g_timing.forward_energy_pj;
        let shared_saving = if self.opt == ReganOpt::PipelineSpCs {
            g_fwd + d_timing.forward_energy_pj
        } else {
            0.0
        };
        let per_input = (d_pass) // ①
            + (g_fwd + d_pass) // ②
            + (g_fwd + d_pass + g_timing.backward_energy_pj) // ③
            - shared_saving
            + d_timing.buffer_energy_pj * pipe.buffer_multiplier(self.opt) as f64
            + g_timing.buffer_energy_pj;
        let d_copies = pipe.discriminator_copies(self.opt) as f64;
        let update = d_timing.update_energy_pj * d_copies + g_timing.update_energy_pj;
        let energy_j = (iterations as f64 * (b * per_input + update)) * 1e-12;

        let arrays =
            d_timing.total_arrays * pipe.discriminator_copies(self.opt) + g_timing.total_arrays;
        AccelReport {
            name: format!(
                "regan-{}-{}+{}",
                self.opt.name(),
                generator.name,
                discriminator.name
            ),
            cycles,
            time_s,
            energy_j,
            arrays,
            area_mm2: self.config.cost.grid_area_um2(arrays) / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_gpu::GpuModel;
    use reram_nn::models;

    fn accel() -> PipeLayerAccelerator {
        PipeLayerAccelerator::new(AcceleratorConfig::default())
    }

    #[test]
    fn train_report_is_consistent() {
        let net = models::lenet_spec();
        let r = accel().train_cost(&net, 32, 1024);
        assert_eq!(r.cycles, (1024 / 32) * (2 * 5 + 32 + 1));
        assert!(r.time_s > 0.0 && r.energy_j > 0.0);
        assert!(r.arrays > 0 && r.area_mm2 > 0.0);
    }

    #[test]
    fn pipeline_beats_sequential_on_same_hardware() {
        let net = models::lenet_spec();
        let a = accel();
        let piped = a.train_cost(&net, 32, 1024);
        let seq = a.train_cost_sequential(&net, 32, 1024);
        assert!(seq.time_s > 2.0 * piped.time_s);
        // Same hardware, same arithmetic: equal energy.
        assert!((seq.energy_j - piped.energy_j).abs() / piped.energy_j < 1e-9);
    }

    #[test]
    fn pipelayer_beats_gpu_on_training() {
        // The Table I shape: order-of-magnitude speedup, smaller but
        // substantial energy saving.
        let gpu = GpuModel::gtx1080();
        for net in [
            models::lenet_spec(),
            models::alexnet_spec(),
            models::vgg_a_spec(),
        ] {
            let r = accel().train_cost(&net, 32, 128);
            let g = gpu.training_cost(&net, 32).times(128.0 / 32.0);
            let speedup = r.speedup_vs(&g);
            let saving = r.energy_saving_vs(&g);
            assert!(speedup > 3.0, "{}: speedup {speedup}", net.name);
            assert!(saving > 1.0, "{}: energy saving {saving}", net.name);
        }
    }

    #[test]
    fn average_power_is_plausible_for_pim() {
        // A 128K-array provisioning at full training throughput draws
        // hundreds of watts — the same power class as the GPU board, while
        // finishing two orders of magnitude faster (which is exactly where
        // the energy saving comes from). Small networks leave most arrays
        // idle and draw far less.
        let big = accel().train_cost(&models::vgg_a_spec(), 32, 128);
        assert!(
            (10.0..2000.0).contains(&big.average_power_w()),
            "{} W",
            big.average_power_w()
        );
        let small = accel().train_cost(&models::lenet_spec(), 32, 128);
        assert!(
            small.average_power_w() < big.average_power_w(),
            "LeNet {} W vs VGG {} W",
            small.average_power_w(),
            big.average_power_w()
        );
    }

    #[test]
    fn inference_cheaper_than_training() {
        let net = models::lenet_spec();
        let a = accel();
        let t = a.train_cost(&net, 32, 1024);
        let i = a.inference_cost(&net, 1024);
        assert!(i.time_s < t.time_s);
        assert!(i.energy_j < t.energy_j);
    }

    #[test]
    fn regan_optimizations_reduce_time() {
        let g = models::dcgan_generator_spec(100, 3, 32);
        let d = models::dcgan_discriminator_spec(3, 32);
        let cfg = AcceleratorConfig::default();
        let mut prev = f64::INFINITY;
        for opt in ReganOpt::ALL {
            let r = ReGanAccelerator::new(cfg.clone(), opt).train_cost(&g, &d, 32, 100);
            assert!(
                r.time_s < prev,
                "{} did not improve: {}",
                opt.name(),
                r.time_s
            );
            prev = r.time_s;
        }
    }

    #[test]
    fn sp_costs_arrays_cs_saves_energy() {
        let g = models::dcgan_generator_spec(100, 3, 32);
        let d = models::dcgan_discriminator_spec(3, 32);
        let cfg = AcceleratorConfig::default();
        let base =
            ReGanAccelerator::new(cfg.clone(), ReganOpt::Pipeline).train_cost(&g, &d, 32, 10);
        let sp =
            ReGanAccelerator::new(cfg.clone(), ReganOpt::PipelineSp).train_cost(&g, &d, 32, 10);
        let cs = ReGanAccelerator::new(cfg, ReganOpt::PipelineSpCs).train_cost(&g, &d, 32, 10);
        assert!(sp.arrays > base.arrays, "SP must duplicate D's arrays");
        assert!(cs.energy_j < sp.energy_j, "CS must save shared-path energy");
    }

    #[test]
    fn regan_beats_gpu_more_than_pipelayer_shape() {
        // Table I shape: ReGAN's GAN benefit exceeds PipeLayer's CNN benefit.
        let gpu = GpuModel::gtx1080();
        let g = models::dcgan_generator_spec(100, 3, 64);
        let d = models::dcgan_discriminator_spec(3, 64);
        let regan = ReGanAccelerator::new(AcceleratorConfig::default(), ReganOpt::PipelineSpCs)
            .train_cost(&g, &d, 64, 100);
        let gpu_gan = gpu.gan_training_cost(&g, &d, 64).times(100.0);
        let gan_speedup = regan.speedup_vs(&gpu_gan);
        let net = models::lenet_spec();
        let pl = accel().train_cost(&net, 64, 6400);
        let gpu_cnn = gpu.training_cost(&net, 64).times(100.0);
        let cnn_speedup = pl.speedup_vs(&gpu_cnn);
        assert!(
            gan_speedup > cnn_speedup,
            "GAN speedup {gan_speedup} must exceed CNN speedup {cnn_speedup}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn regan_rejects_zero_iterations() {
        let g = models::dcgan_generator_spec(100, 3, 32);
        let d = models::dcgan_discriminator_spec(3, 32);
        let _ = ReGanAccelerator::new(AcceleratorConfig::default(), ReganOpt::Pipeline)
            .train_cost(&g, &d, 32, 0);
    }
}
