//! Chip-level organization: banks, capacity and power provisioning.
//!
//! Fig. 6 / Fig. 10 describe one memory bank; a whole accelerator is many
//! such banks. [`ChipPlan`] turns a network mapping into a bank-level
//! floorplan and checks the constraint the inter-layer pipeline implies but
//! the paper leaves implicit: with `2L + 1` stages in flight, every layer's
//! forward activations must stay resident in memory subarrays until its
//! backward stage consumes them, so the memory region must hold roughly one
//! activation tensor per stage per in-flight input.

use crate::mapping::{map_network, MappingError};
use crate::timing::NetworkTiming;
use crate::AcceleratorConfig;
use reram_nn::NetworkSpec;
use serde::{Deserialize, Serialize};

/// Why a chip could not be planned for a workload.
///
/// The typed counterpart of the asserts this module used to carry — chip
/// planning sits on user-facing paths (experiments, the serving simulator)
/// where a bad batch size or a degenerate bank shape should surface as a
/// recoverable error, matching `CompileError`/`MappingError`/`PlanError`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChipPlanError {
    /// The requested training batch size was zero.
    ZeroBatch,
    /// The bank shape has no morphable or no memory subarrays.
    EmptyBank,
    /// The network could not be mapped under the replication policy.
    Mapping(MappingError),
}

impl std::fmt::Display for ChipPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChipPlanError::ZeroBatch => write!(f, "batch size must be positive"),
            ChipPlanError::EmptyBank => write!(f, "bank must contain subarrays"),
            ChipPlanError::Mapping(e) => write!(f, "cannot map network: {e}"),
        }
    }
}

impl std::error::Error for ChipPlanError {}

impl From<MappingError> for ChipPlanError {
    fn from(e: MappingError) -> Self {
        ChipPlanError::Mapping(e)
    }
}

/// Fixed shape of one memory bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankShape {
    /// Morphable (compute-capable) subarrays per bank.
    pub morphable_per_bank: usize,
    /// Memory subarrays per bank.
    pub memory_per_bank: usize,
    /// Capacity of one memory subarray, bytes.
    pub memory_subarray_bytes: u64,
}

impl Default for BankShape {
    fn default() -> Self {
        Self {
            // A bank the size of Fig. 6's sketch: mostly compute, with a
            // memory region sized like a DRAM mat.
            morphable_per_bank: 64,
            memory_per_bank: 32,
            memory_subarray_bytes: 64 * 1024,
        }
    }
}

/// A chip-level provisioning plan for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipPlan {
    /// Workload name.
    pub network: String,
    /// Bank geometry used.
    pub bank: BankShape,
    /// Crossbar arrays required by the mapping (all layers, with
    /// replication and differential pairs).
    pub compute_arrays: usize,
    /// Banks needed to host the compute arrays.
    pub banks: usize,
    /// Bytes of activation storage the training pipeline keeps resident.
    pub resident_activation_bytes: u64,
    /// Memory-subarray bytes available across the provisioned banks.
    pub memory_capacity_bytes: u64,
    /// Crossbar array area, mm².
    pub array_area_mm2: f64,
    /// Peak power while training at full throughput, watts.
    pub peak_power_w: f64,
}

/// Bytes per stored activation element (16-bit fixed point).
const BYTES_PER_ELEM: u64 = 2;

impl ChipPlan {
    /// Plans a chip for training `net` at batch size `batch`.
    ///
    /// # Errors
    ///
    /// Returns [`ChipPlanError::ZeroBatch`] when `batch == 0`,
    /// [`ChipPlanError::EmptyBank`] for a bank shape without subarrays, and
    /// [`ChipPlanError::Mapping`] when the network cannot be mapped under
    /// the configured replication policy.
    #[must_use = "the bank placement is the result"]
    pub fn plan(
        net: &NetworkSpec,
        config: &AcceleratorConfig,
        bank: BankShape,
        batch: usize,
    ) -> Result<Self, ChipPlanError> {
        if batch == 0 {
            return Err(ChipPlanError::ZeroBatch);
        }
        if bank.morphable_per_bank == 0 || bank.memory_per_bank == 0 {
            return Err(ChipPlanError::EmptyBank);
        }
        let mappings = map_network(net, config)?;
        let timing = NetworkTiming::analyze(net, config);
        let compute_arrays: usize = mappings.iter().map(|m| m.arrays).sum();
        let banks = compute_arrays.div_ceil(bank.morphable_per_bank);

        // In-flight residency: within one batch window the pipeline holds
        // up to min(B, 2L+1) inputs, and each weighted layer's forward
        // output stays buffered until the matching backward stage reads it.
        let l = net.weighted_layer_count();
        let in_flight = batch.min(2 * l + 1) as u64;
        let act_elems: u64 = net
            .weighted_layers()
            .map(|layer| layer.output_elems() as u64)
            .sum();
        let resident = act_elems * BYTES_PER_ELEM * in_flight;

        // Peak power: every array active, amortized per MVM.
        let mvm = config.cost.mvm_cost(&config.crossbar, config.activity);
        let per_array_w = mvm.energy_pj() * 1e-12 / (mvm.latency_ns * 1e-9);
        Ok(Self {
            network: net.name.clone(),
            bank,
            compute_arrays,
            banks,
            resident_activation_bytes: resident,
            memory_capacity_bytes: banks as u64
                * bank.memory_per_bank as u64
                * bank.memory_subarray_bytes,
            array_area_mm2: timing.area_mm2,
            peak_power_w: compute_arrays as f64 * per_array_w,
        })
    }

    /// Whether the provisioned memory subarrays can hold the pipeline's
    /// resident activations.
    pub fn memory_fits(&self) -> bool {
        self.resident_activation_bytes <= self.memory_capacity_bytes
    }

    /// Fraction of provisioned memory capacity the pipeline occupies.
    pub fn memory_utilization(&self) -> f64 {
        self.resident_activation_bytes as f64 / self.memory_capacity_bytes as f64
    }

    /// Additional banks (beyond the compute-driven count) needed to fit the
    /// resident activations, if any.
    pub fn extra_memory_banks(&self) -> usize {
        if self.memory_fits() {
            return 0;
        }
        let per_bank = self.bank.memory_per_bank as u64 * self.bank.memory_subarray_bytes;
        let deficit = self.resident_activation_bytes - self.memory_capacity_bytes;
        deficit.div_ceil(per_bank) as usize
    }

    /// Total banks including any extra memory-only banks.
    pub fn total_banks(&self) -> usize {
        self.banks + self.extra_memory_banks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_nn::models;

    fn plan(net: &NetworkSpec, batch: usize) -> ChipPlan {
        ChipPlan::plan(
            net,
            &AcceleratorConfig::default(),
            BankShape::default(),
            batch,
        )
        .expect("plannable")
    }

    #[test]
    fn lenet_fits_comfortably() {
        let p = plan(&models::lenet_spec(), 32);
        assert!(p.banks >= 1);
        assert!(p.memory_fits(), "LeNet activations must fit: {p:?}");
        assert_eq!(p.extra_memory_banks(), 0);
        assert_eq!(p.total_banks(), p.banks);
    }

    #[test]
    fn vgg_needs_many_banks() {
        let p = plan(&models::vgg_a_spec(), 32);
        assert!(p.banks > 100, "VGG banks {}", p.banks);
        assert!(p.compute_arrays > 100_000);
        assert!(p.peak_power_w > 10.0);
    }

    #[test]
    fn residency_grows_with_batch_until_pipeline_depth() {
        let net = models::lenet_spec();
        let p1 = plan(&net, 1);
        let p8 = plan(&net, 8);
        let p64 = plan(&net, 64);
        let p128 = plan(&net, 128);
        assert!(p8.resident_activation_bytes > p1.resident_activation_bytes);
        // L = 5 -> pipeline holds at most 11 inputs; B beyond that adds
        // nothing.
        assert_eq!(
            p64.resident_activation_bytes,
            p128.resident_activation_bytes
        );
    }

    #[test]
    fn utilization_consistent_with_fits() {
        let p = plan(&models::alexnet_spec(), 32);
        if p.memory_fits() {
            assert!(p.memory_utilization() <= 1.0);
        } else {
            assert!(p.memory_utilization() > 1.0);
            assert!(p.extra_memory_banks() > 0);
        }
    }

    #[test]
    fn banks_cover_arrays() {
        let p = plan(&models::mnist_deep_spec(), 32);
        assert!(p.banks * p.bank.morphable_per_bank >= p.compute_arrays);
        assert!((p.banks - 1) * p.bank.morphable_per_bank < p.compute_arrays);
    }

    #[test]
    fn rejects_zero_batch() {
        let err = ChipPlan::plan(
            &models::lenet_spec(),
            &AcceleratorConfig::default(),
            BankShape::default(),
            0,
        )
        .unwrap_err();
        assert_eq!(err, ChipPlanError::ZeroBatch);
        assert_eq!(err.to_string(), "batch size must be positive");
    }

    #[test]
    fn rejects_empty_bank() {
        let bank = BankShape {
            morphable_per_bank: 0,
            ..BankShape::default()
        };
        let err = ChipPlan::plan(
            &models::lenet_spec(),
            &AcceleratorConfig::default(),
            bank,
            8,
        )
        .unwrap_err();
        assert_eq!(err, ChipPlanError::EmptyBank);
    }

    #[test]
    fn surfaces_mapping_errors() {
        let cfg = AcceleratorConfig::default()
            .with_replication(crate::mapping::ReplicationPolicy::Fixed(0));
        let err = ChipPlan::plan(&models::lenet_spec(), &cfg, BankShape::default(), 8).unwrap_err();
        assert!(matches!(err, ChipPlanError::Mapping(_)));
    }
}
