//! ReRAM endurance (write wear-out) analysis of training.
//!
//! Training is where processing-in-memory meets ReRAM's finite write
//! endurance: every weight update reprograms cells ("in weight update, [the
//! spike driver] serves as write driver to tune weights stored in the ReRAM
//! array", §III-A.3 (a)). This module converts a training schedule into
//! per-cell write counts and a device lifetime estimate — the analysis any
//! adopter of a PipeLayer-class design runs before committing to in-situ
//! training.

use crate::timing::NetworkTiming;
use crate::AcceleratorConfig;
use reram_nn::NetworkSpec;
use serde::{Deserialize, Serialize};

/// Published ReRAM endurance figures span wide ranges; these are the
/// commonly cited design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnduranceClass {
    /// Conservative multi-level-cell endurance: 1e6 writes.
    Conservative,
    /// Typical demonstrated endurance: 1e9 writes.
    Typical,
    /// Optimistic/engineering-sample endurance: 1e12 writes.
    Optimistic,
}

impl EnduranceClass {
    /// Tolerable program cycles per cell.
    pub fn write_limit(&self) -> u64 {
        match self {
            EnduranceClass::Conservative => 1_000_000,
            EnduranceClass::Typical => 1_000_000_000,
            EnduranceClass::Optimistic => 1_000_000_000_000,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            EnduranceClass::Conservative => "conservative (1e6)",
            EnduranceClass::Typical => "typical (1e9)",
            EnduranceClass::Optimistic => "optimistic (1e12)",
        }
    }
}

/// Endurance analysis of training one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnduranceReport {
    /// Cell writes per weight-update cycle (1: every weight cell
    /// reprograms once per batch).
    pub writes_per_batch: u64,
    /// Batches until the conservative/typical/optimistic limits.
    pub batches_to_wearout: [u64; 3],
    /// Wall-clock training time until wear-out at the *typical* limit,
    /// seconds (using the analyzed batch cadence).
    pub typical_lifetime_s: f64,
}

impl EnduranceReport {
    /// Analyzes training wear for a network at batch size `batch`.
    ///
    /// Model: every batch reprograms every weight cell once (the
    /// conservative bound — delta-encoded updates only reduce this), so a
    /// cell's writes equal the number of batches trained.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or the configuration is invalid.
    pub fn analyze(net: &NetworkSpec, config: &AcceleratorConfig, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let timing = NetworkTiming::analyze(net, config);
        let batch_cycles = (2 * net.weighted_layer_count() + batch) as f64;
        let batch_time_s =
            (batch_cycles * timing.training_cycle_ns + timing.update_cycle_ns) * 1e-9;
        let limits = [
            EnduranceClass::Conservative.write_limit(),
            EnduranceClass::Typical.write_limit(),
            EnduranceClass::Optimistic.write_limit(),
        ];
        Self {
            writes_per_batch: 1,
            batches_to_wearout: limits,
            typical_lifetime_s: EnduranceClass::Typical.write_limit() as f64 * batch_time_s,
        }
    }

    /// Training time until wear-out for a given endurance class, seconds,
    /// assuming the analyzed batch cadence.
    pub fn lifetime_s(&self, class: EnduranceClass) -> f64 {
        self.typical_lifetime_s * class.write_limit() as f64
            / EnduranceClass::Typical.write_limit() as f64
    }

    /// Number of full training runs (each `epochs_batches` batches) before
    /// wear-out at a given endurance class.
    pub fn training_runs(&self, class: EnduranceClass, epochs_batches: u64) -> u64 {
        assert!(epochs_batches > 0, "need at least one batch per run");
        class.write_limit() / epochs_batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_nn::models;

    fn report() -> EnduranceReport {
        EnduranceReport::analyze(&models::lenet_spec(), &AcceleratorConfig::default(), 32)
    }

    #[test]
    fn endurance_classes_ordered() {
        assert!(EnduranceClass::Conservative.write_limit() < EnduranceClass::Typical.write_limit());
        assert!(EnduranceClass::Typical.write_limit() < EnduranceClass::Optimistic.write_limit());
    }

    #[test]
    fn lifetime_scales_with_class() {
        let r = report();
        let cons = r.lifetime_s(EnduranceClass::Conservative);
        let typ = r.lifetime_s(EnduranceClass::Typical);
        let opt = r.lifetime_s(EnduranceClass::Optimistic);
        assert!((typ / cons - 1000.0).abs() < 1.0);
        assert!((opt / typ - 1000.0).abs() < 1.0);
    }

    #[test]
    fn continuous_training_wearout_is_hours_at_typical_endurance() {
        // The sharp edge of in-situ training: the accelerator updates
        // weights every ~40us, so 1e9-endurance cells survive only hours of
        // *back-to-back* training — real deployments train intermittently
        // or need optimistic-class cells, which survive months to years.
        let r = report();
        let hour = 3600.0;
        let typical = r.lifetime_s(EnduranceClass::Typical);
        assert!(
            (hour..100.0 * hour).contains(&typical),
            "typical lifetime {typical} s"
        );
        assert!(r.lifetime_s(EnduranceClass::Optimistic) > 100.0 * 24.0 * hour);
    }

    #[test]
    fn conservative_mlc_is_the_constraint() {
        // A full ImageNet-scale training schedule (~100K batches) wears a
        // conservative MLC device after ~10 runs — matching the known
        // concern about in-situ training on low-endurance cells.
        let r = report();
        let runs = r.training_runs(EnduranceClass::Conservative, 100_000);
        assert_eq!(runs, 10);
        assert!(r.training_runs(EnduranceClass::Typical, 100_000) >= 10_000);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn rejects_zero_batch() {
        let _ = EnduranceReport::analyze(&models::lenet_spec(), &AcceleratorConfig::default(), 0);
    }
}
