//! PipeLayer and ReGAN: ReRAM processing-in-memory accelerator models.
//!
//! This crate is the paper's primary contribution (§III): two accelerator
//! architectures built from ReRAM crossbar subarrays that support the
//! *complete* execution of deep learning — inference and training — in
//! memory.
//!
//! * [`subarray`] — the memory organization of Fig. 6 / Fig. 10: morphable
//!   (full-function) subarrays that flip between memory and compute modes,
//!   plain memory subarrays for intermediate results, buffer subarrays with
//!   private ports, and the per-bank control unit with its instruction set,
//! * [`mapping`] — the data input and kernel mapping schemes of Fig. 4:
//!   the naïve scheme, the balanced partitioned scheme, and weight
//!   replication with factor `X` for intra-layer parallelism,
//! * [`pipeline`] — the inter-layer training pipeline of Fig. 5, as both
//!   closed-form cycle counts and a cycle-stepped simulator that is checked
//!   against them,
//! * [`plan`] — the backend-neutral lowering IR: every network becomes one
//!   [`ExecutionPlan`] of per-layer mappings, MVM counts, buffer traffic
//!   and cycle/energy closed forms that the timing, pipeline, report and
//!   GPU cost models all consume,
//! * [`verify`] — a static checker over lowered plans: conservation laws,
//!   feasibility (budgets, replication, queueing stability) and
//!   metamorphic monotonicity checks, surfaced as typed [`Violation`]s
//!   through `reram-lint --plans`,
//! * [`regan`] — the GAN training pipeline of Fig. 8 with the spatial
//!   parallelism (SP) and computation sharing (CS) optimizations of Fig. 9,
//! * [`timing`] — conversion of pipeline macro-cycles into wall-clock time
//!   and energy through the crossbar circuit cost model,
//! * [`accelerator`] — end-to-end evaluation producing the speedup /
//!   energy-saving comparisons of Table I against the GPU baseline.
//!
//! # Example
//!
//! ```
//! use reram_core::accelerator::PipeLayerAccelerator;
//! use reram_core::AcceleratorConfig;
//! use reram_gpu::GpuModel;
//! use reram_nn::models;
//!
//! let net = models::lenet_spec();
//! let accel = PipeLayerAccelerator::new(AcceleratorConfig::default());
//! let report = accel.train_cost(&net, 32, 1024);
//! let gpu = GpuModel::gtx1080().training_cost(&net, 32).times(1024.0 / 32.0);
//! assert!(report.time_s < gpu.time_s, "PIM must beat the GPU on training");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Outer-product and matrix-walk loops index several vectors by the same
// coordinate; explicit indices mirror the equations they implement.
#![allow(clippy::needless_range_loop)]

pub mod accelerator;
pub mod chip;
pub mod compiler;
pub mod endurance;
pub mod isa;
pub mod mapping;
pub mod pipeline;
pub mod plan;
pub mod regan;
pub mod report;
pub mod subarray;
pub mod timing;
pub mod verify;

mod config;

pub use accelerator::{AccelReport, PipeLayerAccelerator, ReGanAccelerator};
pub use chip::{BankShape, ChipPlan, ChipPlanError};
pub use compiler::{CompileError, CompiledMlp, CompiledNetwork, FcStage, NetStage, TrainableMlp};
pub use config::AcceleratorConfig;
pub use endurance::{EnduranceClass, EnduranceReport};
pub use mapping::{LayerMapping, MappingError, MappingScheme, ReplicationPolicy};
pub use pipeline::{PipelineModel, PipelineTrace};
pub use plan::{regan_pipeline, ExecutionPlan, LayerPlan, PlanError};
pub use regan::{ReganOpt, ReganPipeline};
pub use report::{build_run_report, layer_adc_conversions, layer_cell_writes, layer_reports};
pub use verify::{verify_lowering, verify_plan, verify_serve, ServeShape, Violation, ZooFinding};
