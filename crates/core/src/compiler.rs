//! Compilation of network layers into bank control programs.
//!
//! The paper's control unit "offloads the computation from the host CPU and
//! orchestrates the data transfers between memory subarrays and morphable
//! subarrays in training and testing based on the algorithm configurations"
//! (§III-A.3 (e)). This module is that orchestration for the inference
//! path: given a stack of fully connected layers (weights + activation), it
//! emits the [`Instruction`] sequence that programs the morphable
//! subarrays, morphs them into compute mode, and chains each input vector
//! through the layers via memory subarrays — then executes it on a
//! [`Bank`].

use crate::isa::{Instruction, SubarrayMode};
use crate::subarray::Bank;
use reram_crossbar::CrossbarConfig;
use reram_nn::activations::Activation;
use reram_telemetry::Span;
use reram_tensor::{ops, Matrix, Shape4, Tensor};

/// Why a layer stack could not be compiled into a bank program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// No stages were given.
    EmptyNetwork,
    /// A stage's input width does not match its predecessor's output.
    ShapeMismatch {
        /// 0-based index of the offending stage.
        stage: usize,
        /// Input width the chain provides.
        expected: usize,
        /// Input width the stage declares.
        got: usize,
    },
    /// A stage's spatial parameters don't fit its input tensor (zero
    /// stride, window larger than the feature map, ...).
    BadGeometry {
        /// 0-based index of the offending stage.
        stage: usize,
        /// What is wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::EmptyNetwork => write!(f, "cannot compile an empty network"),
            CompileError::ShapeMismatch {
                stage,
                expected,
                got,
            } => write!(
                f,
                "stage {stage}: chain output {expected} does not feed stage input {got}"
            ),
            CompileError::BadGeometry { stage, reason } => {
                write!(f, "stage {stage}: {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// One compiled layer: a weight matrix and an optional fused activation.
#[derive(Debug, Clone)]
pub struct FcStage {
    /// Weight matrix `(out × in)`.
    pub weights: Matrix,
    /// Peripheral activation applied on the bitline outputs.
    pub activation: Option<Activation>,
}

impl FcStage {
    /// Creates a stage.
    pub fn new(weights: Matrix, activation: Option<Activation>) -> Self {
        Self {
            weights,
            activation,
        }
    }
}

/// A compiled inference program and the bank sized to run it.
#[derive(Debug)]
pub struct CompiledMlp {
    stages: Vec<FcStage>,
    bank: Bank,
    setup_done: bool,
}

impl CompiledMlp {
    /// Compiles an MLP onto a fresh bank: one morphable subarray per layer,
    /// two memory subarrays used as ping-pong activation buffers.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::EmptyNetwork`] if `stages` is empty and
    /// [`CompileError::ShapeMismatch`] if consecutive layer shapes are
    /// incompatible.
    #[must_use = "the compiled network is the result"]
    pub fn compile(stages: Vec<FcStage>, config: &CrossbarConfig) -> Result<Self, CompileError> {
        if stages.is_empty() {
            return Err(CompileError::EmptyNetwork);
        }
        for (i, w) in stages.windows(2).enumerate() {
            if w[1].weights.cols() != w[0].weights.rows() {
                return Err(CompileError::ShapeMismatch {
                    stage: i + 1,
                    expected: w[0].weights.rows(),
                    got: w[1].weights.cols(),
                });
            }
        }
        let bank = Bank::new(stages.len(), 2, config);
        Ok(Self {
            stages,
            bank,
            setup_done: false,
        })
    }

    /// Number of compiled layers.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Input vector length.
    pub fn input_len(&self) -> usize {
        self.stages[0].weights.cols()
    }

    /// Output vector length.
    pub fn output_len(&self) -> usize {
        self.stages[self.stages.len() - 1].weights.rows()
    }

    /// The setup program: program every layer's weights and morph its
    /// subarray into compute mode.
    pub fn setup_program(&self) -> Vec<Instruction> {
        let mut prog = Vec::with_capacity(2 * self.stages.len());
        for (i, stage) in self.stages.iter().enumerate() {
            prog.push(Instruction::Program {
                subarray: i,
                weights: stage.weights.clone(),
            });
            prog.push(Instruction::SetMode {
                subarray: i,
                mode: SubarrayMode::Compute,
            });
        }
        prog
    }

    /// The per-input program: load the vector, chain it through every layer
    /// alternating the two activation buffers, read the result back.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_len()`.
    pub fn inference_program(&self, input: &[f32]) -> Vec<Instruction> {
        assert_eq!(
            input.len(),
            self.input_len(),
            "input length {} vs expected {}",
            input.len(),
            self.input_len()
        );
        let mut prog = vec![Instruction::LoadMem {
            mem: 0,
            data: input.to_vec(),
        }];
        for (i, stage) in self.stages.iter().enumerate() {
            prog.push(Instruction::Compute {
                subarray: i,
                src_mem: i % 2,
                dst_mem: (i + 1) % 2,
                activation: stage.activation,
            });
        }
        prog.push(Instruction::ReadMem {
            mem: self.stages.len() % 2,
        });
        prog
    }

    /// Runs one input through the compiled network on the bank.
    ///
    /// The setup program runs lazily before the first input.
    pub fn infer(&mut self, input: &[f32]) -> Vec<f32> {
        let _span = Span::enter("bank/infer");
        if !self.setup_done {
            let setup = self.setup_program();
            let _ = self.bank.run(setup);
            self.setup_done = true;
        }
        let prog = self.inference_program(input);
        let mut out = self.bank.run(prog);
        // lint:allow(panic) program built by this compiler always ends with ReadMem
        out.pop().expect("inference program ends with a read")
    }

    /// Reference result computed in floating point (no crossbar).
    pub fn infer_exact(&self, input: &[f32]) -> Vec<f32> {
        let mut x = input.to_vec();
        for stage in &self.stages {
            x = stage.weights.matvec(&x);
            if let Some(a) = stage.activation {
                for v in &mut x {
                    *v = a.apply(*v);
                }
            }
        }
        x
    }

    /// Bank statistics accumulated so far.
    pub fn stats(&self) -> crate::subarray::BankStats {
        self.bank.stats()
    }
}

/// An MLP trained *on the bank*: forward MVMs and error back-propagation
/// both execute as bank instructions on the morphable subarrays (forward
/// grid + transposed grid per layer), with the control unit holding the
/// master weights and issuing [`Instruction::ProgramTraining`] updates —
/// the complete "testing and training" support the paper's abstract claims.
///
/// Activations are restricted to ReLU (or none): its derivative is
/// recoverable from the stored post-activation values, so the bank only
/// buffers each stage's output, exactly as Fig. 5(a)'s memory subarrays do.
#[derive(Debug)]
pub struct TrainableMlp {
    weights: Vec<Matrix>,
    relu: Vec<bool>,
    bank: Bank,
    setup_needed: bool,
}

impl TrainableMlp {
    /// Compiles a trainable MLP. `layers` gives each layer's weights and
    /// whether a ReLU follows it.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::EmptyNetwork`] if `layers` is empty and
    /// [`CompileError::ShapeMismatch`] if consecutive shapes are
    /// incompatible.
    #[must_use = "the compiled network is the result"]
    pub fn compile(
        layers: Vec<(Matrix, bool)>,
        config: &CrossbarConfig,
    ) -> Result<Self, CompileError> {
        if layers.is_empty() {
            return Err(CompileError::EmptyNetwork);
        }
        for (i, w) in layers.windows(2).enumerate() {
            if w[1].0.cols() != w[0].0.rows() {
                return Err(CompileError::ShapeMismatch {
                    stage: i + 1,
                    expected: w[0].0.rows(),
                    got: w[1].0.cols(),
                });
            }
        }
        // Memory map: slot i = activation entering layer i (slot 0 = input,
        // slot L = network output), slots L+1/L+2 = error ping-pong.
        let depth = layers.len();
        let bank = Bank::new(depth, depth + 3, config);
        Ok(Self {
            weights: layers.iter().map(|(w, _)| w.clone()).collect(),
            relu: layers.iter().map(|&(_, r)| r).collect(),
            bank,
            setup_needed: true,
        })
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.weights.len()
    }

    /// The control unit's master copy of layer `i`'s weights.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn weights(&self, i: usize) -> &Matrix {
        &self.weights[i]
    }

    /// Bank statistics accumulated so far.
    pub fn stats(&self) -> crate::subarray::BankStats {
        self.bank.stats()
    }

    fn ensure_setup(&mut self) {
        if !self.setup_needed {
            return;
        }
        for (i, w) in self.weights.iter().enumerate() {
            self.bank.execute(Instruction::ProgramTraining {
                subarray: i,
                weights: w.clone(),
            });
            self.bank.execute(Instruction::SetMode {
                subarray: i,
                mode: SubarrayMode::Compute,
            });
        }
        self.setup_needed = false;
    }

    /// Forward pass on the bank, leaving every stage's activation in its
    /// memory subarray. Returns the network output.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the first layer's width.
    pub fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.weights[0].cols(), "input length");
        self.ensure_setup();
        self.bank.execute(Instruction::LoadMem {
            mem: 0,
            data: input.to_vec(),
        });
        for i in 0..self.depth() {
            self.bank.execute(Instruction::Compute {
                subarray: i,
                src_mem: i,
                dst_mem: i + 1,
                activation: if self.relu[i] {
                    Some(Activation::Relu)
                } else {
                    None
                },
            });
        }
        self.bank
            .execute(Instruction::ReadMem { mem: self.depth() })
            // lint:allow(panic) ReadMem of a slot this compiler wrote always yields data
            .expect("read returns data")
    }

    /// One SGD training step on `(input, target)` under mean-squared error.
    /// Returns the loss before the update.
    ///
    /// The forward pass and every error-propagation product run on the
    /// bank; the control unit computes the loss gradient, masks it by the
    /// ReLU derivative (recovered from the buffered activations), forms the
    /// weight-gradient outer products, and writes the tuned weights back
    /// with `ProgramTraining`.
    ///
    /// # Panics
    ///
    /// Panics if `target.len()` differs from the output width.
    pub fn train_step(&mut self, input: &[f32], target: &[f32], lr: f32) -> f32 {
        let _span = Span::enter("bank/train_step");
        let depth = self.depth();
        let out = self.forward(input);
        assert_eq!(target.len(), out.len(), "target length");
        let n = out.len() as f32;
        let loss: f32 = out
            .iter()
            .zip(target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f32>()
            / n;

        // Error at the output (dL/dy for MSE), held in the error slots.
        let err_a = depth + 1;
        let err_b = depth + 2;
        let mut grads: Vec<Matrix> = Vec::with_capacity(depth);
        let mut error: Vec<f32> = out
            .iter()
            .zip(target)
            .map(|(y, t)| 2.0 * (y - t) / n)
            .collect();

        for i in (0..depth).rev() {
            // Activation of this layer's output (slot i+1) for the ReLU
            // derivative, and its input (slot i) for the weight gradient.
            let out_act = self
                .bank
                .execute(Instruction::ReadMem { mem: i + 1 })
                // lint:allow(panic) forward pass buffered this slot earlier in the step
                .expect("activation buffered");
            if self.relu[i] {
                for (e, &a) in error.iter_mut().zip(&out_act) {
                    if a <= 0.0 {
                        *e = 0.0;
                    }
                }
            }
            let in_act = self
                .bank
                .execute(Instruction::ReadMem { mem: i })
                // lint:allow(panic) forward pass buffered this slot earlier in the step
                .expect("activation buffered");
            // Weight gradient: e ⊗ x (control-unit outer-product logic).
            let w = &self.weights[i];
            let mut grad = Matrix::zeros(w.shape());
            for r in 0..w.rows() {
                for c in 0..w.cols() {
                    grad.set(r, c, error[r] * in_act[c]);
                }
            }
            grads.push(grad);
            // Propagate the error through the transposed grid on the bank.
            if i > 0 {
                self.bank.execute(Instruction::LoadMem {
                    mem: err_a,
                    data: error.clone(),
                });
                self.bank.execute(Instruction::ComputeTransposed {
                    subarray: i,
                    src_mem: err_a,
                    dst_mem: err_b,
                });
                error = self
                    .bank
                    .execute(Instruction::ReadMem { mem: err_b })
                    // lint:allow(panic) error slot written by the preceding backward stage
                    .expect("propagated error");
            }
        }

        // Weight update cycle: tune the weights and rewrite both grids.
        grads.reverse();
        for (i, grad) in grads.iter().enumerate() {
            for (w, g) in self.weights[i].data_mut().iter_mut().zip(grad.data()) {
                *w -= lr * g;
            }
            self.bank.execute(Instruction::ProgramTraining {
                subarray: i,
                weights: self.weights[i].clone(),
            });
        }
        loss
    }
}

/// One stage of a generalized compiled network: the layer menagerie of
/// §II-A.1 expressed against the bank ISA instead of host math.
#[derive(Debug, Clone)]
pub enum NetStage {
    /// Convolution. `weights` is the kernel tensor flattened row-major to
    /// `(C_out × C_in·K·K)` — one kernel per crossbar row, Fig. 4(a)'s
    /// mapping — executed as one MVM per output position over the
    /// im2col-unrolled receptive fields. No bias (functional conv layers
    /// initialise bias to zero).
    Conv {
        /// Flattened kernel matrix `(C_out × C_in·K·K)`.
        weights: Matrix,
        /// Square kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Peripheral activation fused onto the bitline outputs.
        activation: Option<Activation>,
    },
    /// Max pooling via the bank's pooling peripheral
    /// ([`Instruction::MaxPool`]).
    MaxPool {
        /// Square pooling window.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Fully connected layer over the flattened `(C·H·W)` feature map.
    Fc {
        /// Weight matrix `(out × in)`.
        weights: Matrix,
        /// Peripheral activation fused onto the bitline outputs.
        activation: Option<Activation>,
    },
    /// Standalone activation, applied by the control unit between memory
    /// subarrays (no crossbar involved).
    Act(Activation),
}

/// A stage after geometry resolution: every spatial dimension is concrete
/// and weighted stages know which morphable subarray holds their grid.
#[derive(Debug)]
enum LoweredStage {
    Conv {
        subarray: usize,
        k: usize,
        stride: usize,
        pad: usize,
        activation: Option<Activation>,
        in_c: usize,
        in_h: usize,
        in_w: usize,
        out_c: usize,
        oh: usize,
        ow: usize,
    },
    MaxPool {
        k: usize,
        stride: usize,
        c: usize,
        in_h: usize,
        in_w: usize,
    },
    Fc {
        subarray: usize,
        activation: Option<Activation>,
    },
    Act(Activation),
}

/// A generalized compiled network: CONV / POOL / FC / activation stages
/// lowered onto one [`Bank`], subsuming [`CompiledMlp`] (an FC-only stack
/// compiles to the identical instruction stream).
///
/// Memory map: slots 0/1 ping-pong whole feature maps between stages
/// (layout `(C, H, W)` flattened channel-major), slot 2 stages the current
/// im2col window and slot 3 collects its MVM result during CONV execution.
#[derive(Debug)]
pub struct CompiledNetwork {
    stages: Vec<NetStage>,
    lowered: Vec<LoweredStage>,
    input_shape: (usize, usize, usize),
    output_shape: (usize, usize, usize),
    bank: Bank,
    setup_done: bool,
}

impl CompiledNetwork {
    /// Compiles a stage stack for inputs of shape `(c, h, w)` onto a fresh
    /// bank: one morphable subarray per weighted stage, four memory
    /// subarrays.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::EmptyNetwork`] for an empty stack,
    /// [`CompileError::ShapeMismatch`] when a weight matrix does not match
    /// the feature map the chain delivers, and
    /// [`CompileError::BadGeometry`] when a window/stride does not fit its
    /// input tensor.
    #[must_use = "the compiled network is the result"]
    pub fn compile(
        input: (usize, usize, usize),
        stages: Vec<NetStage>,
        config: &CrossbarConfig,
    ) -> Result<Self, CompileError> {
        if stages.is_empty() {
            return Err(CompileError::EmptyNetwork);
        }
        let (mut c, mut h, mut w) = input;
        let mut lowered = Vec::with_capacity(stages.len());
        let mut next_subarray = 0;
        for (stage, s) in stages.iter().enumerate() {
            match s {
                NetStage::Conv {
                    weights,
                    k,
                    stride,
                    pad,
                    activation,
                } => {
                    if *k == 0 || *stride == 0 {
                        return Err(CompileError::BadGeometry {
                            stage,
                            reason: "conv kernel and stride must be positive",
                        });
                    }
                    if h + 2 * pad < *k || w + 2 * pad < *k {
                        return Err(CompileError::BadGeometry {
                            stage,
                            reason: "conv kernel larger than padded input",
                        });
                    }
                    if weights.cols() != c * k * k {
                        return Err(CompileError::ShapeMismatch {
                            stage,
                            expected: c * k * k,
                            got: weights.cols(),
                        });
                    }
                    let (oh, ow) = ops::conv_output_hw(h, w, *k, *k, *stride, *pad);
                    lowered.push(LoweredStage::Conv {
                        subarray: next_subarray,
                        k: *k,
                        stride: *stride,
                        pad: *pad,
                        activation: *activation,
                        in_c: c,
                        in_h: h,
                        in_w: w,
                        out_c: weights.rows(),
                        oh,
                        ow,
                    });
                    next_subarray += 1;
                    c = weights.rows();
                    h = oh;
                    w = ow;
                }
                NetStage::MaxPool { k, stride } => {
                    if *k == 0 || *stride == 0 {
                        return Err(CompileError::BadGeometry {
                            stage,
                            reason: "pool window and stride must be positive",
                        });
                    }
                    if h < *k || w < *k {
                        return Err(CompileError::BadGeometry {
                            stage,
                            reason: "pool window larger than input",
                        });
                    }
                    lowered.push(LoweredStage::MaxPool {
                        k: *k,
                        stride: *stride,
                        c,
                        in_h: h,
                        in_w: w,
                    });
                    h = (h - k) / stride + 1;
                    w = (w - k) / stride + 1;
                }
                NetStage::Fc {
                    weights,
                    activation,
                } => {
                    if weights.cols() != c * h * w {
                        return Err(CompileError::ShapeMismatch {
                            stage,
                            expected: c * h * w,
                            got: weights.cols(),
                        });
                    }
                    lowered.push(LoweredStage::Fc {
                        subarray: next_subarray,
                        activation: *activation,
                    });
                    next_subarray += 1;
                    c = weights.rows();
                    h = 1;
                    w = 1;
                }
                NetStage::Act(a) => lowered.push(LoweredStage::Act(*a)),
            }
        }
        let bank = Bank::new(next_subarray.max(1), 4, config);
        Ok(Self {
            stages,
            lowered,
            input_shape: input,
            output_shape: (c, h, w),
            bank,
            setup_done: false,
        })
    }

    /// Number of stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Input feature-map shape `(c, h, w)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.input_shape
    }

    /// Output feature-map shape `(c, h, w)`.
    pub fn output_shape(&self) -> (usize, usize, usize) {
        self.output_shape
    }

    /// Flattened input length.
    pub fn input_len(&self) -> usize {
        self.input_shape.0 * self.input_shape.1 * self.input_shape.2
    }

    /// Flattened output length.
    pub fn output_len(&self) -> usize {
        self.output_shape.0 * self.output_shape.1 * self.output_shape.2
    }

    /// Bank statistics accumulated so far.
    pub fn stats(&self) -> crate::subarray::BankStats {
        self.bank.stats()
    }

    fn ensure_setup(&mut self) {
        if self.setup_done {
            return;
        }
        let mut subarray = 0;
        for s in &self.stages {
            let (NetStage::Conv { weights, .. } | NetStage::Fc { weights, .. }) = s else {
                continue;
            };
            self.bank.execute(Instruction::Program {
                subarray,
                weights: weights.clone(),
            });
            self.bank.execute(Instruction::SetMode {
                subarray,
                mode: SubarrayMode::Compute,
            });
            subarray += 1;
        }
        self.setup_done = true;
    }

    /// Runs one input (flattened `(C, H, W)` channel-major) through the
    /// compiled network on the bank. The setup program runs lazily before
    /// the first input.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_len()`.
    pub fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let _span = Span::enter("bank/net_forward");
        assert_eq!(
            input.len(),
            self.input_len(),
            "input length {} vs expected {}",
            input.len(),
            self.input_len()
        );
        self.ensure_setup();
        self.bank.execute(Instruction::LoadMem {
            mem: 0,
            data: input.to_vec(),
        });
        let mut cur = 0;
        for ls in &self.lowered {
            match ls {
                LoweredStage::Conv {
                    subarray,
                    k,
                    stride,
                    pad,
                    activation,
                    in_c,
                    in_h,
                    in_w,
                    out_c,
                    oh,
                    ow,
                } => {
                    // The control unit unrolls the stored feature map into
                    // receptive fields (Fig. 4's 1152×1 input vectors) and
                    // issues one MVM per output position.
                    let data = self
                        .bank
                        .execute(Instruction::ReadMem { mem: cur })
                        // lint:allow(panic) ping-pong slot written by the previous stage
                        .expect("feature map buffered");
                    let t = Tensor::from_vec(Shape4::new(1, *in_c, *in_h, *in_w), data);
                    let patches = ops::im2col(&t, 0, *k, *k, *stride, *pad);
                    let npos = oh * ow;
                    let mut out = vec![0.0f32; out_c * npos];
                    for pos in 0..npos {
                        self.bank.execute(Instruction::LoadMem {
                            mem: 2,
                            data: patches.row(pos).to_vec(),
                        });
                        self.bank.execute(Instruction::Compute {
                            subarray: *subarray,
                            src_mem: 2,
                            dst_mem: 3,
                            activation: *activation,
                        });
                        let y = self
                            .bank
                            .execute(Instruction::ReadMem { mem: 3 })
                            // lint:allow(panic) slot 3 written by the Compute just issued
                            .expect("conv result buffered");
                        for (oc, &v) in y.iter().enumerate() {
                            out[oc * npos + pos] = v;
                        }
                    }
                    self.bank.execute(Instruction::LoadMem {
                        mem: 1 - cur,
                        data: out,
                    });
                    cur = 1 - cur;
                }
                LoweredStage::MaxPool {
                    k,
                    stride,
                    c,
                    in_h,
                    in_w,
                } => {
                    self.bank.execute(Instruction::MaxPool {
                        src_mem: cur,
                        dst_mem: 1 - cur,
                        c: *c,
                        k: *k,
                        stride: *stride,
                        in_h: *in_h,
                        in_w: *in_w,
                    });
                    cur = 1 - cur;
                }
                LoweredStage::Fc {
                    subarray,
                    activation,
                } => {
                    self.bank.execute(Instruction::Compute {
                        subarray: *subarray,
                        src_mem: cur,
                        dst_mem: 1 - cur,
                        activation: *activation,
                    });
                    cur = 1 - cur;
                }
                LoweredStage::Act(a) => {
                    let mut data = self
                        .bank
                        .execute(Instruction::ReadMem { mem: cur })
                        // lint:allow(panic) ping-pong slot written by the previous stage
                        .expect("feature map buffered");
                    for v in &mut data {
                        *v = a.apply(*v);
                    }
                    self.bank
                        .execute(Instruction::LoadMem { mem: 1 - cur, data });
                    cur = 1 - cur;
                }
            }
        }
        self.bank
            .execute(Instruction::ReadMem { mem: cur })
            // lint:allow(panic) every stage leaves its output in the ping-pong slot
            .expect("network output buffered")
    }

    /// Reference result computed in floating point (no crossbar).
    pub fn forward_exact(&self, input: &[f32]) -> Vec<f32> {
        let (mut c, mut h, mut w) = self.input_shape;
        let mut x = input.to_vec();
        for s in &self.stages {
            match s {
                NetStage::Conv {
                    weights,
                    k,
                    stride,
                    pad,
                    activation,
                } => {
                    let t = Tensor::from_vec(Shape4::new(1, c, h, w), x);
                    let (oh, ow) = ops::conv_output_hw(h, w, *k, *k, *stride, *pad);
                    let patches = ops::im2col(&t, 0, *k, *k, *stride, *pad);
                    let npos = oh * ow;
                    let out_c = weights.rows();
                    let mut out = vec![0.0f32; out_c * npos];
                    for pos in 0..npos {
                        let y = weights.matvec(patches.row(pos));
                        for (oc, &v) in y.iter().enumerate() {
                            out[oc * npos + pos] = activation.map_or(v, |a| a.apply(v));
                        }
                    }
                    x = out;
                    c = out_c;
                    h = oh;
                    w = ow;
                }
                NetStage::MaxPool { k, stride } => {
                    let t = Tensor::from_vec(Shape4::new(1, c, h, w), x);
                    let (y, _) = ops::max_pool2d(&t, *k, *stride);
                    let s4 = y.shape();
                    x = y.data().to_vec();
                    h = s4.h;
                    w = s4.w;
                }
                NetStage::Fc {
                    weights,
                    activation,
                } => {
                    x = weights.matvec(&x);
                    if let Some(a) = activation {
                        for v in &mut x {
                            *v = a.apply(*v);
                        }
                    }
                    c = weights.rows();
                    h = 1;
                    w = 1;
                }
                NetStage::Act(a) => {
                    for v in &mut x {
                        *v = a.apply(*v);
                    }
                }
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_tensor::Shape2;

    fn stage(out: usize, inp: usize, act: Option<Activation>, salt: usize) -> FcStage {
        FcStage::new(
            Matrix::from_fn(Shape2::new(out, inp), |r, c| {
                (((r * 7 + c * 5 + salt) % 13) as f32 - 6.0) / 8.0
            }),
            act,
        )
    }

    fn mlp() -> CompiledMlp {
        CompiledMlp::compile(
            vec![
                stage(10, 8, Some(Activation::Relu), 1),
                stage(6, 10, Some(Activation::Relu), 2),
                stage(3, 6, None, 3),
            ],
            &CrossbarConfig::default(),
        )
        .expect("compiles")
    }

    #[test]
    fn shapes_and_depth() {
        let m = mlp();
        assert_eq!(m.depth(), 3);
        assert_eq!(m.input_len(), 8);
        assert_eq!(m.output_len(), 3);
    }

    #[test]
    fn setup_program_structure() {
        let m = mlp();
        let setup = m.setup_program();
        assert_eq!(setup.len(), 6); // program + set_mode per layer
        assert!(matches!(setup[0], Instruction::Program { subarray: 0, .. }));
        assert!(matches!(
            setup[5],
            Instruction::SetMode {
                subarray: 2,
                mode: SubarrayMode::Compute
            }
        ));
    }

    #[test]
    fn inference_matches_exact_within_quantization() {
        let mut m = mlp();
        for k in 0..4 {
            let input: Vec<f32> = (0..8).map(|i| ((i + k) % 5) as f32 / 5.0 - 0.4).collect();
            let got = m.infer(&input);
            let want = m.infer_exact(&input);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 0.05, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn ping_pong_buffers_alternate() {
        let m = mlp();
        let prog = m.inference_program(&[0.0; 8]);
        // load -> compute(0->1) -> compute(1->0) -> compute(0->1) -> read(1)
        assert!(matches!(
            prog[1],
            Instruction::Compute {
                src_mem: 0,
                dst_mem: 1,
                ..
            }
        ));
        assert!(matches!(
            prog[2],
            Instruction::Compute {
                src_mem: 1,
                dst_mem: 0,
                ..
            }
        ));
        assert!(matches!(
            prog[3],
            Instruction::Compute {
                src_mem: 0,
                dst_mem: 1,
                ..
            }
        ));
        assert!(matches!(prog[4], Instruction::ReadMem { mem: 1 }));
    }

    #[test]
    fn stats_accumulate_per_inference() {
        let mut m = mlp();
        let _ = m.infer(&[0.1; 8]);
        let after_one = m.stats();
        let _ = m.infer(&[0.2; 8]);
        let after_two = m.stats();
        assert_eq!(after_one.mvms, 3);
        assert_eq!(after_two.mvms, 6);
        assert_eq!(after_two.programs, 3); // setup only once
    }

    #[test]
    fn rejects_mismatched_layers() {
        let err = CompiledMlp::compile(
            vec![stage(10, 8, None, 1), stage(6, 9, None, 2)],
            &CrossbarConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            CompileError::ShapeMismatch {
                stage: 1,
                expected: 10,
                got: 9
            }
        );
        assert!(err.to_string().contains("does not feed"));
    }

    #[test]
    fn rejects_empty() {
        let err = CompiledMlp::compile(vec![], &CrossbarConfig::default()).unwrap_err();
        assert_eq!(err, CompileError::EmptyNetwork);
        let err = TrainableMlp::compile(vec![], &CrossbarConfig::default()).unwrap_err();
        assert_eq!(err, CompileError::EmptyNetwork);
        let err =
            CompiledNetwork::compile((1, 1, 1), vec![], &CrossbarConfig::default()).unwrap_err();
        assert_eq!(err, CompileError::EmptyNetwork);
    }

    fn trainable() -> TrainableMlp {
        TrainableMlp::compile(
            vec![
                (
                    Matrix::from_fn(Shape2::new(6, 4), |r, c| {
                        (((r * 7 + c * 5) % 11) as f32 - 5.0) / 10.0
                    }),
                    true,
                ),
                (
                    Matrix::from_fn(Shape2::new(2, 6), |r, c| {
                        (((r * 3 + c * 7 + 1) % 11) as f32 - 5.0) / 10.0
                    }),
                    false,
                ),
            ],
            &CrossbarConfig::default(),
        )
        .expect("compiles")
    }

    #[test]
    fn trainable_forward_matches_host_math() {
        let mut m = trainable();
        let x = [0.4f32, -0.2, 0.1, 0.3];
        let y = m.forward(&x);
        // Host reference.
        let h: Vec<f32> = m.weights(0).matvec(&x).iter().map(|v| v.max(0.0)).collect();
        let want = m.weights(1).matvec(&h);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn bank_training_reduces_loss() {
        let mut m = trainable();
        let x = [0.4f32, -0.2, 0.1, 0.3];
        let target = [0.5f32, -0.25];
        let first = m.train_step(&x, &target, 0.2);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_step(&x, &target, 0.2);
        }
        assert!(
            last < first * 0.2,
            "bank-level training failed to descend: {first} -> {last}"
        );
    }

    #[test]
    fn bank_training_tracks_float_training() {
        // Train the same network host-side in f32; both trajectories end
        // near the target.
        let mut m = trainable();
        let mut w0 = m.weights(0).clone();
        let mut w1 = m.weights(1).clone();
        let x = [0.4f32, -0.2, 0.1, 0.3];
        let target = [0.5f32, -0.25];
        for _ in 0..30 {
            let _ = m.train_step(&x, &target, 0.2);
            // Host-side reference step.
            let h_pre = w0.matvec(&x);
            let h: Vec<f32> = h_pre.iter().map(|v| v.max(0.0)).collect();
            let y = w1.matvec(&h);
            let n = y.len() as f32;
            let e1: Vec<f32> = y
                .iter()
                .zip(&target)
                .map(|(a, b)| 2.0 * (a - b) / n)
                .collect();
            let mut g1 = Matrix::zeros(w1.shape());
            for r in 0..w1.rows() {
                for c in 0..w1.cols() {
                    g1.set(r, c, e1[r] * h[c]);
                }
            }
            let mut e0 = w1.transposed().matvec(&e1);
            for (e, &p) in e0.iter_mut().zip(&h_pre) {
                if p <= 0.0 {
                    *e = 0.0;
                }
            }
            let mut g0 = Matrix::zeros(w0.shape());
            for r in 0..w0.rows() {
                for c in 0..w0.cols() {
                    g0.set(r, c, e0[r] * x[c]);
                }
            }
            for (w, g) in w1.data_mut().iter_mut().zip(g1.data()) {
                *w -= 0.2 * g;
            }
            for (w, g) in w0.data_mut().iter_mut().zip(g0.data()) {
                *w -= 0.2 * g;
            }
        }
        // Final outputs of both within a small band of the target.
        let y_bank = m.forward(&x);
        let h: Vec<f32> = w0.matvec(&x).iter().map(|v| v.max(0.0)).collect();
        let y_host = w1.matvec(&h);
        for i in 0..2 {
            assert!(
                (y_bank[i] - target[i]).abs() < 0.1,
                "bank {} vs {}",
                y_bank[i],
                target[i]
            );
            assert!(
                (y_host[i] - target[i]).abs() < 0.1,
                "host {} vs {}",
                y_host[i],
                target[i]
            );
        }
    }

    #[test]
    fn training_issues_program_instructions() {
        let mut m = trainable();
        let _ = m.train_step(&[0.1; 4], &[0.0, 0.0], 0.1);
        // Setup: 2 ProgramTraining (x2 grids each) + per-step 2 more.
        assert!(m.stats().programs >= 8);
        assert!(m.stats().mvms >= 3); // 2 forward + 1 transposed
    }

    fn small_cnn() -> CompiledNetwork {
        // 2ch 6x6 -> conv(3 kernels 3x3, relu) -> pool 2/2 -> tanh -> fc 4.
        let conv_w = Matrix::from_fn(Shape2::new(3, 2 * 3 * 3), |r, c| {
            (((r * 5 + c * 3) % 11) as f32 - 5.0) / 12.0
        });
        let fc_w = Matrix::from_fn(Shape2::new(4, 3 * 2 * 2), |r, c| {
            (((r * 7 + c * 2 + 3) % 9) as f32 - 4.0) / 8.0
        });
        CompiledNetwork::compile(
            (2, 6, 6),
            vec![
                NetStage::Conv {
                    weights: conv_w,
                    k: 3,
                    stride: 1,
                    pad: 0,
                    activation: Some(Activation::Relu),
                },
                NetStage::MaxPool { k: 2, stride: 2 },
                NetStage::Act(Activation::Tanh),
                NetStage::Fc {
                    weights: fc_w,
                    activation: None,
                },
            ],
            &CrossbarConfig::default(),
        )
        .expect("compiles")
    }

    #[test]
    fn network_shapes_resolve() {
        let m = small_cnn();
        assert_eq!(m.depth(), 4);
        assert_eq!(m.input_shape(), (2, 6, 6));
        assert_eq!(m.input_len(), 72);
        assert_eq!(m.output_shape(), (4, 1, 1));
        assert_eq!(m.output_len(), 4);
    }

    #[test]
    fn network_conv_pool_fc_matches_exact_within_quantization() {
        let mut m = small_cnn();
        for k in 0..3 {
            let input: Vec<f32> = (0..72)
                .map(|i| (((i + k * 5) % 7) as f32 - 3.0) / 7.0)
                .collect();
            let got = m.forward(&input);
            let want = m.forward_exact(&input);
            assert_eq!(got.len(), 4);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 0.1, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn network_conv_issues_one_mvm_per_output_position() {
        let mut m = small_cnn();
        let _ = m.forward(&[0.1; 72]);
        // conv: 4x4 output positions = 16 MVMs, fc: 1 -> 17 total.
        assert_eq!(m.stats().mvms, 17);
        assert_eq!(m.stats().programs, 2); // conv + fc grids
    }

    #[test]
    fn network_subsumes_compiled_mlp() {
        // An FC-only CompiledNetwork reproduces CompiledMlp bit-for-bit,
        // with identical bank MVM counts.
        let cfg = CrossbarConfig::default();
        let fc_stages = vec![
            stage(10, 8, Some(Activation::Relu), 1),
            stage(6, 10, Some(Activation::Relu), 2),
            stage(3, 6, None, 3),
        ];
        let mut mlp = CompiledMlp::compile(fc_stages.clone(), &cfg).expect("compiles");
        let net_stages = fc_stages
            .iter()
            .map(|s| NetStage::Fc {
                weights: s.weights.clone(),
                activation: s.activation,
            })
            .collect();
        let mut net = CompiledNetwork::compile((8, 1, 1), net_stages, &cfg).expect("compiles");
        let input: Vec<f32> = (0..8).map(|i| i as f32 / 10.0 - 0.4).collect();
        assert_eq!(net.forward(&input), mlp.infer(&input));
        assert_eq!(net.stats().mvms, mlp.stats().mvms);
        assert_eq!(net.stats().programs, mlp.stats().programs);
    }

    #[test]
    fn network_rejects_bad_geometry_and_shapes() {
        let cfg = CrossbarConfig::default();
        let err = CompiledNetwork::compile(
            (1, 6, 6),
            vec![NetStage::Conv {
                weights: Matrix::zeros(Shape2::new(1, 9)),
                k: 3,
                stride: 0,
                pad: 0,
                activation: None,
            }],
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::BadGeometry { stage: 0, .. }));
        let err =
            CompiledNetwork::compile((1, 6, 6), vec![NetStage::MaxPool { k: 8, stride: 1 }], &cfg)
                .unwrap_err();
        assert!(matches!(err, CompileError::BadGeometry { stage: 0, .. }));
        let err = CompiledNetwork::compile(
            (1, 3, 3),
            vec![NetStage::Fc {
                weights: Matrix::zeros(Shape2::new(2, 10)),
                activation: None,
            }],
            &cfg,
        )
        .unwrap_err();
        assert_eq!(
            err,
            CompileError::ShapeMismatch {
                stage: 0,
                expected: 9,
                got: 10
            }
        );
    }
}
