//! Compilation of network layers into bank control programs.
//!
//! The paper's control unit "offloads the computation from the host CPU and
//! orchestrates the data transfers between memory subarrays and morphable
//! subarrays in training and testing based on the algorithm configurations"
//! (§III-A.3 (e)). This module is that orchestration for the inference
//! path: given a stack of fully connected layers (weights + activation), it
//! emits the [`Instruction`] sequence that programs the morphable
//! subarrays, morphs them into compute mode, and chains each input vector
//! through the layers via memory subarrays — then executes it on a
//! [`Bank`].

use crate::isa::{Instruction, SubarrayMode};
use crate::subarray::Bank;
use reram_crossbar::CrossbarConfig;
use reram_nn::activations::Activation;
use reram_telemetry::Span;
use reram_tensor::Matrix;

/// One compiled layer: a weight matrix and an optional fused activation.
#[derive(Debug, Clone)]
pub struct FcStage {
    /// Weight matrix `(out × in)`.
    pub weights: Matrix,
    /// Peripheral activation applied on the bitline outputs.
    pub activation: Option<Activation>,
}

impl FcStage {
    /// Creates a stage.
    pub fn new(weights: Matrix, activation: Option<Activation>) -> Self {
        Self {
            weights,
            activation,
        }
    }
}

/// A compiled inference program and the bank sized to run it.
#[derive(Debug)]
pub struct CompiledMlp {
    stages: Vec<FcStage>,
    bank: Bank,
    setup_done: bool,
}

impl CompiledMlp {
    /// Compiles an MLP onto a fresh bank: one morphable subarray per layer,
    /// two memory subarrays used as ping-pong activation buffers.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or consecutive layer shapes are
    /// incompatible.
    pub fn compile(stages: Vec<FcStage>, config: &CrossbarConfig) -> Self {
        assert!(!stages.is_empty(), "cannot compile an empty network");
        for w in stages.windows(2) {
            assert_eq!(
                w[1].weights.cols(),
                w[0].weights.rows(),
                "layer output {} does not feed next layer input {}",
                w[0].weights.rows(),
                w[1].weights.cols()
            );
        }
        let bank = Bank::new(stages.len(), 2, config);
        Self {
            stages,
            bank,
            setup_done: false,
        }
    }

    /// Number of compiled layers.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Input vector length.
    pub fn input_len(&self) -> usize {
        self.stages[0].weights.cols()
    }

    /// Output vector length.
    pub fn output_len(&self) -> usize {
        self.stages[self.stages.len() - 1].weights.rows()
    }

    /// The setup program: program every layer's weights and morph its
    /// subarray into compute mode.
    pub fn setup_program(&self) -> Vec<Instruction> {
        let mut prog = Vec::with_capacity(2 * self.stages.len());
        for (i, stage) in self.stages.iter().enumerate() {
            prog.push(Instruction::Program {
                subarray: i,
                weights: stage.weights.clone(),
            });
            prog.push(Instruction::SetMode {
                subarray: i,
                mode: SubarrayMode::Compute,
            });
        }
        prog
    }

    /// The per-input program: load the vector, chain it through every layer
    /// alternating the two activation buffers, read the result back.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_len()`.
    pub fn inference_program(&self, input: &[f32]) -> Vec<Instruction> {
        assert_eq!(
            input.len(),
            self.input_len(),
            "input length {} vs expected {}",
            input.len(),
            self.input_len()
        );
        let mut prog = vec![Instruction::LoadMem {
            mem: 0,
            data: input.to_vec(),
        }];
        for (i, stage) in self.stages.iter().enumerate() {
            prog.push(Instruction::Compute {
                subarray: i,
                src_mem: i % 2,
                dst_mem: (i + 1) % 2,
                activation: stage.activation,
            });
        }
        prog.push(Instruction::ReadMem {
            mem: self.stages.len() % 2,
        });
        prog
    }

    /// Runs one input through the compiled network on the bank.
    ///
    /// The setup program runs lazily before the first input.
    pub fn infer(&mut self, input: &[f32]) -> Vec<f32> {
        let _span = Span::enter("bank/infer");
        if !self.setup_done {
            let setup = self.setup_program();
            let _ = self.bank.run(setup);
            self.setup_done = true;
        }
        let prog = self.inference_program(input);
        let mut out = self.bank.run(prog);
        // lint:allow(panic) program built by this compiler always ends with ReadMem
        out.pop().expect("inference program ends with a read")
    }

    /// Reference result computed in floating point (no crossbar).
    pub fn infer_exact(&self, input: &[f32]) -> Vec<f32> {
        let mut x = input.to_vec();
        for stage in &self.stages {
            x = stage.weights.matvec(&x);
            if let Some(a) = stage.activation {
                for v in &mut x {
                    *v = a.apply(*v);
                }
            }
        }
        x
    }

    /// Bank statistics accumulated so far.
    pub fn stats(&self) -> crate::subarray::BankStats {
        self.bank.stats()
    }
}

/// An MLP trained *on the bank*: forward MVMs and error back-propagation
/// both execute as bank instructions on the morphable subarrays (forward
/// grid + transposed grid per layer), with the control unit holding the
/// master weights and issuing [`Instruction::ProgramTraining`] updates —
/// the complete "testing and training" support the paper's abstract claims.
///
/// Activations are restricted to ReLU (or none): its derivative is
/// recoverable from the stored post-activation values, so the bank only
/// buffers each stage's output, exactly as Fig. 5(a)'s memory subarrays do.
#[derive(Debug)]
pub struct TrainableMlp {
    weights: Vec<Matrix>,
    relu: Vec<bool>,
    bank: Bank,
    setup_needed: bool,
}

impl TrainableMlp {
    /// Compiles a trainable MLP. `layers` gives each layer's weights and
    /// whether a ReLU follows it.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive shapes are incompatible.
    pub fn compile(layers: Vec<(Matrix, bool)>, config: &CrossbarConfig) -> Self {
        assert!(!layers.is_empty(), "cannot compile an empty network");
        for w in layers.windows(2) {
            assert_eq!(
                w[1].0.cols(),
                w[0].0.rows(),
                "layer output {} does not feed next layer input {}",
                w[0].0.rows(),
                w[1].0.cols()
            );
        }
        // Memory map: slot i = activation entering layer i (slot 0 = input,
        // slot L = network output), slots L+1/L+2 = error ping-pong.
        let depth = layers.len();
        let bank = Bank::new(depth, depth + 3, config);
        Self {
            weights: layers.iter().map(|(w, _)| w.clone()).collect(),
            relu: layers.iter().map(|&(_, r)| r).collect(),
            bank,
            setup_needed: true,
        }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.weights.len()
    }

    /// The control unit's master copy of layer `i`'s weights.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn weights(&self, i: usize) -> &Matrix {
        &self.weights[i]
    }

    /// Bank statistics accumulated so far.
    pub fn stats(&self) -> crate::subarray::BankStats {
        self.bank.stats()
    }

    fn ensure_setup(&mut self) {
        if !self.setup_needed {
            return;
        }
        for (i, w) in self.weights.iter().enumerate() {
            self.bank.execute(Instruction::ProgramTraining {
                subarray: i,
                weights: w.clone(),
            });
            self.bank.execute(Instruction::SetMode {
                subarray: i,
                mode: SubarrayMode::Compute,
            });
        }
        self.setup_needed = false;
    }

    /// Forward pass on the bank, leaving every stage's activation in its
    /// memory subarray. Returns the network output.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the first layer's width.
    pub fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.weights[0].cols(), "input length");
        self.ensure_setup();
        self.bank.execute(Instruction::LoadMem {
            mem: 0,
            data: input.to_vec(),
        });
        for i in 0..self.depth() {
            self.bank.execute(Instruction::Compute {
                subarray: i,
                src_mem: i,
                dst_mem: i + 1,
                activation: if self.relu[i] {
                    Some(Activation::Relu)
                } else {
                    None
                },
            });
        }
        self.bank
            .execute(Instruction::ReadMem { mem: self.depth() })
            // lint:allow(panic) ReadMem of a slot this compiler wrote always yields data
            .expect("read returns data")
    }

    /// One SGD training step on `(input, target)` under mean-squared error.
    /// Returns the loss before the update.
    ///
    /// The forward pass and every error-propagation product run on the
    /// bank; the control unit computes the loss gradient, masks it by the
    /// ReLU derivative (recovered from the buffered activations), forms the
    /// weight-gradient outer products, and writes the tuned weights back
    /// with `ProgramTraining`.
    ///
    /// # Panics
    ///
    /// Panics if `target.len()` differs from the output width.
    pub fn train_step(&mut self, input: &[f32], target: &[f32], lr: f32) -> f32 {
        let _span = Span::enter("bank/train_step");
        let depth = self.depth();
        let out = self.forward(input);
        assert_eq!(target.len(), out.len(), "target length");
        let n = out.len() as f32;
        let loss: f32 = out
            .iter()
            .zip(target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f32>()
            / n;

        // Error at the output (dL/dy for MSE), held in the error slots.
        let err_a = depth + 1;
        let err_b = depth + 2;
        let mut grads: Vec<Matrix> = Vec::with_capacity(depth);
        let mut error: Vec<f32> = out
            .iter()
            .zip(target)
            .map(|(y, t)| 2.0 * (y - t) / n)
            .collect();

        for i in (0..depth).rev() {
            // Activation of this layer's output (slot i+1) for the ReLU
            // derivative, and its input (slot i) for the weight gradient.
            let out_act = self
                .bank
                .execute(Instruction::ReadMem { mem: i + 1 })
                // lint:allow(panic) forward pass buffered this slot earlier in the step
                .expect("activation buffered");
            if self.relu[i] {
                for (e, &a) in error.iter_mut().zip(&out_act) {
                    if a <= 0.0 {
                        *e = 0.0;
                    }
                }
            }
            let in_act = self
                .bank
                .execute(Instruction::ReadMem { mem: i })
                // lint:allow(panic) forward pass buffered this slot earlier in the step
                .expect("activation buffered");
            // Weight gradient: e ⊗ x (control-unit outer-product logic).
            let w = &self.weights[i];
            let mut grad = Matrix::zeros(w.shape());
            for r in 0..w.rows() {
                for c in 0..w.cols() {
                    grad.set(r, c, error[r] * in_act[c]);
                }
            }
            grads.push(grad);
            // Propagate the error through the transposed grid on the bank.
            if i > 0 {
                self.bank.execute(Instruction::LoadMem {
                    mem: err_a,
                    data: error.clone(),
                });
                self.bank.execute(Instruction::ComputeTransposed {
                    subarray: i,
                    src_mem: err_a,
                    dst_mem: err_b,
                });
                error = self
                    .bank
                    .execute(Instruction::ReadMem { mem: err_b })
                    // lint:allow(panic) error slot written by the preceding backward stage
                    .expect("propagated error");
            }
        }

        // Weight update cycle: tune the weights and rewrite both grids.
        grads.reverse();
        for (i, grad) in grads.iter().enumerate() {
            for (w, g) in self.weights[i].data_mut().iter_mut().zip(grad.data()) {
                *w -= lr * g;
            }
            self.bank.execute(Instruction::ProgramTraining {
                subarray: i,
                weights: self.weights[i].clone(),
            });
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_tensor::Shape2;

    fn stage(out: usize, inp: usize, act: Option<Activation>, salt: usize) -> FcStage {
        FcStage::new(
            Matrix::from_fn(Shape2::new(out, inp), |r, c| {
                (((r * 7 + c * 5 + salt) % 13) as f32 - 6.0) / 8.0
            }),
            act,
        )
    }

    fn mlp() -> CompiledMlp {
        CompiledMlp::compile(
            vec![
                stage(10, 8, Some(Activation::Relu), 1),
                stage(6, 10, Some(Activation::Relu), 2),
                stage(3, 6, None, 3),
            ],
            &CrossbarConfig::default(),
        )
    }

    #[test]
    fn shapes_and_depth() {
        let m = mlp();
        assert_eq!(m.depth(), 3);
        assert_eq!(m.input_len(), 8);
        assert_eq!(m.output_len(), 3);
    }

    #[test]
    fn setup_program_structure() {
        let m = mlp();
        let setup = m.setup_program();
        assert_eq!(setup.len(), 6); // program + set_mode per layer
        assert!(matches!(setup[0], Instruction::Program { subarray: 0, .. }));
        assert!(matches!(
            setup[5],
            Instruction::SetMode {
                subarray: 2,
                mode: SubarrayMode::Compute
            }
        ));
    }

    #[test]
    fn inference_matches_exact_within_quantization() {
        let mut m = mlp();
        for k in 0..4 {
            let input: Vec<f32> = (0..8).map(|i| ((i + k) % 5) as f32 / 5.0 - 0.4).collect();
            let got = m.infer(&input);
            let want = m.infer_exact(&input);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 0.05, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn ping_pong_buffers_alternate() {
        let m = mlp();
        let prog = m.inference_program(&[0.0; 8]);
        // load -> compute(0->1) -> compute(1->0) -> compute(0->1) -> read(1)
        assert!(matches!(
            prog[1],
            Instruction::Compute {
                src_mem: 0,
                dst_mem: 1,
                ..
            }
        ));
        assert!(matches!(
            prog[2],
            Instruction::Compute {
                src_mem: 1,
                dst_mem: 0,
                ..
            }
        ));
        assert!(matches!(
            prog[3],
            Instruction::Compute {
                src_mem: 0,
                dst_mem: 1,
                ..
            }
        ));
        assert!(matches!(prog[4], Instruction::ReadMem { mem: 1 }));
    }

    #[test]
    fn stats_accumulate_per_inference() {
        let mut m = mlp();
        let _ = m.infer(&[0.1; 8]);
        let after_one = m.stats();
        let _ = m.infer(&[0.2; 8]);
        let after_two = m.stats();
        assert_eq!(after_one.mvms, 3);
        assert_eq!(after_two.mvms, 6);
        assert_eq!(after_two.programs, 3); // setup only once
    }

    #[test]
    #[should_panic(expected = "does not feed")]
    fn rejects_mismatched_layers() {
        let _ = CompiledMlp::compile(
            vec![stage(10, 8, None, 1), stage(6, 9, None, 2)],
            &CrossbarConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn rejects_empty() {
        let _ = CompiledMlp::compile(vec![], &CrossbarConfig::default());
    }

    fn trainable() -> TrainableMlp {
        TrainableMlp::compile(
            vec![
                (
                    Matrix::from_fn(Shape2::new(6, 4), |r, c| {
                        (((r * 7 + c * 5) % 11) as f32 - 5.0) / 10.0
                    }),
                    true,
                ),
                (
                    Matrix::from_fn(Shape2::new(2, 6), |r, c| {
                        (((r * 3 + c * 7 + 1) % 11) as f32 - 5.0) / 10.0
                    }),
                    false,
                ),
            ],
            &CrossbarConfig::default(),
        )
    }

    #[test]
    fn trainable_forward_matches_host_math() {
        let mut m = trainable();
        let x = [0.4f32, -0.2, 0.1, 0.3];
        let y = m.forward(&x);
        // Host reference.
        let h: Vec<f32> = m.weights(0).matvec(&x).iter().map(|v| v.max(0.0)).collect();
        let want = m.weights(1).matvec(&h);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn bank_training_reduces_loss() {
        let mut m = trainable();
        let x = [0.4f32, -0.2, 0.1, 0.3];
        let target = [0.5f32, -0.25];
        let first = m.train_step(&x, &target, 0.2);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_step(&x, &target, 0.2);
        }
        assert!(
            last < first * 0.2,
            "bank-level training failed to descend: {first} -> {last}"
        );
    }

    #[test]
    fn bank_training_tracks_float_training() {
        // Train the same network host-side in f32; both trajectories end
        // near the target.
        let mut m = trainable();
        let mut w0 = m.weights(0).clone();
        let mut w1 = m.weights(1).clone();
        let x = [0.4f32, -0.2, 0.1, 0.3];
        let target = [0.5f32, -0.25];
        for _ in 0..30 {
            let _ = m.train_step(&x, &target, 0.2);
            // Host-side reference step.
            let h_pre = w0.matvec(&x);
            let h: Vec<f32> = h_pre.iter().map(|v| v.max(0.0)).collect();
            let y = w1.matvec(&h);
            let n = y.len() as f32;
            let e1: Vec<f32> = y
                .iter()
                .zip(&target)
                .map(|(a, b)| 2.0 * (a - b) / n)
                .collect();
            let mut g1 = Matrix::zeros(w1.shape());
            for r in 0..w1.rows() {
                for c in 0..w1.cols() {
                    g1.set(r, c, e1[r] * h[c]);
                }
            }
            let mut e0 = w1.transposed().matvec(&e1);
            for (e, &p) in e0.iter_mut().zip(&h_pre) {
                if p <= 0.0 {
                    *e = 0.0;
                }
            }
            let mut g0 = Matrix::zeros(w0.shape());
            for r in 0..w0.rows() {
                for c in 0..w0.cols() {
                    g0.set(r, c, e0[r] * x[c]);
                }
            }
            for (w, g) in w1.data_mut().iter_mut().zip(g1.data()) {
                *w -= 0.2 * g;
            }
            for (w, g) in w0.data_mut().iter_mut().zip(g0.data()) {
                *w -= 0.2 * g;
            }
        }
        // Final outputs of both within a small band of the target.
        let y_bank = m.forward(&x);
        let h: Vec<f32> = w0.matvec(&x).iter().map(|v| v.max(0.0)).collect();
        let y_host = w1.matvec(&h);
        for i in 0..2 {
            assert!(
                (y_bank[i] - target[i]).abs() < 0.1,
                "bank {} vs {}",
                y_bank[i],
                target[i]
            );
            assert!(
                (y_host[i] - target[i]).abs() < 0.1,
                "host {} vs {}",
                y_host[i],
                target[i]
            );
        }
    }

    #[test]
    fn training_issues_program_instructions() {
        let mut m = trainable();
        let _ = m.train_step(&[0.1; 4], &[0.0, 0.0], 0.1);
        // Setup: 2 ProgramTraining (x2 grids each) + per-step 2 more.
        assert!(m.stats().programs >= 8);
        assert!(m.stats().mvms >= 3); // 2 forward + 1 transposed
    }
}
