use crate::mapping::ReplicationPolicy;
use reram_crossbar::{CrossbarConfig, CrossbarCostModel};
use serde::{Deserialize, Serialize};

/// Top-level configuration of a PIM accelerator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AcceleratorConfig {
    /// Crossbar geometry and precision.
    pub crossbar: CrossbarConfig,
    /// Circuit-level latency/energy/area parameters.
    pub cost: CrossbarCostModel,
    /// Weight replication policy (the `X` of Fig. 4(b)).
    pub replication: ReplicationPolicy,
    /// Average input spike activity used for energy estimates.
    pub activity: f64,
}

impl AcceleratorConfig {
    /// Default configuration: 128×128 arrays, 16-bit weights/inputs, and a
    /// per-layer array budget sized like PipeLayer's evaluation setup.
    pub fn new() -> Self {
        Self {
            crossbar: CrossbarConfig::default(),
            cost: CrossbarCostModel::default(),
            replication: ReplicationPolicy::default(),
            activity: 0.5,
        }
    }

    /// Same configuration with a different replication policy.
    pub fn with_replication(mut self, replication: ReplicationPolicy) -> Self {
        self.replication = replication;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    #[must_use = "the validation outcome must be checked"]
    pub fn validate(&self) -> Result<(), String> {
        self.crossbar.validate()?;
        if !(0.0..=1.0).contains(&self.activity) {
            return Err(format!("activity {} outside [0, 1]", self.activity));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert_eq!(AcceleratorConfig::default().validate(), Ok(()));
        assert_eq!(AcceleratorConfig::new().validate(), Ok(()));
    }

    #[test]
    fn bad_activity_rejected() {
        let c = AcceleratorConfig {
            activity: 2.0,
            ..AcceleratorConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_replication_sets_policy() {
        let c = AcceleratorConfig::default().with_replication(ReplicationPolicy::Fixed(4));
        assert_eq!(c.replication, ReplicationPolicy::Fixed(4));
    }
}
