//! The ReGAN GAN-training pipeline — paper §III-B.2/3, Fig. 8 and Fig. 9.
//!
//! One GAN training iteration has three dataflows (Fig. 8):
//!
//! * **①** D trained on real samples — `2L_D + 1` stages per input
//!   (forward `L_D`, loss, backward `L_D`),
//! * **②** D trained on generated samples — G concatenated in front of D:
//!   `L_G + 2L_D + 1` stages ("G is used but not updated"),
//! * **③** G trained through a fixed D — `2L_G + 2L_D + 1` stages (forward
//!   through G and D, backward through D and G).
//!
//! Pipelined, a phase of per-input latency `P` over a batch of `B` costs
//! `P + B − 1` cycles (the batch drains at one input per cycle), plus one
//! cycle per weight update; the paper's cycle counts follow:
//!
//! * train D: `(2L_D + B) + (L_G + 2L_D + B)` + 1 update,
//! * train G: `2L_G + 2L_D + B + 1`,
//! * without the pipeline: `(4L_D + L_G + 2)·B` and `(2L_G + 2L_D + 1)·B`.
//!
//! **Spatial parallelism (SP)** duplicates D so ① and ② run concurrently;
//! ①'s latency hides under ②'s (which is longer by `L_G`). **Computation
//! sharing (CS)** co-trains D and G: phases ② and ③ share the forward path
//! and fork into two parallel backward branches (Fig. 9), at the price of
//! double intermediate storage; the iteration collapses to ③'s length.

use serde::{Deserialize, Serialize};

/// Optimization level of the ReGAN pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReganOpt {
    /// One input at a time, no inter-layer pipelining.
    NoPipeline,
    /// The Fig. 8 training pipeline.
    Pipeline,
    /// Pipeline + spatial parallelism (D duplicated).
    PipelineSp,
    /// Pipeline + SP + computation sharing (②/③ merged).
    PipelineSpCs,
}

impl ReganOpt {
    /// All levels, in increasing optimization order.
    pub const ALL: [ReganOpt; 4] = [
        ReganOpt::NoPipeline,
        ReganOpt::Pipeline,
        ReganOpt::PipelineSp,
        ReganOpt::PipelineSpCs,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ReganOpt::NoPipeline => "no-pipeline",
            ReganOpt::Pipeline => "pipeline",
            ReganOpt::PipelineSp => "pipeline+SP",
            ReganOpt::PipelineSpCs => "pipeline+SP+CS",
        }
    }
}

/// Cycle model of ReGAN's GAN training schedule.
///
/// As with [`crate::pipeline::PipelineModel`], the paper's closed forms
/// count *macro-cycles* (every stage padded to the slowest layer).
/// [`ReganPipeline::with_stage_cycles`] additionally records per-layer
/// micro-cycle costs for both networks and exposes heterogeneous phase
/// forms ([`ReganPipeline::d_training_stage_cycles`] and friends) where
/// each phase's initiation interval is its slowest stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReganPipeline {
    l_d: usize,
    l_g: usize,
    batch: usize,
    d_stages: Vec<u64>,
    g_stages: Vec<u64>,
}

impl ReganPipeline {
    /// Creates a model for a discriminator of `l_d` weighted layers, a
    /// generator of `l_g` weighted layers, and batch size `batch`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(l_d: usize, l_g: usize, batch: usize) -> Self {
        assert!(l_d > 0 && l_g > 0 && batch > 0, "zero pipeline parameter");
        Self {
            l_d,
            l_g,
            batch,
            d_stages: vec![1; l_d],
            g_stages: vec![1; l_g],
        }
    }

    /// Creates a model with heterogeneous per-layer forward stage costs for
    /// the discriminator (`d_stages`) and generator (`g_stages`), in
    /// micro-cycles. Backward stages cost twice their forward counterpart.
    /// The uniform [`ReganPipeline::new`] is the special case where every
    /// entry is 1.
    ///
    /// # Panics
    ///
    /// Panics if either stage vector is empty or contains a zero, or if
    /// `batch` is zero.
    pub fn with_stage_cycles(d_stages: Vec<u64>, g_stages: Vec<u64>, batch: usize) -> Self {
        assert!(
            !d_stages.is_empty() && !g_stages.is_empty() && batch > 0,
            "zero pipeline parameter"
        );
        assert!(
            d_stages.iter().chain(&g_stages).all(|&c| c > 0),
            "every stage must cost at least one cycle"
        );
        Self {
            l_d: d_stages.len(),
            l_g: g_stages.len(),
            batch,
            d_stages,
            g_stages,
        }
    }

    /// Discriminator depth `L_D`.
    pub fn discriminator_layers(&self) -> usize {
        self.l_d
    }

    /// Generator depth `L_G`.
    pub fn generator_layers(&self) -> usize {
        self.l_g
    }

    /// Batch size `B`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Per-input stage count of phase ① (D on real samples).
    pub fn phase1_latency(&self) -> u64 {
        (2 * self.l_d + 1) as u64
    }

    /// Per-input stage count of phase ② (D on generated samples).
    pub fn phase2_latency(&self) -> u64 {
        (self.l_g + 2 * self.l_d + 1) as u64
    }

    /// Per-input stage count of phase ③ (G through fixed D).
    pub fn phase3_latency(&self) -> u64 {
        (2 * self.l_g + 2 * self.l_d + 1) as u64
    }

    /// Per-layer forward stage costs of the discriminator, in micro-cycles.
    pub fn d_stage_cycles(&self) -> &[u64] {
        &self.d_stages
    }

    /// Per-layer forward stage costs of the generator, in micro-cycles.
    pub fn g_stage_cycles(&self) -> &[u64] {
        &self.g_stages
    }

    fn d_sum(&self) -> u64 {
        self.d_stages.iter().sum()
    }

    fn g_sum(&self) -> u64 {
        self.g_stages.iter().sum()
    }

    fn d_max(&self) -> u64 {
        // lint:allow(panic) stage vectors are non-empty by construction.
        *self.d_stages.iter().max().unwrap()
    }

    fn g_max(&self) -> u64 {
        // lint:allow(panic) stage vectors are non-empty by construction.
        *self.g_stages.iter().max().unwrap()
    }

    /// Heterogeneous per-input micro-cycle latency of phase ①: forward
    /// through D (`Σd`), one loss stage, backward through D (`2Σd`).
    pub fn phase1_stage_latency(&self) -> u64 {
        3 * self.d_sum() + 1
    }

    /// Heterogeneous per-input micro-cycle latency of phase ②: forward
    /// through G and D, loss, backward through D (G is not updated).
    pub fn phase2_stage_latency(&self) -> u64 {
        self.g_sum() + 3 * self.d_sum() + 1
    }

    /// Heterogeneous per-input micro-cycle latency of phase ③: forward and
    /// backward through both networks.
    pub fn phase3_stage_latency(&self) -> u64 {
        3 * self.g_sum() + 3 * self.d_sum() + 1
    }

    /// Heterogeneous micro-cycles to update D once under `opt` — the
    /// macro-cycle [`ReganPipeline::d_training_cycles`] schedule with each
    /// phase's unit initiation interval replaced by its slowest stage
    /// (backward stages cost double, so the interval of phase ① is
    /// `2·max(d)` and of phase ② `max(max(g), 2·max(d))`).
    pub fn d_training_stage_cycles(&self, opt: ReganOpt) -> u64 {
        let b = self.batch as u64;
        let p1 = self.phase1_stage_latency();
        let p2 = self.phase2_stage_latency();
        let ii1 = 2 * self.d_max();
        let ii2 = self.g_max().max(2 * self.d_max());
        match opt {
            ReganOpt::NoPipeline => (p1 + p2) * b,
            ReganOpt::Pipeline => (p1 + (b - 1) * ii1) + (p2 + (b - 1) * ii2) + 1,
            ReganOpt::PipelineSp | ReganOpt::PipelineSpCs => (p2 + (b - 1) * ii2) + 1,
        }
    }

    /// Heterogeneous micro-cycles to update G once under `opt` (phase ③'s
    /// initiation interval is `2·max(max(g), max(d))` — the slowest
    /// backward stage of either network).
    pub fn g_training_stage_cycles(&self, opt: ReganOpt) -> u64 {
        let b = self.batch as u64;
        let p3 = self.phase3_stage_latency();
        let ii3 = 2 * self.g_max().max(self.d_max());
        match opt {
            ReganOpt::NoPipeline => p3 * b,
            _ => (p3 + (b - 1) * ii3) + 1,
        }
    }

    /// Heterogeneous micro-cycles for one full iteration under `opt`
    /// (CS collapses the iteration to ③'s span, as in the macro model).
    pub fn iteration_stage_cycles(&self, opt: ReganOpt) -> u64 {
        match opt {
            ReganOpt::PipelineSpCs => self.g_training_stage_cycles(opt),
            _ => self.d_training_stage_cycles(opt) + self.g_training_stage_cycles(opt),
        }
    }

    /// Cycles to update D once (phases ① + ② + update).
    pub fn d_training_cycles(&self, opt: ReganOpt) -> u64 {
        let b = self.batch as u64;
        match opt {
            // "(4L_D + L_G + 2)B cycles" — per-input latencies summed, no
            // overlap.
            ReganOpt::NoPipeline => (self.phase1_latency() + self.phase2_latency()) * b,
            // "2L_D + 1 + B − 1 cycles … then L_G + 2L_D + 1 + B − 1 cycles
            // … finally one cycle to update D."
            ReganOpt::Pipeline => {
                (self.phase1_latency() + b - 1) + (self.phase2_latency() + b - 1) + 1
            }
            // SP: ① runs on the duplicated D concurrently with ② and is
            // strictly shorter, so only ② (+ update) shows.
            ReganOpt::PipelineSp | ReganOpt::PipelineSpCs => (self.phase2_latency() + b - 1) + 1,
        }
    }

    /// Cycles to update G once (phase ③ + update).
    pub fn g_training_cycles(&self, opt: ReganOpt) -> u64 {
        let b = self.batch as u64;
        match opt {
            // "(2L_G + 2L_D + 1)B cycles."
            ReganOpt::NoPipeline => self.phase3_latency() * b,
            // "it takes 2L_G + 2L_D + B + 1 cycles to train G."
            _ => (self.phase3_latency() + b - 1) + 1,
        }
    }

    /// Cycles for one full iteration (one D update + one G update).
    ///
    /// With CS, phases ② and ③ share the forward path and fork into
    /// parallel backward branches (Fig. 9): D's update completes inside
    /// ③'s window, so the iteration is ③'s pipelined length (① stays
    /// hidden under SP).
    ///
    /// Note that at `B == 1` the plain pipeline can exceed the no-pipeline
    /// count: there is nothing to overlap, and the paper's pipelined
    /// formulas pay their explicit weight-update cycles while the
    /// no-pipeline formulas fold updates into the per-input latencies. SP
    /// and CS still help at `B == 1` — they exploit hardware duplication
    /// and path sharing, not batch overlap.
    pub fn iteration_cycles(&self, opt: ReganOpt) -> u64 {
        match opt {
            ReganOpt::PipelineSpCs => self.g_training_cycles(opt),
            _ => self.d_training_cycles(opt) + self.g_training_cycles(opt),
        }
    }

    /// Cycles to run `batches` training iterations.
    pub fn total_cycles(&self, batches: u64, opt: ReganOpt) -> u64 {
        batches * self.iteration_cycles(opt)
    }

    /// Iteration speedup of `opt` relative to `base`.
    pub fn speedup(&self, base: ReganOpt, opt: ReganOpt) -> f64 {
        self.iteration_cycles(base) as f64 / self.iteration_cycles(opt) as f64
    }

    /// Physical discriminator copies required (SP duplicates D).
    pub fn discriminator_copies(&self, opt: ReganOpt) -> usize {
        match opt {
            ReganOpt::PipelineSp | ReganOpt::PipelineSpCs => 2,
            _ => 1,
        }
    }

    /// Multiplier on intermediate-result storage (CS doubles it).
    pub fn buffer_multiplier(&self, opt: ReganOpt) -> usize {
        match opt {
            ReganOpt::PipelineSpCs => 2,
            _ => 1,
        }
    }

    /// Checks whether running phases ① and ② *concurrently on a single
    /// discriminator* would double-book any D stage — the structural hazard
    /// that motivates SP's duplication of D ("we proposed to duplicate D
    /// into two copies", §III-B.3).
    ///
    /// Both phases stream `B` inputs one per cycle through D's forward and
    /// backward stages; phase ② reaches each D stage `L_G` cycles later
    /// than phase ① (its inputs first traverse G). The phases collide
    /// whenever their occupancy windows of any stage overlap, which happens
    /// for every `B > L_G` — i.e. for every realistic batch size.
    pub fn concurrent_phase12_conflicts(&self) -> bool {
        let b = self.batch as u64;
        let lg = self.l_g as u64;
        // Phase ① occupies D stage s during cycles [s+1, s+B]; phase ②
        // during [s+L_G+1, s+L_G+B]. Overlap iff L_G < B.
        let mut conflict = false;
        for s in 0..(2 * self.l_d as u64 + 1) {
            let p1 = (s + 1, s + b);
            let p2 = (s + lg + 1, s + lg + b);
            if p1.0 <= p2.1 && p2.0 <= p1.1 {
                conflict = true;
            }
        }
        conflict
    }

    /// Event-driven schedule simulation of one iteration, returning total
    /// cycles. Independent of the closed forms: phases are scheduled by
    /// entry gaps and dependencies, and completion times are taken from the
    /// last event.
    pub fn simulate_iteration(&self, opt: ReganOpt) -> u64 {
        let b = self.batch as u64;
        let p1 = self.phase1_latency();
        let p2 = self.phase2_latency();
        let p3 = self.phase3_latency();

        // phase_end(start, per_input_latency, gap): completion cycle of the
        // last input when inputs enter `gap` cycles apart from `start`.
        let phase_end = |start: u64, p: u64, gap: u64| start + (b - 1) * gap + p - 1;

        match opt {
            ReganOpt::NoPipeline => {
                // Inputs strictly sequential (gap = latency), phases chained.
                let e1 = phase_end(1, p1, p1);
                let e2 = phase_end(e1 + 1, p2, p2);
                // Weight update folded into the per-input counts per the
                // paper's formula.
                let d_done = e2;

                phase_end(d_done + 1, p3, p3)
            }
            ReganOpt::Pipeline => {
                let e1 = phase_end(1, p1, 1);
                let e2 = phase_end(e1 + 1, p2, 1);
                let d_update = e2 + 1;
                let e3 = phase_end(d_update + 1, p3, 1);
                e3 + 1
            }
            ReganOpt::PipelineSp => {
                // ① and ② start together on the two D copies.
                let e1 = phase_end(1, p1, 1);
                let e2 = phase_end(1, p2, 1);
                let d_update = e1.max(e2) + 1;
                let e3 = phase_end(d_update + 1, p3, 1);
                e3 + 1
            }
            ReganOpt::PipelineSpCs => {
                // ① in parallel on the D copy; ②/③ share the forward path
                // and fork into parallel backward branches.
                let e1 = phase_end(1, p1, 1);
                let e2_branch = phase_end(1, p2, 1);
                let e3_branch = phase_end(1, p3, 1);
                let d_update = e1.max(e2_branch) + 1;
                let g_update = e3_branch + 1;
                d_update.max(g_update)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ReganPipeline {
        ReganPipeline::new(4, 4, 32)
    }

    #[test]
    fn paper_formula_d_training_pipelined() {
        // "training D on real samples takes 2L_D + 1 + B − 1 cycles … then
        // L_G + 2L_D + 1 + B − 1 cycles … finally one cycle to update D."
        let (l_d, l_g, b) = (4u64, 4u64, 32u64);
        let want = (2 * l_d + 1 + b - 1) + (l_g + 2 * l_d + 1 + b - 1) + 1;
        assert_eq!(p().d_training_cycles(ReganOpt::Pipeline), want);
    }

    #[test]
    fn paper_formula_g_training_pipelined() {
        // "it takes 2L_G + 2L_D + B + 1 cycles to train G."
        let (l_d, l_g, b) = (4u64, 4u64, 32u64);
        assert_eq!(
            p().g_training_cycles(ReganOpt::Pipeline),
            2 * l_g + 2 * l_d + b + 1
        );
    }

    #[test]
    fn paper_formula_no_pipeline() {
        // "the D and G training processes for a batch of data consume
        // (4L_D + L_G + 2)B cycles and (2L_G + 2L_D + 1)B cycles."
        let (l_d, l_g, b) = (4u64, 4u64, 32u64);
        assert_eq!(
            p().d_training_cycles(ReganOpt::NoPipeline),
            (4 * l_d + l_g + 2) * b
        );
        assert_eq!(
            p().g_training_cycles(ReganOpt::NoPipeline),
            (2 * l_g + 2 * l_d + 1) * b
        );
    }

    #[test]
    fn sp_hides_phase_one() {
        // "The latency of ① is hidden so the effective latency is reduced
        // to the one of ②."
        let (l_d, l_g, b) = (4u64, 4u64, 32u64);
        assert_eq!(
            p().d_training_cycles(ReganOpt::PipelineSp),
            (l_g + 2 * l_d + 1 + b - 1) + 1
        );
    }

    #[test]
    fn optimizations_strictly_improve() {
        let p = p();
        let cycles: Vec<u64> = ReganOpt::ALL
            .iter()
            .map(|&o| p.iteration_cycles(o))
            .collect();
        for w in cycles.windows(2) {
            assert!(w[0] > w[1], "optimization did not help: {cycles:?}");
        }
    }

    #[test]
    fn simulation_matches_formulas() {
        for l_d in [2usize, 4, 8] {
            for l_g in [2usize, 4, 6] {
                for b in [1usize, 8, 32, 128] {
                    let p = ReganPipeline::new(l_d, l_g, b);
                    for opt in ReganOpt::ALL {
                        assert_eq!(
                            p.simulate_iteration(opt),
                            p.iteration_cycles(opt),
                            "L_D={l_d} L_G={l_g} B={b} {}",
                            opt.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pipeline_speedup_grows_with_batch() {
        let mut prev = 0.0;
        for b in [1usize, 8, 32, 128, 512] {
            let p = ReganPipeline::new(4, 4, b);
            let s = p.speedup(ReganOpt::NoPipeline, ReganOpt::Pipeline);
            assert!(s >= prev);
            prev = s;
        }
        assert!(prev > 10.0, "large-batch pipeline speedup {prev}");
    }

    #[test]
    fn sp_requires_second_discriminator() {
        let p = p();
        assert_eq!(p.discriminator_copies(ReganOpt::Pipeline), 1);
        assert_eq!(p.discriminator_copies(ReganOpt::PipelineSp), 2);
        assert_eq!(p.buffer_multiplier(ReganOpt::PipelineSp), 1);
        assert_eq!(p.buffer_multiplier(ReganOpt::PipelineSpCs), 2);
    }

    #[test]
    fn cs_iteration_is_phase3_bound() {
        let p = p();
        assert_eq!(
            p.iteration_cycles(ReganOpt::PipelineSpCs),
            p.g_training_cycles(ReganOpt::PipelineSpCs)
        );
    }

    #[test]
    fn single_discriminator_cannot_run_phases_concurrently() {
        // For every realistic batch (B > L_G) the two D-training dataflows
        // collide on a single D copy — the hazard SP removes.
        assert!(ReganPipeline::new(4, 4, 32).concurrent_phase12_conflicts());
        assert!(ReganPipeline::new(8, 2, 64).concurrent_phase12_conflicts());
        // Degenerate case: a batch no larger than L_G drains phase ① from
        // each stage before phase ② arrives.
        assert!(!ReganPipeline::new(4, 8, 8).concurrent_phase12_conflicts());
    }

    #[test]
    fn total_cycles_scales_linearly() {
        let p = p();
        assert_eq!(
            p.total_cycles(10, ReganOpt::Pipeline),
            10 * p.iteration_cycles(ReganOpt::Pipeline)
        );
    }

    #[test]
    #[should_panic(expected = "zero pipeline parameter")]
    fn rejects_zero_depth() {
        let _ = ReganPipeline::new(0, 4, 32);
    }

    #[test]
    fn hetero_phase_latencies() {
        let p = ReganPipeline::with_stage_cycles(vec![3, 1], vec![2, 5, 4], 8);
        // Σd = 4, Σg = 11.
        assert_eq!(p.phase1_stage_latency(), 3 * 4 + 1);
        assert_eq!(p.phase2_stage_latency(), 11 + 3 * 4 + 1);
        assert_eq!(p.phase3_stage_latency(), 3 * 11 + 3 * 4 + 1);
    }

    #[test]
    fn hetero_d_training_schedule() {
        let p = ReganPipeline::with_stage_cycles(vec![3, 1], vec![2, 5, 4], 8);
        let (p1, p2) = (p.phase1_stage_latency(), p.phase2_stage_latency());
        // ii1 = 2·max(d) = 6; ii2 = max(max(g)=5, 2·max(d)=6) = 6.
        assert_eq!(
            p.d_training_stage_cycles(ReganOpt::Pipeline),
            (p1 + 7 * 6) + (p2 + 7 * 6) + 1
        );
        assert_eq!(
            p.d_training_stage_cycles(ReganOpt::PipelineSp),
            (p2 + 7 * 6) + 1
        );
        assert_eq!(
            p.d_training_stage_cycles(ReganOpt::NoPipeline),
            (p1 + p2) * 8
        );
        // ii3 = 2·max(max(g), max(d)) = 10.
        assert_eq!(
            p.g_training_stage_cycles(ReganOpt::Pipeline),
            p.phase3_stage_latency() + 7 * 10 + 1
        );
    }

    #[test]
    fn hetero_optimizations_never_hurt() {
        let p = ReganPipeline::with_stage_cycles(vec![4, 2, 7, 1], vec![3, 6, 2], 32);
        let cycles: Vec<u64> = ReganOpt::ALL
            .iter()
            .map(|&o| p.iteration_stage_cycles(o))
            .collect();
        for w in cycles.windows(2) {
            assert!(w[0] >= w[1], "optimization hurt: {cycles:?}");
        }
    }

    #[test]
    fn uniform_stage_cycles_match_new() {
        // with_stage_cycles(all ones) and new() agree on every API.
        let a = ReganPipeline::new(4, 3, 16);
        let b = ReganPipeline::with_stage_cycles(vec![1; 4], vec![1; 3], 16);
        assert_eq!(a, b);
        for opt in ReganOpt::ALL {
            assert_eq!(a.iteration_stage_cycles(opt), b.iteration_stage_cycles(opt));
        }
    }
}
