//! Data input and kernel mapping — paper §III-A.1 and Fig. 4.
//!
//! A weighted layer's kernels form a matrix (unrolled kernel volume ×
//! output channels). The **naïve scheme** (Fig. 4(a)) maps that matrix onto
//! one logical array and feeds input vectors sequentially: the example layer
//! (114×114×128 → 112×112×256, 3×3 kernels) takes 12544 cycles — one per
//! output position. The **balanced scheme** (Fig. 4(b)) partitions the
//! matrix over 128×128 arrays (the example's 1152×256 matrix becomes a
//! 9×2 group) and replicates the weights `X` times so `X` input vectors
//! are processed per step: `X = 1` degenerates to the naïve scheme,
//! `X = 12544` produces the whole layer in one step at excessive hardware
//! cost — "a good trade-off … requires a carefully chosen X".

use std::fmt;

use crate::AcceleratorConfig;
use reram_nn::{LayerSpec, NetworkSpec};
use serde::{Deserialize, Serialize};

/// Why a layer or network cannot be mapped under a replication policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingError {
    /// [`ReplicationPolicy::Fixed`] with `X = 0`: replication must be
    /// positive.
    ZeroReplication,
    /// [`ReplicationPolicy::MaxStepsPerLayer`] with a zero step bound.
    ZeroStepsBound,
    /// [`ReplicationPolicy::ArrayBudget`] with a zero array budget.
    ZeroArrayBudget,
    /// [`ReplicationPolicy::ArrayBudget`] chooses per-layer factors
    /// jointly, so it cannot resolve a single layer in isolation — map the
    /// whole network with [`map_network`] instead.
    NeedsNetworkContext,
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ZeroReplication => {
                write!(f, "fixed replication factor must be positive")
            }
            MappingError::ZeroStepsBound => {
                write!(f, "per-layer step bound must be positive")
            }
            MappingError::ZeroArrayBudget => write!(f, "array budget must be positive"),
            MappingError::NeedsNetworkContext => write!(
                f,
                "ArrayBudget needs whole-network context; use map_network"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

/// Which mapping scheme of Fig. 4 to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingScheme {
    /// One logical array, inputs strictly sequential (Fig. 4(a)).
    Naive,
    /// Partitioned over physical arrays with replication `X` (Fig. 4(b)).
    Balanced {
        /// Weight replication factor.
        replication: usize,
    },
}

/// How the accelerator chooses the replication factor `X` per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationPolicy {
    /// No replication anywhere (`X = 1`).
    None,
    /// The same fixed `X` for every layer.
    Fixed(usize),
    /// Choose per-layer `X` so that every layer needs at most this many
    /// sequential MVM steps per input — balancing the pipeline stages so
    /// the slowest layer (which sets the cycle time) is bounded.
    MaxStepsPerLayer(usize),
    /// Whole-chip provisioning: spend up to this many physical arrays on a
    /// network, choosing per-layer `X` to minimize the slowest stage's
    /// sequential step count. This is the paper's "carefully chosen X"
    /// trade-off at chip scale — small networks get full replication,
    /// large networks share the budget.
    ArrayBudget(usize),
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        // 128K arrays — an ISAAC/PipeLayer-class chip provisioning.
        ReplicationPolicy::ArrayBudget(131_072)
    }
}

impl ReplicationPolicy {
    /// Replication factor for a layer needing `mvms` MVMs per input.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] if the policy parameter is zero, or for
    /// [`ReplicationPolicy::ArrayBudget`], which needs whole-network
    /// context — use [`map_network`] instead.
    #[must_use = "the chosen replication factor is the result"]
    pub fn replication_for(&self, mvms: usize) -> Result<usize, MappingError> {
        match *self {
            ReplicationPolicy::None => Ok(1),
            ReplicationPolicy::Fixed(0) => Err(MappingError::ZeroReplication),
            ReplicationPolicy::Fixed(x) => Ok(x),
            ReplicationPolicy::MaxStepsPerLayer(0) => Err(MappingError::ZeroStepsBound),
            ReplicationPolicy::MaxStepsPerLayer(steps) => Ok(mvms.div_ceil(steps).max(1)),
            ReplicationPolicy::ArrayBudget(_) => Err(MappingError::NeedsNetworkContext),
        }
    }
}

/// The physical realization of one weighted layer on crossbar arrays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerMapping {
    /// Row tiles (input-dimension partitions) per weight copy.
    pub row_tiles: usize,
    /// Column tiles (output-dimension partitions) per weight copy.
    pub col_tiles: usize,
    /// Weight replication factor `X`.
    pub replication: usize,
    /// Physical arrays used (differential pairs × tiles × replication).
    pub arrays: usize,
    /// MVMs needed per input example (output spatial positions).
    pub mvms_per_input: usize,
    /// Sequential MVM steps per input after replication:
    /// `ceil(mvms_per_input / replication)`.
    pub steps_per_input: usize,
    /// Latency of one step (one grid MVM), ns.
    pub step_latency_ns: f64,
    /// Energy of one MVM through the grid, pJ.
    pub mvm_energy_pj: f64,
}

impl LayerMapping {
    /// Maps one weighted layer under the given scheme.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is not weighted or the scheme is degenerate.
    pub fn map(layer: &LayerSpec, config: &AcceleratorConfig, scheme: MappingScheme) -> Self {
        let (in_dim, out_dim) = layer
            .crossbar_matrix()
            // lint:allow(panic) documented caller contract — weighted layers only
            .expect("only weighted layers map to crossbars");
        // lint:allow(panic) documented caller contract — weighted layers only
        let mvms = layer.mvm_count().expect("weighted layers have MVM counts");

        let (row_tiles, col_tiles, replication) = match scheme {
            MappingScheme::Naive => (1, 1, 1),
            MappingScheme::Balanced { replication } => {
                assert!(replication > 0, "replication must be positive");
                let logical_cols = config.crossbar.logical_cols();
                (
                    in_dim.div_ceil(config.crossbar.rows),
                    out_dim.div_ceil(logical_cols),
                    replication,
                )
            }
        };

        let grid_cost =
            config
                .cost
                .grid_mvm_cost(&config.crossbar, row_tiles, col_tiles, config.activity);
        let steps = mvms.div_ceil(replication);
        Self {
            row_tiles,
            col_tiles,
            replication,
            arrays: grid_cost.arrays * replication,
            mvms_per_input: mvms,
            steps_per_input: steps,
            step_latency_ns: grid_cost.latency_ns,
            mvm_energy_pj: grid_cost.energy_pj(),
        }
    }

    /// Maps a layer using the configuration's replication policy.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] if the policy is degenerate or is
    /// [`ReplicationPolicy::ArrayBudget`] (whole-network context required —
    /// use [`map_network`]).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is not weighted.
    #[must_use = "the mapping is the result"]
    pub fn map_with_policy(
        layer: &LayerSpec,
        config: &AcceleratorConfig,
    ) -> Result<Self, MappingError> {
        // lint:allow(panic) caller contract — only weighted layers map to crossbars
        let mvms = layer.mvm_count().expect("weighted layers have MVM counts");
        let x = config.replication.replication_for(mvms)?;
        Ok(Self::map(
            layer,
            config,
            MappingScheme::Balanced { replication: x },
        ))
    }

    /// Physical arrays of one (unreplicated) copy of this layer's grid.
    pub fn base_arrays(&self) -> usize {
        self.arrays / self.replication
    }

    /// Time to push one input example through this layer stage, ns.
    pub fn stage_latency_ns(&self) -> f64 {
        self.steps_per_input as f64 * self.step_latency_ns
    }

    /// Energy to push one input example through this layer (forward), pJ.
    ///
    /// Replication does not change per-input energy: the same total number
    /// of MVMs happens, just spread over more arrays.
    pub fn forward_energy_pj(&self) -> f64 {
        self.mvms_per_input as f64 * self.mvm_energy_pj
    }
}

/// Maps every weighted layer of a network with the configured policy.
///
/// For [`ReplicationPolicy::ArrayBudget`] the per-layer replication factors
/// are chosen jointly: binary-search the smallest per-layer step bound `T`
/// whose total array cost `Σ base_i · ceil(m_i / T)` fits the budget, then
/// set `X_i = ceil(m_i / T)`. If even `X = 1` everywhere exceeds the
/// budget, the network maps unreplicated (the budget is a provisioning
/// target, not a hard wall — matching the paper's "hardware cost is
/// excessive" framing).
///
/// # Errors
///
/// Returns a [`MappingError`] if the configured policy has a zero
/// parameter (replication factor, step bound, or array budget).
#[must_use = "the mappings are the result"]
pub fn map_network(
    net: &NetworkSpec,
    config: &AcceleratorConfig,
) -> Result<Vec<LayerMapping>, MappingError> {
    match config.replication {
        ReplicationPolicy::ArrayBudget(0) => Err(MappingError::ZeroArrayBudget),
        ReplicationPolicy::ArrayBudget(budget) => {
            let bases: Vec<LayerMapping> = net
                .weighted_layers()
                .map(|l| LayerMapping::map(l, config, MappingScheme::Balanced { replication: 1 }))
                .collect();
            let cost_at = |t: usize| -> u128 {
                bases
                    .iter()
                    .map(|m| (m.base_arrays() as u128) * (m.mvms_per_input.div_ceil(t) as u128))
                    .sum()
            };
            let max_steps = bases.iter().map(|m| m.mvms_per_input).max().unwrap_or(1);
            // Smallest T with cost(T) <= budget; cost is non-increasing in T.
            let t = if cost_at(max_steps) > budget as u128 {
                max_steps // even X = 1 exceeds the budget
            } else {
                let (mut lo, mut hi) = (1usize, max_steps);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if cost_at(mid) <= budget as u128 {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            };
            Ok(net
                .weighted_layers()
                .map(|l| {
                    // lint:allow(panic) weighted_layers() yields weighted layers only
                    let mvms = l.mvm_count().expect("weighted layer");
                    let x = mvms.div_ceil(t).max(1);
                    LayerMapping::map(l, config, MappingScheme::Balanced { replication: x })
                })
                .collect())
        }
        _ => net
            .weighted_layers()
            .map(|l| LayerMapping::map_with_policy(l, config))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_crossbar::CrossbarConfig;

    /// The Fig. 4 example layer.
    fn fig4_layer() -> LayerSpec {
        LayerSpec::Conv {
            in_c: 128,
            out_c: 256,
            k: 3,
            stride: 1,
            pad: 0,
            in_h: 114,
            in_w: 114,
        }
    }

    /// Config with 4-bit weights so one weight = one cell, giving the
    /// paper's 128 logical columns per array.
    fn fig4_config() -> AcceleratorConfig {
        AcceleratorConfig {
            crossbar: CrossbarConfig {
                weight_bits: 4,
                cell_bits: 4,
                ..CrossbarConfig::default()
            },
            ..AcceleratorConfig::default()
        }
    }

    #[test]
    fn naive_scheme_matches_fig4a() {
        let m = LayerMapping::map(&fig4_layer(), &fig4_config(), MappingScheme::Naive);
        assert_eq!(m.mvms_per_input, 12544);
        assert_eq!(m.steps_per_input, 12544);
        assert_eq!((m.row_tiles, m.col_tiles, m.replication), (1, 1, 1));
    }

    #[test]
    fn balanced_scheme_matches_fig4b() {
        let m = LayerMapping::map(
            &fig4_layer(),
            &fig4_config(),
            MappingScheme::Balanced { replication: 1 },
        );
        // "The 1152x256 matrix is divided into a group of 18 (= 9 x 2)
        // matrices and each of subgroup maps to a 128x128 ReRAM array."
        assert_eq!((m.row_tiles, m.col_tiles), (9, 2));
        assert_eq!(m.arrays, 36); // 18 tiles x differential pair
    }

    #[test]
    fn replication_one_equals_naive_cycles() {
        // "If X = 1, the design is equivalent to the naive scheme."
        let naive = LayerMapping::map(&fig4_layer(), &fig4_config(), MappingScheme::Naive);
        let x1 = LayerMapping::map(
            &fig4_layer(),
            &fig4_config(),
            MappingScheme::Balanced { replication: 1 },
        );
        assert_eq!(naive.steps_per_input, x1.steps_per_input);
    }

    #[test]
    fn full_replication_single_step() {
        // "If X = 12544, the results of a layer could be generated in just
        // one cycle but the hardware cost is excessive."
        let m = LayerMapping::map(
            &fig4_layer(),
            &fig4_config(),
            MappingScheme::Balanced { replication: 12544 },
        );
        assert_eq!(m.steps_per_input, 1);
        assert_eq!(m.arrays, 36 * 12544);
    }

    #[test]
    fn fig4_example_x256() {
        // "Fig. 4 is an example with X = 256."
        let m = LayerMapping::map(
            &fig4_layer(),
            &fig4_config(),
            MappingScheme::Balanced { replication: 256 },
        );
        assert_eq!(m.steps_per_input, 49); // ceil(12544/256)
        assert_eq!(m.arrays, 36 * 256);
    }

    #[test]
    fn replication_trades_arrays_for_latency() {
        let cfg = fig4_config();
        let mut prev_latency = f64::INFINITY;
        let mut prev_arrays = 0;
        for x in [1usize, 4, 16, 64, 256] {
            let m = LayerMapping::map(
                &fig4_layer(),
                &cfg,
                MappingScheme::Balanced { replication: x },
            );
            assert!(m.stage_latency_ns() <= prev_latency);
            assert!(m.arrays > prev_arrays);
            prev_latency = m.stage_latency_ns();
            prev_arrays = m.arrays;
        }
    }

    #[test]
    fn per_input_energy_independent_of_replication() {
        let cfg = fig4_config();
        let e1 = LayerMapping::map(
            &fig4_layer(),
            &cfg,
            MappingScheme::Balanced { replication: 1 },
        )
        .forward_energy_pj();
        let e256 = LayerMapping::map(
            &fig4_layer(),
            &cfg,
            MappingScheme::Balanced { replication: 256 },
        )
        .forward_energy_pj();
        assert!((e1 - e256).abs() / e1 < 1e-9);
    }

    #[test]
    fn policy_bounds_steps() {
        let policy = ReplicationPolicy::MaxStepsPerLayer(64);
        assert_eq!(policy.replication_for(12544), Ok(196));
        assert_eq!(policy.replication_for(64), Ok(1));
        assert_eq!(policy.replication_for(1), Ok(1));
        let m =
            LayerMapping::map_with_policy(&fig4_layer(), &fig4_config().with_replication(policy))
                .unwrap();
        assert!(m.steps_per_input <= 64);
    }

    #[test]
    fn array_budget_respected() {
        let net = reram_nn::models::vgg_a_spec();
        for budget in [4096usize, 65536, 262_144] {
            let cfg = AcceleratorConfig::default()
                .with_replication(ReplicationPolicy::ArrayBudget(budget));
            let maps = map_network(&net, &cfg).unwrap();
            let base: usize = maps.iter().map(super::LayerMapping::base_arrays).sum();
            let total: usize = maps.iter().map(|m| m.arrays).sum();
            if base <= budget {
                assert!(total <= budget, "budget {budget} exceeded: {total}");
            } else {
                // Budget smaller than X=1 floor: maps unreplicated.
                assert!(maps.iter().all(|m| m.replication == 1));
            }
        }
    }

    #[test]
    fn bigger_budget_never_slower() {
        let net = reram_nn::models::alexnet_spec();
        let slowest = |budget: usize| {
            let cfg = AcceleratorConfig::default()
                .with_replication(ReplicationPolicy::ArrayBudget(budget));
            map_network(&net, &cfg)
                .unwrap()
                .iter()
                .map(|m| m.steps_per_input)
                .max()
                .expect("layers")
        };
        assert!(slowest(262_144) <= slowest(65_536));
        assert!(slowest(65_536) <= slowest(8_192));
    }

    #[test]
    fn small_network_gets_full_replication() {
        // LeNet's whole grid is tiny: a 128K-array budget replicates every
        // layer down to a single step per input.
        let net = reram_nn::models::lenet_spec();
        let maps = map_network(&net, &AcceleratorConfig::default()).unwrap();
        assert!(maps.iter().all(|m| m.steps_per_input == 1));
    }

    #[test]
    fn array_budget_rejects_per_layer_use() {
        assert_eq!(
            ReplicationPolicy::ArrayBudget(1024).replication_for(100),
            Err(MappingError::NeedsNetworkContext)
        );
    }

    #[test]
    fn degenerate_policies_are_typed_errors() {
        assert_eq!(
            ReplicationPolicy::Fixed(0).replication_for(100),
            Err(MappingError::ZeroReplication)
        );
        assert_eq!(
            ReplicationPolicy::MaxStepsPerLayer(0).replication_for(100),
            Err(MappingError::ZeroStepsBound)
        );
        let net = reram_nn::models::lenet_spec();
        let cfg = AcceleratorConfig::default().with_replication(ReplicationPolicy::ArrayBudget(0));
        assert_eq!(map_network(&net, &cfg), Err(MappingError::ZeroArrayBudget));
        let cfg = AcceleratorConfig::default().with_replication(ReplicationPolicy::Fixed(0));
        assert_eq!(map_network(&net, &cfg), Err(MappingError::ZeroReplication));
    }

    #[test]
    fn fc_layer_maps_to_single_step() {
        let fc = LayerSpec::Fc {
            in_features: 4096,
            out_features: 1000,
        };
        let cfg =
            AcceleratorConfig::default().with_replication(ReplicationPolicy::MaxStepsPerLayer(64));
        let m = LayerMapping::map_with_policy(&fc, &cfg).unwrap();
        assert_eq!(m.mvms_per_input, 1);
        assert_eq!(m.steps_per_input, 1);
        // 4096/128 row tiles x 1000/32 col tiles (16-bit weights, 4 slices).
        assert_eq!(m.row_tiles, 32);
        assert_eq!(m.col_tiles, 32);
    }

    #[test]
    fn map_network_covers_weighted_layers() {
        let net = reram_nn::models::lenet_spec();
        let maps = map_network(&net, &AcceleratorConfig::default()).unwrap();
        assert_eq!(maps.len(), net.weighted_layer_count());
        assert!(maps.iter().all(|m| m.arrays > 0));
    }
}
