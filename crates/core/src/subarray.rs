//! Memory-bank organization — paper Fig. 6 (PipeLayer) / Fig. 10 (ReGAN).
//!
//! "A memory bank is divided into three regions — morphable subarrays,
//! memory subarrays, and bank buffer subarrays. The ReRAM-based morphable
//! subarray can alter its function between memory and computing modes."
//! ReGAN calls its morphable subarrays *full function (FF)* subarrays and
//! adds private data ports to the buffer so "buffer accesses do not consume
//! the bandwidth of Mem subarrays" — modelled by separate traffic counters.

use crate::isa::{Instruction, SubarrayMode};
use reram_crossbar::{CrossbarConfig, TiledMatrix};
use reram_telemetry::{self as telemetry, Event};
use reram_tensor::Matrix;

/// A morphable (full-function) ReRAM subarray.
///
/// In memory mode it stores plain data; in compute mode it holds a
/// crossbar-programmed weight matrix and performs MVMs through the full
/// quantized spike-coded datapath of `reram-crossbar`.
#[derive(Debug)]
pub struct MorphableSubarray {
    mode: SubarrayMode,
    config: CrossbarConfig,
    stored: Vec<f32>,
    weights: Option<TiledMatrix>,
    /// Transposed weight grid for training-mode back-propagation.
    weights_t: Option<TiledMatrix>,
    mode_switches: u64,
}

impl MorphableSubarray {
    /// Creates a subarray in memory mode.
    pub fn new(config: CrossbarConfig) -> Self {
        Self {
            mode: SubarrayMode::Memory,
            config,
            stored: Vec::new(),
            weights: None,
            weights_t: None,
            mode_switches: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> SubarrayMode {
        self.mode
    }

    /// Switches the operating mode. Data and weights survive the switch —
    /// ReRAM is non-volatile.
    pub fn set_mode(&mut self, mode: SubarrayMode) {
        if mode != self.mode {
            self.mode_switches += 1;
            if mode == SubarrayMode::Compute {
                telemetry::record(Event::SubarrayActivation, 1);
            }
            self.mode = mode;
        }
    }

    /// Number of mode switches so far.
    pub fn mode_switches(&self) -> u64 {
        self.mode_switches
    }

    /// Programs a weight matrix (compute-mode payload).
    pub fn program(&mut self, weights: &Matrix) {
        match &mut self.weights {
            Some(t) if (t.out_dim(), t.in_dim()) == (weights.rows(), weights.cols()) => {
                t.reprogram(weights);
            }
            _ => self.weights = Some(TiledMatrix::program(weights, &self.config)),
        }
    }

    /// Programs a weight matrix *and* its transpose (training mode): the
    /// forward grid computes `W x`, the transposed grid computes `W^T e`
    /// for error back-propagation.
    pub fn program_training(&mut self, weights: &Matrix) {
        self.program(weights);
        let wt = weights.transposed();
        match &mut self.weights_t {
            Some(t) if (t.out_dim(), t.in_dim()) == (wt.rows(), wt.cols()) => {
                t.reprogram(&wt);
            }
            _ => self.weights_t = Some(TiledMatrix::program(&wt, &self.config)),
        }
    }

    /// Runs the transposed MVM `W^T e` (error back-propagation step).
    ///
    /// # Panics
    ///
    /// Panics if the subarray is in memory mode or was not programmed with
    /// [`MorphableSubarray::program_training`].
    pub fn compute_transposed(&mut self, error: &[f32]) -> Vec<f32> {
        assert_eq!(
            self.mode,
            SubarrayMode::Compute,
            "compute_transposed issued to a subarray in memory mode"
        );
        self.weights_t
            .as_mut()
            // lint:allow(panic) documented caller contract — program_training first
            .expect("compute_transposed requires program_training")
            .matvec(error)
    }

    /// Runs an MVM in compute mode.
    ///
    /// # Panics
    ///
    /// Panics if the subarray is in memory mode or has no programmed
    /// weights.
    pub fn compute(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(
            self.mode,
            SubarrayMode::Compute,
            "compute issued to a subarray in memory mode"
        );
        self.weights
            .as_mut()
            // lint:allow(panic) documented caller contract — program weights first
            .expect("compute issued before programming weights")
            .matvec(input)
    }

    /// Stores raw data in memory mode.
    ///
    /// # Panics
    ///
    /// Panics if the subarray is in compute mode.
    pub fn mem_write(&mut self, data: Vec<f32>) {
        assert_eq!(
            self.mode,
            SubarrayMode::Memory,
            "mem_write issued to a subarray in compute mode"
        );
        self.stored = data;
    }

    /// Reads raw data in memory mode.
    ///
    /// # Panics
    ///
    /// Panics if the subarray is in compute mode.
    pub fn mem_read(&self) -> &[f32] {
        assert_eq!(
            self.mode,
            SubarrayMode::Memory,
            "mem_read issued to a subarray in compute mode"
        );
        &self.stored
    }
}

/// Traffic statistics of a bank, split by region — the buffer has private
/// ports, so its traffic is tracked separately from memory-subarray traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Instructions decoded by the control unit.
    pub instructions: u64,
    /// MVMs executed by morphable subarrays.
    pub mvms: u64,
    /// Elements moved to/from memory subarrays.
    pub mem_traffic: u64,
    /// Elements moved through the buffer's private ports.
    pub buffer_traffic: u64,
    /// Weight (re)programming operations.
    pub programs: u64,
}

/// A memory bank: morphable subarrays + memory subarrays + buffer, driven by
/// the bank control unit via [`Instruction`]s.
#[derive(Debug)]
pub struct Bank {
    morphable: Vec<MorphableSubarray>,
    memory: Vec<Vec<f32>>,
    buffer: Vec<Vec<f32>>,
    stats: BankStats,
}

impl Bank {
    /// Creates a bank with the given number of morphable and memory
    /// subarrays.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(morphable: usize, memory: usize, config: &CrossbarConfig) -> Self {
        assert!(morphable > 0 && memory > 0, "empty bank");
        Self {
            morphable: (0..morphable)
                .map(|_| MorphableSubarray::new(config.clone()))
                .collect(),
            memory: vec![Vec::new(); memory],
            buffer: Vec::new(),
            stats: BankStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Buffered tensors (most recent last).
    pub fn buffer(&self) -> &[Vec<f32>] {
        &self.buffer
    }

    /// Direct access to a morphable subarray (e.g. for mode inspection).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn morphable(&self, i: usize) -> &MorphableSubarray {
        &self.morphable[i]
    }

    /// Decodes and executes one instruction, returning read data when the
    /// instruction produces any.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range subarray indices or mode violations —
    /// these indicate control-program bugs, exactly what the bank control
    /// unit must never emit.
    pub fn execute(&mut self, instruction: Instruction) -> Option<Vec<f32>> {
        self.stats.instructions += 1;
        match instruction {
            Instruction::SetMode { subarray, mode } => {
                self.morphable[subarray].set_mode(mode);
                None
            }
            Instruction::Program { subarray, weights } => {
                self.stats.programs += 1;
                self.morphable[subarray].program(&weights);
                None
            }
            Instruction::ProgramTraining { subarray, weights } => {
                // Two grids programmed: forward and transposed.
                self.stats.programs += 2;
                self.morphable[subarray].program_training(&weights);
                None
            }
            Instruction::LoadMem { mem, data } => {
                self.stats.mem_traffic += data.len() as u64;
                self.memory[mem] = data;
                None
            }
            Instruction::Compute {
                subarray,
                src_mem,
                dst_mem,
                activation,
            } => {
                let input = self.memory[src_mem].clone();
                self.stats.mem_traffic += input.len() as u64;
                self.stats.mvms += 1;
                let mut out = self.morphable[subarray].compute(&input);
                if let Some(a) = activation {
                    for v in &mut out {
                        *v = a.apply(*v);
                    }
                }
                self.stats.mem_traffic += out.len() as u64;
                self.memory[dst_mem] = out;
                None
            }
            Instruction::ComputeTransposed {
                subarray,
                src_mem,
                dst_mem,
            } => {
                let error = self.memory[src_mem].clone();
                self.stats.mem_traffic += error.len() as u64;
                self.stats.mvms += 1;
                let out = self.morphable[subarray].compute_transposed(&error);
                self.stats.mem_traffic += out.len() as u64;
                self.memory[dst_mem] = out;
                None
            }
            Instruction::MaxPool {
                src_mem,
                dst_mem,
                c,
                k,
                stride,
                in_h,
                in_w,
            } => {
                let input = self.memory[src_mem].clone();
                assert!(
                    k > 0 && stride > 0 && in_h >= k && in_w >= k,
                    "max_pool window {k} stride {stride} does not fit {in_h}x{in_w}"
                );
                assert_eq!(
                    input.len(),
                    c * in_h * in_w,
                    "max_pool: memory subarray holds {} elements, not {c}x{in_h}x{in_w}",
                    input.len()
                );
                self.stats.mem_traffic += input.len() as u64;
                let oh = (in_h - k) / stride + 1;
                let ow = (in_w - k) / stride + 1;
                let mut out = vec![0.0f32; c * oh * ow];
                for ci in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = f32::NEG_INFINITY;
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = oy * stride + ky;
                                    let ix = ox * stride + kx;
                                    best = best.max(input[(ci * in_h + iy) * in_w + ix]);
                                }
                            }
                            out[(ci * oh + oy) * ow + ox] = best;
                        }
                    }
                }
                self.stats.mem_traffic += out.len() as u64;
                self.memory[dst_mem] = out;
                None
            }
            Instruction::StoreBuffer { src_mem } => {
                let data = self.memory[src_mem].clone();
                self.stats.buffer_traffic += data.len() as u64;
                telemetry::record(Event::BufferWrite, data.len() as u64);
                self.buffer.push(data);
                None
            }
            Instruction::ReadMem { mem } => {
                let data = self.memory[mem].clone();
                self.stats.mem_traffic += data.len() as u64;
                Some(data)
            }
            Instruction::MemWrite { subarray, data } => {
                self.stats.mem_traffic += data.len() as u64;
                self.morphable[subarray].mem_write(data);
                None
            }
            Instruction::MemRead { subarray } => {
                let data = self.morphable[subarray].mem_read().to_vec();
                self.stats.mem_traffic += data.len() as u64;
                Some(data)
            }
        }
    }

    /// Executes a program (instruction sequence), returning the outputs of
    /// the read instructions in order.
    pub fn run(&mut self, program: Vec<Instruction>) -> Vec<Vec<f32>> {
        program
            .into_iter()
            .filter_map(|i| self.execute(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_nn::activations::Activation;
    use reram_tensor::Shape2;

    fn config() -> CrossbarConfig {
        CrossbarConfig::default()
    }

    #[test]
    fn morphable_starts_in_memory_mode() {
        let sub = MorphableSubarray::new(config());
        assert_eq!(sub.mode(), SubarrayMode::Memory);
        assert_eq!(sub.mode_switches(), 0);
    }

    #[test]
    fn mode_switch_counting() {
        let mut sub = MorphableSubarray::new(config());
        sub.set_mode(SubarrayMode::Compute);
        sub.set_mode(SubarrayMode::Compute); // no-op
        sub.set_mode(SubarrayMode::Memory);
        assert_eq!(sub.mode_switches(), 2);
    }

    #[test]
    fn compute_mode_runs_mvm() {
        let mut sub = MorphableSubarray::new(config());
        sub.program(&Matrix::identity(8));
        sub.set_mode(SubarrayMode::Compute);
        let x = vec![0.5, -0.25, 0.75, 0.0, 0.1, -0.6, 0.3, 0.9];
        let y = sub.compute(&x);
        for (a, b) in y.iter().zip(&x) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "memory mode")]
    fn compute_in_memory_mode_panics() {
        let mut sub = MorphableSubarray::new(config());
        sub.program(&Matrix::identity(4));
        let _ = sub.compute(&[0.0; 4]);
    }

    #[test]
    fn memory_mode_stores_data_across_mode_switches() {
        let mut sub = MorphableSubarray::new(config());
        sub.mem_write(vec![1.0, 2.0, 3.0]);
        sub.set_mode(SubarrayMode::Compute);
        sub.set_mode(SubarrayMode::Memory);
        // Non-volatile: the data survived the round trip.
        assert_eq!(sub.mem_read(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn bank_executes_a_layer_program() {
        // Program a small weight matrix, load an input, compute with ReLU,
        // store to buffer, read back.
        let w = Matrix::from_vec(Shape2::new(2, 3), vec![0.5, -0.5, 0.25, -0.25, 0.5, -0.5]);
        let x = vec![1.0, 0.5, -0.5];
        let mut bank = Bank::new(2, 4, &config());
        let outputs = bank.run(vec![
            Instruction::Program {
                subarray: 0,
                weights: w.clone(),
            },
            Instruction::SetMode {
                subarray: 0,
                mode: SubarrayMode::Compute,
            },
            Instruction::LoadMem {
                mem: 0,
                data: x.clone(),
            },
            Instruction::Compute {
                subarray: 0,
                src_mem: 0,
                dst_mem: 1,
                activation: Some(Activation::Relu),
            },
            Instruction::StoreBuffer { src_mem: 1 },
            Instruction::ReadMem { mem: 1 },
        ]);
        assert_eq!(outputs.len(), 1);
        let want: Vec<f32> = w.matvec(&x).iter().map(|v| v.max(0.0)).collect();
        for (a, b) in outputs[0].iter().zip(&want) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
        let stats = bank.stats();
        assert_eq!(stats.instructions, 6);
        assert_eq!(stats.mvms, 1);
        assert_eq!(stats.programs, 1);
        assert_eq!(stats.buffer_traffic, 2);
        assert_eq!(bank.buffer().len(), 1);
    }

    #[test]
    fn buffer_traffic_separate_from_mem_traffic() {
        let mut bank = Bank::new(1, 2, &config());
        bank.execute(Instruction::LoadMem {
            mem: 0,
            data: vec![1.0; 10],
        });
        let mem_before = bank.stats().mem_traffic;
        bank.execute(Instruction::StoreBuffer { src_mem: 0 });
        assert_eq!(bank.stats().mem_traffic, mem_before);
        assert_eq!(bank.stats().buffer_traffic, 10);
    }

    #[test]
    fn reprogramming_reuses_grid() {
        let mut sub = MorphableSubarray::new(config());
        sub.program(&Matrix::identity(4));
        sub.program(&Matrix::identity(4));
        sub.set_mode(SubarrayMode::Compute);
        let y = sub.compute(&[1.0, 0.0, 0.0, 0.0]);
        assert!((y[0] - 1.0).abs() < 0.02);
    }

    #[test]
    fn training_programming_enables_transposed_mvm() {
        let mut sub = MorphableSubarray::new(config());
        let w = Matrix::from_vec(Shape2::new(2, 3), vec![1.0, 0.0, 0.5, 0.0, 1.0, -0.5]);
        sub.program_training(&w);
        sub.set_mode(SubarrayMode::Compute);
        // Forward: W x with x of length 3.
        let y = sub.compute(&[1.0, 1.0, 1.0]);
        let want = w.matvec(&[1.0, 1.0, 1.0]);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 0.02);
        }
        // Backward: W^T e with e of length 2.
        let e = [0.5f32, -0.5];
        let back = sub.compute_transposed(&e);
        let want_t = w.transposed().matvec(&e);
        assert_eq!(back.len(), 3);
        for (a, b) in back.iter().zip(&want_t) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "requires program_training")]
    fn transposed_mvm_requires_training_programming() {
        let mut sub = MorphableSubarray::new(config());
        sub.program(&Matrix::identity(4));
        sub.set_mode(SubarrayMode::Compute);
        let _ = sub.compute_transposed(&[0.0; 4]);
    }

    #[test]
    fn bank_runs_backward_instruction() {
        let w = Matrix::from_vec(Shape2::new(2, 3), vec![0.5, 0.25, -0.5, 1.0, -0.25, 0.75]);
        let mut bank = Bank::new(1, 3, &config());
        let out = bank.run(vec![
            Instruction::ProgramTraining {
                subarray: 0,
                weights: w.clone(),
            },
            Instruction::SetMode {
                subarray: 0,
                mode: SubarrayMode::Compute,
            },
            Instruction::LoadMem {
                mem: 0,
                data: vec![1.0, -1.0],
            },
            Instruction::ComputeTransposed {
                subarray: 0,
                src_mem: 0,
                dst_mem: 1,
            },
            Instruction::ReadMem { mem: 1 },
        ]);
        let want = w.transposed().matvec(&[1.0, -1.0]);
        for (a, b) in out[0].iter().zip(&want) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
        // program_training counts as two grid programs.
        assert_eq!(bank.stats().programs, 2);
    }

    #[test]
    fn bank_max_pools_a_stored_tensor() {
        // Two 4x4 channels, 2x2 non-overlapping pooling.
        let ch0 = vec![
            1.0, 2.0, 5.0, 6.0, //
            3.0, 4.0, 7.0, 8.0, //
            -1.0, -2.0, 0.0, 0.5, //
            -3.0, -4.0, 0.25, 0.75,
        ];
        let ch1: Vec<f32> = ch0.iter().map(|v| -v).collect();
        let data: Vec<f32> = ch0.iter().chain(&ch1).copied().collect();
        let mut bank = Bank::new(1, 2, &config());
        let out = bank.run(vec![
            Instruction::LoadMem { mem: 0, data },
            Instruction::MaxPool {
                src_mem: 0,
                dst_mem: 1,
                c: 2,
                k: 2,
                stride: 2,
                in_h: 4,
                in_w: 4,
            },
            Instruction::ReadMem { mem: 1 },
        ]);
        assert_eq!(out[0], vec![4.0, 8.0, -1.0, 0.75, -1.0, -5.0, 4.0, 0.0]);
    }

    #[test]
    fn morphable_as_memory_roundtrip_via_bank() {
        let mut bank = Bank::new(1, 1, &config());
        let out = bank.run(vec![
            Instruction::MemWrite {
                subarray: 0,
                data: vec![4.0, 5.0],
            },
            Instruction::MemRead { subarray: 0 },
        ]);
        assert_eq!(out, vec![vec![4.0, 5.0]]);
    }
}
