//! Per-layer lowering record — one weighted layer mapped onto crossbars.

use crate::mapping::LayerMapping;
use crate::AcceleratorConfig;
use reram_nn::{LayerKind, LayerWork};
use serde::{Deserialize, Serialize};

/// Bytes per activation element moving through memory subarrays (16-bit
/// fixed point, matching the default crossbar input precision).
pub const BYTES_PER_ELEM: f64 = 2.0;

/// Closed-form I&F/ADC conversions of one forward input through a mapped
/// layer.
///
/// Every MVM walks `input_bits` spike frames; each frame converts every
/// bitline of every engaged array (`2 · row_tiles · col_tiles` differential
/// arrays per weight copy). Replication does not change the count: the same
/// MVMs happen, just spread over more arrays.
pub fn adc_conversions(mapping: &LayerMapping, config: &AcceleratorConfig) -> u64 {
    let frames = config.crossbar.input_bits as u64;
    let cols = config.crossbar.cols as u64;
    let arrays_per_copy = (2 * mapping.row_tiles * mapping.col_tiles) as u64;
    mapping.mvms_per_input as u64 * arrays_per_copy * frames * cols
}

/// Closed-form cell writes of programming a mapped layer's arrays once.
///
/// A full (re)program touches every cell of every physical array, including
/// replicated copies — the count behind the update-energy closed form and
/// the per-batch wear unit of `EnduranceReport`.
pub fn cell_writes(mapping: &LayerMapping, config: &AcceleratorConfig) -> u64 {
    mapping.arrays as u64 * (config.crossbar.rows * config.crossbar.cols) as u64
}

/// Everything the lowering pass derives about one weighted layer: its
/// backend-neutral work description, its crossbar tile geometry, its MVM
/// counts per training pass (PipeLayer §II-A.2 — forward, error
/// back-propagation through the transposed weights, and the weight-gradient
/// outer product), its buffer traffic, and its per-input cycle and energy
/// closed forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Layer name by kind and 1-based weighted position ("conv1", "fc5").
    pub name: String,
    /// Backend-neutral work description of the layer.
    pub work: LayerWork,
    /// Crossbar tile geometry and replication (Fig. 4).
    pub mapping: LayerMapping,
    /// Crossbar MVM groups of one input's forward pass.
    pub forward_mvms: u64,
    /// MVM groups of the error back-propagation (transposed weights).
    pub error_mvms: u64,
    /// MVM groups of the weight-gradient outer-product accumulation.
    pub gradient_mvms: u64,
    /// Forward pipeline-stage cost in micro-cycles (replication-adjusted
    /// sequential MVM steps per input).
    pub stage_cycles: u64,
    /// Wall-clock latency of the forward stage, ns.
    pub forward_latency_ns: f64,
    /// Wall-clock latency of the backward stage (error + gradient), ns.
    pub backward_latency_ns: f64,
    /// Crossbar energy of one input's forward pass, pJ.
    pub forward_energy_pj: f64,
    /// Crossbar energy of one input's backward pass, pJ.
    pub backward_energy_pj: f64,
    /// Energy to reprogram this layer's arrays once, pJ.
    pub update_energy_pj: f64,
    /// Bytes written to memory subarrays per input (the layer's output
    /// tensor, stored once).
    pub buffer_write_bytes: f64,
    /// Bytes read back per input during training: the next stage's consume
    /// plus the backward re-read of the stored forward activation.
    pub buffer_read_bytes: f64,
    /// I&F/ADC conversions of one forward input.
    pub adc_conversions: u64,
    /// Cell writes of one full array (re)program.
    pub cell_writes: u64,
}

impl LayerPlan {
    /// Display prefix for a layer kind ("conv", "fracconv", "fc").
    pub fn kind_str(kind: LayerKind) -> &'static str {
        match kind {
            LayerKind::Conv => "conv",
            LayerKind::FracConv => "fracconv",
            LayerKind::Fc => "fc",
            _ => "layer",
        }
    }

    /// Lowers one weighted layer given its mapping and 0-based weighted
    /// index.
    pub(crate) fn lower(
        index: usize,
        work: LayerWork,
        mapping: LayerMapping,
        config: &AcceleratorConfig,
    ) -> Self {
        let (_, program_energy_per_array) = config.cost.program_cost(&config.crossbar);
        let forward_latency_ns = mapping.stage_latency_ns();
        let forward_energy_pj = mapping.forward_energy_pj();
        let out_bytes = work.output_elems as f64 * BYTES_PER_ELEM;
        Self {
            name: format!("{}{}", Self::kind_str(work.kind), index + 1),
            forward_mvms: mapping.mvms_per_input as u64,
            error_mvms: mapping.mvms_per_input as u64,
            gradient_mvms: mapping.mvms_per_input as u64,
            stage_cycles: mapping.steps_per_input as u64,
            forward_latency_ns,
            // Error MVM + weight-gradient accumulation = 2 MVM groups.
            backward_latency_ns: 2.0 * forward_latency_ns,
            forward_energy_pj,
            backward_energy_pj: 2.0 * forward_energy_pj,
            update_energy_pj: mapping.arrays as f64 * program_energy_per_array,
            buffer_write_bytes: out_bytes,
            buffer_read_bytes: 2.0 * out_bytes,
            adc_conversions: adc_conversions(&mapping, config),
            cell_writes: cell_writes(&mapping, config),
            work,
            mapping,
        }
    }

    /// MVM groups of one input's full training pass (forward + error +
    /// gradient).
    pub fn training_mvms(&self) -> u64 {
        self.forward_mvms + self.error_mvms + self.gradient_mvms
    }
}
