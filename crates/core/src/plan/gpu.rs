//! GPU baseline costing of execution plans.
//!
//! The GPU model sits *below* this crate in the workspace layering, so it
//! cannot see [`ExecutionPlan`]; instead it costs the backend-neutral
//! [`reram_nn::LayerWork`] records the plan stores. These bridges guarantee
//! the PIM and GPU comparisons of Table I price the *same* lowered object.

use super::ExecutionPlan;
use reram_gpu::{GpuCost, GpuModel};

impl ExecutionPlan {
    /// GPU cost of one forward (inference) pass of `batch` inputs over this
    /// plan's layer work.
    pub fn gpu_forward_cost(&self, gpu: &GpuModel, batch: usize) -> GpuCost {
        gpu.forward_cost_work(&self.works, batch)
    }

    /// GPU cost of one training step (forward + backward + weight update)
    /// of `batch` inputs over this plan's layer work.
    pub fn gpu_training_cost(&self, gpu: &GpuModel, batch: usize) -> GpuCost {
        gpu.training_cost_work(&self.works, batch)
    }
}

/// GPU cost of one GAN training iteration over the generator's and
/// discriminator's plans (the three phases of Fig. 8).
pub fn gpu_gan_training_cost(
    generator: &ExecutionPlan,
    discriminator: &ExecutionPlan,
    gpu: &GpuModel,
    batch: usize,
) -> GpuCost {
    gpu.gan_training_cost_work(&generator.works, &discriminator.works, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceleratorConfig;
    use reram_nn::models;

    #[test]
    fn plan_costing_matches_spec_costing() {
        let net = models::alexnet_spec();
        let plan = ExecutionPlan::lower(&net, &AcceleratorConfig::default()).expect("lowerable");
        let gpu = GpuModel::gtx1080();
        assert_eq!(plan.gpu_forward_cost(&gpu, 16), gpu.forward_cost(&net, 16));
        assert_eq!(
            plan.gpu_training_cost(&gpu, 16),
            gpu.training_cost(&net, 16)
        );
    }

    #[test]
    fn gan_bridge_matches_spec_costing() {
        let cfg = AcceleratorConfig::default();
        let g_net = models::dcgan_generator_spec(100, 3, 64);
        let d_net = models::dcgan_discriminator_spec(3, 64);
        let g = ExecutionPlan::lower(&g_net, &cfg).expect("lowerable");
        let d = ExecutionPlan::lower(&d_net, &cfg).expect("lowerable");
        let gpu = GpuModel::gtx1080();
        assert_eq!(
            gpu_gan_training_cost(&g, &d, &gpu, 32),
            gpu.gan_training_cost(&g_net, &d_net, 32)
        );
    }
}
