//! Backend-neutral execution plans — the lowering IR every cost model
//! consumes.
//!
//! [`ExecutionPlan::lower`] turns a [`NetworkSpec`] plus an
//! [`AcceleratorConfig`] into one per-layer record set ([`LayerPlan`]):
//! mapped crossbar tile geometry (via [`crate::mapping`]), MVM counts per
//! training pass (forward / error back-propagation / weight-gradient, paper
//! §II-A.2), buffer read/write traffic, and per-layer cycle and energy
//! closed forms. Every downstream consumer derives from this one object:
//!
//! * [`crate::timing::NetworkTiming`] copies the plan's aggregates,
//! * [`crate::pipeline::PipelineModel`] and
//!   [`crate::regan::ReganPipeline`] take their heterogeneous per-layer
//!   stage costs from it ([`ExecutionPlan::pipeline_model`],
//!   [`regan_pipeline`]),
//! * [`crate::report`] renders its per-layer breakdown from the
//!   [`LayerPlan`]s,
//! * the GPU baseline costs the *same* plan through its backend-neutral
//!   [`reram_nn::LayerWork`] view ([`ExecutionPlan::gpu_forward_cost`]).

mod gpu;
mod layer;

pub use gpu::gpu_gan_training_cost;
pub use layer::{adc_conversions, cell_writes, LayerPlan, BYTES_PER_ELEM};

use crate::mapping::{map_network, LayerMapping, MappingError};
use crate::pipeline::PipelineModel;
use crate::regan::ReganPipeline;
use crate::AcceleratorConfig;
use reram_nn::{LayerWork, NetworkSpec};
use serde::{Deserialize, Serialize};

/// Why a network could not be lowered to an execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanError {
    /// The accelerator configuration failed validation.
    InvalidConfig(String),
    /// The network has no weighted layers to map onto crossbars.
    NoWeightedLayers,
    /// A layer could not be mapped under the replication policy.
    Mapping(MappingError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidConfig(e) => write!(f, "invalid accelerator config: {e}"),
            PlanError::NoWeightedLayers => write!(f, "network has no weighted layers"),
            PlanError::Mapping(e) => write!(f, "cannot map layer: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<MappingError> for PlanError {
    fn from(e: MappingError) -> Self {
        PlanError::Mapping(e)
    }
}

/// A lowered network: per-weighted-layer [`LayerPlan`]s plus the aggregate
/// cycle/energy closed forms shared by every backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Network name (from the spec).
    pub name: String,
    /// Backend-neutral work of *every* layer, weighted and auxiliary, in
    /// network order — what the GPU baseline costs.
    pub works: Vec<LayerWork>,
    /// Per-weighted-layer lowering records, in network order.
    pub layers: Vec<LayerPlan>,
    /// Duration of a forward-only pipeline macro-cycle, ns (slowest stage).
    pub forward_cycle_ns: f64,
    /// Duration of a training pipeline macro-cycle, ns (backward stages
    /// dominate at twice the forward latency).
    pub training_cycle_ns: f64,
    /// Duration of the weight-update cycle, ns.
    pub update_cycle_ns: f64,
    /// Buffer/memory-subarray energy per input (training), pJ.
    pub buffer_energy_pj: f64,
    /// Total physical arrays (including replication and differential pairs).
    pub total_arrays: usize,
    /// Total silicon area, mm².
    pub area_mm2: f64,
}

impl ExecutionPlan {
    /// Lowers `net` onto the accelerator described by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidConfig`] if the configuration fails
    /// validation, [`PlanError::Mapping`] if a layer cannot be mapped under
    /// the replication policy, and [`PlanError::NoWeightedLayers`] if the
    /// network holds no crossbar-mapped layers.
    #[must_use = "the lowered plan is the result"]
    pub fn lower(net: &NetworkSpec, config: &AcceleratorConfig) -> Result<Self, PlanError> {
        config.validate().map_err(PlanError::InvalidConfig)?;
        let mappings = map_network(net, config)?;
        if mappings.is_empty() {
            return Err(PlanError::NoWeightedLayers);
        }

        let layers: Vec<LayerPlan> = net
            .weighted_layers()
            .zip(mappings)
            .enumerate()
            .map(|(i, (spec, m))| LayerPlan::lower(i, spec.work(), m, config))
            .collect();

        let forward_cycle_ns = layers
            .iter()
            .map(|l| l.forward_latency_ns)
            .fold(0.0, f64::max);
        let (update_cycle_ns, _) = config.cost.program_cost(&config.crossbar);

        // Buffer traffic per input during training: every weighted layer's
        // output is written once, read by the next stage, and the stored
        // forward activation is re-read during backward (3 touches).
        let activation_elems: f64 = layers.iter().map(|l| l.work.output_elems as f64).sum();
        let buffer_energy_pj = config
            .cost
            .buffer_energy_pj((activation_elems * BYTES_PER_ELEM * 3.0) as u64);

        let total_arrays: usize = layers.iter().map(|l| l.mapping.arrays).sum();

        let plan = Self {
            name: net.name.clone(),
            works: net.work(),
            layers,
            forward_cycle_ns,
            training_cycle_ns: 2.0 * forward_cycle_ns,
            update_cycle_ns,
            buffer_energy_pj,
            total_arrays,
            area_mm2: config.cost.grid_area_um2(total_arrays) / 1e6,
        };
        // Every lowering re-verifies its own output in debug builds; the
        // static checks are pure closed-form recomputation, cheap relative
        // to the mapping search itself.
        #[cfg(debug_assertions)]
        {
            let violations = crate::verify::verify_plan(&plan, config);
            debug_assert!(
                violations.is_empty(),
                "lowering of `{}` violated plan invariants: {violations:?}",
                plan.name
            );
        }
        Ok(plan)
    }

    /// Number of weighted (crossbar-mapped) layers.
    pub fn weighted_layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The per-weighted-layer crossbar mappings, in network order.
    pub fn mappings(&self) -> Vec<LayerMapping> {
        self.layers.iter().map(|l| l.mapping).collect()
    }

    /// Per-weighted-layer forward stage costs in micro-cycles.
    pub fn stage_cycles(&self) -> Vec<u64> {
        self.layers.iter().map(|l| l.stage_cycles).collect()
    }

    /// Crossbar energy of one input's forward pass, pJ (sum over layers).
    pub fn forward_energy_pj(&self) -> f64 {
        self.layers.iter().map(|l| l.forward_energy_pj).sum()
    }

    /// Crossbar energy of one input's backward pass, pJ.
    pub fn backward_energy_pj(&self) -> f64 {
        self.layers.iter().map(|l| l.backward_energy_pj).sum()
    }

    /// Energy to reprogram every weight array once, pJ.
    pub fn update_energy_pj(&self) -> f64 {
        self.layers.iter().map(|l| l.update_energy_pj).sum()
    }

    /// Multiply-accumulates of one input's forward pass, over all layers.
    pub fn forward_macs(&self) -> u64 {
        self.works.iter().map(|w| w.forward_macs).sum()
    }

    /// Multiply-accumulates of one input's full training pass.
    pub fn training_macs(&self) -> u64 {
        self.works.iter().map(LayerWork::training_macs).sum()
    }

    /// A [`PipelineModel`] whose per-layer stage costs are this plan's
    /// replication-adjusted micro-cycle counts.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn pipeline_model(&self, batch: usize) -> PipelineModel {
        PipelineModel::with_stage_cycles(self.stage_cycles(), batch)
    }

    /// Per-layer forward stage latencies, ns.
    fn stage_latencies_ns(&self) -> Vec<f64> {
        self.layers.iter().map(|l| l.forward_latency_ns).collect()
    }

    fn max_stage_ns(&self) -> f64 {
        self.stage_latencies_ns().iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Wall-clock time of pipelined inference of `n` inputs with
    /// heterogeneous stages: fill (`Σ fᵢ`) plus one initiation interval
    /// (`max fᵢ`) per additional input, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pipelined_inference_time_s(&self, n: u64) -> f64 {
        assert!(n > 0, "need at least one input");
        let sum: f64 = self.stage_latencies_ns().iter().sum();
        (sum + (n - 1) as f64 * self.max_stage_ns()) * 1e-9
    }

    /// Wall-clock time of non-pipelined inference: each input walks every
    /// stage alone, seconds.
    pub fn sequential_inference_time_s(&self, n: u64) -> f64 {
        let sum: f64 = self.stage_latencies_ns().iter().sum();
        n as f64 * sum * 1e-9
    }

    /// Service latency of one dynamic batch of `batch` inference inputs,
    /// nanoseconds: the pipeline fill (`Σ fᵢ`) plus one initiation interval
    /// (`max fᵢ`) per additional input. This is the closed form the serving
    /// layer uses to price a batch's occupancy of a chip.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn batch_inference_latency_ns(&self, batch: usize) -> f64 {
        assert!(batch > 0, "need at least one input");
        self.pipelined_inference_time_s(batch as u64) * 1e9
    }

    /// Crossbar energy of serving `batch` inference inputs, pJ. Per-input
    /// forward energies add linearly; batching saves time (pipeline
    /// amortization), not crossbar switching energy.
    pub fn batch_forward_energy_pj(&self, batch: usize) -> f64 {
        batch as f64 * self.forward_energy_pj()
    }

    /// Buffer/memory-subarray energy of one input's *inference* pass, pJ:
    /// each weighted layer's output is written once and consumed once (2
    /// touches), versus 3 touches in training where the backward stage
    /// re-reads the stored forward activation. The buffer closed form is
    /// linear in bytes, so the inference share is exactly two thirds of the
    /// training figure.
    pub fn inference_buffer_energy_pj(&self) -> f64 {
        self.buffer_energy_pj * (2.0 / 3.0)
    }

    /// Per-input training stage latencies: forward stages, then backward
    /// stages (each twice its forward counterpart) in reverse order. The
    /// loss/error-computation stage is peripheral arithmetic, charged 0 ns
    /// in the wall-clock domain.
    fn training_stage_latencies_ns(&self) -> Vec<f64> {
        let fwd = self.stage_latencies_ns();
        let mut v = fwd.clone();
        v.extend(fwd.iter().rev().map(|f| 2.0 * f));
        v
    }

    /// Wall-clock time of pipelined training of `n` inputs in batches of
    /// `batch`, seconds: per batch, the training-stage fill plus one
    /// initiation interval (the slowest backward stage) per remaining
    /// input, plus the weight-update latency.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of `batch`.
    pub fn pipelined_training_time_s(&self, n: u64, batch: usize) -> f64 {
        assert!(
            batch > 0 && n > 0 && n.is_multiple_of(batch as u64),
            "{n} inputs is not a positive multiple of batch {batch}"
        );
        let stages = self.training_stage_latencies_ns();
        let sum: f64 = stages.iter().sum();
        let max = stages.iter().fold(0.0f64, |a, &b| a.max(b));
        let per_batch_ns = sum + (batch as u64 - 1) as f64 * max + self.update_cycle_ns;
        (n / batch as u64) as f64 * per_batch_ns * 1e-9
    }

    /// Wall-clock time of non-pipelined training: each input walks the full
    /// training stage sequence alone, one update per batch, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of `batch`.
    pub fn sequential_training_time_s(&self, n: u64, batch: usize) -> f64 {
        assert!(
            batch > 0 && n > 0 && n.is_multiple_of(batch as u64),
            "{n} inputs is not a positive multiple of batch {batch}"
        );
        let per_input_ns: f64 = self.training_stage_latencies_ns().iter().sum();
        (n as f64 * per_input_ns + (n / batch as u64) as f64 * self.update_cycle_ns) * 1e-9
    }
}

/// A [`ReganPipeline`] whose per-layer stage costs come from the
/// discriminator's and generator's execution plans.
///
/// A free function rather than a method: the GAN schedule involves two
/// plans symmetrically, and `regan` itself must stay below `plan` in the
/// module layering.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn regan_pipeline(d: &ExecutionPlan, g: &ExecutionPlan, batch: usize) -> ReganPipeline {
    ReganPipeline::with_stage_cycles(d.stage_cycles(), g.stage_cycles(), batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::NetworkTiming;
    use reram_nn::models;

    fn plan(net: &NetworkSpec) -> ExecutionPlan {
        ExecutionPlan::lower(net, &AcceleratorConfig::default()).expect("lowerable")
    }

    #[test]
    fn lowers_lenet() {
        let p = plan(&models::lenet_spec());
        assert_eq!(p.layers.len(), 5);
        assert_eq!(p.layers[0].name, "conv1");
        assert_eq!(p.layers[4].name, "fc5");
        assert!(p.forward_cycle_ns > 0.0);
        assert!(p.total_arrays > 0);
    }

    #[test]
    fn aggregates_match_network_timing() {
        for net in [models::lenet_spec(), models::alexnet_spec()] {
            let p = plan(&net);
            let t = NetworkTiming::analyze(&net, &AcceleratorConfig::default());
            assert_eq!(p.forward_cycle_ns, t.forward_cycle_ns);
            assert_eq!(p.training_cycle_ns, t.training_cycle_ns);
            assert_eq!(p.update_cycle_ns, t.update_cycle_ns);
            assert_eq!(p.forward_energy_pj(), t.forward_energy_pj);
            assert_eq!(p.backward_energy_pj(), t.backward_energy_pj);
            assert_eq!(p.buffer_energy_pj, t.buffer_energy_pj);
            assert_eq!(p.update_energy_pj(), t.update_energy_pj);
            assert_eq!(p.total_arrays, t.total_arrays);
            assert_eq!(p.area_mm2, t.area_mm2);
            assert_eq!(p.mappings(), t.mappings);
        }
    }

    #[test]
    fn mvm_counts_follow_training_passes() {
        let p = plan(&models::lenet_spec());
        for l in &p.layers {
            assert_eq!(l.forward_mvms, l.mapping.mvms_per_input as u64);
            assert_eq!(l.error_mvms, l.forward_mvms);
            assert_eq!(l.gradient_mvms, l.forward_mvms);
            assert_eq!(l.training_mvms(), 3 * l.forward_mvms);
        }
    }

    #[test]
    fn buffer_traffic_is_three_touches_per_output() {
        let p = plan(&models::lenet_spec());
        for l in &p.layers {
            let out_bytes = l.work.output_elems as f64 * BYTES_PER_ELEM;
            assert_eq!(l.buffer_write_bytes, out_bytes);
            assert_eq!(l.buffer_read_bytes, 2.0 * out_bytes);
        }
    }

    #[test]
    fn pipeline_model_carries_stage_heterogeneity() {
        let p = plan(&models::alexnet_spec());
        let pipe = p.pipeline_model(16);
        assert_eq!(pipe.layers(), p.layers.len());
        assert_eq!(pipe.stage_cycles(), p.stage_cycles().as_slice());
        // AlexNet's layers differ in size, so stages must differ.
        let s = p.stage_cycles();
        assert!(
            s.iter().any(|&c| c != s[0]),
            "stages unexpectedly uniform: {s:?}"
        );
    }

    #[test]
    fn regan_pipeline_from_two_plans() {
        let d = plan(&models::dcgan_discriminator_spec(3, 64));
        let g = plan(&models::dcgan_generator_spec(100, 3, 64));
        let pipe = regan_pipeline(&d, &g, 32);
        assert_eq!(pipe.discriminator_layers(), d.layers.len());
        assert_eq!(pipe.generator_layers(), g.layers.len());
        assert_eq!(pipe.d_stage_cycles(), d.stage_cycles().as_slice());
        assert_eq!(pipe.g_stage_cycles(), g.stage_cycles().as_slice());
    }

    #[test]
    fn hetero_time_closed_forms() {
        let p = plan(&models::lenet_spec());
        let f: Vec<f64> = p.layers.iter().map(|l| l.forward_latency_ns).collect();
        let sum: f64 = f.iter().sum();
        let max = f.iter().fold(0.0f64, |a, &b| a.max(b));
        let got = p.pipelined_inference_time_s(100);
        let want = (sum + 99.0 * max) * 1e-9;
        assert!((got - want).abs() < 1e-18);
        assert!((p.sequential_inference_time_s(100) - 100.0 * sum * 1e-9).abs() < 1e-18);
        // Pipelined never slower than sequential; training dominated by the
        // doubled backward stages.
        assert!(p.pipelined_inference_time_s(100) <= p.sequential_inference_time_s(100));
        assert!(p.pipelined_training_time_s(128, 32) <= p.sequential_training_time_s(128, 32));
        assert!(p.pipelined_training_time_s(128, 32) > p.pipelined_inference_time_s(128));
    }

    #[test]
    fn serving_accessors_follow_closed_forms() {
        let p = plan(&models::lenet_spec());
        let f: Vec<f64> = p.layers.iter().map(|l| l.forward_latency_ns).collect();
        let sum: f64 = f.iter().sum();
        let max = f.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!((p.batch_inference_latency_ns(8) - (sum + 7.0 * max)).abs() < 1e-9);
        assert!((p.batch_inference_latency_ns(1) - sum).abs() < 1e-9);
        assert_eq!(p.batch_forward_energy_pj(4), 4.0 * p.forward_energy_pj());
        assert!((p.inference_buffer_energy_pj() - p.buffer_energy_pj * 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn plan_rejects_unweighted_network() {
        let net = NetworkSpec::new(
            "empty",
            reram_tensor::Shape4::new(1, 1, 4, 4),
            vec![reram_nn::LayerSpec::Activation { elems: 16 }],
        );
        assert_eq!(
            ExecutionPlan::lower(&net, &AcceleratorConfig::default()),
            Err(PlanError::NoWeightedLayers)
        );
    }

    #[test]
    fn plan_rejects_invalid_config() {
        let cfg = AcceleratorConfig {
            activity: 7.0,
            ..AcceleratorConfig::default()
        };
        let err = ExecutionPlan::lower(&models::lenet_spec(), &cfg).unwrap_err();
        assert!(matches!(err, PlanError::InvalidConfig(_)));
        assert!(err.to_string().contains("invalid accelerator config"));
    }

    #[test]
    fn plan_surfaces_mapping_errors() {
        let cfg = AcceleratorConfig::default()
            .with_replication(crate::mapping::ReplicationPolicy::Fixed(0));
        let err = ExecutionPlan::lower(&models::lenet_spec(), &cfg).unwrap_err();
        assert!(matches!(err, PlanError::Mapping(_)));
    }

    #[test]
    fn serde_round_trip() {
        let p = plan(&models::lenet_spec());
        let json = serde::json::to_string(&p);
        let back: ExecutionPlan = serde::json::from_str(&json).expect("deserialize");
        assert_eq!(back, p);
    }
}
