//! Conversion of pipeline macro-cycles into wall-clock time and energy.
//!
//! A pipeline "cycle" in the paper's Fig. 5 sense is the time for every
//! layer stage to process one input. Its duration is set by the slowest
//! stage: the layer whose (replication-adjusted) sequence of crossbar MVMs
//! takes longest. Backward stages run two MVM groups per input — the error
//! propagation through the transposed weights and the weight-gradient
//! accumulation — so they weigh twice the forward stage. The weight-update
//! cycle's duration is the array reprogramming time.

use crate::mapping::LayerMapping;
use crate::plan::{ExecutionPlan, PlanError};
use crate::AcceleratorConfig;
use reram_nn::NetworkSpec;
use serde::{Deserialize, Serialize};

/// Energy of a training run split by where it is spent.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Forward-pass crossbar MVMs, joules.
    pub forward_j: f64,
    /// Backward-pass crossbar MVMs (error + weight-gradient), joules.
    pub backward_j: f64,
    /// Memory/buffer subarray traffic, joules.
    pub buffer_j: f64,
    /// Weight-array reprogramming, joules.
    pub update_j: f64,
}

impl EnergyBreakdown {
    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.forward_j + self.backward_j + self.buffer_j + self.update_j
    }
}

/// Static timing/energy analysis of one network on the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkTiming {
    /// Per-weighted-layer mappings.
    pub mappings: Vec<LayerMapping>,
    /// Duration of a forward-only pipeline cycle, ns (slowest stage).
    pub forward_cycle_ns: f64,
    /// Duration of a training pipeline cycle, ns (backward stages dominate).
    pub training_cycle_ns: f64,
    /// Duration of the weight-update cycle, ns.
    pub update_cycle_ns: f64,
    /// Crossbar energy of one input's forward pass, pJ.
    pub forward_energy_pj: f64,
    /// Crossbar energy of one input's backward pass, pJ.
    pub backward_energy_pj: f64,
    /// Buffer/memory-subarray energy per input (training), pJ.
    pub buffer_energy_pj: f64,
    /// Energy to reprogram all weight arrays once, pJ.
    pub update_energy_pj: f64,
    /// Total physical arrays (including replication and differential pairs).
    pub total_arrays: usize,
    /// Total silicon area, mm².
    pub area_mm2: f64,
}

impl NetworkTiming {
    /// Analyzes a network under the given accelerator configuration.
    ///
    /// # Panics
    ///
    /// Panics if the network has no weighted layers or the configuration is
    /// invalid.
    pub fn analyze(net: &NetworkSpec, config: &AcceleratorConfig) -> Self {
        match ExecutionPlan::lower(net, config) {
            Ok(plan) => Self::from_plan(&plan),
            // lint:allow(panic) documented contract — invalid configs abort analysis
            Err(PlanError::InvalidConfig(e)) => panic!("invalid accelerator config: {e}"),
            // lint:allow(panic) documented contract — degenerate policy aborts analysis
            Err(PlanError::Mapping(e)) => panic!("cannot map {}: {e}", net.name),
            Err(PlanError::NoWeightedLayers) => {
                // lint:allow(panic) documented contract — nothing to analyze
                panic!("network {} has no weighted layers", net.name)
            }
        }
    }

    /// Builds the timing summary from an already-lowered execution plan —
    /// the aggregates are copied verbatim, so `analyze` and
    /// `ExecutionPlan::lower` + `from_plan` are bit-identical.
    pub fn from_plan(plan: &ExecutionPlan) -> Self {
        Self {
            mappings: plan.mappings(),
            forward_cycle_ns: plan.forward_cycle_ns,
            training_cycle_ns: plan.training_cycle_ns,
            update_cycle_ns: plan.update_cycle_ns,
            forward_energy_pj: plan.forward_energy_pj(),
            backward_energy_pj: plan.backward_energy_pj(),
            buffer_energy_pj: plan.buffer_energy_pj,
            update_energy_pj: plan.update_energy_pj(),
            total_arrays: plan.total_arrays,
            area_mm2: plan.area_mm2,
        }
    }

    /// Wall-clock time of `compute_cycles` pipeline cycles plus
    /// `update_cycles` weight-update cycles, seconds.
    pub fn cycles_to_seconds(
        &self,
        compute_cycles: u64,
        update_cycles: u64,
        training: bool,
    ) -> f64 {
        let cycle = if training {
            self.training_cycle_ns
        } else {
            self.forward_cycle_ns
        };
        (compute_cycles as f64 * cycle + update_cycles as f64 * self.update_cycle_ns) * 1e-9
    }

    /// Crossbar + buffer energy of training `n` inputs with `batches`
    /// weight updates, joules.
    pub fn training_energy_j(&self, n: u64, batches: u64) -> f64 {
        self.training_energy_breakdown(n, batches).total_j()
    }

    /// Component-wise energy of training `n` inputs with `batches` weight
    /// updates.
    pub fn training_energy_breakdown(&self, n: u64, batches: u64) -> EnergyBreakdown {
        let n = n as f64;
        EnergyBreakdown {
            forward_j: n * self.forward_energy_pj * 1e-12,
            backward_j: n * self.backward_energy_pj * 1e-12,
            buffer_j: n * self.buffer_energy_pj * 1e-12,
            update_j: batches as f64 * self.update_energy_pj * 1e-12,
        }
    }

    /// Crossbar + buffer energy of `n` inference passes, joules.
    pub fn inference_energy_j(&self, n: u64) -> f64 {
        (n as f64 * (self.forward_energy_pj + self.buffer_energy_pj / 3.0)) * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram_nn::models;

    fn timing(net: &NetworkSpec) -> NetworkTiming {
        NetworkTiming::analyze(net, &AcceleratorConfig::default())
    }

    #[test]
    fn analyzes_lenet() {
        let t = timing(&models::lenet_spec());
        assert_eq!(t.mappings.len(), 5);
        assert!(t.forward_cycle_ns > 0.0);
        assert!(t.training_cycle_ns > t.forward_cycle_ns);
        assert!(t.total_arrays > 0);
        assert!(t.area_mm2 > 0.0);
    }

    #[test]
    fn backward_cycle_is_twice_forward() {
        let t = timing(&models::lenet_spec());
        assert!((t.training_cycle_ns - 2.0 * t.forward_cycle_ns).abs() < 1e-9);
        assert!((t.backward_energy_pj - 2.0 * t.forward_energy_pj).abs() < 1e-6);
    }

    #[test]
    fn bigger_network_more_arrays_and_energy() {
        let small = timing(&models::lenet_spec());
        let big = timing(&models::vgg_a_spec());
        assert!(big.total_arrays > 10 * small.total_arrays);
        assert!(big.forward_energy_pj > 100.0 * small.forward_energy_pj);
    }

    #[test]
    fn cycle_time_bounded_by_replication_policy() {
        // MaxStepsPerLayer(64) with 16 input bits and default frames:
        // stage <= 64 MVMs x (16 frames + merge) ns.
        let cfg = AcceleratorConfig::default()
            .with_replication(crate::mapping::ReplicationPolicy::MaxStepsPerLayer(64));
        let t = NetworkTiming::analyze(&models::vgg_a_spec(), &cfg);
        let per_mvm = 16.0 * cfg.cost.frame_latency_ns + 16.0 * cfg.cost.adder_latency_ns;
        assert!(
            t.forward_cycle_ns <= 64.0 * per_mvm,
            "cycle {} exceeds bound",
            t.forward_cycle_ns
        );
    }

    #[test]
    fn cycles_to_seconds_composition() {
        let t = timing(&models::lenet_spec());
        let s = t.cycles_to_seconds(100, 2, true);
        let want = (100.0 * t.training_cycle_ns + 2.0 * t.update_cycle_ns) * 1e-9;
        assert!((s - want).abs() < 1e-15);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let t = timing(&models::alexnet_spec());
        let b = t.training_energy_breakdown(256, 8);
        assert!((b.total_j() - t.training_energy_j(256, 8)).abs() < 1e-12);
        assert!(b.forward_j > 0.0 && b.backward_j > 0.0);
        assert!(b.buffer_j > 0.0 && b.update_j > 0.0);
        // Backward dominates forward 2:1 in the crossbar component.
        assert!((b.backward_j / b.forward_j - 2.0).abs() < 1e-9);
    }

    #[test]
    fn training_energy_scales_with_inputs() {
        let t = timing(&models::lenet_spec());
        let e1 = t.training_energy_j(100, 10);
        let e2 = t.training_energy_j(200, 20);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inference_energy_below_training_energy() {
        let t = timing(&models::lenet_spec());
        assert!(t.inference_energy_j(100) < t.training_energy_j(100, 10));
    }

    #[test]
    #[should_panic(expected = "no weighted layers")]
    fn rejects_unweighted_network() {
        let net = NetworkSpec::new(
            "empty",
            reram_tensor::Shape4::new(1, 1, 4, 4),
            vec![reram_nn::LayerSpec::Activation { elems: 16 }],
        );
        let _ = timing(&net);
    }
}
