//! Static plan verification — an abstract-interpretation pass over the
//! lowered [`ExecutionPlan`] IR.
//!
//! PR 3 made the plan the single choke point between a network spec and
//! every reported number; this module proves a lowered plan is internally
//! consistent *without running any simulation*. Three families of checks:
//!
//! * **Conservation laws** — plan aggregates equal the sum (or max) of
//!   their per-layer parts; forward/error/gradient MVM counts match the
//!   analytic MAC totals carried in each layer's [`reram_nn::LayerWork`]
//!   (PipeLayer §II-A.2: one MVM group per pass, so
//!   `forward_mvms · rows · cols == forward_macs`); ADC conversions and
//!   cell writes match the spike-frame and endurance closed forms of
//!   [`crate::plan::adc_conversions`] / [`crate::plan::cell_writes`];
//!   buffer read traffic is exactly twice the write traffic (write once,
//!   consume once, backward re-read once — §III-B).
//! * **Feasibility** — the mapped geometry respects the configured
//!   [`ReplicationPolicy`] (Fig. 4 balanced mapping: `steps = ⌈mvms/X⌉`,
//!   arrays divisible by `X`, array budgets honoured), every pipeline
//!   stage has a strictly positive latency, and — given a
//!   [`ServeShape`] — the batcher linger is sane against the chip batch
//!   latency and the cluster is stable (`ρ = λ/μ < 1`).
//! * **Metamorphic checks** — doubling the batch size must not lower the
//!   batch latency, and raising the replication factor `X` must not raise
//!   per-input cycles.
//!
//! Violations are typed ([`Violation`]) and carry the numbers that
//! disagree, so `reram-lint --plans` can print them in the same
//! `file:line: [rule] message` shape as source findings. Every call to
//! [`ExecutionPlan::lower`] re-verifies its own output in debug builds.

use crate::mapping::ReplicationPolicy;
use crate::plan::{adc_conversions, cell_writes, ExecutionPlan, PlanError, BYTES_PER_ELEM};
use crate::AcceleratorConfig;
use reram_nn::{models, NetworkSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A batcher `max_linger` longer than this multiple of the slowest
/// full-batch service latency is flagged: the linger knob exists to bound
/// *queueing* delay, so waiting three orders of magnitude longer than the
/// service itself means the deadline can never matter in practice.
pub const LINGER_FACTOR: f64 = 1000.0;

/// Relative tolerance used when re-deriving `f64` closed forms. The
/// verifier recomputes every aggregate with the same expressions the
/// lowering used, so honest plans agree to well under this bound.
const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// One statically detected inconsistency in a lowered plan or serving
/// shape. Each variant carries the disagreeing quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// `forward_cycle_ns` is not the slowest forward stage latency.
    ForwardCycleMismatch {
        /// Aggregate stored in the plan, ns.
        plan_ns: f64,
        /// Max per-layer forward latency re-derived from the layers, ns.
        derived_ns: f64,
    },
    /// `training_cycle_ns` is not twice `forward_cycle_ns` (backward
    /// stages dominate at 2× the forward latency, Fig. 5).
    TrainingCycleMismatch {
        /// Training macro-cycle stored in the plan, ns.
        training_ns: f64,
        /// Forward macro-cycle stored in the plan, ns.
        forward_ns: f64,
    },
    /// `total_arrays` is not the sum of the per-layer array counts.
    ArrayTotalMismatch {
        /// Aggregate stored in the plan.
        plan_arrays: usize,
        /// Sum over `layers[i].mapping.arrays`.
        layer_arrays: usize,
    },
    /// `buffer_energy_pj` disagrees with the 3-touch traffic closed form
    /// (every weighted output written once, consumed once, re-read once).
    BufferEnergyMismatch {
        /// Aggregate stored in the plan, pJ.
        plan_pj: f64,
        /// Energy re-derived from the layer output sizes, pJ.
        derived_pj: f64,
    },
    /// A per-layer `f64` closed form disagrees with its re-derivation
    /// (stage latency, forward/backward/update energy, update cycle).
    LayerFormMismatch {
        /// Layer name (or `<plan>` for plan-wide quantities).
        layer: String,
        /// Which quantity disagrees.
        quantity: String,
        /// Value stored in the plan.
        plan: f64,
        /// Value re-derived from the mapping and config.
        derived: f64,
    },
    /// A layer's MVM count does not reproduce its analytic MAC total
    /// (`forward_mvms · crossbar_rows · crossbar_cols == forward_macs`).
    MacCountMismatch {
        /// Layer name.
        layer: String,
        /// MACs implied by the plan's MVM count and tile geometry.
        plan_macs: u64,
        /// Analytic MAC total from the network spec.
        spec_macs: u64,
    },
    /// Forward / error / gradient MVM counts drifted apart — each training
    /// pass is one MVM group per input (§II-A.2), so all three must agree.
    TrainingPassSkew {
        /// Layer name.
        layer: String,
        /// Forward-pass MVM groups.
        forward_mvms: u64,
        /// Error back-propagation MVM groups.
        error_mvms: u64,
        /// Weight-gradient MVM groups.
        gradient_mvms: u64,
    },
    /// A layer's stored ADC conversion count disagrees with the
    /// spike-frame closed form.
    AdcCountMismatch {
        /// Layer name.
        layer: String,
        /// Conversions stored in the plan.
        plan: u64,
        /// Conversions re-derived from the mapping.
        derived: u64,
    },
    /// A layer's stored cell-write count disagrees with the endurance
    /// closed form (`arrays · rows · cols` per full reprogram).
    CellWriteMismatch {
        /// Layer name.
        layer: String,
        /// Cell writes stored in the plan.
        plan: u64,
        /// Cell writes re-derived from the mapping.
        derived: u64,
    },
    /// Buffer write/read symmetry is broken: writes must equal the layer's
    /// output bytes and reads must be exactly twice the writes.
    BufferAsymmetry {
        /// Layer name.
        layer: String,
        /// Bytes written per input.
        write_bytes: f64,
        /// Bytes read per input.
        read_bytes: f64,
    },
    /// A layer's replication bookkeeping is inconsistent with Fig. 4
    /// balanced mapping (`steps = ⌈mvms/X⌉`, arrays divisible by `X`) or
    /// with the configured replication policy.
    ReplicationInconsistent {
        /// Layer name.
        layer: String,
        /// MVMs per input.
        mvms: usize,
        /// Replication factor `X`.
        replication: usize,
        /// Sequential steps per input.
        steps: usize,
    },
    /// An [`ReplicationPolicy::ArrayBudget`] plan spends more arrays than
    /// the budget although an unreplicated mapping would have fit.
    BudgetExceeded {
        /// Configured array budget.
        budget: usize,
        /// Physical arrays the plan uses.
        total_arrays: usize,
    },
    /// A pipeline stage has a non-positive (or non-finite) latency or a
    /// zero micro-cycle count — the pipeline closed forms are meaningless.
    NonPositiveStage {
        /// Layer name.
        layer: String,
        /// The offending stage latency, ns.
        latency_ns: f64,
    },
    /// Metamorphic: doubling the batch size lowered the batch latency.
    BatchLatencyShrank {
        /// Base batch size.
        batch: usize,
        /// Latency at `batch`, ns.
        latency_ns: f64,
        /// Latency at `2 · batch`, ns.
        doubled_ns: f64,
    },
    /// Metamorphic: doubling the replication factor raised per-input
    /// cycles (more weight copies must never slow a layer down).
    ReplicationRegressed {
        /// Base replication factor `X`.
        replication: usize,
        /// Slowest stage micro-cycles at `X`.
        slowest_cycles: u64,
        /// Slowest stage micro-cycles at `2X`.
        doubled_cycles: u64,
    },
    /// The batcher's `max_linger` dwarfs the slowest full-batch service
    /// latency (see [`LINGER_FACTOR`]): the deadline can never bind.
    LingerExcessive {
        /// Configured linger, ns.
        max_linger_ns: u64,
        /// Slowest full-batch service latency across the catalog, ns.
        slowest_batch_ns: u64,
    },
    /// The offered arrival rate meets or exceeds the cluster's service
    /// capacity: `ρ = λ/μ ≥ 1`, so queues grow without bound and latency
    /// percentiles are garbage.
    Overload {
        /// Utilization `ρ = λ / (chips · μ)`.
        rho: f64,
        /// Offered load, requests per second.
        arrival_rps: f64,
        /// Cluster service capacity, requests per second.
        service_rps: f64,
    },
    /// A zoo network failed to lower at all under a matrix configuration.
    LoweringFailed {
        /// The lowering error, rendered.
        error: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ForwardCycleMismatch {
                plan_ns,
                derived_ns,
            } => write!(
                f,
                "forward_cycle_ns {plan_ns} != slowest stage latency {derived_ns}"
            ),
            Violation::TrainingCycleMismatch {
                training_ns,
                forward_ns,
            } => write!(
                f,
                "training_cycle_ns {training_ns} != 2 x forward_cycle_ns {forward_ns}"
            ),
            Violation::ArrayTotalMismatch {
                plan_arrays,
                layer_arrays,
            } => write!(
                f,
                "total_arrays {plan_arrays} != per-layer sum {layer_arrays}"
            ),
            Violation::BufferEnergyMismatch {
                plan_pj,
                derived_pj,
            } => write!(
                f,
                "buffer_energy_pj {plan_pj} != 3-touch traffic form {derived_pj}"
            ),
            Violation::LayerFormMismatch {
                layer,
                quantity,
                plan,
                derived,
            } => write!(
                f,
                "{layer}: {quantity} {plan} != re-derived closed form {derived}"
            ),
            Violation::MacCountMismatch {
                layer,
                plan_macs,
                spec_macs,
            } => write!(
                f,
                "{layer}: mvms x rows x cols = {plan_macs} MACs != spec {spec_macs}"
            ),
            Violation::TrainingPassSkew {
                layer,
                forward_mvms,
                error_mvms,
                gradient_mvms,
            } => write!(
                f,
                "{layer}: training passes drifted: forward {forward_mvms} / \
                 error {error_mvms} / gradient {gradient_mvms} MVMs"
            ),
            Violation::AdcCountMismatch {
                layer,
                plan,
                derived,
            } => write!(
                f,
                "{layer}: adc_conversions {plan} != spike-frame form {derived}"
            ),
            Violation::CellWriteMismatch {
                layer,
                plan,
                derived,
            } => write!(f, "{layer}: cell_writes {plan} != endurance form {derived}"),
            Violation::BufferAsymmetry {
                layer,
                write_bytes,
                read_bytes,
            } => write!(
                f,
                "{layer}: buffer traffic asymmetric: write {write_bytes} B, \
                 read {read_bytes} B (want read = 2 x write)"
            ),
            Violation::ReplicationInconsistent {
                layer,
                mvms,
                replication,
                steps,
            } => write!(
                f,
                "{layer}: replication bookkeeping inconsistent: {mvms} mvms, \
                 X = {replication}, steps = {steps}"
            ),
            Violation::BudgetExceeded {
                budget,
                total_arrays,
            } => write!(
                f,
                "array budget {budget} exceeded: plan uses {total_arrays} arrays"
            ),
            Violation::NonPositiveStage { layer, latency_ns } => {
                write!(f, "{layer}: non-positive stage latency {latency_ns} ns")
            }
            Violation::BatchLatencyShrank {
                batch,
                latency_ns,
                doubled_ns,
            } => write!(
                f,
                "batch {batch} -> {} lowered latency {latency_ns} -> {doubled_ns} ns",
                2 * batch
            ),
            Violation::ReplicationRegressed {
                replication,
                slowest_cycles,
                doubled_cycles,
            } => write!(
                f,
                "raising X {replication} -> {} raised slowest stage \
                 {slowest_cycles} -> {doubled_cycles} cycles",
                2 * replication
            ),
            Violation::LingerExcessive {
                max_linger_ns,
                slowest_batch_ns,
            } => write!(
                f,
                "max_linger {max_linger_ns} ns exceeds {LINGER_FACTOR} x the \
                 slowest batch latency {slowest_batch_ns} ns"
            ),
            Violation::Overload {
                rho,
                arrival_rps,
                service_rps,
            } => write!(
                f,
                "unstable: rho = {rho:.3} (lambda {arrival_rps:.0} rps vs \
                 capacity {service_rps:.0} rps)"
            ),
            Violation::LoweringFailed { error } => {
                write!(f, "network failed to lower: {error}")
            }
        }
    }
}

/// Verifies one lowered plan against the configuration that produced it.
/// Returns every violated invariant (empty = clean).
#[must_use = "the returned violations are the verification result"]
pub fn verify_plan(plan: &ExecutionPlan, config: &AcceleratorConfig) -> Vec<Violation> {
    let mut v = Vec::new();
    let form = |layer: &str, quantity: &str, plan_val: f64, derived: f64| {
        if !close(plan_val, derived) {
            Some(Violation::LayerFormMismatch {
                layer: layer.to_owned(),
                quantity: quantity.to_owned(),
                plan: plan_val,
                derived,
            })
        } else {
            None
        }
    };

    // Conservation: aggregates vs per-layer parts.
    let derived_cycle = plan
        .layers
        .iter()
        .map(|l| l.forward_latency_ns)
        .fold(0.0, f64::max);
    if !close(plan.forward_cycle_ns, derived_cycle) {
        v.push(Violation::ForwardCycleMismatch {
            plan_ns: plan.forward_cycle_ns,
            derived_ns: derived_cycle,
        });
    }
    if !close(plan.training_cycle_ns, 2.0 * plan.forward_cycle_ns) {
        v.push(Violation::TrainingCycleMismatch {
            training_ns: plan.training_cycle_ns,
            forward_ns: plan.forward_cycle_ns,
        });
    }
    let layer_arrays: usize = plan.layers.iter().map(|l| l.mapping.arrays).sum();
    if plan.total_arrays != layer_arrays {
        v.push(Violation::ArrayTotalMismatch {
            plan_arrays: plan.total_arrays,
            layer_arrays,
        });
    }
    let activation_elems: f64 = plan.layers.iter().map(|l| l.work.output_elems as f64).sum();
    let derived_buffer = config
        .cost
        .buffer_energy_pj((activation_elems * BYTES_PER_ELEM * 3.0) as u64);
    if !close(plan.buffer_energy_pj, derived_buffer) {
        v.push(Violation::BufferEnergyMismatch {
            plan_pj: plan.buffer_energy_pj,
            derived_pj: derived_buffer,
        });
    }
    let (program_latency_ns, program_energy_pj) = config.cost.program_cost(&config.crossbar);
    v.extend(form(
        "<plan>",
        "update_cycle_ns",
        plan.update_cycle_ns,
        program_latency_ns,
    ));

    // Per-layer conservation laws and closed forms.
    for l in &plan.layers {
        let m = &l.mapping;
        let plan_macs = l
            .forward_mvms
            .saturating_mul(l.work.crossbar_rows)
            .saturating_mul(l.work.crossbar_cols);
        if plan_macs != l.work.forward_macs {
            v.push(Violation::MacCountMismatch {
                layer: l.name.clone(),
                plan_macs,
                spec_macs: l.work.forward_macs,
            });
        }
        if l.error_mvms != l.forward_mvms || l.gradient_mvms != l.forward_mvms {
            v.push(Violation::TrainingPassSkew {
                layer: l.name.clone(),
                forward_mvms: l.forward_mvms,
                error_mvms: l.error_mvms,
                gradient_mvms: l.gradient_mvms,
            });
        }
        let derived_adc = adc_conversions(m, config);
        if l.adc_conversions != derived_adc {
            v.push(Violation::AdcCountMismatch {
                layer: l.name.clone(),
                plan: l.adc_conversions,
                derived: derived_adc,
            });
        }
        let derived_writes = cell_writes(m, config);
        if l.cell_writes != derived_writes {
            v.push(Violation::CellWriteMismatch {
                layer: l.name.clone(),
                plan: l.cell_writes,
                derived: derived_writes,
            });
        }
        let out_bytes = l.work.output_elems as f64 * BYTES_PER_ELEM;
        if !close(l.buffer_write_bytes, out_bytes)
            || !close(l.buffer_read_bytes, 2.0 * l.buffer_write_bytes)
        {
            v.push(Violation::BufferAsymmetry {
                layer: l.name.clone(),
                write_bytes: l.buffer_write_bytes,
                read_bytes: l.buffer_read_bytes,
            });
        }
        if m.replication == 0
            || m.steps_per_input != m.mvms_per_input.div_ceil(m.replication.max(1))
            || !m.arrays.is_multiple_of(m.replication.max(1))
            || l.stage_cycles != m.steps_per_input as u64
            || l.forward_mvms != m.mvms_per_input as u64
        {
            v.push(Violation::ReplicationInconsistent {
                layer: l.name.clone(),
                mvms: m.mvms_per_input,
                replication: m.replication,
                steps: m.steps_per_input,
            });
        }
        if !(l.forward_latency_ns.is_finite() && l.forward_latency_ns > 0.0) || l.stage_cycles == 0
        {
            v.push(Violation::NonPositiveStage {
                layer: l.name.clone(),
                latency_ns: l.forward_latency_ns,
            });
        }
        v.extend(form(
            &l.name,
            "forward_latency_ns",
            l.forward_latency_ns,
            m.stage_latency_ns(),
        ));
        v.extend(form(
            &l.name,
            "backward_latency_ns",
            l.backward_latency_ns,
            2.0 * l.forward_latency_ns,
        ));
        v.extend(form(
            &l.name,
            "forward_energy_pj",
            l.forward_energy_pj,
            m.forward_energy_pj(),
        ));
        v.extend(form(
            &l.name,
            "backward_energy_pj",
            l.backward_energy_pj,
            2.0 * l.forward_energy_pj,
        ));
        v.extend(form(
            &l.name,
            "update_energy_pj",
            l.update_energy_pj,
            m.arrays as f64 * program_energy_pj,
        ));
    }

    // Feasibility: the mapping must respect the configured policy.
    v.extend(check_policy(plan, config));

    // Metamorphic: doubling the batch must never lower the batch latency.
    if !plan.layers.is_empty() {
        for batch in [1usize, 4, 16] {
            let small = plan.batch_inference_latency_ns(batch);
            let big = plan.batch_inference_latency_ns(2 * batch);
            if big + REL_TOL * small.abs().max(1.0) < small {
                v.push(Violation::BatchLatencyShrank {
                    batch,
                    latency_ns: small,
                    doubled_ns: big,
                });
            }
        }
    }
    v
}

/// Checks the plan's replication factors against the configured policy:
/// Fig. 4's balanced mapping constrains `X` per layer, and
/// [`ReplicationPolicy::ArrayBudget`] bounds the whole-network array spend
/// (unless even the unreplicated floor exceeds it, in which case the
/// mapping must be exactly unreplicated).
fn check_policy(plan: &ExecutionPlan, config: &AcceleratorConfig) -> Vec<Violation> {
    let mut v = Vec::new();
    let bad = |l: &crate::plan::LayerPlan| Violation::ReplicationInconsistent {
        layer: l.name.clone(),
        mvms: l.mapping.mvms_per_input,
        replication: l.mapping.replication,
        steps: l.mapping.steps_per_input,
    };
    match config.replication {
        ReplicationPolicy::None => {
            for l in plan.layers.iter().filter(|l| l.mapping.replication != 1) {
                v.push(bad(l));
            }
        }
        ReplicationPolicy::Fixed(x) => {
            for l in plan.layers.iter().filter(|l| l.mapping.replication != x) {
                v.push(bad(l));
            }
        }
        ReplicationPolicy::MaxStepsPerLayer(steps) => {
            for l in plan
                .layers
                .iter()
                .filter(|l| steps > 0 && l.mapping.steps_per_input > steps)
            {
                v.push(bad(l));
            }
        }
        ReplicationPolicy::ArrayBudget(budget) => {
            let floor: usize = plan.layers.iter().map(|l| l.mapping.base_arrays()).sum();
            if floor <= budget {
                if plan.total_arrays > budget {
                    v.push(Violation::BudgetExceeded {
                        budget,
                        total_arrays: plan.total_arrays,
                    });
                }
            } else {
                // Budget below the unreplicated floor: the mapping falls
                // back to X = 1 everywhere (a provisioning target, not a
                // hard wall).
                for l in plan.layers.iter().filter(|l| l.mapping.replication != 1) {
                    v.push(bad(l));
                }
            }
        }
    }
    v
}

/// Metamorphic comparison of two lowerings of the same network at
/// replication factors `X` and `2X`: more weight copies must never raise
/// the slowest stage's per-input micro-cycles.
#[must_use = "the returned violation is the verification result"]
pub fn check_replication_monotone(
    base: &ExecutionPlan,
    doubled: &ExecutionPlan,
    replication: usize,
) -> Option<Violation> {
    let slowest = |p: &ExecutionPlan| p.stage_cycles().into_iter().max().unwrap_or(0);
    let (a, b) = (slowest(base), slowest(doubled));
    (b > a).then_some(Violation::ReplicationRegressed {
        replication,
        slowest_cycles: a,
        doubled_cycles: b,
    })
}

/// Lowers `net` under `config` and verifies the result, adding the
/// replication metamorphic check (re-lowering at fixed `X` and `2X`).
///
/// # Errors
///
/// Propagates the [`PlanError`] when the network cannot be lowered at all
/// under `config` — a failed lowering has no plan to verify.
#[must_use = "the returned violations are the verification result"]
pub fn verify_lowering(
    net: &NetworkSpec,
    config: &AcceleratorConfig,
) -> Result<Vec<Violation>, PlanError> {
    let plan = ExecutionPlan::lower(net, config)?;
    let mut v = plan.verify(config);
    for x in [1usize, 4] {
        let at = |factor: usize| {
            ExecutionPlan::lower(
                net,
                &config
                    .clone()
                    .with_replication(ReplicationPolicy::Fixed(factor)),
            )
        };
        if let (Ok(base), Ok(doubled)) = (at(x), at(2 * x)) {
            v.extend(check_replication_monotone(&base, &doubled, x));
        }
    }
    Ok(v)
}

impl ExecutionPlan {
    /// Statically verifies this plan against the configuration that
    /// produced it. See [`verify_plan`].
    #[must_use = "the returned violations are the verification result"]
    pub fn verify(&self, config: &AcceleratorConfig) -> Vec<Violation> {
        verify_plan(self, config)
    }
}

/// The serving-layer shape the feasibility checks need — a deliberately
/// backend-neutral mirror of `reram_serve::ServeConfig` (this crate sits
/// below the serving crate in the layering, so it cannot name those types;
/// `reram-serve` bridges its config into this shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeShape {
    /// Chips in the cluster.
    pub chips: usize,
    /// Dynamic batcher size trigger.
    pub max_batch: usize,
    /// Dynamic batcher linger trigger, ns.
    pub max_linger_ns: u64,
    /// Mean offered arrival rate, requests per second.
    pub mean_arrival_rps: f64,
    /// Relative traffic weight per catalog plan (falls back to uniform
    /// when empty or mismatched).
    pub mix: Vec<f64>,
}

/// Static feasibility of a serving shape over one plan per catalog model:
/// flags a linger deadline that can never bind ([`LINGER_FACTOR`]) and an
/// offered load at or beyond the cluster's plan-priced service capacity
/// (`ρ = λ/μ ≥ 1`, the queueing-stability condition — an overloaded run
/// produces unbounded queues and meaningless latency percentiles).
#[must_use = "the returned violations are the verification result"]
pub fn verify_serve(plans: &[ExecutionPlan], shape: &ServeShape) -> Vec<Violation> {
    let mut v = Vec::new();
    if plans.is_empty() || shape.chips == 0 || shape.max_batch == 0 {
        return v;
    }
    let batch = shape.max_batch;
    let latencies: Vec<f64> = plans
        .iter()
        .map(|p| p.batch_inference_latency_ns(batch))
        .collect();

    let slowest_batch_ns = latencies.iter().fold(0.0f64, |a, &b| a.max(b));
    if shape.max_linger_ns as f64 > LINGER_FACTOR * slowest_batch_ns {
        v.push(Violation::LingerExcessive {
            max_linger_ns: shape.max_linger_ns,
            slowest_batch_ns: slowest_batch_ns as u64,
        });
    }

    // Mean service time per request: mix-weighted amortized batch latency.
    let weights: Vec<f64> = if shape.mix.len() == plans.len()
        && shape.mix.iter().all(|w| w.is_finite() && *w >= 0.0)
        && shape.mix.iter().sum::<f64>() > 0.0
    {
        shape.mix.clone()
    } else {
        vec![1.0; plans.len()]
    };
    let total_weight: f64 = weights.iter().sum();
    let mean_service_ns: f64 = latencies
        .iter()
        .zip(&weights)
        .map(|(lat, w)| (w / total_weight) * lat / batch as f64)
        .sum();
    if mean_service_ns > 0.0 && shape.mean_arrival_rps.is_finite() {
        let service_rps = shape.chips as f64 * 1e9 / mean_service_ns;
        let rho = shape.mean_arrival_rps / service_rps;
        if rho >= 1.0 {
            v.push(Violation::Overload {
                rho,
                arrival_rps: shape.mean_arrival_rps,
                service_rps,
            });
        }
    }
    v
}

/// One verifier finding over the lowered model zoo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZooFinding {
    /// Network name.
    pub network: String,
    /// Config-matrix entry name.
    pub config: String,
    /// The violated invariant.
    pub violation: Violation,
}

/// The standard accelerator config matrix zoo-wide verification sweeps:
/// the default 128K-array budget, a step-bounded pipeline, a fixed
/// replication factor, and a deliberately starved budget that exercises
/// the unreplicated fallback.
#[must_use = "builds and returns the config matrix"]
pub fn config_matrix() -> Vec<(String, AcceleratorConfig)> {
    vec![
        ("budget-128k".to_owned(), AcceleratorConfig::default()),
        (
            "steps-64".to_owned(),
            AcceleratorConfig::default().with_replication(ReplicationPolicy::MaxStepsPerLayer(64)),
        ),
        (
            "fixed-x4".to_owned(),
            AcceleratorConfig::default().with_replication(ReplicationPolicy::Fixed(4)),
        ),
        (
            "budget-8k".to_owned(),
            AcceleratorConfig::default().with_replication(ReplicationPolicy::ArrayBudget(8_192)),
        ),
    ]
}

/// The model zoo the verifier sweeps: every network the repository can
/// lower.
#[must_use = "builds and returns the zoo"]
pub fn model_zoo() -> Vec<NetworkSpec> {
    vec![
        models::lenet_spec(),
        models::mnist_deep_spec(),
        models::alexnet_spec(),
        models::vgg_a_spec(),
        models::googlenet_spec(),
        models::dcgan_generator_spec(100, 3, 64),
        models::dcgan_discriminator_spec(3, 64),
    ]
}

/// Lowers and verifies the whole model zoo across [`config_matrix`].
/// Returns `(plans verified, findings)`; a clean tree returns an empty
/// finding list.
#[must_use = "the returned findings are the verification result"]
pub fn verify_zoo() -> (usize, Vec<ZooFinding>) {
    let mut plans = 0usize;
    let mut findings = Vec::new();
    for (config_name, config) in config_matrix() {
        for net in model_zoo() {
            plans += 1;
            let violations = match verify_lowering(&net, &config) {
                Ok(violations) => violations,
                Err(e) => vec![Violation::LoweringFailed {
                    error: e.to_string(),
                }],
            };
            findings.extend(violations.into_iter().map(|violation| ZooFinding {
                network: net.name.clone(),
                config: config_name.clone(),
                violation,
            }));
        }
    }
    (plans, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_for(net: &NetworkSpec, config: &AcceleratorConfig) -> ExecutionPlan {
        ExecutionPlan::lower(net, config).expect("lowerable")
    }

    #[test]
    fn default_lowerings_verify_clean() {
        let config = AcceleratorConfig::default();
        for net in model_zoo() {
            let plan = plan_for(&net, &config);
            assert_eq!(plan.verify(&config), Vec::new(), "{}", net.name);
        }
    }

    #[test]
    fn zoo_sweep_is_clean() {
        let (plans, findings) = verify_zoo();
        assert_eq!(plans, config_matrix().len() * model_zoo().len());
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn serve_shape_default_is_feasible() {
        let config = AcceleratorConfig::default();
        let plans = vec![
            plan_for(&models::lenet_spec(), &config),
            plan_for(&models::alexnet_spec(), &config),
        ];
        let shape = ServeShape {
            chips: 4,
            max_batch: 16,
            max_linger_ns: 20_000,
            mean_arrival_rps: 200_000.0,
            mix: vec![0.7, 0.3],
        };
        assert_eq!(verify_serve(&plans, &shape), Vec::new());
    }

    #[test]
    fn violations_render_and_round_trip() {
        let v = Violation::Overload {
            rho: 1.5,
            arrival_rps: 3e6,
            service_rps: 2e6,
        };
        assert!(v.to_string().contains("rho = 1.500"));
        let json = serde::json::to_string(&v);
        let back: Violation = serde::json::from_str(&json).expect("parse");
        assert_eq!(back, v);
    }
}
