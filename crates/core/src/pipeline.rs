//! The PipeLayer inter-layer pipeline — paper §III-A.2 and Fig. 5.
//!
//! Training a network of `L` (weighted) layers on batches of `B` inputs:
//! the forward pass occupies `L` pipeline stages and the backward pass
//! `L + 1` stages (error computation plus per-layer propagation). Inside a
//! batch "a new input could enter every cycle"; across batches the pipeline
//! drains because the weight update at the end of a batch must complete
//! before the next batch's inputs may use the weights.
//!
//! Closed forms from the paper:
//!
//! * pipelined training of `N` inputs: `(N/B) · (2L + B + 1)` cycles,
//! * non-pipelined (one input at a time): `(2L + 1) · N + N/B` cycles.
//!
//! [`PipelineModel::simulate_training`] is a cycle-stepped simulator of the
//! Fig. 5(b) schedule — stage occupancy, structural-hazard checking, buffer
//! traffic — whose total is asserted (in tests and by `debug_assert`)
//! to equal the closed form.

use reram_telemetry::{self as telemetry, Event, Span};
use serde::{Deserialize, Serialize};

/// Cycle-level model of the PipeLayer training/inference pipeline.
///
/// The paper's closed forms count *macro-cycles*: every pipeline stage is
/// stretched to the latency of the slowest layer, so each stage costs
/// exactly one cycle. [`PipelineModel::new`] builds that uniform model.
/// [`PipelineModel::with_stage_cycles`] additionally records per-layer
/// *micro-cycle* costs (e.g. the `steps_per_input` of each layer's crossbar
/// mapping) and exposes heterogeneous closed forms
/// ([`PipelineModel::inference_stage_cycles`] and friends) where the
/// pipeline initiation interval is the *maximum* stage cost rather than a
/// padded unit cycle. With all stage costs equal to 1 the heterogeneous
/// inference forms reduce exactly to the paper's macro-cycle forms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineModel {
    layers: usize,
    batch: usize,
    stage_cycles: Vec<u64>,
}

/// Result of a cycle-stepped pipeline simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineTrace {
    /// Total cycles from first input entering to last weight update.
    pub total_cycles: u64,
    /// Busy cycles per forward stage (layer).
    pub forward_busy: Vec<u64>,
    /// Busy cycles per backward stage (`L + 1` of them).
    pub backward_busy: Vec<u64>,
    /// Number of weight-update cycles performed.
    pub weight_updates: u64,
    /// Peak number of inputs in flight in any single cycle.
    pub max_in_flight: usize,
    /// Intermediate-result tensors written to memory subarrays (one per
    /// input per stage transition — the circles of Fig. 5(a)).
    pub buffer_writes: u64,
    /// Intermediate-result tensors read back from memory subarrays: every
    /// stage after the first consumes its predecessor's buffered output,
    /// and each per-layer backward stage additionally re-reads the stored
    /// forward activation for the weight-gradient computation.
    pub buffer_reads: u64,
}

impl PipelineModel {
    /// Creates a pipeline model for `layers` weighted layers and batch size
    /// `batch`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(layers: usize, batch: usize) -> Self {
        assert!(layers > 0, "pipeline needs at least one layer");
        assert!(batch > 0, "batch size must be positive");
        Self {
            layers,
            batch,
            stage_cycles: vec![1; layers],
        }
    }

    /// Creates a pipeline model with heterogeneous per-layer stage costs.
    ///
    /// `stage_cycles[i]` is the micro-cycle cost of layer `i`'s forward
    /// stage (its backward stage costs twice that — transposed MVM plus
    /// weight-gradient accumulation). The uniform [`PipelineModel::new`] is
    /// the special case where every entry is 1.
    ///
    /// # Panics
    ///
    /// Panics if `stage_cycles` is empty, contains a zero, or `batch` is
    /// zero.
    pub fn with_stage_cycles(stage_cycles: Vec<u64>, batch: usize) -> Self {
        assert!(
            !stage_cycles.is_empty(),
            "pipeline needs at least one layer"
        );
        assert!(
            stage_cycles.iter().all(|&c| c > 0),
            "every stage must cost at least one cycle"
        );
        assert!(batch > 0, "batch size must be positive");
        Self {
            layers: stage_cycles.len(),
            batch,
            stage_cycles,
        }
    }

    /// Weighted layer count `L`.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Batch size `B`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Per-layer forward stage costs in micro-cycles (all 1 for the uniform
    /// model).
    pub fn stage_cycles(&self) -> &[u64] {
        &self.stage_cycles
    }

    fn stage_sum(&self) -> u64 {
        self.stage_cycles.iter().sum()
    }

    fn stage_max(&self) -> u64 {
        // lint:allow(panic) stage_cycles is non-empty by construction.
        *self.stage_cycles.iter().max().unwrap()
    }

    /// Cycles to train one batch: `2L + B + 1`.
    ///
    /// "The first weight update is generated after (2L+1) cycles. Then there
    /// will be (B − 1) cycles until the end of batch. Finally, one cycle is
    /// needed to update all weights within the batch."
    pub fn training_cycles_per_batch(&self) -> u64 {
        (2 * self.layers + self.batch + 1) as u64
    }

    /// Pipelined training cycles for `n` inputs: `(N/B)(2L + B + 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of the batch size.
    pub fn training_cycles(&self, n: u64) -> u64 {
        assert!(
            n > 0 && n.is_multiple_of(self.batch as u64),
            "{n} inputs is not a positive multiple of batch {}",
            self.batch
        );
        (n / self.batch as u64) * self.training_cycles_per_batch()
    }

    /// Non-pipelined training cycles for `n` inputs: `(2L + 1)N + N/B`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of the batch size.
    pub fn sequential_training_cycles(&self, n: u64) -> u64 {
        assert!(
            n > 0 && n.is_multiple_of(self.batch as u64),
            "{n} inputs is not a positive multiple of batch {}",
            self.batch
        );
        (2 * self.layers as u64 + 1) * n + n / self.batch as u64
    }

    /// Pipelined inference (testing) cycles for `n` inputs: `N + L − 1`
    /// (one new input per cycle, `L` stages to drain).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn inference_cycles(&self, n: u64) -> u64 {
        assert!(n > 0, "need at least one input");
        n + self.layers as u64 - 1
    }

    /// Non-pipelined inference cycles: `N · L`.
    pub fn sequential_inference_cycles(&self, n: u64) -> u64 {
        n * self.layers as u64
    }

    /// Heterogeneous pipelined inference in micro-cycles:
    /// `Σ cᵢ + (N − 1) · max cᵢ` — the pipeline fill (one pass through every
    /// stage) plus one initiation interval (the slowest stage) per
    /// additional input. With uniform unit stages this is exactly the
    /// macro-cycle form `N + L − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn inference_stage_cycles(&self, n: u64) -> u64 {
        assert!(n > 0, "need at least one input");
        self.stage_sum() + (n - 1) * self.stage_max()
    }

    /// Heterogeneous non-pipelined inference in micro-cycles: `N · Σ cᵢ`
    /// (each input walks every stage alone). With uniform unit stages this
    /// is exactly the macro-cycle form `N · L`.
    pub fn sequential_inference_stage_cycles(&self, n: u64) -> u64 {
        n * self.stage_sum()
    }

    /// Training stage-cost vector in micro-cycles: forward stages
    /// `c₁ … c_L`, one error-computation stage, then backward stages
    /// `2c_L … 2c₁` (transposed MVM plus weight-gradient outer product,
    /// paper §II-A.2 — two crossbar passes per layer).
    pub fn training_stage_vector(&self) -> Vec<u64> {
        let mut v = self.stage_cycles.clone();
        v.push(1);
        v.extend(self.stage_cycles.iter().rev().map(|c| 2 * c));
        v
    }

    /// Heterogeneous training micro-cycles per batch:
    /// `Σ sⱼ + (B − 1) · max sⱼ + 1` over the training stage vector `s`
    /// (fill, one initiation interval per remaining input, one update
    /// cycle).
    ///
    /// Note this counts *micro*-cycles: backward stages cost twice their
    /// forward counterpart, so even with uniform unit forward stages the
    /// value differs from the macro-cycle form `2L + B + 1`, which pads
    /// every stage to a single stretched cycle.
    pub fn training_stage_cycles_per_batch(&self) -> u64 {
        let stages = self.training_stage_vector();
        let sum: u64 = stages.iter().sum();
        // lint:allow(panic) training stage vector is never empty.
        let max = *stages.iter().max().unwrap();
        sum + (self.batch as u64 - 1) * max + 1
    }

    /// Heterogeneous pipelined training micro-cycles for `n` inputs:
    /// `(N/B) ·` [`PipelineModel::training_stage_cycles_per_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of the batch size.
    pub fn training_stage_cycles(&self, n: u64) -> u64 {
        assert!(
            n > 0 && n.is_multiple_of(self.batch as u64),
            "{n} inputs is not a positive multiple of batch {}",
            self.batch
        );
        (n / self.batch as u64) * self.training_stage_cycles_per_batch()
    }

    /// Heterogeneous non-pipelined training micro-cycles: each input walks
    /// the whole training stage vector alone (`N · Σ sⱼ`) plus one update
    /// cycle per batch.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of the batch size.
    pub fn sequential_training_stage_cycles(&self, n: u64) -> u64 {
        assert!(
            n > 0 && n.is_multiple_of(self.batch as u64),
            "{n} inputs is not a positive multiple of batch {}",
            self.batch
        );
        let per_input: u64 = self.training_stage_vector().iter().sum();
        n * per_input + n / self.batch as u64
    }

    /// Training speedup of the pipeline over sequential execution.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of the batch size.
    pub fn training_speedup(&self, n: u64) -> f64 {
        self.sequential_training_cycles(n) as f64 / self.training_cycles(n) as f64
    }

    /// Cycle-stepped simulation of pipelined training of `n` inputs.
    ///
    /// Every input is a job walking `2L + 1` stages (forward `0..L`,
    /// backward `L..2L+1`), entering one cycle apart within its batch; the
    /// next batch enters only after the weight-update cycle. The simulator
    /// verifies the structural constraint that no stage serves two jobs in
    /// the same cycle and tallies occupancy and buffer traffic.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of the batch size, or —
    /// indicating a scheduler bug — on a structural hazard.
    pub fn simulate_training(&self, n: u64) -> PipelineTrace {
        assert!(
            n > 0 && n.is_multiple_of(self.batch as u64),
            "{n} inputs is not a positive multiple of batch {}",
            self.batch
        );
        let mut span = Span::enter("pipeline/train");
        let l = self.layers;
        let b = self.batch as u64;
        let stages = 2 * l + 1;
        let batches = n / b;

        let mut forward_busy = vec![0u64; l];
        let mut backward_busy = vec![0u64; l + 1];
        let mut weight_updates = 0u64;
        let mut buffer_writes = 0u64;
        let mut buffer_reads = 0u64;
        let mut max_in_flight = 0usize;
        let mut clock: u64 = 0;

        for _batch in 0..batches {
            let start = clock + 1; // first input enters this cycle
            let last_done = start + (b - 1) + stages as u64 - 1;
            for t in start..=last_done {
                let mut stage_taken = vec![false; stages];
                let mut in_flight = 0usize;
                for i in 0..b {
                    let entry = start + i;
                    if t < entry {
                        continue;
                    }
                    let stage = (t - entry) as usize;
                    if stage >= stages {
                        continue;
                    }
                    assert!(
                        !stage_taken[stage],
                        "structural hazard: two inputs in stage {stage} at cycle {t}"
                    );
                    stage_taken[stage] = true;
                    in_flight += 1;
                    if stage < l {
                        forward_busy[stage] += 1;
                    } else {
                        backward_busy[stage - l] += 1;
                    }
                    // Every stage hands its result to a memory subarray for
                    // the next stage (and forward results are also kept for
                    // the weight-gradient computation).
                    buffer_writes += 1;
                    // Every stage after the first reads its predecessor's
                    // buffered tensor ...
                    if stage > 0 {
                        buffer_reads += 1;
                    }
                    // ... and each per-layer backward stage re-reads the
                    // stored forward activation of its mirror layer.
                    if stage > l {
                        buffer_reads += 1;
                    }
                }
                max_in_flight = max_in_flight.max(in_flight);
            }
            // One cycle to apply all accumulated weight updates.
            weight_updates += 1;
            clock = last_done + 1;
        }

        let trace = PipelineTrace {
            total_cycles: clock,
            forward_busy,
            backward_busy,
            weight_updates,
            max_in_flight,
            buffer_writes,
            buffer_reads,
        };
        debug_assert_eq!(
            trace.total_cycles,
            self.training_cycles(n),
            "simulator disagrees with the closed form"
        );
        span.add_cycles(trace.total_cycles);
        telemetry::with_recorder(|t| {
            t.record(Event::BufferWrite, trace.buffer_writes);
            t.record(Event::BufferRead, trace.buffer_reads);
            t.record(Event::WeightUpdate, trace.weight_updates);
        });
        trace
    }

    /// Cycle-stepped simulation of pipelined inference of `n` inputs: one
    /// new input enters every cycle (no batch barrier — testing has no
    /// weight updates), each walking the `L` forward stages.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or — indicating a scheduler bug — on a structural
    /// hazard.
    pub fn simulate_inference(&self, n: u64) -> PipelineTrace {
        assert!(n > 0, "need at least one input");
        let mut span = Span::enter("pipeline/inference");
        let l = self.layers;
        let mut forward_busy = vec![0u64; l];
        let mut buffer_writes = 0u64;
        let mut buffer_reads = 0u64;
        let mut max_in_flight = 0usize;
        let last_done = n + l as u64 - 1;
        for t in 1..=last_done {
            let mut stage_taken = vec![false; l];
            let mut in_flight = 0usize;
            for i in 0..n {
                let entry = 1 + i;
                if t < entry {
                    continue;
                }
                let stage = (t - entry) as usize;
                if stage >= l {
                    continue;
                }
                assert!(
                    !stage_taken[stage],
                    "structural hazard: two inputs in stage {stage} at cycle {t}"
                );
                stage_taken[stage] = true;
                in_flight += 1;
                forward_busy[stage] += 1;
                buffer_writes += 1;
                if stage > 0 {
                    buffer_reads += 1;
                }
            }
            max_in_flight = max_in_flight.max(in_flight);
        }
        let trace = PipelineTrace {
            total_cycles: last_done,
            forward_busy,
            backward_busy: Vec::new(),
            weight_updates: 0,
            max_in_flight,
            buffer_writes,
            buffer_reads,
        };
        debug_assert_eq!(trace.total_cycles, self.inference_cycles(n));
        span.add_cycles(trace.total_cycles);
        telemetry::record(Event::BufferWrite, trace.buffer_writes);
        telemetry::record(Event::BufferRead, trace.buffer_reads);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_batch_formula() {
        // L = 3, B = 4: 2*3 + 4 + 1 = 11.
        assert_eq!(PipelineModel::new(3, 4).training_cycles_per_batch(), 11);
    }

    #[test]
    fn training_cycles_formula() {
        let p = PipelineModel::new(5, 8);
        assert_eq!(p.training_cycles(64), 8 * (10 + 8 + 1));
    }

    #[test]
    fn sequential_formula() {
        let p = PipelineModel::new(5, 8);
        assert_eq!(p.sequential_training_cycles(64), 11 * 64 + 8);
    }

    #[test]
    fn simulator_matches_closed_form_across_sweep() {
        for l in [1usize, 2, 3, 5, 8, 16] {
            for b in [1usize, 2, 4, 16, 64] {
                let p = PipelineModel::new(l, b);
                let n = (4 * b) as u64;
                let trace = p.simulate_training(n);
                assert_eq!(trace.total_cycles, p.training_cycles(n), "L={l} B={b}");
            }
        }
    }

    #[test]
    fn simulator_stage_busy_counts() {
        let p = PipelineModel::new(3, 4);
        let trace = p.simulate_training(8);
        // Every input visits every stage exactly once: 8 visits per stage.
        assert!(trace.forward_busy.iter().all(|&c| c == 8));
        assert!(trace.backward_busy.iter().all(|&c| c == 8));
        assert_eq!(trace.backward_busy.len(), 4); // L + 1 backward stages
        assert_eq!(trace.weight_updates, 2);
    }

    #[test]
    fn pipeline_overlaps_inputs() {
        let p = PipelineModel::new(4, 8);
        let trace = p.simulate_training(8);
        // With B = 8 > 1, multiple inputs are in flight simultaneously.
        assert!(trace.max_in_flight > 1);
        assert!(trace.max_in_flight <= 8);
    }

    #[test]
    fn batch_one_degenerates_to_sequential() {
        // With B = 1 the pipeline formula equals the sequential formula:
        // (N/1)(2L + 2) = (2L+1)N + N.
        let p = PipelineModel::new(6, 1);
        assert_eq!(p.training_cycles(16), p.sequential_training_cycles(16));
        assert!((p.training_speedup(16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_grows_with_batch() {
        let n = 1024;
        let mut prev = 0.0;
        for b in [1usize, 4, 16, 64, 256] {
            let s = PipelineModel::new(8, b).training_speedup(n as u64);
            assert!(s >= prev, "speedup must grow with B: {s} after {prev}");
            prev = s;
        }
        // Asymptote: B >> L gives speedup -> 2L + 1 + 1/B ~ 17.
        assert!(prev > 10.0);
    }

    #[test]
    fn inference_formulas() {
        let p = PipelineModel::new(5, 4);
        assert_eq!(p.inference_cycles(100), 104);
        assert_eq!(p.sequential_inference_cycles(100), 500);
    }

    #[test]
    fn inference_simulation_matches_formula() {
        for l in [1usize, 4, 11] {
            for n in [1u64, 10, 100] {
                let p = PipelineModel::new(l, 1);
                let trace = p.simulate_inference(n);
                assert_eq!(trace.total_cycles, p.inference_cycles(n), "L={l} N={n}");
                // Every input visits every stage once.
                assert!(trace.forward_busy.iter().all(|&c| c == n));
                assert!(trace.backward_busy.is_empty());
                assert_eq!(trace.weight_updates, 0);
            }
        }
    }

    #[test]
    fn inference_saturates_all_stages() {
        let p = PipelineModel::new(6, 1);
        let trace = p.simulate_inference(50);
        // With a long stream, at some cycle all L stages are busy at once.
        assert_eq!(trace.max_in_flight, 6);
    }

    #[test]
    fn buffer_traffic_counts_stage_transitions() {
        let p = PipelineModel::new(3, 2);
        let trace = p.simulate_training(4);
        // 4 inputs x (2L+1 = 7) stages = 28 tensor writes.
        assert_eq!(trace.buffer_writes, 28);
        // Per input: 2L predecessor reads (every stage but the first) plus
        // L forward-activation re-reads in backward = 3L = 9; 4 inputs = 36.
        assert_eq!(trace.buffer_reads, 36);
    }

    #[test]
    fn inference_buffer_reads_skip_first_stage() {
        let p = PipelineModel::new(5, 1);
        let trace = p.simulate_inference(10);
        // Each input reads L - 1 buffered predecessors.
        assert_eq!(trace.buffer_reads, 10 * 4);
        assert_eq!(trace.buffer_writes, 10 * 5);
    }

    #[test]
    #[should_panic(expected = "not a positive multiple")]
    fn rejects_partial_batches() {
        let _ = PipelineModel::new(3, 4).training_cycles(6);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_zero_layers() {
        let _ = PipelineModel::new(0, 4);
    }

    #[test]
    fn uniform_stage_cycles_anchor_macro_forms() {
        // All-unit stage costs must reproduce the paper's macro-cycle
        // inference forms exactly.
        for l in [1usize, 3, 5, 11] {
            let p = PipelineModel::new(l, 4);
            assert_eq!(p.stage_cycles(), vec![1u64; l].as_slice());
            for n in [1u64, 7, 100] {
                assert_eq!(p.inference_stage_cycles(n), p.inference_cycles(n));
                assert_eq!(
                    p.sequential_inference_stage_cycles(n),
                    p.sequential_inference_cycles(n)
                );
            }
        }
    }

    #[test]
    fn hetero_inference_is_fill_plus_initiation_intervals() {
        let p = PipelineModel::with_stage_cycles(vec![3, 1, 5, 2], 4);
        // Fill = 3+1+5+2 = 11; each additional input pays max = 5.
        assert_eq!(p.inference_stage_cycles(1), 11);
        assert_eq!(p.inference_stage_cycles(10), 11 + 9 * 5);
        // Sequential = every input walks the full sum.
        assert_eq!(p.sequential_inference_stage_cycles(10), 110);
    }

    #[test]
    fn hetero_training_stage_vector_shape() {
        let p = PipelineModel::with_stage_cycles(vec![3, 1, 5], 2);
        // Forward costs, one error stage, doubled backward costs reversed.
        assert_eq!(p.training_stage_vector(), vec![3, 1, 5, 1, 10, 2, 6]);
        // Per batch: sum 28 + (B-1)*max 10 + 1 update = 39.
        assert_eq!(p.training_stage_cycles_per_batch(), 39);
        assert_eq!(p.training_stage_cycles(4), 2 * 39);
        // Sequential: 4 * 28 + 4/2 updates = 114.
        assert_eq!(p.sequential_training_stage_cycles(4), 114);
    }

    #[test]
    fn hetero_pipeline_never_slower_than_sequential() {
        let p = PipelineModel::with_stage_cycles(vec![4, 2, 7, 1, 3], 8);
        for n in [8u64, 64, 512] {
            assert!(p.training_stage_cycles(n) <= p.sequential_training_stage_cycles(n));
            assert!(p.inference_stage_cycles(n) <= p.sequential_inference_stage_cycles(n));
        }
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn rejects_zero_stage_cost() {
        let _ = PipelineModel::with_stage_cycles(vec![2, 0, 3], 4);
    }

    #[test]
    fn paper_example_total() {
        // Section III-A.2: "The total number of cycles to process N inputs
        // with L layers is (N/B)(2L + B + 1)."
        let (l, b, n) = (4usize, 16usize, 256u64);
        let p = PipelineModel::new(l, b);
        assert_eq!(
            p.training_cycles(n),
            (n / b as u64) * (2 * l as u64 + b as u64 + 1)
        );
        let trace = p.simulate_training(n);
        assert_eq!(trace.total_cycles, p.training_cycles(n));
    }
}
