//! Assembly of structured run reports from accelerator analyses.
//!
//! Bridges the static analyses of this crate ([`crate::timing::NetworkTiming`], the layer
//! mappings of Fig. 4) and the dynamic counters of `reram-telemetry` into
//! one serializable [`RunReport`]: per-layer hardware cost from the closed
//! forms, per-stage timing and raw event totals from whatever recorder the
//! run installed. The closed forms here are the reference the telemetry
//! counters are validated against — an instrumented simulation of a layer
//! must observe exactly the conversion and write counts predicted below.

use crate::mapping::LayerMapping;
use crate::plan::{self, ExecutionPlan, LayerPlan};
use crate::AcceleratorConfig;
use reram_nn::NetworkSpec;
use reram_telemetry::{CounterRecorder, LayerReport, RunReport};

/// Closed-form I&F/ADC conversions of one forward input through a mapped
/// layer — delegates to [`plan::adc_conversions`], the lowering pass's
/// closed form.
pub fn layer_adc_conversions(mapping: &LayerMapping, config: &AcceleratorConfig) -> u64 {
    plan::adc_conversions(mapping, config)
}

/// Closed-form cell writes of programming a mapped layer's arrays once —
/// delegates to [`plan::cell_writes`], the lowering pass's closed form.
pub fn layer_cell_writes(mapping: &LayerMapping, config: &AcceleratorConfig) -> u64 {
    plan::cell_writes(mapping, config)
}

fn layer_report(l: &LayerPlan) -> LayerReport {
    LayerReport {
        name: l.name.clone(),
        arrays: l.mapping.arrays as u64,
        mvms_per_input: l.forward_mvms,
        cycles: l.stage_cycles,
        adc_conversions: l.adc_conversions,
        cell_writes: l.cell_writes,
        energy_pj: l.forward_energy_pj,
    }
}

/// Per-layer hardware cost breakdown of `net` under `config`, derived from
/// the network's [`ExecutionPlan`].
///
/// Layers are named by kind and 1-based position among the weighted layers
/// ("conv1", "fc4", ...), in network order.
///
/// # Panics
///
/// Panics if the network has no weighted layers or the configuration is
/// invalid.
pub fn layer_reports(net: &NetworkSpec, config: &AcceleratorConfig) -> Vec<LayerReport> {
    let plan = ExecutionPlan::lower(net, config)
        // lint:allow(panic) documented contract — unliftable networks abort reporting
        .unwrap_or_else(|e| panic!("cannot plan {}: {e}", net.name));
    plan.layers.iter().map(layer_report).collect()
}

/// Builds a [`RunReport`] for one artifact: the per-layer closed-form
/// breakdown for `net` plus everything `counters` observed (event totals,
/// stage spans, metric samples).
///
/// # Panics
///
/// Panics if the network has no weighted layers or the configuration is
/// invalid.
pub fn build_run_report(
    artifact: &str,
    net: &NetworkSpec,
    config: &AcceleratorConfig,
    counters: &CounterRecorder,
) -> RunReport {
    let mut report = RunReport::new(artifact, net.name.clone());
    report.layers = layer_reports(net, config);
    report.stages = counters.span_reports();
    report.totals = counters.snapshot();
    report.metrics = counters.metric_samples();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::NetworkTiming;
    use reram_nn::models;
    use reram_telemetry::Recorder;

    #[test]
    fn layer_reports_cover_weighted_layers() {
        let net = models::lenet_spec();
        let cfg = AcceleratorConfig::default();
        let layers = layer_reports(&net, &cfg);
        assert_eq!(layers.len(), net.weighted_layer_count());
        assert_eq!(layers[0].name, "conv1");
        assert_eq!(layers[4].name, "fc5");
        assert!(layers.iter().all(|l| l.arrays > 0 && l.cycles > 0));
    }

    #[test]
    fn cell_writes_match_update_energy_model() {
        // layer_cell_writes is the count behind update_energy_pj: cells x
        // per-cell write energy must reproduce the timing model's figure.
        let net = models::alexnet_spec();
        let cfg = AcceleratorConfig::default();
        let timing = NetworkTiming::analyze(&net, &cfg);
        let total_writes: u64 = layer_reports(&net, &cfg)
            .iter()
            .map(|l| l.cell_writes)
            .sum();
        let energy = total_writes as f64 * cfg.cost.cell_write_energy_pj;
        assert!(
            (energy - timing.update_energy_pj).abs() / timing.update_energy_pj < 1e-12,
            "{energy} vs {}",
            timing.update_energy_pj
        );
    }

    #[test]
    fn adc_conversions_match_inf_energy_model() {
        // Conversions x per-conversion I&F energy must reproduce the cost
        // model's inf component for one forward input.
        let net = models::lenet_spec();
        let cfg = AcceleratorConfig::default();
        let timing = NetworkTiming::analyze(&net, &cfg);
        for (layer, m) in layer_reports(&net, &cfg).iter().zip(&timing.mappings) {
            let grid =
                cfg.cost
                    .grid_mvm_cost(&cfg.crossbar, m.row_tiles, m.col_tiles, cfg.activity);
            let want = grid.energy.inf_pj * m.mvms_per_input as f64;
            let got = layer.adc_conversions as f64 * cfg.cost.inf_energy_pj;
            assert!(
                (got - want).abs() / want < 1e-12,
                "{}: {got} vs {want}",
                layer.name
            );
        }
    }

    #[test]
    fn run_report_assembles_and_round_trips() {
        let net = models::lenet_spec();
        let cfg = AcceleratorConfig::default();
        let counters = CounterRecorder::new();
        counters.record(reram_telemetry::Event::CrossbarMvm, 7);
        counters.span("forward", 1000, 64);
        counters.metric("train/loss", 1.5);
        let report = build_run_report("table1", &net, &cfg, &counters);
        assert_eq!(report.workload, "lenet-mnist");
        assert_eq!(report.totals.crossbar_mvms, 7);
        assert_eq!(report.stages.len(), 1);
        assert_eq!(report.metrics.len(), 1);
        let parsed = RunReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed, report);
    }
}
