//! Telemetry counters observed from an instrumented crossbar simulation must
//! match the closed-form predictions of the analytical timing and endurance
//! models — the contract that lets the cheap analytical path stand in for
//! the simulator in the evaluation artifacts.

use std::sync::Arc;

use reram_core::timing::NetworkTiming;
use reram_core::{
    layer_adc_conversions, layer_cell_writes, AcceleratorConfig, EnduranceReport, ReplicationPolicy,
};
use reram_crossbar::TiledMatrix;
use reram_nn::{LayerSpec, NetworkSpec};
use reram_telemetry::{scoped_recorder, CounterRecorder, Event};
use reram_tensor::{Matrix, Shape2, Shape4};

/// A single fully-connected layer: one crossbar grid, one MVM per input —
/// small enough to simulate, rich enough to exercise row/column tiling.
fn probe_net(in_features: usize, out_features: usize) -> NetworkSpec {
    NetworkSpec::new(
        "fc-probe",
        Shape4::new(1, in_features, 1, 1),
        vec![LayerSpec::Fc {
            in_features,
            out_features,
        }],
    )
}

#[test]
fn simulated_counts_match_timing_and_endurance_closed_forms() {
    // Replication off so the analytical mapping describes exactly the grid
    // the simulator programs; the default config is an ideal (noise-free)
    // device, so no spike pass is legally skipped for being all-zero.
    let config = AcceleratorConfig::default().with_replication(ReplicationPolicy::None);
    let (in_features, out_features) = (200, 40);
    let net = probe_net(in_features, out_features);
    let timing = NetworkTiming::analyze(&net, &config);
    let m = &timing.mappings[0];
    assert!(
        m.row_tiles > 1 && m.col_tiles > 1,
        "probe must tile both ways"
    );

    let counters = Arc::new(CounterRecorder::new());
    let _guard = scoped_recorder(counters.clone());

    let w = Matrix::from_fn(Shape2::new(out_features, in_features), |r, c| {
        ((r + 2 * c) % 7) as f32 - 3.0
    });
    let mut grid = TiledMatrix::program(&w, &config.crossbar);
    assert_eq!(grid.grid(), (m.row_tiles, m.col_tiles));
    assert_eq!(grid.array_count(), m.arrays);

    // A weight update reprograms every cell of every array exactly once —
    // the count behind NetworkTiming::update_energy_pj and the
    // one-write-per-cell-per-batch wear unit of EnduranceReport. (Initial
    // construction also forms cells, so measure the reprogram delta.)
    let writes_before = counters.count(Event::CellWrite);
    let w2 = Matrix::from_fn(Shape2::new(out_features, in_features), |r, c| {
        ((2 * r + c) % 5) as f32 - 2.0
    });
    grid.reprogram(&w2);
    assert_eq!(
        counters.count(Event::CellWrite) - writes_before,
        layer_cell_writes(m, &config),
        "one weight update must write each cell once"
    );
    assert_eq!(counters.count(Event::WeightUpdate), 1);
    let endurance = EnduranceReport::analyze(&net, &config, 32);
    assert_eq!(endurance.writes_per_batch, 1);

    // One forward MVM with strictly positive inputs (zero or negative
    // inputs legally skip spike passes, which the closed form, like the
    // cost model, does not discount).
    let before = counters.count(Event::AdcConversion);
    assert_eq!(before, 0, "programming must not convert anything");
    let x: Vec<f32> = (0..in_features).map(|i| 1.0 + (i % 3) as f32).collect();
    let _ = grid.matvec(&x);
    assert_eq!(
        counters.count(Event::AdcConversion),
        layer_adc_conversions(m, &config),
        "one forward pass must convert frames x bitlines on every array"
    );
    assert_eq!(counters.count(Event::CrossbarMvm), m.arrays as u64);
    assert_eq!(
        counters.count(Event::SpikeFrame),
        m.arrays as u64 * u64::from(config.crossbar.input_bits)
    );
    // Every engaged array's spike driver converts one code per wordline.
    assert_eq!(
        counters.count(Event::DacConversion),
        m.arrays as u64 * config.crossbar.rows as u64
    );
}
