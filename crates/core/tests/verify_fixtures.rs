//! Corrupted-plan fixtures for the static plan verifier.
//!
//! [`reram_core::verify`] promises that every class of lowering bug it
//! models maps to a distinct [`Violation`] variant. Each test here takes a
//! *clean* lowered plan, injects exactly one class of corruption by editing
//! the public IR fields, and pins the variant the verifier reports — so a
//! future refactor that silently stops detecting a class fails loudly. A
//! closing proptest sweeps the whole model zoo across the config matrix
//! (plus random policies) and asserts the verifier stays quiet on honest
//! lowerings.

use proptest::prelude::*;
use reram_core::verify::{
    check_replication_monotone, config_matrix, model_zoo, verify_lowering, verify_serve,
    ServeShape, Violation,
};
use reram_core::{AcceleratorConfig, ExecutionPlan, PlanError, ReplicationPolicy};
use reram_nn::models;

fn clean_plan() -> (ExecutionPlan, AcceleratorConfig) {
    let config = AcceleratorConfig::default();
    let plan = ExecutionPlan::lower(&models::alexnet_spec(), &config).expect("lowerable");
    assert_eq!(plan.verify(&config), Vec::new(), "fixture must start clean");
    (plan, config)
}

/// Asserts at least one violation matching `pred` and returns the list.
#[track_caller]
fn expect_violation(
    plan: &ExecutionPlan,
    config: &AcceleratorConfig,
    pred: impl Fn(&Violation) -> bool,
) -> Vec<Violation> {
    let violations = plan.verify(config);
    assert!(
        violations.iter().any(&pred),
        "expected variant missing from: {violations:?}"
    );
    violations
}

#[test]
fn corrupt_forward_cycle_is_flagged() {
    let (mut plan, config) = clean_plan();
    plan.forward_cycle_ns *= 2.0;
    expect_violation(
        &plan,
        &config,
        |v| matches!(v, Violation::ForwardCycleMismatch { plan_ns, .. } if *plan_ns == plan.forward_cycle_ns),
    );
}

#[test]
fn corrupt_training_cycle_is_flagged() {
    let (mut plan, config) = clean_plan();
    plan.training_cycle_ns += 1.0;
    let violations = expect_violation(&plan, &config, |v| {
        matches!(v, Violation::TrainingCycleMismatch { .. })
    });
    // The corruption is surgical: only the training-cycle law breaks.
    assert_eq!(violations.len(), 1, "{violations:?}");
}

#[test]
fn corrupt_array_total_is_flagged() {
    let (mut plan, config) = clean_plan();
    plan.total_arrays += 1;
    expect_violation(&plan, &config, |v| {
        matches!(v, Violation::ArrayTotalMismatch { plan_arrays, layer_arrays }
                 if *plan_arrays == *layer_arrays + 1)
    });
}

#[test]
fn corrupt_buffer_energy_is_flagged() {
    let (mut plan, config) = clean_plan();
    plan.buffer_energy_pj *= 3.0;
    let violations = expect_violation(&plan, &config, |v| {
        matches!(v, Violation::BufferEnergyMismatch { .. })
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
}

#[test]
fn corrupt_update_cycle_is_flagged_as_plan_wide_form() {
    let (mut plan, config) = clean_plan();
    plan.update_cycle_ns *= 5.0;
    expect_violation(&plan, &config, |v| {
        matches!(v, Violation::LayerFormMismatch { layer, quantity, .. }
                 if layer == "<plan>" && quantity == "update_cycle_ns")
    });
}

#[test]
fn corrupt_layer_energy_is_flagged_as_layer_form() {
    let (mut plan, config) = clean_plan();
    plan.layers[0].update_energy_pj *= 1.01;
    let name = plan.layers[0].name.clone();
    expect_violation(&plan, &config, |v| {
        matches!(v, Violation::LayerFormMismatch { layer, quantity, .. }
                 if *layer == name && quantity == "update_energy_pj")
    });
}

#[test]
fn corrupt_mvm_count_breaks_mac_conservation() {
    let (mut plan, config) = clean_plan();
    plan.layers[0].forward_mvms += 1;
    expect_violation(&plan, &config, |v| {
        matches!(v, Violation::MacCountMismatch { .. })
    });
}

#[test]
fn skewed_training_passes_are_flagged() {
    let (mut plan, config) = clean_plan();
    plan.layers[0].error_mvms += 1;
    let violations = expect_violation(&plan, &config, |v| {
        matches!(v, Violation::TrainingPassSkew { forward_mvms, error_mvms, .. }
                 if *error_mvms == *forward_mvms + 1)
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
}

#[test]
fn corrupt_adc_count_is_flagged() {
    let (mut plan, config) = clean_plan();
    plan.layers[0].adc_conversions += 1;
    let violations = expect_violation(&plan, &config, |v| {
        matches!(v, Violation::AdcCountMismatch { plan, derived, .. }
                 if *plan == *derived + 1)
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
}

#[test]
fn corrupt_cell_writes_are_flagged() {
    let (mut plan, config) = clean_plan();
    plan.layers[0].cell_writes /= 2;
    let violations = expect_violation(&plan, &config, |v| {
        matches!(v, Violation::CellWriteMismatch { .. })
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
}

#[test]
fn asymmetric_buffer_traffic_is_flagged() {
    let (mut plan, config) = clean_plan();
    // Break the read = 2 x write symmetry (a dropped backward re-read).
    plan.layers[0].buffer_read_bytes = plan.layers[0].buffer_write_bytes;
    let violations = expect_violation(&plan, &config, |v| {
        matches!(v, Violation::BufferAsymmetry { write_bytes, read_bytes, .. }
                 if read_bytes == write_bytes)
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
}

#[test]
fn broken_replication_bookkeeping_is_flagged() {
    let (mut plan, config) = clean_plan();
    plan.layers[0].mapping.steps_per_input += 1;
    expect_violation(&plan, &config, |v| {
        matches!(v, Violation::ReplicationInconsistent { .. })
    });
}

#[test]
fn budget_overrun_is_flagged() {
    let (plan, config) = clean_plan();
    // Re-judge the same (replicated) plan against a budget one array below
    // its spend: the unreplicated floor still fits, so the overrun is a
    // genuine policy violation, not the sanctioned starved-budget fallback.
    let tight = config
        .clone()
        .with_replication(ReplicationPolicy::ArrayBudget(plan.total_arrays - 1));
    expect_violation(&plan, &tight, |v| {
        matches!(v, Violation::BudgetExceeded { budget, total_arrays }
                 if *budget == plan.total_arrays - 1 && *total_arrays == plan.total_arrays)
    });
}

#[test]
fn zero_cycle_stage_is_flagged() {
    let (mut plan, config) = clean_plan();
    plan.layers[0].stage_cycles = 0;
    expect_violation(&plan, &config, |v| {
        matches!(v, Violation::NonPositiveStage { .. })
    });
}

#[test]
fn negative_stage_latency_is_flagged() {
    let (mut plan, config) = clean_plan();
    for l in &mut plan.layers {
        l.forward_latency_ns = -1.0;
    }
    let violations = expect_violation(
        &plan,
        &config,
        |v| matches!(v, Violation::NonPositiveStage { latency_ns, .. } if *latency_ns == -1.0),
    );
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::ForwardCycleMismatch { .. })),
        "{violations:?}"
    );
    // The batch metamorphic stays quiet even here: the initiation interval
    // folds from 0.0, so corrupt negative stages cannot make longer batches
    // cheaper. That check guards future edits to the latency *formula*, so
    // the variant is pinned by direct construction below instead.
    assert!(
        violations
            .iter()
            .all(|v| !matches!(v, Violation::BatchLatencyShrank { .. })),
        "{violations:?}"
    );
}

#[test]
fn batch_shrink_variant_renders_and_round_trips() {
    let v = Violation::BatchLatencyShrank {
        batch: 4,
        latency_ns: 100.0,
        doubled_ns: 90.0,
    };
    assert!(v.to_string().contains("batch 4 -> 8"), "{v}");
    let json = serde::json::to_string(&v);
    let back: Violation = serde::json::from_str(&json).expect("parse");
    assert_eq!(back, v);
}

#[test]
fn replication_regression_is_flagged() {
    let config = AcceleratorConfig::default();
    let net = models::alexnet_spec();
    let at = |x: usize| {
        ExecutionPlan::lower(
            &net,
            &config.clone().with_replication(ReplicationPolicy::Fixed(x)),
        )
        .expect("lowerable")
    };
    let (slow, fast) = (at(1), at(4));
    // Honest direction: more copies, same-or-fewer cycles.
    assert_eq!(check_replication_monotone(&slow, &fast, 1), None);
    // Swapped plans model a lowering whose "doubled" mapping got slower.
    let v = check_replication_monotone(&fast, &slow, 4).expect("regression");
    assert!(
        matches!(v, Violation::ReplicationRegressed { replication: 4, slowest_cycles, doubled_cycles }
                 if doubled_cycles > slowest_cycles),
        "{v:?}"
    );
}

#[test]
fn unbindable_linger_is_flagged() {
    let (plan, _config) = clean_plan();
    let shape = ServeShape {
        chips: 4,
        max_batch: 16,
        max_linger_ns: u64::MAX / 2,
        mean_arrival_rps: 1.0,
        mix: vec![1.0],
    };
    let violations = verify_serve(&[plan], &shape);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::LingerExcessive { .. })),
        "{violations:?}"
    );
}

#[test]
fn overload_is_flagged_with_utilization() {
    let (plan, _config) = clean_plan();
    let shape = ServeShape {
        chips: 1,
        max_batch: 16,
        max_linger_ns: 20_000,
        mean_arrival_rps: 1e12,
        mix: vec![1.0],
    };
    let violations = verify_serve(&[plan], &shape);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Overload { rho, arrival_rps, service_rps }
                if *rho >= 1.0 && *arrival_rps == 1e12 && *service_rps > 0.0
        )),
        "{violations:?}"
    );
}

#[test]
fn failed_lowering_propagates_instead_of_verifying() {
    let config = AcceleratorConfig::default().with_replication(ReplicationPolicy::Fixed(0));
    let err = verify_lowering(&models::lenet_spec(), &config).expect_err("degenerate policy");
    assert!(matches!(err, PlanError::Mapping(_)), "{err:?}");
}

#[test]
fn zoo_times_matrix_is_clean() {
    for (config_name, config) in config_matrix() {
        for net in model_zoo() {
            let violations = verify_lowering(&net, &config).expect("zoo networks lower");
            assert_eq!(violations, Vec::new(), "{}/{config_name}", net.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Honest lowerings verify clean under *random* replication policies,
    /// not just the curated matrix — the verifier models the lowering's
    /// laws, not one configuration's constants.
    #[test]
    fn random_policies_verify_clean(
        net_idx in 0usize..7,
        kind in 0usize..4,
        x in 1usize..=16,
        steps in 1usize..=256,
        budget in 1_024usize..=262_144,
    ) {
        let policy = match kind {
            0 => ReplicationPolicy::None,
            1 => ReplicationPolicy::Fixed(x),
            2 => ReplicationPolicy::MaxStepsPerLayer(steps),
            _ => ReplicationPolicy::ArrayBudget(budget),
        };
        let net = &model_zoo()[net_idx];
        let config = AcceleratorConfig::default().with_replication(policy);
        let violations = verify_lowering(net, &config).expect("zoo networks lower");
        prop_assert_eq!(violations, Vec::new());
    }
}
