use crate::{Matrix, Shape2, Shape4};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Dense 4-D tensor in NCHW layout backed by a `Vec<f32>`.
///
/// All layer activations, kernels and gradients in the workspace are carried
/// as `Tensor`s. Kernels use the layout `(C_out, C_in, K_h, K_w)`, matching
/// the paper's four-dimensional kernel `K[k_x, k_y, c_l, c_{l+1}]` (Eq. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(shape: Shape4) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a one-filled tensor of the given shape.
    pub fn ones(shape: Shape4) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: Shape4, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Creates a tensor from raw data in NCHW row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape4, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// Creates a tensor by evaluating `f(n, c, h, w)` at every coordinate.
    pub fn from_fn(shape: Shape4, mut f: impl FnMut(usize, usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data in NCHW row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Sets the element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.shape.index(n, c, h, w);
        self.data[i] = v;
    }

    /// Adds `v` to the element at `(n, c, h, w)`.
    #[inline]
    pub fn add_at(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.shape.index(n, c, h, w);
        self.data[i] += v;
    }

    /// Returns a new tensor with `f` applied elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip_map requires equal shapes ({} vs {})",
            self.shape, other.shape
        );
        Self {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other`, the Saxpy update used by weight updates.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(
            self.shape, other.shape,
            "axpy requires equal shapes ({} vs {})",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute element value (0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Reinterprets the tensor as a matrix of shape `(n, c*h*w)`.
    ///
    /// This is the flattening performed when a CONV/POOL layer feeds an inner
    /// product layer (paper §II-A.1): each batch entry's data cube becomes a
    /// row vector.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            Shape2::new(self.shape.n, self.shape.batch_stride()),
            self.data.clone(),
        )
    }

    /// Reinterprets the data with a new shape of identical element count.
    ///
    /// # Panics
    ///
    /// Panics if `new_shape.len() != self.len()`.
    pub fn reshape(&self, new_shape: Shape4) -> Self {
        assert_eq!(
            new_shape.len(),
            self.len(),
            "reshape {} -> {new_shape} changes element count",
            self.shape
        );
        Self {
            shape: new_shape,
            data: self.data.clone(),
        }
    }

    /// Extracts batch entry `n` as a tensor of batch size 1.
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.shape().n`.
    pub fn batch_entry(&self, n: usize) -> Self {
        assert!(
            n < self.shape.n,
            "batch entry {n} out of range {}",
            self.shape
        );
        let stride = self.shape.batch_stride();
        Self {
            shape: self.shape.with_batch(1),
            data: self.data[n * stride..(n + 1) * stride].to_vec(),
        }
    }

    /// Concatenates tensors along the batch dimension.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the per-entry shapes differ.
    pub fn stack_batches(parts: &[Tensor]) -> Self {
        assert!(!parts.is_empty(), "stack_batches of zero tensors");
        let per = parts[0].shape;
        let mut data = Vec::new();
        let mut n = 0;
        for p in parts {
            assert_eq!(
                p.shape.with_batch(1),
                per.with_batch(1),
                "stack_batches requires equal entry shapes"
            );
            n += p.shape.n;
            data.extend_from_slice(&p.data);
        }
        Self {
            shape: per.with_batch(n),
            data,
        }
    }

    /// Squared L2 distance to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn squared_distance(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "squared_distance shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} mean={:.4}", self.shape, self.mean())
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: Shape4) -> Tensor {
        let len = shape.len();
        Tensor::from_vec(shape, (0..len).map(|i| i as f32).collect())
    }

    #[test]
    fn zeros_ones_filled() {
        let s = Shape4::new(1, 2, 2, 2);
        assert!(Tensor::zeros(s).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(s).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::filled(s, 3.5).data().iter().all(|&x| x == 3.5));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_wrong_len() {
        let _ = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0]);
    }

    #[test]
    fn from_fn_visits_row_major() {
        let t = Tensor::from_fn(Shape4::new(1, 1, 2, 3), |_, _, h, w| (h * 3 + w) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn at_and_set() {
        let mut t = Tensor::zeros(Shape4::new(2, 2, 2, 2));
        t.set(1, 1, 1, 1, 9.0);
        assert_eq!(t.at(1, 1, 1, 1), 9.0);
        t.add_at(1, 1, 1, 1, 1.0);
        assert_eq!(t.at(1, 1, 1, 1), 10.0);
    }

    #[test]
    fn map_and_zip_map() {
        let t = seq(Shape4::new(1, 1, 1, 4));
        let doubled = t.map(|x| 2.0 * x);
        assert_eq!(doubled.data(), &[0.0, 2.0, 4.0, 6.0]);
        let summed = t.zip_map(&doubled, |a, b| a + b);
        assert_eq!(summed.data(), &[0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(Shape4::new(1, 1, 1, 3));
        let b = seq(Shape4::new(1, 1, 1, 3));
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.0, 1.5, 2.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![-4.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.abs_max(), 4.0);
    }

    #[test]
    fn to_matrix_flattens_per_batch() {
        let t = seq(Shape4::new(2, 1, 1, 3));
        let m = t.to_matrix();
        assert_eq!(m.shape(), Shape2::new(2, 3));
        assert_eq!(m.data(), t.data());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = seq(Shape4::new(1, 2, 2, 2));
        let r = t.reshape(Shape4::new(1, 8, 1, 1));
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        let _ = seq(Shape4::new(1, 1, 2, 2)).reshape(Shape4::new(1, 1, 1, 3));
    }

    #[test]
    fn batch_entry_and_stack_round_trip() {
        let t = seq(Shape4::new(3, 1, 2, 2));
        let parts: Vec<_> = (0..3).map(|i| t.batch_entry(i)).collect();
        let rebuilt = Tensor::stack_batches(&parts);
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn operators() {
        let a = Tensor::ones(Shape4::new(1, 1, 1, 2));
        let b = Tensor::filled(Shape4::new(1, 1, 1, 2), 3.0);
        assert_eq!((&a + &b).data(), &[4.0, 4.0]);
        assert_eq!((&b - &a).data(), &[2.0, 2.0]);
        assert_eq!((&b * 2.0).data(), &[6.0, 6.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.data(), &[4.0, 4.0]);
    }

    #[test]
    fn squared_distance_is_zero_on_self() {
        let t = seq(Shape4::new(1, 2, 2, 2));
        assert_eq!(t.squared_distance(&t), 0.0);
    }
}
