//! Minimal 4-D tensor library used by the ReRAM accelerator reproduction.
//!
//! The crate provides exactly the numerical substrate the paper's workloads
//! need: an NCHW [`Tensor`], a 2-D [`Matrix`], parameter initializers, and
//! forward **and** backward kernels for the layer types in the paper's §II-A
//! (convolution, pooling, inner product) plus the fractional-strided
//! convolution used by GAN generators (§II-A.3, Fig. 7).
//!
//! # Example
//!
//! ```
//! use reram_tensor::{Shape4, Tensor, ops};
//!
//! let input = Tensor::ones(Shape4::new(1, 1, 4, 4));
//! let weight = Tensor::ones(Shape4::new(1, 1, 3, 3));
//! let out = ops::conv2d(&input, &weight, None, 1, 0);
//! assert_eq!(out.shape(), Shape4::new(1, 1, 2, 2));
//! assert_eq!(out.data()[0], 9.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Dense matrix/tensor kernels index multiple arrays by the same
// coordinate; explicit index loops read closer to the paper's
// equations than iterator chains would.
#![allow(clippy::needless_range_loop)]

mod error;
mod matrix;
mod shape;
mod tensor;

pub mod init;
pub mod ops;

pub use error::ShapeError;
pub use matrix::Matrix;
pub use shape::{Shape2, Shape4};
pub use tensor::Tensor;
