use crate::Shape2;
use std::fmt;

/// Dense row-major 2-D matrix of `f32`.
///
/// Used for inner-product (fully connected) weights `W` of Eq. 2 and for the
/// matrices mapped onto ReRAM crossbars (paper Fig. 3): rows correspond to
/// wordlines (inputs) and columns to bitlines (outputs) after the transpose
/// performed by the mapping layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    shape: Shape2,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(shape: Shape2) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape2, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn(shape: Shape2, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for r in 0..shape.rows {
            for c in 0..shape.cols {
                data.push(f(r, c));
            }
        }
        Self { shape, data }
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(Shape2::new(n, n), |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// The matrix shape.
    pub fn shape(&self) -> Shape2 {
        self.shape
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.shape.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.shape.cols
    }

    /// Row-major backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[self.shape.index(r, c)]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let i = self.shape.index(r, c);
        self.data[i] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.shape.rows, "row {r} out of range {}", self.shape);
        &self.data[r * self.shape.cols..(r + 1) * self.shape.cols]
    }

    /// Matrix-vector product `self * x`.
    ///
    /// This is the operation a ReRAM crossbar computes in one analog step
    /// (paper §II-B): `x` drives the wordlines, the result is read on the
    /// bitlines.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.shape.cols,
            "matvec: vector length {} vs {} columns",
            x.len(),
            self.shape.cols
        );
        (0..self.shape.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(&w, &v)| w * v).sum::<f32>())
            .collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape.cols, rhs.shape.rows,
            "matmul: {} x {}",
            self.shape, rhs.shape
        );
        let out_shape = Shape2::new(self.shape.rows, rhs.shape.cols);
        let mut out = Matrix::zeros(out_shape);
        for r in 0..self.shape.rows {
            for k in 0..self.shape.cols {
                let a = self.at(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.shape.cols {
                    out.data[out_shape.index(r, c)] += a * rhs.at(k, c);
                }
            }
        }
        out
    }

    /// The transposed matrix.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.shape.transposed(), |r, c| self.at(c, r))
    }

    /// A sub-block `[row0, row0+rows) × [col0, col0+cols)`, zero-padded where
    /// the requested block extends past the matrix edge.
    ///
    /// This is the partitioning of a large matrix into fixed-size crossbar
    /// arrays shown in the paper's Fig. 3(c).
    pub fn block_padded(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(Shape2::new(rows, cols), |r, c| {
            let (rr, cc) = (row0 + r, col0 + c);
            if rr < self.shape.rows && cc < self.shape.cols {
                self.at(rr, cc)
            } else {
                0.0
            }
        })
    }

    /// Largest absolute element value (0 for an empty matrix).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix{}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(Shape2::new(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.at(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "matvec")]
    fn matvec_rejects_bad_len() {
        let _ = sample().matvec(&[1.0, 2.0]);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let i = Matrix::identity(3);
        assert_eq!(m.matmul(&i), m);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(Shape2::new(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(Shape2::new(2, 2), vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn transpose_matvec_consistency() {
        // (A^T x)_j = sum_i A_ij x_i
        let m = sample();
        let y = m.transposed().matvec(&[1.0, 1.0]);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn block_padded_interior_and_edge() {
        let m = sample();
        let b = m.block_padded(0, 1, 2, 2);
        assert_eq!(b.data(), &[2.0, 3.0, 5.0, 6.0]);
        let edge = m.block_padded(1, 2, 2, 2);
        assert_eq!(edge.data(), &[6.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let x = vec![3.0, -1.0, 2.0];
        assert_eq!(Matrix::identity(3).matvec(&x), x);
    }

    #[test]
    fn abs_max_sees_negatives() {
        let m = Matrix::from_vec(Shape2::new(1, 3), vec![1.0, -7.0, 2.0]);
        assert_eq!(m.abs_max(), 7.0);
    }
}
