//! Parameter initializers.
//!
//! Weight initialization determines whether the training runs the paper's
//! accelerators execute actually converge; we provide the standard schemes
//! used by the paper's workloads (uniform Xavier/Glorot for CONV/FC, small
//! normal for GAN layers following the DCGAN recipe).

use crate::{Shape2, Shape4, Tensor};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for reproducible experiments.
///
/// All randomness in the workspace flows from explicitly seeded generators so
/// every experiment in `EXPERIMENTS.md` is exactly re-runnable.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Xavier/Glorot uniform initialization for a 4-D kernel tensor.
///
/// `fan_in = c * h * w`, `fan_out = n * h * w` for a kernel laid out
/// `(C_out, C_in, K_h, K_w)`; limit is `sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(shape: Shape4, rng: &mut impl Rng) -> Tensor {
    let fan_in = (shape.c * shape.h * shape.w).max(1);
    let fan_out = (shape.n * shape.h * shape.w).max(1);
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let dist = Uniform::new_inclusive(-limit, limit);
    Tensor::from_fn(shape, |_, _, _, _| dist.sample(rng))
}

/// Xavier/Glorot uniform initialization for a weight matrix
/// (`rows = outputs`, `cols = inputs`).
pub fn xavier_uniform_matrix(shape: Shape2, rng: &mut impl Rng) -> crate::Matrix {
    let limit = (6.0 / (shape.rows + shape.cols) as f32).sqrt();
    let dist = Uniform::new_inclusive(-limit, limit);
    crate::Matrix::from_fn(shape, |_, _| dist.sample(rng))
}

/// Zero-mean normal initialization with standard deviation `std`.
///
/// DCGAN initializes all weights from N(0, 0.02); the Box–Muller transform
/// keeps us off any external distribution crates.
pub fn normal(shape: Shape4, std: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_, _, _, _| std * standard_normal(rng))
}

/// One sample from the standard normal distribution via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    // Guard the logarithm against u1 == 0.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Uniform initialization in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(shape: Shape4, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
    let dist = Uniform::new(lo, hi);
    Tensor::from_fn(shape, |_, _, _, _| dist.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = xavier_uniform(Shape4::new(2, 3, 3, 3), &mut seeded_rng(7));
        let b = xavier_uniform(Shape4::new(2, 3, 3, 3), &mut seeded_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_respects_limit() {
        let shape = Shape4::new(4, 8, 3, 3);
        let fan_in = 8 * 9;
        let fan_out = 4 * 9;
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let t = xavier_uniform(shape, &mut seeded_rng(1));
        assert!(t.abs_max() <= limit);
        // Not degenerate: some spread exists.
        assert!(t.abs_max() > limit / 100.0);
    }

    #[test]
    fn xavier_matrix_respects_limit() {
        let m = xavier_uniform_matrix(Shape2::new(10, 20), &mut seeded_rng(2));
        let limit = (6.0 / 30.0f32).sqrt();
        assert!(m.abs_max() <= limit);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let t = normal(Shape4::new(1, 1, 100, 100), 0.02, &mut seeded_rng(3));
        assert!(t.mean().abs() < 0.005, "mean {}", t.mean());
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!((var.sqrt() - 0.02).abs() < 0.005, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_stays_in_range() {
        let t = uniform(Shape4::new(1, 1, 10, 10), -1.0, 1.0, &mut seeded_rng(4));
        assert!(t.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_rejects_inverted_range() {
        let _ = uniform(Shape4::new(1, 1, 1, 1), 1.0, 1.0, &mut seeded_rng(5));
    }
}
