//! Forward and backward kernels for the paper's layer types.
//!
//! Every operation here has an explicit backward companion because the
//! paper's central claim is acceleration of *training*, not just inference
//! (§II-A.2): the backward pass of a convolution is itself a convolution
//! (with transposed/rotated kernels), which is what lets the same ReRAM
//! crossbars serve both directions.

mod conv;
mod frac;
mod linear;
mod pad;
mod pool;

pub use conv::{
    conv2d, conv2d_backward_bias, conv2d_backward_input, conv2d_backward_weight, conv_output_hw,
    im2col,
};
pub use frac::{
    conv_transpose2d, conv_transpose2d_backward_input, conv_transpose2d_backward_weight,
    conv_transpose_output_hw,
};
pub use linear::{linear, linear_backward_bias, linear_backward_input, linear_backward_weight};
pub use pad::{crop, dilate, rotate180, zero_pad};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, pool_output_hw,
    MaxPoolIndices,
};
