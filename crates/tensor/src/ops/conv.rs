//! Convolution forward and backward kernels (paper Eq. 1).
//!
//! Weight layout is `(C_out, C_in, K_h, K_w)`. The forward direct loop mirrors
//! Eq. 1 of the paper; `im2col` produces exactly the unrolled input vectors
//! that PipeLayer feeds to the crossbar wordlines (the `1152 × 1` yellow bar
//! of Fig. 4: one column per output position, `C_in * K_h * K_w` rows).

use crate::{Matrix, Shape2, Shape4, Tensor};

/// Output spatial size of a convolution.
///
/// # Panics
///
/// Panics if `stride == 0` or the kernel does not fit in the padded input.
pub fn conv_output_hw(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    assert!(stride > 0, "conv stride must be positive");
    assert!(
        h + 2 * pad >= kh && w + 2 * pad >= kw,
        "kernel {kh}x{kw} larger than padded input {}x{}",
        h + 2 * pad,
        w + 2 * pad
    );
    (
        (h + 2 * pad - kh) / stride + 1,
        (w + 2 * pad - kw) / stride + 1,
    )
}

/// 2-D convolution forward pass.
///
/// `input` is `(N, C_in, H, W)`, `weight` is `(C_out, C_in, K_h, K_w)`,
/// `bias` (if any) has `C_out` entries. Returns `(N, C_out, H', W')`.
///
/// # Panics
///
/// Panics if the channel counts disagree, the bias length is not `C_out`,
/// or the kernel does not fit.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
) -> Tensor {
    let is = input.shape();
    let ws = weight.shape();
    assert_eq!(
        is.c, ws.c,
        "conv2d: input channels {} vs kernel channels {}",
        is.c, ws.c
    );
    if let Some(b) = bias {
        assert_eq!(
            b.len(),
            ws.n,
            "conv2d: bias length {} vs C_out {}",
            b.len(),
            ws.n
        );
    }
    let (oh, ow) = conv_output_hw(is.h, is.w, ws.h, ws.w, stride, pad);
    let mut out = Tensor::zeros(Shape4::new(is.n, ws.n, oh, ow));

    for n in 0..is.n {
        for co in 0..ws.n {
            let b = bias.map_or(0.0, |b| b[co]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ci in 0..is.c {
                        for ky in 0..ws.h {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= is.h as isize {
                                continue;
                            }
                            for kx in 0..ws.w {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= is.w as isize {
                                    continue;
                                }
                                acc += weight.at(co, ci, ky, kx)
                                    * input.at(n, ci, iy as usize, ix as usize);
                            }
                        }
                    }
                    out.set(n, co, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// Gradient of the convolution with respect to its input.
///
/// This is itself a convolution: the upstream gradient, dilated by the
/// forward stride, convolved with the 180°-rotated kernel — exactly the
/// property that lets PipeLayer run back-propagation on the same crossbars
/// (§II-A.2). Implemented as a direct scatter for clarity and exactness.
pub fn conv2d_backward_input(
    grad_out: &Tensor,
    weight: &Tensor,
    stride: usize,
    pad: usize,
    input_shape: Shape4,
) -> Tensor {
    let gs = grad_out.shape();
    let ws = weight.shape();
    assert_eq!(
        gs.c, ws.n,
        "backward_input: grad channels {} vs C_out {}",
        gs.c, ws.n
    );
    assert_eq!(
        input_shape.c, ws.c,
        "backward_input: input channels {} vs kernel channels {}",
        input_shape.c, ws.c
    );
    let mut gin = Tensor::zeros(input_shape);
    for n in 0..gs.n {
        for co in 0..ws.n {
            for oy in 0..gs.h {
                for ox in 0..gs.w {
                    let g = grad_out.at(n, co, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..ws.c {
                        for ky in 0..ws.h {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= input_shape.h as isize {
                                continue;
                            }
                            for kx in 0..ws.w {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= input_shape.w as isize {
                                    continue;
                                }
                                gin.add_at(
                                    n,
                                    ci,
                                    iy as usize,
                                    ix as usize,
                                    g * weight.at(co, ci, ky, kx),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    gin
}

/// Gradient of the convolution with respect to its weights.
///
/// The paper notes (§II-A.2) that "the weight updates depend on the previous
/// layer's errors and the input data of the earlier forward phase": this is
/// that cross-correlation between the stored forward activations and the
/// back-propagated error.
pub fn conv2d_backward_weight(
    grad_out: &Tensor,
    input: &Tensor,
    weight_shape: Shape4,
    stride: usize,
    pad: usize,
) -> Tensor {
    let gs = grad_out.shape();
    let is = input.shape();
    assert_eq!(gs.n, is.n, "backward_weight: batch {} vs {}", gs.n, is.n);
    assert_eq!(
        gs.c, weight_shape.n,
        "backward_weight: grad channels vs C_out"
    );
    assert_eq!(
        is.c, weight_shape.c,
        "backward_weight: input channels vs C_in"
    );
    let mut gw = Tensor::zeros(weight_shape);
    for n in 0..gs.n {
        for co in 0..weight_shape.n {
            for oy in 0..gs.h {
                for ox in 0..gs.w {
                    let g = grad_out.at(n, co, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..weight_shape.c {
                        for ky in 0..weight_shape.h {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= is.h as isize {
                                continue;
                            }
                            for kx in 0..weight_shape.w {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= is.w as isize {
                                    continue;
                                }
                                gw.add_at(
                                    co,
                                    ci,
                                    ky,
                                    kx,
                                    g * input.at(n, ci, iy as usize, ix as usize),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    gw
}

/// Gradient of the convolution with respect to its bias: per-output-channel
/// sum of the upstream gradient.
pub fn conv2d_backward_bias(grad_out: &Tensor) -> Vec<f32> {
    let gs = grad_out.shape();
    let mut gb = vec![0.0; gs.c];
    for n in 0..gs.n {
        for c in 0..gs.c {
            for h in 0..gs.h {
                for w in 0..gs.w {
                    gb[c] += grad_out.at(n, c, h, w);
                }
            }
        }
    }
    gb
}

/// Unrolls a single batch entry into the matrix of crossbar input vectors.
///
/// Row `i` of the result is the flattened receptive field of output position
/// `i` (`oy * W' + ox`), with `C_in * K_h * K_w` columns ordered
/// channel-major — the same ordering in which PipeLayer maps one kernel onto
/// one bitline (Fig. 4(a)). `conv2d` then factors as
/// `im2col(x) * kernel_matrix`, which is what the crossbar computes.
///
/// # Panics
///
/// Panics if `n` is out of range or the kernel does not fit.
pub fn im2col(input: &Tensor, n: usize, kh: usize, kw: usize, stride: usize, pad: usize) -> Matrix {
    let is = input.shape();
    assert!(n < is.n, "im2col: batch entry {n} out of range {is}");
    let (oh, ow) = conv_output_hw(is.h, is.w, kh, kw, stride, pad);
    let cols = is.c * kh * kw;
    let mut m = Matrix::zeros(Shape2::new(oh * ow, cols));
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            for ci in 0..is.c {
                for ky in 0..kh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for kx in 0..kw {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        let v = if iy >= 0 && iy < is.h as isize && ix >= 0 && ix < is.w as isize {
                            input.at(n, ci, iy as usize, ix as usize)
                        } else {
                            0.0
                        };
                        m.set(row, (ci * kh + ky) * kw + kx, v);
                    }
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: Shape4) -> Tensor {
        let len = shape.len();
        Tensor::from_vec(shape, (0..len).map(|i| i as f32 * 0.1).collect())
    }

    #[test]
    fn output_hw_formula() {
        assert_eq!(conv_output_hw(114, 114, 3, 3, 1, 0), (112, 112));
        assert_eq!(conv_output_hw(28, 28, 5, 5, 1, 2), (28, 28));
        assert_eq!(conv_output_hw(32, 32, 4, 4, 2, 1), (16, 16));
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn output_hw_rejects_oversized_kernel() {
        let _ = conv_output_hw(2, 2, 5, 5, 1, 0);
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel of value 1 reproduces the input.
        let x = seq(Shape4::new(1, 1, 3, 3));
        let k = Tensor::ones(Shape4::new(1, 1, 1, 1));
        assert_eq!(conv2d(&x, &k, None, 1, 0), x);
    }

    #[test]
    fn conv_sums_receptive_field() {
        let x = Tensor::ones(Shape4::new(1, 2, 4, 4));
        let k = Tensor::ones(Shape4::new(3, 2, 3, 3));
        let y = conv2d(&x, &k, None, 1, 0);
        assert_eq!(y.shape(), Shape4::new(1, 3, 2, 2));
        // 2 channels * 3*3 window of ones.
        assert!(y.data().iter().all(|&v| v == 18.0));
    }

    #[test]
    fn conv_bias_added_per_channel() {
        let x = Tensor::zeros(Shape4::new(1, 1, 3, 3));
        let k = Tensor::ones(Shape4::new(2, 1, 3, 3));
        let y = conv2d(&x, &k, Some(&[1.5, -2.0]), 1, 0);
        assert_eq!(y.at(0, 0, 0, 0), 1.5);
        assert_eq!(y.at(0, 1, 0, 0), -2.0);
    }

    #[test]
    fn conv_stride_and_pad() {
        let x = seq(Shape4::new(1, 1, 4, 4));
        let k = Tensor::ones(Shape4::new(1, 1, 3, 3));
        let y = conv2d(&x, &k, None, 2, 1);
        assert_eq!(y.shape(), Shape4::new(1, 1, 2, 2));
        // Top-left window covers rows/cols -1..=1 with zero padding:
        // elements (0,0),(0,1),(1,0),(1,1) = 0.0,0.1,0.4,0.5 -> 1.0
        assert!((y.at(0, 0, 0, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn im2col_factors_convolution() {
        let x = seq(Shape4::new(2, 3, 5, 5));
        let k = seq(Shape4::new(4, 3, 3, 3));
        let y = conv2d(&x, &k, None, 2, 1);
        let ks = k.shape();
        // kernel matrix: (C_in*Kh*Kw) x C_out, column co = flattened kernel co
        let kmat = Matrix::from_fn(Shape2::new(ks.c * ks.h * ks.w, ks.n), |r, co| {
            let ci = r / (ks.h * ks.w);
            let rem = r % (ks.h * ks.w);
            k.at(co, ci, rem / ks.w, rem % ks.w)
        });
        for n in 0..2 {
            let cols = im2col(&x, n, 3, 3, 2, 1);
            let prod = cols.matmul(&kmat); // (oh*ow) x C_out
            let ys = y.shape();
            for co in 0..ys.c {
                for oy in 0..ys.h {
                    for ox in 0..ys.w {
                        let want = y.at(n, co, oy, ox);
                        let got = prod.at(oy * ys.w + ox, co);
                        assert!((want - got).abs() < 1e-3, "mismatch {want} vs {got}");
                    }
                }
            }
        }
    }

    #[test]
    fn backward_input_matches_numeric_gradient() {
        let x = seq(Shape4::new(1, 2, 4, 4));
        let k = seq(Shape4::new(2, 2, 3, 3));
        let g = Tensor::ones(conv2d(&x, &k, None, 1, 1).shape());
        let gin = conv2d_backward_input(&g, &k, 1, 1, x.shape());
        // Numeric check at several positions: d(sum(y))/dx_i
        let eps = 1e-2;
        for &(c, h, w) in &[(0usize, 0usize, 0usize), (1, 2, 3), (0, 3, 1)] {
            let mut xp = x.clone();
            xp.add_at(0, c, h, w, eps);
            let mut xm = x.clone();
            xm.add_at(0, c, h, w, -eps);
            let num = (conv2d(&xp, &k, None, 1, 1).sum() - conv2d(&xm, &k, None, 1, 1).sum())
                / (2.0 * eps);
            let tol = 1e-2 * num.abs().max(1.0);
            assert!(
                (num - gin.at(0, c, h, w)).abs() < tol,
                "numeric {num} vs analytic {}",
                gin.at(0, c, h, w)
            );
        }
    }

    #[test]
    fn backward_weight_matches_numeric_gradient() {
        let x = seq(Shape4::new(2, 2, 4, 4));
        let k = seq(Shape4::new(2, 2, 3, 3));
        let g = Tensor::ones(conv2d(&x, &k, None, 2, 1).shape());
        let gw = conv2d_backward_weight(&g, &x, k.shape(), 2, 1);
        let eps = 1e-2;
        for &(co, ci, ky, kx) in &[(0usize, 0usize, 0usize, 0usize), (1, 1, 2, 2), (0, 1, 1, 0)] {
            let mut kp = k.clone();
            kp.add_at(co, ci, ky, kx, eps);
            let mut km = k.clone();
            km.add_at(co, ci, ky, kx, -eps);
            let num = (conv2d(&x, &kp, None, 2, 1).sum() - conv2d(&x, &km, None, 2, 1).sum())
                / (2.0 * eps);
            assert!(
                (num - gw.at(co, ci, ky, kx)).abs() < 1e-1,
                "numeric {num} vs analytic {}",
                gw.at(co, ci, ky, kx)
            );
        }
    }

    #[test]
    fn backward_bias_sums_gradient() {
        let g = Tensor::ones(Shape4::new(2, 3, 2, 2));
        assert_eq!(conv2d_backward_bias(&g), vec![8.0, 8.0, 8.0]);
    }

    #[test]
    fn paper_fig4_example_dimensions() {
        // Paper Fig. 4: layer l data 114x114x128, kernels 3x3x128x256,
        // layer l+1 data 112x112x256; unrolled input vector 1152x1;
        // 12544 = 112*112 output positions.
        let (oh, ow) = conv_output_hw(114, 114, 3, 3, 1, 0);
        assert_eq!((oh, ow), (112, 112));
        assert_eq!(oh * ow, 12544);
        assert_eq!(128 * 3 * 3, 1152);
    }
}
