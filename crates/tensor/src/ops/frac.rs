//! Fractional-strided ("transposed") convolution — paper §II-A.3 and Fig. 7.
//!
//! The GAN generator up-samples with fractional-strided convolution layers
//! (FCNN). The paper's key observation (Fig. 7) is that
//!
//! * the **forward** pass equals an ordinary convolution after inserting
//!   zeros between the input elements and zero-padding the result — so the
//!   same ReRAM crossbar datapath used for CONV serves FCNN unchanged, and
//! * the **error back-propagation** is a typical *strided* convolution.
//!
//! We implement the forward pass literally by that zero-insertion
//! construction (so the architectural cost model sees a plain convolution of
//! the dilated feature map) and the backward passes as the strided
//! convolutions the paper describes.

use super::{conv2d, conv2d_backward_weight, dilate, rotate180, zero_pad};
use crate::{Shape4, Tensor};

/// Output spatial size of a fractional-strided convolution.
///
/// `(H-1)*stride - 2*pad + K` — the inverse of the conv output formula.
///
/// # Panics
///
/// Panics if `stride == 0` or the padding exceeds the produced extent.
pub fn conv_transpose_output_hw(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    assert!(stride > 0, "conv_transpose stride must be positive");
    let oh = (h - 1) * stride + kh;
    let ow = (w - 1) * stride + kw;
    assert!(
        oh > 2 * pad && ow > 2 * pad,
        "padding {pad} exceeds transposed output {oh}x{ow}"
    );
    (oh - 2 * pad, ow - 2 * pad)
}

/// Fractional-strided convolution forward pass (Fig. 7(a)).
///
/// `input` is `(N, C_in, H, W)`; `weight` is `(C_in, C_out, K_h, K_w)`
/// (transposed-convolution layout); `bias` has `C_out` entries. Built as:
/// dilate the input by `stride`, pad by `K-1-pad`, then run a unit-stride
/// convolution with the 180°-rotated, channel-swapped kernel.
///
/// # Panics
///
/// Panics if channel counts disagree or `pad >= K` on either axis.
pub fn conv_transpose2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
) -> Tensor {
    let is = input.shape();
    let ws = weight.shape(); // (C_in, C_out, kh, kw)
    assert_eq!(
        is.c, ws.n,
        "conv_transpose2d: input channels {} vs kernel C_in {}",
        is.c, ws.n
    );
    assert!(
        pad < ws.h && pad < ws.w,
        "conv_transpose2d: pad {pad} must be < kernel {}x{}",
        ws.h,
        ws.w
    );
    // Swap channel roles and rotate spatially: conv kernel (C_out, C_in, kh, kw).
    let conv_kernel = rotate180(&swap_channel_axes(weight));
    let dilated = dilate(input, stride);
    let padded = zero_pad(&dilated, ws.h - 1 - pad);
    let out = conv2d(&padded, &conv_kernel, bias, 1, 0);
    debug_assert_eq!(
        (out.shape().h, out.shape().w),
        conv_transpose_output_hw(is.h, is.w, ws.h, ws.w, stride, pad)
    );
    out
}

/// Gradient of the fractional-strided convolution w.r.t. its input.
///
/// This is the "typical convolution with strides" of Fig. 7(b): the upstream
/// gradient convolved with the original kernel at the forward stride.
pub fn conv_transpose2d_backward_input(
    grad_out: &Tensor,
    weight: &Tensor,
    stride: usize,
    pad: usize,
) -> Tensor {
    // weight layout (C_in, C_out, kh, kw) reads directly as a conv kernel
    // producing C_in channels from C_out channels.
    conv2d(grad_out, weight, None, stride, pad)
}

/// Gradient of the fractional-strided convolution w.r.t. its weights.
pub fn conv_transpose2d_backward_weight(
    grad_out: &Tensor,
    input: &Tensor,
    weight_shape: Shape4,
    stride: usize,
    pad: usize,
) -> Tensor {
    // Same cross-correlation as conv backward-weight with the roles of the
    // activation and the gradient exchanged.
    conv2d_backward_weight(input, grad_out, weight_shape, stride, pad)
}

/// Swaps the first two axes of a 4-D tensor: `(A, B, H, W)` → `(B, A, H, W)`.
fn swap_channel_axes(t: &Tensor) -> Tensor {
    let s = t.shape();
    Tensor::from_fn(Shape4::new(s.c, s.n, s.h, s.w), |a, b, h, w| {
        t.at(b, a, h, w)
    })
}

#[cfg(test)]
mod tests {
    use super::super::conv_output_hw;
    use super::*;

    fn seq(shape: Shape4, scale: f32) -> Tensor {
        let len = shape.len();
        Tensor::from_vec(shape, (0..len).map(|i| i as f32 * scale).collect())
    }

    /// Direct scatter reference implementation of transposed convolution.
    fn reference_scatter(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&[f32]>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let is = input.shape();
        let ws = weight.shape();
        let (oh, ow) = conv_transpose_output_hw(is.h, is.w, ws.h, ws.w, stride, pad);
        let mut out = Tensor::zeros(Shape4::new(is.n, ws.c, oh, ow));
        if let Some(b) = bias {
            for n in 0..is.n {
                for co in 0..ws.c {
                    for y in 0..oh {
                        for x in 0..ow {
                            out.set(n, co, y, x, b[co]);
                        }
                    }
                }
            }
        }
        for n in 0..is.n {
            for ci in 0..is.c {
                for iy in 0..is.h {
                    for ix in 0..is.w {
                        let v = input.at(n, ci, iy, ix);
                        for co in 0..ws.c {
                            for ky in 0..ws.h {
                                let oy = (iy * stride + ky) as isize - pad as isize;
                                if oy < 0 || oy >= oh as isize {
                                    continue;
                                }
                                for kx in 0..ws.w {
                                    let ox = (ix * stride + kx) as isize - pad as isize;
                                    if ox < 0 || ox >= ow as isize {
                                        continue;
                                    }
                                    out.add_at(
                                        n,
                                        co,
                                        oy as usize,
                                        ox as usize,
                                        v * weight.at(ci, co, ky, kx),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_hw_inverts_conv() {
        // DCGAN-style: 4x4 -> 8x8 with k=4, s=2, p=1.
        assert_eq!(conv_transpose_output_hw(4, 4, 4, 4, 2, 1), (8, 8));
        // And conv with the same params maps back.
        assert_eq!(conv_output_hw(8, 8, 4, 4, 2, 1), (4, 4));
    }

    #[test]
    fn zero_insertion_matches_direct_scatter() {
        let x = seq(Shape4::new(2, 3, 4, 4), 0.05);
        let w = seq(Shape4::new(3, 2, 4, 4), 0.01);
        let bias = [0.3, -0.1];
        for &(s, p) in &[(1usize, 0usize), (2, 1), (2, 0), (3, 1)] {
            let fast = conv_transpose2d(&x, &w, Some(&bias), s, p);
            let reference = reference_scatter(&x, &w, Some(&bias), s, p);
            assert_eq!(fast.shape(), reference.shape(), "shape for s={s} p={p}");
            let d = fast.squared_distance(&reference);
            assert!(d < 1e-4, "distance {d} for s={s} p={p}");
        }
    }

    #[test]
    fn stride_one_no_pad_is_full_correlation() {
        let x = Tensor::ones(Shape4::new(1, 1, 2, 2));
        let w = Tensor::ones(Shape4::new(1, 1, 3, 3));
        let y = conv_transpose2d(&x, &w, None, 1, 0);
        assert_eq!(y.shape(), Shape4::new(1, 1, 4, 4));
        // Total mass = sum(x) * sum(w).
        assert!((y.sum() - 4.0 * 9.0).abs() < 1e-5);
        // Center positions see all four inputs.
        assert_eq!(y.at(0, 0, 1, 1), 4.0);
    }

    #[test]
    fn upsamples_spatially() {
        // The generator's purpose: output larger than input (paper §II-A.3).
        let x = Tensor::ones(Shape4::new(1, 8, 7, 7));
        let w = Tensor::ones(Shape4::new(8, 4, 4, 4));
        let y = conv_transpose2d(&x, &w, None, 2, 1);
        assert_eq!(y.shape(), Shape4::new(1, 4, 14, 14));
    }

    #[test]
    fn backward_input_matches_numeric() {
        let x = seq(Shape4::new(1, 2, 3, 3), 0.1);
        let w = seq(Shape4::new(2, 2, 4, 4), 0.02);
        let (s, p) = (2, 1);
        let g = Tensor::ones(conv_transpose2d(&x, &w, None, s, p).shape());
        let gin = conv_transpose2d_backward_input(&g, &w, s, p);
        assert_eq!(gin.shape(), x.shape());
        let eps = 1e-2;
        for &(c, h, wd) in &[(0usize, 0usize, 0usize), (1, 2, 1), (0, 1, 2)] {
            let mut xp = x.clone();
            xp.add_at(0, c, h, wd, eps);
            let mut xm = x.clone();
            xm.add_at(0, c, h, wd, -eps);
            let num = (conv_transpose2d(&xp, &w, None, s, p).sum()
                - conv_transpose2d(&xm, &w, None, s, p).sum())
                / (2.0 * eps);
            assert!(
                (num - gin.at(0, c, h, wd)).abs() < 1e-2,
                "numeric {num} vs analytic {}",
                gin.at(0, c, h, wd)
            );
        }
    }

    #[test]
    fn backward_weight_matches_numeric() {
        let x = seq(Shape4::new(2, 2, 3, 3), 0.1);
        let w = seq(Shape4::new(2, 3, 4, 4), 0.02);
        let (s, p) = (2, 1);
        let g = Tensor::ones(conv_transpose2d(&x, &w, None, s, p).shape());
        let gw = conv_transpose2d_backward_weight(&g, &x, w.shape(), s, p);
        assert_eq!(gw.shape(), w.shape());
        let eps = 1e-2;
        for &(ci, co, ky, kx) in &[(0usize, 0usize, 0usize, 0usize), (1, 2, 3, 3), (0, 1, 2, 1)] {
            let mut wp = w.clone();
            wp.add_at(ci, co, ky, kx, eps);
            let mut wm = w.clone();
            wm.add_at(ci, co, ky, kx, -eps);
            let num = (conv_transpose2d(&x, &wp, None, s, p).sum()
                - conv_transpose2d(&x, &wm, None, s, p).sum())
                / (2.0 * eps);
            assert!(
                (num - gw.at(ci, co, ky, kx)).abs() < 5e-2,
                "numeric {num} vs analytic {}",
                gw.at(ci, co, ky, kx)
            );
        }
    }
}
