//! Inner-product (fully connected) layer kernels — paper Eq. 2.
//!
//! `d_{l+1} = W d_l + b` with `W` of shape `(n × m)`. Batched: activations
//! are matrices with one row per batch entry, so the forward pass is
//! `X W^T + b` — each row of `X` is one of the paper's `\vec{d_l}` vectors.

use crate::{Matrix, Shape2};

/// Fully connected forward pass.
///
/// `input` is `(batch × in)`, `weight` is `(out × in)` (the paper's `W`),
/// `bias` has `out` entries. Returns `(batch × out)`.
///
/// # Panics
///
/// Panics if the inner dimensions or the bias length disagree.
pub fn linear(input: &Matrix, weight: &Matrix, bias: Option<&[f32]>) -> Matrix {
    assert_eq!(
        input.cols(),
        weight.cols(),
        "linear: input width {} vs weight width {}",
        input.cols(),
        weight.cols()
    );
    if let Some(b) = bias {
        assert_eq!(
            b.len(),
            weight.rows(),
            "linear: bias length vs out features"
        );
    }
    let out_shape = Shape2::new(input.rows(), weight.rows());
    Matrix::from_fn(out_shape, |n, o| {
        let dot: f32 = input
            .row(n)
            .iter()
            .zip(weight.row(o))
            .map(|(&x, &w)| x * w)
            .sum();
        dot + bias.map_or(0.0, |b| b[o])
    })
}

/// Gradient of the FC layer w.r.t. its input: `G W`.
pub fn linear_backward_input(grad_out: &Matrix, weight: &Matrix) -> Matrix {
    assert_eq!(
        grad_out.cols(),
        weight.rows(),
        "linear_backward_input: grad width {} vs out features {}",
        grad_out.cols(),
        weight.rows()
    );
    grad_out.matmul(weight)
}

/// Gradient of the FC layer w.r.t. its weights: `G^T X`.
///
/// The `(out × in)` result accumulates over the batch, matching the paper's
/// batched-update semantics (weight deltas are summed over the batch and
/// applied once at batch end, §III-A.2).
pub fn linear_backward_weight(grad_out: &Matrix, input: &Matrix) -> Matrix {
    assert_eq!(
        grad_out.rows(),
        input.rows(),
        "linear_backward_weight: batch {} vs {}",
        grad_out.rows(),
        input.rows()
    );
    grad_out.transposed().matmul(input)
}

/// Gradient of the FC layer w.r.t. its bias: column sums of `G`.
pub fn linear_backward_bias(grad_out: &Matrix) -> Vec<f32> {
    let mut gb = vec![0.0; grad_out.cols()];
    for r in 0..grad_out.rows() {
        for (c, g) in grad_out.row(r).iter().enumerate() {
            gb[c] += g;
        }
    }
    gb
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Matrix {
        Matrix::from_vec(Shape2::new(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn w() -> Matrix {
        Matrix::from_vec(Shape2::new(2, 3), vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5])
    }

    #[test]
    fn forward_matches_manual() {
        let y = linear(&x(), &w(), Some(&[10.0, 20.0]));
        // row 0: [1-3+10, 0.5*6+20] = [8, 23]; row 1: [4-6+10, 0.5*15+20]=[8, 27.5]
        assert_eq!(y.data(), &[8.0, 23.0, 8.0, 27.5]);
    }

    #[test]
    fn forward_without_bias() {
        let y = linear(&x(), &w(), None);
        assert_eq!(y.data(), &[-2.0, 3.0, -2.0, 7.5]);
    }

    #[test]
    fn backward_input_matches_numeric() {
        let g = Matrix::from_vec(Shape2::new(2, 2), vec![1.0, 1.0, 1.0, 1.0]);
        let gin = linear_backward_input(&g, &w());
        let eps = 1e-2;
        for &(r, c) in &[(0usize, 0usize), (1, 2), (0, 1)] {
            let mut xp = x();
            xp.set(r, c, xp.at(r, c) + eps);
            let mut xm = x();
            xm.set(r, c, xm.at(r, c) - eps);
            let sum = |m: &Matrix| linear(m, &w(), None).data().iter().sum::<f32>();
            let num = (sum(&xp) - sum(&xm)) / (2.0 * eps);
            assert!((num - gin.at(r, c)).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_weight_matches_numeric() {
        let g = Matrix::from_vec(Shape2::new(2, 2), vec![1.0, 1.0, 1.0, 1.0]);
        let gw = linear_backward_weight(&g, &x());
        assert_eq!(gw.shape(), Shape2::new(2, 3));
        let eps = 1e-2;
        for &(r, c) in &[(0usize, 0usize), (1, 2)] {
            let mut wp = w();
            wp.set(r, c, wp.at(r, c) + eps);
            let mut wm = w();
            wm.set(r, c, wm.at(r, c) - eps);
            let sum = |m: &Matrix| linear(&x(), m, None).data().iter().sum::<f32>();
            let num = (sum(&wp) - sum(&wm)) / (2.0 * eps);
            assert!((num - gw.at(r, c)).abs() < 1e-2);
        }
    }

    #[test]
    fn backward_bias_sums_rows() {
        let g = Matrix::from_vec(Shape2::new(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(linear_backward_bias(&g), vec![4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "linear: input width")]
    fn forward_rejects_mismatch() {
        let bad = Matrix::zeros(Shape2::new(2, 4));
        let _ = linear(&bad, &w(), None);
    }
}
