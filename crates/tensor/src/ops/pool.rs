//! Pooling layers — paper §II-A.1.
//!
//! "A max POOL passes the maximum element in a pooling window while an
//! average POOL takes the mean of all the elements in a pooling window."
//! PipeLayer realizes max pooling with a register that keeps the running
//! maximum of a value sequence (§III-A.3(c)); functionally that is exactly
//! the windowed maximum computed here.

use crate::{Shape4, Tensor};

/// Output spatial size of a pooling window sweep.
///
/// # Panics
///
/// Panics if `stride == 0` or the window does not fit.
pub fn pool_output_hw(h: usize, w: usize, k: usize, stride: usize) -> (usize, usize) {
    assert!(stride > 0, "pool stride must be positive");
    assert!(
        h >= k && w >= k,
        "pool window {k} larger than input {h}x{w}"
    );
    ((h - k) / stride + 1, (w - k) / stride + 1)
}

/// Argmax bookkeeping produced by [`max_pool2d`], consumed by
/// [`max_pool2d_backward`] to route gradients to the winning positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxPoolIndices {
    input_shape: Shape4,
    /// For each output element (in NCHW order) the linear input index that won.
    winners: Vec<usize>,
}

impl MaxPoolIndices {
    /// Shape of the pooled layer's input.
    pub fn input_shape(&self) -> Shape4 {
        self.input_shape
    }

    /// Winning linear input index for each output element.
    pub fn winners(&self) -> &[usize] {
        &self.winners
    }
}

/// Max pooling forward pass with `k × k` windows.
///
/// Returns the pooled tensor and the winner indices needed by the backward
/// pass.
pub fn max_pool2d(input: &Tensor, k: usize, stride: usize) -> (Tensor, MaxPoolIndices) {
    let s = input.shape();
    let (oh, ow) = pool_output_hw(s.h, s.w, k, stride);
    let mut out = Tensor::zeros(Shape4::new(s.n, s.c, oh, ow));
    let mut winners = Vec::with_capacity(out.len());
    for n in 0..s.n {
        for c in 0..s.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..k {
                        for kx in 0..k {
                            let (iy, ix) = (oy * stride + ky, ox * stride + kx);
                            let v = input.at(n, c, iy, ix);
                            if v > best {
                                best = v;
                                best_idx = s.index(n, c, iy, ix);
                            }
                        }
                    }
                    out.set(n, c, oy, ox, best);
                    winners.push(best_idx);
                }
            }
        }
    }
    (
        out,
        MaxPoolIndices {
            input_shape: s,
            winners,
        },
    )
}

/// Max pooling backward pass: each output gradient flows to its argmax input.
///
/// # Panics
///
/// Panics if `grad_out` does not have one element per recorded winner.
pub fn max_pool2d_backward(grad_out: &Tensor, indices: &MaxPoolIndices) -> Tensor {
    assert_eq!(
        grad_out.len(),
        indices.winners.len(),
        "max_pool2d_backward: gradient has {} elements, expected {}",
        grad_out.len(),
        indices.winners.len()
    );
    let mut gin = Tensor::zeros(indices.input_shape);
    for (g, &idx) in grad_out.data().iter().zip(&indices.winners) {
        gin.data_mut()[idx] += g;
    }
    gin
}

/// Average pooling forward pass with `k × k` windows.
pub fn avg_pool2d(input: &Tensor, k: usize, stride: usize) -> Tensor {
    let s = input.shape();
    let (oh, ow) = pool_output_hw(s.h, s.w, k, stride);
    let inv = 1.0 / (k * k) as f32;
    Tensor::from_fn(Shape4::new(s.n, s.c, oh, ow), |n, c, oy, ox| {
        let mut acc = 0.0;
        for ky in 0..k {
            for kx in 0..k {
                acc += input.at(n, c, oy * stride + ky, ox * stride + kx);
            }
        }
        acc * inv
    })
}

/// Average pooling backward pass: gradients spread uniformly over windows.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    input_shape: Shape4,
    k: usize,
    stride: usize,
) -> Tensor {
    let gs = grad_out.shape();
    let inv = 1.0 / (k * k) as f32;
    let mut gin = Tensor::zeros(input_shape);
    for n in 0..gs.n {
        for c in 0..gs.c {
            for oy in 0..gs.h {
                for ox in 0..gs.w {
                    let g = grad_out.at(n, c, oy, ox) * inv;
                    for ky in 0..k {
                        for kx in 0..k {
                            gin.add_at(n, c, oy * stride + ky, ox * stride + kx, g);
                        }
                    }
                }
            }
        }
    }
    gin
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input4() -> Tensor {
        Tensor::from_fn(Shape4::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as f32)
    }

    #[test]
    fn output_hw() {
        assert_eq!(pool_output_hw(4, 4, 2, 2), (2, 2));
        assert_eq!(pool_output_hw(5, 5, 3, 1), (3, 3));
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn output_hw_rejects_big_window() {
        let _ = pool_output_hw(2, 2, 3, 1);
    }

    #[test]
    fn max_pool_picks_window_max() {
        let (y, _) = max_pool2d(&input4(), 2, 2);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let (y, idx) = max_pool2d(&input4(), 2, 2);
        let g = Tensor::ones(y.shape());
        let gin = max_pool2d_backward(&g, &idx);
        // Only the four winning positions receive gradient.
        assert_eq!(gin.sum(), 4.0);
        assert_eq!(gin.at(0, 0, 1, 1), 1.0);
        assert_eq!(gin.at(0, 0, 3, 3), 1.0);
        assert_eq!(gin.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn max_pool_overlapping_windows_accumulate() {
        // stride 1 with k=2: winner (1,1) value 5 wins all four windows.
        let t = Tensor::from_vec(
            Shape4::new(1, 1, 3, 3),
            vec![0.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0],
        );
        let (y, idx) = max_pool2d(&t, 2, 1);
        assert!(y.data().iter().all(|&v| v == 5.0));
        let gin = max_pool2d_backward(&Tensor::ones(y.shape()), &idx);
        assert_eq!(gin.at(0, 0, 1, 1), 4.0);
    }

    #[test]
    fn avg_pool_means_window() {
        let y = avg_pool2d(&input4(), 2, 2);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_uniform() {
        let y = avg_pool2d(&input4(), 2, 2);
        let gin = avg_pool2d_backward(&Tensor::ones(y.shape()), Shape4::new(1, 1, 4, 4), 2, 2);
        assert!(gin.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn avg_pool_gradient_conserved() {
        // Non-overlapping average pooling conserves total gradient mass.
        let g = Tensor::from_fn(Shape4::new(2, 3, 2, 2), |n, c, h, w| (n + c + h + w) as f32);
        let gin = avg_pool2d_backward(&g, Shape4::new(2, 3, 4, 4), 2, 2);
        assert!((gin.sum() - g.sum()).abs() < 1e-4);
    }

    #[test]
    fn max_pool_handles_negative_values() {
        let t = Tensor::filled(Shape4::new(1, 1, 2, 2), -3.0);
        let (y, _) = max_pool2d(&t, 2, 2);
        assert_eq!(y.data(), &[-3.0]);
    }
}
