//! Spatial padding, dilation (zero insertion) and kernel rotation helpers.
//!
//! `dilate` implements the zero insertion of the paper's Fig. 7(a): a
//! fractional-strided convolution first spreads the input feature map apart
//! by inserting `stride - 1` zeros between neighbouring elements, after which
//! an ordinary unit-stride convolution produces the up-sampled output.

use crate::{Shape4, Tensor};

/// Pads the spatial dimensions with `pad` zeros on every side.
pub fn zero_pad(input: &Tensor, pad: usize) -> Tensor {
    if pad == 0 {
        return input.clone();
    }
    let s = input.shape();
    let out_shape = Shape4::new(s.n, s.c, s.h + 2 * pad, s.w + 2 * pad);
    let mut out = Tensor::zeros(out_shape);
    for n in 0..s.n {
        for c in 0..s.c {
            for h in 0..s.h {
                for w in 0..s.w {
                    out.set(n, c, h + pad, w + pad, input.at(n, c, h, w));
                }
            }
        }
    }
    out
}

/// Removes `crop` elements from every side of the spatial dimensions.
///
/// # Panics
///
/// Panics if the crop would remove the whole extent.
pub fn crop(input: &Tensor, crop: usize) -> Tensor {
    if crop == 0 {
        return input.clone();
    }
    let s = input.shape();
    assert!(
        s.h > 2 * crop && s.w > 2 * crop,
        "crop {crop} exceeds spatial extent of {s}"
    );
    let out_shape = Shape4::new(s.n, s.c, s.h - 2 * crop, s.w - 2 * crop);
    Tensor::from_fn(out_shape, |n, c, h, w| input.at(n, c, h + crop, w + crop))
}

/// Inserts `stride - 1` zeros between neighbouring spatial elements.
///
/// A `H × W` map becomes `(H-1)*stride+1 × (W-1)*stride+1`. With
/// `stride == 1` this is the identity.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn dilate(input: &Tensor, stride: usize) -> Tensor {
    assert!(stride > 0, "dilate stride must be positive");
    if stride == 1 {
        return input.clone();
    }
    let s = input.shape();
    let oh = if s.h == 0 { 0 } else { (s.h - 1) * stride + 1 };
    let ow = if s.w == 0 { 0 } else { (s.w - 1) * stride + 1 };
    let mut out = Tensor::zeros(Shape4::new(s.n, s.c, oh, ow));
    for n in 0..s.n {
        for c in 0..s.c {
            for h in 0..s.h {
                for w in 0..s.w {
                    out.set(n, c, h * stride, w * stride, input.at(n, c, h, w));
                }
            }
        }
    }
    out
}

/// Rotates every kernel plane of a 4-D weight tensor by 180 degrees.
///
/// The backward-of-convolution kernel is the forward kernel rotated 180° with
/// the input/output channel roles swapped; this helper performs the spatial
/// rotation only.
pub fn rotate180(weight: &Tensor) -> Tensor {
    let s = weight.shape();
    Tensor::from_fn(s, |n, c, h, w| weight.at(n, c, s.h - 1 - h, s.w - 1 - w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_pad_places_values_centrally() {
        let t = Tensor::ones(Shape4::new(1, 1, 2, 2));
        let p = zero_pad(&t, 1);
        assert_eq!(p.shape(), Shape4::new(1, 1, 4, 4));
        assert_eq!(p.sum(), 4.0);
        assert_eq!(p.at(0, 0, 0, 0), 0.0);
        assert_eq!(p.at(0, 0, 1, 1), 1.0);
        assert_eq!(p.at(0, 0, 2, 2), 1.0);
    }

    #[test]
    fn crop_inverts_pad() {
        let t = Tensor::from_fn(Shape4::new(2, 3, 4, 5), |n, c, h, w| {
            (n + 2 * c + 3 * h + 5 * w) as f32
        });
        assert_eq!(crop(&zero_pad(&t, 2), 2), t);
    }

    #[test]
    fn pad_zero_is_identity() {
        let t = Tensor::ones(Shape4::new(1, 2, 3, 3));
        assert_eq!(zero_pad(&t, 0), t);
        assert_eq!(crop(&t, 0), t);
    }

    #[test]
    fn dilate_stride_two() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let d = dilate(&t, 2);
        assert_eq!(d.shape(), Shape4::new(1, 1, 3, 3));
        assert_eq!(d.data(), &[1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn dilate_stride_one_is_identity() {
        let t = Tensor::ones(Shape4::new(1, 1, 3, 3));
        assert_eq!(dilate(&t, 1), t);
    }

    #[test]
    fn dilate_preserves_sum() {
        let t = Tensor::from_fn(Shape4::new(1, 2, 3, 4), |_, c, h, w| (c + h + w) as f32);
        assert_eq!(dilate(&t, 3).sum(), t.sum());
    }

    #[test]
    fn rotate180_involution() {
        let t = Tensor::from_fn(Shape4::new(2, 2, 3, 3), |n, c, h, w| {
            (n * 100 + c * 10 + h * 3 + w) as f32
        });
        assert_eq!(rotate180(&rotate180(&t)), t);
    }

    #[test]
    fn rotate180_center_fixed() {
        let t = Tensor::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w) as f32);
        let r = rotate180(&t);
        assert_eq!(r.at(0, 0, 1, 1), 4.0);
        assert_eq!(r.at(0, 0, 0, 0), 8.0);
        assert_eq!(r.at(0, 0, 2, 2), 0.0);
    }
}
