use std::error::Error;
use std::fmt;

/// Error returned when tensor shapes are incompatible for an operation.
///
/// Carries the operation name and a human-readable description of the
/// offending shapes so failures in deep call stacks stay diagnosable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    detail: String,
}

impl ShapeError {
    /// Creates a shape error for operation `op` with a free-form detail.
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self {
            op,
            detail: detail.into(),
        }
    }

    /// The operation that rejected the shapes.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Human-readable description of the shape mismatch.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch in {}: {}", self.op, self.detail)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_op_and_detail() {
        let e = ShapeError::new("conv2d", "kernel larger than input");
        let s = e.to_string();
        assert!(s.contains("conv2d"));
        assert!(s.contains("kernel larger than input"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }

    #[test]
    fn accessors_round_trip() {
        let e = ShapeError::new("matmul", "2x3 vs 4x5");
        assert_eq!(e.op(), "matmul");
        assert_eq!(e.detail(), "2x3 vs 4x5");
    }
}
