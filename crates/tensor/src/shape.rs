use std::fmt;

/// Shape of a 4-D tensor in NCHW order (batch, channels, height, width).
///
/// The paper's data cubes `d_l` of size `(X_l × Y_l × C_l)` (§II-A.1) map to
/// one batch entry of an NCHW tensor with `c = C_l`, `h = Y_l`, `w = X_l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Batch size.
    pub n: usize,
    /// Channel count.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape4 {
    /// Creates a shape from its four extents.
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Whether the shape contains zero elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of elements in one batch entry (`c * h * w`).
    pub const fn batch_stride(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Linear index of `(n, c, h, w)` in row-major NCHW layout.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of range for {self}"
        );
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Returns the same shape with a different batch size.
    pub const fn with_batch(&self, n: usize) -> Self {
        Self { n, ..*self }
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.n, self.c, self.h, self.w)
    }
}

/// Shape of a 2-D matrix (rows × columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape2 {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
}

impl Shape2 {
    /// Creates a matrix shape.
    pub const fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the shape contains zero elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear row-major index of `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a coordinate is out of range.
    #[inline]
    pub fn index(&self, r: usize, c: usize) -> usize {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range for {self}"
        );
        r * self.cols + c
    }

    /// The transposed shape.
    pub const fn transposed(&self) -> Self {
        Self {
            rows: self.cols,
            cols: self.rows,
        }
    }
}

impl fmt::Display for Shape2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} x {}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape4_len_and_strides() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.batch_stride(), 60);
        assert!(!s.is_empty());
    }

    #[test]
    fn shape4_index_is_row_major() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), 119);
    }

    #[test]
    fn shape4_with_batch() {
        let s = Shape4::new(2, 3, 4, 5).with_batch(7);
        assert_eq!(s, Shape4::new(7, 3, 4, 5));
    }

    #[test]
    fn shape4_empty() {
        assert!(Shape4::new(0, 3, 4, 5).is_empty());
    }

    #[test]
    fn shape2_index_and_transpose() {
        let s = Shape2::new(3, 4);
        assert_eq!(s.index(1, 2), 6);
        assert_eq!(s.transposed(), Shape2::new(4, 3));
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "[1, 2, 3, 4]");
        assert_eq!(Shape2::new(3, 4).to_string(), "[3 x 4]");
    }
}
