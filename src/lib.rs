//! Umbrella crate for the ReRAM accelerator reproduction workspace.
//!
//! Re-exports the member crates so integration tests and examples can use a
//! single dependency. See `README.md` for the project overview and
//! `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use reram_core as core;
pub use reram_crossbar as crossbar;
pub use reram_datasets as datasets;
pub use reram_gpu as gpu;
pub use reram_nn as nn;
pub use reram_tensor as tensor;
