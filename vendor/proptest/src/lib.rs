//! Offline stand-in for `proptest` (see `Cargo.toml` description).
//!
//! A `proptest!` test expands to a plain `#[test]` that draws each argument
//! from its strategy for `cases` deterministic seeds and runs the body.
//! Failures report the seed and the drawn inputs; there is no shrinking.

use rand::distributions::uniform::SampleUniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this stand-in favours fast suites.
        Self { cases: 64 }
    }
}

/// A source of generated values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Drives one property test: `cases` deterministic seeds derived from the
/// test name, failing fast with the offending case index.
pub fn run_proptest<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    for case in 0..config.cases {
        let seed = case_seed(name, case);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(message) = body(&mut rng) {
            panic!("proptest `{name}` failed at case {case} (seed {seed:#x}): {message}");
        }
    }
}

/// FNV-1a over the test name, mixed with the case index, so every test gets
/// an independent but reproducible stream.
fn case_seed(name: &str, case: u32) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ ((case as u64) << 32 | case as u64)
}

/// Defines property tests. Supports the upstream surface this workspace
/// uses: an optional leading `#![proptest_config(expr)]` and test functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_proptest(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the failing
/// expression (and optional formatted context) without aborting the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}; {})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn range_strategy_respects_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn inclusive_range_strategy(v in 5u32..=5) {
            prop_assert_eq!(v, 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_cases_honoured(x in 0u64..1000) {
            prop_assert_ne!(x, 1000);
        }
    }

    #[test]
    fn seeds_are_deterministic_per_name_and_case() {
        assert_eq!(case_seed("abc", 3), case_seed("abc", 3));
        assert_ne!(case_seed("abc", 3), case_seed("abc", 4));
        assert_ne!(case_seed("abc", 3), case_seed("abd", 3));
    }
}
